(* Arguments, helpers and the shared error path used by every
   replica_cli subcommand module. *)

open Replica_tree
open Replica_core
open Replica_experiments
open Cmdliner

(* --- shared error path ---

   Unknown algorithm names and capability mismatches all exit through
   here, so the CLI has exactly one failure shape (stderr line + exit
   2) for "you asked a solver for something it cannot do". The cram
   suite pins both the message and the status. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("replica_cli: " ^ s);
      exit 2)
    fmt

let warn fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "replica_cli: warning: %s\n%!" s) fmt

(* --- shared arguments --- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of internal nodes.")

let shape_arg =
  let shape_conv =
    Arg.enum [ ("fat", Workload.Fat); ("high", Workload.High) ]
  in
  Arg.(
    value & opt shape_conv Workload.Fat
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:"Tree shape: $(b,fat) (6-9 children) or $(b,high) (2-4).")

let pre_arg default =
  Arg.(
    value & opt int default
    & info [ "pre" ] ~docv:"E" ~doc:"Number of pre-existing servers.")

let trees_arg default =
  Arg.(
    value & opt int default
    & info [ "trees" ] ~docv:"T" ~doc:"Number of random trees to average over.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_flag =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging of the DP internals.")

let quiet_progress =
  Arg.(
    value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"D"
        ~doc:
          "Domains for parallel per-tree solves (default: the machine's \
           recommended count). Results are identical at any value.")

let csv_flag =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.")

let emit csv table =
  if csv then print_string (Table.to_csv table) else Table.print table

let progress quiet fmt =
  if quiet then Printf.ifprintf stderr fmt else Printf.eprintf fmt

let make_tree ~shape ~nodes ~pre ~seed ~max_requests ~pre_mode =
  let rng = Rng.create seed in
  let t =
    Generator.random rng (Workload.profile shape ~nodes ~max_requests)
  in
  Generator.add_pre_existing rng ~mode:pre_mode t pre

(* --- QoS / bandwidth constraint flags (shared by generate, solve and
   the engine's tightening variants) --- *)

let qos_arg =
  Arg.(
    value & opt (some int) None
    & info [ "qos" ] ~docv:"Q"
        ~doc:
          "Bound every client's distance to its server at $(docv) hops \
           ($(b,0) = a server at the attachment node).")

let bw_arg =
  Arg.(
    value & opt (some float) None
    & info [ "bw" ] ~docv:"S"
        ~doc:
          "Cap every link at $(docv) times its subtree demand (slack \
           factor; values below 1 make links bind).")

let constrain_tree ~qos ~bw ~seed t =
  let t =
    match qos with
    | None -> t
    | Some q ->
        if q < 0 then die "--qos must be non-negative";
        Tree.with_qos t (fun _ _ -> q)
  in
  match bw with
  | None -> t
  | Some s ->
      if s <= 0.0 then die "--bw must be positive";
      Generator.add_bandwidth (Rng.create seed) t ~slack:s

(* --- observability --- *)

let trace_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it as Chrome \
           trace-event JSON to $(docv), loadable in Perfetto \
           (ui.perfetto.dev) or chrome://tracing.")

(* --trace implies allocation capture: a written trace should carry the
   memory axis without a second run. The capture is side-effect-only
   (allocation-free GC reads into span columns), so placements are
   bit-identical either way — the cram timeline goldens pin this. *)
let with_tracing ?counters trace f =
  let module Span = Replica_obs.Span in
  match trace with
  | None -> f ()
  | Some path ->
      Span.set_enabled true;
      Span.set_alloc true;
      Fun.protect
        ~finally:(fun () ->
          Span.set_alloc false;
          Span.set_enabled false;
          let counters =
            match counters with None -> [] | Some get -> get ()
          in
          Replica_obs.Chrome_trace.write_file ~dropped:(Span.dropped ())
            ~counters path (Span.export ());
          if Span.dropped () > 0 then
            Printf.eprintf "trace: %d spans dropped (buffer cap reached)\n%!"
              (Span.dropped ());
          Span.reset ())
        f

let metrics_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "After the run, write a Prometheus text-exposition snapshot of \
           the whole metrics registry (labeled instruments, counters, \
           timers and histograms) to $(docv).")

let write_string_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* The Metrics registry sees everything: labeled engine/forest
   instruments, the Stats_counters collector, the Gc_stats heap
   collector, the legacy histogram registry and the span drop
   counter. *)
let write_metrics path =
  Replica_obs.Gc_stats.register ();
  write_string_file path (Replica_obs.Prometheus.expose ())

(* --- live telemetry (timeseries + flight recorder) --- *)

let timeseries_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "timeseries" ] ~docv:"FILE"
        ~doc:
          "Sample the metrics registry once per epoch and write the \
           per-epoch series (counter deltas, gauges, histogram \
           count/sum/p50/p99) as JSON to $(docv). The same series also \
           lands in the $(b,--json) envelope's $(b,timeseries) field.")

let timeseries_stride_arg =
  Arg.(
    value & opt int 1
    & info [ "timeseries-stride" ] ~docv:"K"
        ~doc:"Record every K-th epoch in the time series (default 1).")

let openmetrics_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "openmetrics" ] ~docv:"FILE"
        ~doc:
          "Write the per-epoch series as OpenMetrics gauge families \
           (epoch index in the timestamp column, # EOF terminator) to \
           $(docv).")

let flight_record_arg =
  Arg.(
    value & opt (some string) None
    & info [ "flight-record" ] ~docv:"FILE"
        ~doc:
          "Keep tracing on with a bounded flight-recorder ring and dump a \
           Chrome trace of the lead-up to $(docv) whenever an epoch's \
           solve latency exceeds $(b,--anomaly-k) times the trailing \
           median. Conflicts with $(b,--trace).")

let anomaly_k_arg =
  Arg.(
    value & opt float 3.0
    & info [ "anomaly-k" ] ~docv:"K"
        ~doc:
          "Anomaly threshold multiplier for $(b,--flight-record): dump \
           when epoch latency > K x trailing median (default 3.0; 0 dumps \
           every epoch, useful for smoke tests).")

type telemetry = {
  tele_ts : Replica_obs.Timeseries.t option;
  tele_fr : Replica_obs.Flight_recorder.t option;
  tele_heap : Replica_obs.Chrome_trace.counter list ref option;
}

(* The time series is recorded whenever any consumer wants it: the
   --timeseries / --openmetrics artifacts or the --json envelope. *)
let make_telemetry ~json ~timeseries ~stride ~openmetrics ~flight_record
    ~anomaly_k ~trace_file () =
  if stride < 1 then die "--timeseries-stride must be >= 1";
  if anomaly_k < 0. then die "--anomaly-k must be non-negative";
  (* Telemetry always carries the memory axis: the gc.* collector feeds
     the registry (hence Prometheus/Timeseries/--json), and pure reads
     cannot perturb placements. *)
  Replica_obs.Gc_stats.register ();
  let tele_ts =
    if json <> None || timeseries <> None || openmetrics <> None then
      Some (Replica_obs.Timeseries.create ~stride ())
    else None
  in
  let tele_fr =
    Option.map
      (fun path ->
        if trace_file <> None then
          die
            "--flight-record conflicts with --trace (the recorder owns the \
             span buffers)";
        Replica_obs.Span.set_enabled true;
        Replica_obs.Span.set_alloc true;
        Replica_obs.Flight_recorder.create ~k:anomaly_k ~path ())
      flight_record
  in
  let tele_heap = Option.map (fun _ -> ref []) trace_file in
  { tele_ts; tele_fr; tele_heap }

(* Call once per epoch, after the epoch's work. Sampling reads the
   registry only — placements are identical with telemetry on or off. *)
let telemetry_epoch tele ~epoch ~latency_ns =
  Option.iter (fun ts -> Replica_obs.Timeseries.sample ts ~epoch) tele.tele_ts;
  Option.iter
    (fun heap ->
      heap :=
        Replica_obs.Gc_stats.heap_counter
          ~ts_ns:(Replica_obs.Clock.now_ns ())
        :: !heap)
    tele.tele_heap;
  Option.iter
    (fun fr ->
      ignore (Replica_obs.Flight_recorder.record fr ~epoch ~latency_ns))
    tele.tele_fr

(* Per-epoch heap counter events, oldest first, for the trace writer. *)
let telemetry_counters tele () =
  match tele.tele_heap with None -> [] | Some heap -> List.rev !heap

let telemetry_finish tele ~timeseries ~openmetrics =
  Option.iter
    (fun fr ->
      Replica_obs.Span.set_alloc false;
      Replica_obs.Span.set_enabled false;
      Replica_obs.Span.reset ();
      let module F = Replica_obs.Flight_recorder in
      match F.last_dump_epoch fr with
      | Some e ->
          Printf.eprintf
            "flight-recorder: %d dump(s), last at epoch %d -> %s\n%!"
            (F.dumps fr) e (F.path fr)
      | None -> Printf.eprintf "flight-recorder: no anomaly, no dump\n%!")
    tele.tele_fr;
  Option.iter
    (fun ts ->
      Option.iter
        (fun path ->
          let module Json = Replica_obs.Json in
          write_string_file path
            (Json.to_string ~pretty:true
               (Json.envelope ~kind:"timeseries" ~config:[]
                  [
                    ( "stride",
                      Json.Int (Replica_obs.Timeseries.stride ts) );
                    ("points", Replica_obs.Timeseries.to_json ts);
                  ])
            ^ "\n"))
        timeseries;
      Option.iter
        (fun path ->
          write_string_file path (Replica_obs.Timeseries.to_openmetrics ts))
        openmetrics)
    tele.tele_ts

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- solver selection (registry-backed) --- *)

let algo_doc () =
  Printf.sprintf
    "Solver name from the registry: %s. See $(b,--list-algos) for the \
     capability matrix."
    (String.concat ", "
       (List.map (fun n -> Printf.sprintf "$(b,%s)" n) (Registry.names ())))

(* The name is parsed as a plain string and resolved at run time so an
   unknown name flows through the shared [die] path (exit 2) instead of
   cmdliner's usage error (exit 124). *)
let resolve_algo name =
  match Registry.find name with
  | Some s -> s
  | None ->
      die "unknown algorithm %S (try --list-algos for the registry)" name
