(* Arguments, helpers and the shared error path used by every
   replica_cli subcommand module. *)

open Replica_tree
open Replica_core
open Replica_experiments
open Cmdliner

(* --- shared error path ---

   Unknown algorithm names and capability mismatches all exit through
   here, so the CLI has exactly one failure shape (stderr line + exit
   2) for "you asked a solver for something it cannot do". The cram
   suite pins both the message and the status. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("replica_cli: " ^ s);
      exit 2)
    fmt

let warn fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "replica_cli: warning: %s\n%!" s) fmt

(* --- shared arguments --- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of internal nodes.")

let shape_arg =
  let shape_conv =
    Arg.enum [ ("fat", Workload.Fat); ("high", Workload.High) ]
  in
  Arg.(
    value & opt shape_conv Workload.Fat
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:"Tree shape: $(b,fat) (6-9 children) or $(b,high) (2-4).")

let pre_arg default =
  Arg.(
    value & opt int default
    & info [ "pre" ] ~docv:"E" ~doc:"Number of pre-existing servers.")

let trees_arg default =
  Arg.(
    value & opt int default
    & info [ "trees" ] ~docv:"T" ~doc:"Number of random trees to average over.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_flag =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging of the DP internals.")

let quiet_progress =
  Arg.(
    value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"D"
        ~doc:
          "Domains for parallel per-tree solves (default: the machine's \
           recommended count). Results are identical at any value.")

let csv_flag =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.")

let emit csv table =
  if csv then print_string (Table.to_csv table) else Table.print table

let progress quiet fmt =
  if quiet then Printf.ifprintf stderr fmt else Printf.eprintf fmt

let make_tree ~shape ~nodes ~pre ~seed ~max_requests ~pre_mode =
  let rng = Rng.create seed in
  let t =
    Generator.random rng (Workload.profile shape ~nodes ~max_requests)
  in
  Generator.add_pre_existing rng ~mode:pre_mode t pre

(* --- QoS / bandwidth constraint flags (shared by generate, solve and
   the engine's tightening variants) --- *)

let qos_arg =
  Arg.(
    value & opt (some int) None
    & info [ "qos" ] ~docv:"Q"
        ~doc:
          "Bound every client's distance to its server at $(docv) hops \
           ($(b,0) = a server at the attachment node).")

let bw_arg =
  Arg.(
    value & opt (some float) None
    & info [ "bw" ] ~docv:"S"
        ~doc:
          "Cap every link at $(docv) times its subtree demand (slack \
           factor; values below 1 make links bind).")

let constrain_tree ~qos ~bw ~seed t =
  let t =
    match qos with
    | None -> t
    | Some q ->
        if q < 0 then die "--qos must be non-negative";
        Tree.with_qos t (fun _ _ -> q)
  in
  match bw with
  | None -> t
  | Some s ->
      if s <= 0.0 then die "--bw must be positive";
      Generator.add_bandwidth (Rng.create seed) t ~slack:s

(* --- observability --- *)

let trace_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it as Chrome \
           trace-event JSON to $(docv), loadable in Perfetto \
           (ui.perfetto.dev) or chrome://tracing.")

let with_tracing trace f =
  let module Span = Replica_obs.Span in
  match trace with
  | None -> f ()
  | Some path ->
      Span.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Span.set_enabled false;
          Replica_obs.Chrome_trace.write_file ~dropped:(Span.dropped ()) path
            (Span.export ());
          if Span.dropped () > 0 then
            Printf.eprintf "trace: %d spans dropped (buffer cap reached)\n%!"
              (Span.dropped ());
          Span.reset ())
        f

let metrics_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "After the run, write a Prometheus text-exposition snapshot of \
           the counter, timer and histogram registries to $(docv).")

let write_metrics path =
  let oc = open_out path in
  output_string oc
    (Replica_obs.Prometheus.render
       ~counters:
         (Stats_counters.counters ()
         (* Dropped spans are surfaced as a counter so a scrape can tell
            a truncated trace from a quiet one. *)
         @ [ ("obs.spans_dropped", Replica_obs.Span.dropped ()) ])
       ~timers_seconds:(Stats_counters.timers ())
       ~histograms:(Replica_obs.Histogram.snapshots ())
       ());
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- solver selection (registry-backed) --- *)

let algo_doc () =
  Printf.sprintf
    "Solver name from the registry: %s. See $(b,--list-algos) for the \
     capability matrix."
    (String.concat ", "
       (List.map (fun n -> Printf.sprintf "$(b,%s)" n) (Registry.names ())))

(* The name is parsed as a plain string and resolved at run time so an
   unknown name flows through the shared [die] path (exit 2) instead of
   cmdliner's usage error (exit 124). *)
let resolve_algo name =
  match Registry.find name with
  | Some s -> s
  | None ->
      die "unknown algorithm %S (try --list-algos for the registry)" name
