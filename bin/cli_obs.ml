(* replica_cli profile/bench-diff/obs-validate: offline analysis of
   observability artifacts. *)

open Cmdliner
open Cli_common

let profile_cmd =
  let trace_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Chrome trace-event JSON file to analyse (as written by \
             $(b,solve --trace) or $(b,engine --trace)).")
  in
  let folded_flag =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "Emit Brendan Gregg collapsed-stack lines (stack frames joined \
             by ';', weighted by self time in nanoseconds) instead of the \
             hotspot table — pipe into inferno, speedscope or \
             flamegraph.pl to render a flamegraph.")
  in
  let critical_flag =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Print the longest chain of nested spans through the trace's \
             longest root span, with each phase's contribution to the \
             total.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Rows in the hotspot table (default 10).")
  in
  let alloc_flag =
    Arg.(
      value & flag
      & info [ "alloc" ]
          ~doc:
            "Weight the analysis by allocated minor words instead of \
             nanoseconds: the hotspot table ranks by self-allocation, \
             $(b,--folded) emits alloc-weighted stacks, and \
             $(b,--critical-path) annotates each phase with its \
             allocation contribution. Requires a trace recorded with \
             alloc capture on ($(b,--trace) enables it); other traces \
             aggregate to zero columns.")
  in
  let run trace folded critical top alloc =
    let module Obs = Replica_obs in
    if top <= 0 then die "profile: --top must be positive (got %d)" top;
    match Obs.Trace_reader.of_file trace with
    | Error e ->
        Printf.eprintf "profile: %s: %s\n" trace e;
        exit 2
    | Ok t ->
        if t.Obs.Trace_reader.dropped > 0 then
          Printf.eprintf
            "profile: warning: %d spans were dropped while recording %s — \
             self times and counts undercount the truncated subtrees\n%!"
            t.Obs.Trace_reader.dropped (Filename.basename trace);
        let roots = t.Obs.Trace_reader.roots in
        if folded then
          print_string
            (if alloc then Obs.Profile.folded_alloc roots
             else Obs.Profile.folded roots);
        if critical then
          print_string
            (Obs.Critical_path.render ~alloc (Obs.Critical_path.longest roots));
        if not (folded || critical) then
          print_string
            (if alloc then Obs.Profile.alloc_table ~k:top roots
             else Obs.Profile.top_table ~k:top roots)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyse a recorded span trace: aggregate per-span self/total \
          times into a hotspot table (default), emit folded stacks for \
          flamegraph tooling ($(b,--folded)), or extract the critical \
          path ($(b,--critical-path)); $(b,--alloc) switches any of the \
          three from nanoseconds to allocated words. Warns when the \
          trace was truncated by the span-buffer cap.")
    Term.(
      const run $ trace_arg $ folded_flag $ critical_flag $ top_arg
      $ alloc_flag)

let bench_diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Committed BENCH_*.json baseline.")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Freshly produced BENCH_*.json artifact.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Override every directional metric's relative tolerance with \
             $(docv) percent (exact-match metrics are unaffected).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the comparison report as JSON.")
  in
  let run baseline current threshold json =
    let module Obs = Replica_obs in
    let parse what path =
      match Obs.Json.parse (read_file path) with
      | Ok v -> v
      | Error e ->
          Printf.eprintf "bench-diff: %s %s: %s\n" what path e;
          exit 2
    in
    let b = parse "baseline" baseline and c = parse "current" current in
    let rel_tol = Option.map (fun pct -> pct /. 100.) threshold in
    match Obs.Bench_history.diff ?rel_tol ~baseline:b ~current:c () with
    | Error e ->
        Printf.eprintf "bench-diff: %s\n" e;
        exit 2
    | Ok report ->
        if json then
          print_endline
            (Obs.Json.to_string ~pretty:true
               (Obs.Bench_history.to_json report))
        else print_string (Obs.Bench_history.render report);
        if report.Obs.Bench_history.hard_regressions > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_*.json artifacts of the same kind and schema \
          version with the noise-aware regression gate: deterministic \
          count metrics (merge products, optima, placements) hard-fail \
          with a nonzero exit on any worsening; wall-clock metrics only \
          warn unless they move beyond both a relative tolerance and an \
          absolute noise floor.")
    Term.(const run $ baseline_arg $ current_arg $ threshold_arg $ json_flag)

let bench_history_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("trend", `Trend) ])) None
      & info [] ~docv:"ACTION"
          ~doc:"$(b,trend): per-metric direction and slope over recent runs.")
  in
  let file_arg =
    Arg.(
      value
      & opt string "BENCH_history.jsonl"
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "JSON-lines history file the bench harness appends every \
             artifact to (default BENCH_history.jsonl).")
  in
  let kind_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Bench kind to trend: $(b,dp_power), $(b,engine), $(b,qos), \
             $(b,forest) or $(b,obs).")
  in
  let last_arg =
    Arg.(
      value & opt int 10
      & info [ "last" ] ~docv:"K"
          ~doc:"Window: the last K matching runs (default 10).")
  in
  let run action file kind last =
    let module Obs = Replica_obs in
    match action with
    | `Trend ->
        if not (Sys.file_exists file) then
          die "history file %s does not exist (run `make bench' first)" file;
        let lines =
          String.split_on_char '\n' (read_file file)
          |> List.filter (fun l -> String.trim l <> "")
        in
        let history =
          List.filter_map
            (fun l ->
              match Obs.Json.parse l with Ok j -> Some j | Error _ -> None)
            lines
        in
        (match Obs.Bench_history.trend ~kind ~last history with
        | Ok report -> print_string (Obs.Bench_history.render_trend report)
        | Error e -> die "bench-history: %s" e)
  in
  Cmd.v
    (Cmd.info "bench-history"
       ~doc:
         "Query the local bench history (BENCH_history.jsonl, appended by \
          the bench harness on every run): $(b,trend) fits a per-metric \
          slope over the last K runs of one bench kind and classifies each \
          metric as improving, worsening or flat against its regression \
          direction.")
    Term.(const run $ action_arg $ file_arg $ kind_arg $ last_arg)

let obs_validate_cmd =
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON file to validate.")
  in
  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Prometheus text-exposition file to validate.")
  in
  let run trace metrics =
    if trace = None && metrics = None then begin
      prerr_endline
        "obs-validate: nothing to validate (pass --trace and/or --metrics)";
      exit 2
    end;
    let ok = ref true in
    Option.iter
      (fun path ->
        match Replica_obs.Chrome_trace.validate (read_file path) with
        | Ok events ->
            Printf.printf "trace %s: valid chrome trace, %d events\n"
              (Filename.basename path) events
        | Error e ->
            ok := false;
            Printf.printf "trace %s: INVALID: %s\n" (Filename.basename path) e)
      trace;
    Option.iter
      (fun path ->
        (* The sample count varies with latency bin occupancy, so only
           the verdict is printed — cram tests pin this output. *)
        match Replica_obs.Prometheus.validate (read_file path) with
        | Ok _ ->
            Printf.printf "metrics %s: valid prometheus exposition\n"
              (Filename.basename path)
        | Error e ->
            ok := false;
            Printf.printf "metrics %s: INVALID: %s\n" (Filename.basename path) e)
      metrics;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "obs-validate"
       ~doc:
         "Validate observability artifacts without external tooling: a \
          Chrome trace-event JSON file ($(b,--trace)) and/or a Prometheus \
          text exposition ($(b,--metrics)). Exits nonzero on malformed \
          input; used by the cram suite and the CI smoke step.")
    Term.(const run $ trace_arg $ metrics_arg)
