(* Command-line interface to the replicaml library: generate trees, solve
   single instances with any algorithm, and run the paper's experiments. *)

open Replica_tree
open Replica_core
open Replica_experiments
open Replica_engine
open Cmdliner

(* --- shared arguments --- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let nodes_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of internal nodes.")

let shape_arg =
  let shape_conv =
    Arg.enum [ ("fat", Workload.Fat); ("high", Workload.High) ]
  in
  Arg.(
    value & opt shape_conv Workload.Fat
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:"Tree shape: $(b,fat) (6-9 children) or $(b,high) (2-4).")

let pre_arg default =
  Arg.(
    value & opt int default
    & info [ "pre" ] ~docv:"E" ~doc:"Number of pre-existing servers.")

let trees_arg default =
  Arg.(
    value & opt int default
    & info [ "trees" ] ~docv:"T" ~doc:"Number of random trees to average over.")

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_flag =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Enable debug logging of the DP internals.")

let quiet_progress =
  Arg.(
    value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "j"; "domains" ] ~docv:"D"
        ~doc:
          "Domains for parallel per-tree solves (default: the machine's \
           recommended count). Results are identical at any value.")

let csv_flag =
  Arg.(
    value & flag
    & info [ "csv" ] ~doc:"Emit CSV instead of an aligned table.")

let emit csv table = if csv then print_string (Table.to_csv table) else Table.print table

let progress quiet fmt =
  if quiet then Printf.ifprintf stderr fmt else Printf.eprintf fmt

let make_tree ~shape ~nodes ~pre ~seed ~max_requests ~pre_mode =
  let rng = Rng.create seed in
  let t =
    Generator.random rng (Workload.profile shape ~nodes ~max_requests)
  in
  Generator.add_pre_existing rng ~mode:pre_mode t pre

(* --- observability --- *)

let trace_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it as Chrome \
           trace-event JSON to $(docv), loadable in Perfetto \
           (ui.perfetto.dev) or chrome://tracing.")

let with_tracing trace f =
  let module Span = Replica_obs.Span in
  match trace with
  | None -> f ()
  | Some path ->
      Span.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Span.set_enabled false;
          Replica_obs.Chrome_trace.write_file ~dropped:(Span.dropped ()) path
            (Span.export ());
          if Span.dropped () > 0 then
            Printf.eprintf "trace: %d spans dropped (buffer cap reached)\n%!"
              (Span.dropped ());
          Span.reset ())
        f

let metrics_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "After the run, write a Prometheus text-exposition snapshot of \
           the counter, timer and histogram registries to $(docv).")

let write_metrics path =
  let oc = open_out path in
  output_string oc
    (Replica_obs.Prometheus.render
       ~counters:
         (Stats_counters.counters ()
         (* Dropped spans are surfaced as a counter so a scrape can tell
            a truncated trace from a quiet one. *)
         @ [ ("obs.spans_dropped", Replica_obs.Span.dropped ()) ])
       ~timers_seconds:(Stats_counters.timers ())
       ~histograms:(Replica_obs.Histogram.snapshots ())
       ());
  close_out oc

(* --- generate --- *)

let generate_cmd =
  let dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz rendering.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print structural statistics instead of the tree.")
  in
  let svg_arg =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Also write a standalone SVG rendering.")
  in
  let run shape nodes pre seed dot stats svg =
    let t = make_tree ~shape ~nodes ~pre ~seed ~max_requests:6 ~pre_mode:1 in
    if stats then begin
      Format.printf "%a" Metrics.pp (Metrics.compute t);
      Format.printf "nodes per depth:";
      List.iter
        (fun (d, c) -> Format.printf " %d:%d" d c)
        (Metrics.depth_histogram t);
      Format.printf "@.branching histogram:";
      List.iter
        (fun (b, c) -> Format.printf " %d:%d" b c)
        (Metrics.branching_histogram t);
      Format.printf "@."
    end
    else begin
      Format.printf "%a" Tree.pp t;
      Format.printf "serialized: %s@." (Tree.to_string t)
    end;
    Option.iter (fun path -> Dot.write_file path t) dot;
    Option.iter (fun path -> Svg.write_file path t) svg
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate and print a random distribution tree.")
    Term.(
      const run $ shape_arg $ nodes_arg 20 $ pre_arg 0 $ seed_arg $ dot_arg
      $ stats_flag $ svg_arg)

(* --- solve --- *)

type algo = Algo_greedy | Algo_dp_nopre | Algo_dp_withpre | Algo_dp_power
          | Algo_gr_power | Algo_heuristic

let solve_cmd =
  let algo_arg =
    let algo_conv =
      Arg.enum
        [
          ("greedy", Algo_greedy);
          ("dp-nopre", Algo_dp_nopre);
          ("dp-withpre", Algo_dp_withpre);
          ("dp-power", Algo_dp_power);
          ("gr-power", Algo_gr_power);
          ("heuristic", Algo_heuristic);
        ]
    in
    Arg.(
      value & opt algo_conv Algo_dp_withpre
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            "Solver: $(b,greedy), $(b,dp-nopre), $(b,dp-withpre), \
             $(b,dp-power), $(b,gr-power) or $(b,heuristic).")
  in
  let bound_arg =
    Arg.(
      value & opt float infinity
      & info [ "bound" ] ~docv:"COST" ~doc:"Cost bound for power solvers.")
  in
  let w_arg =
    Arg.(
      value & opt int 10 & info [ "w" ] ~docv:"W" ~doc:"Server capacity.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After solving, print the solver's counter registry (table \
             cells created, merge products attempted, capacity-rejected \
             pairs, dominance-pruned cells, peak table size). \
             Deterministic for a fixed instance; combine with \
             $(b,--verbose) for wall-clock phase timers on stderr.")
  in
  let prune_arg =
    Arg.(
      value & opt (some bool) None
      & info [ "prune" ] ~docv:"BOOL"
          ~doc:
            "Force dominance pruning on or off for $(b,dp-power) \
             (default: automatic — on exactly where it is provably \
             exact).")
  in
  let run shape nodes pre seed algo bound w verbose stats prune domains trace =
    setup_logs verbose;
    let t = make_tree ~shape ~nodes ~pre ~seed ~max_requests:5 ~pre_mode:2 in
    let modes = if w >= 2 then Modes.make [ w / 2; w ] else Modes.make [ w ] in
    let power = Power.paper_exp3 ~modes in
    let mcost = Cost.paper_cheap ~modes:(Modes.count modes) in
    let bcost = Cost.basic ~create:0.1 ~delete:0.01 () in
    let describe_solution sol = print_string (Report.cost_report t ~w bcost sol) in
    let describe_power (r : Dp_power.result) =
      print_string (Report.power_report t modes power mcost r.Dp_power.solution)
    in
    with_tracing trace (fun () ->
    match algo with
    | Algo_greedy -> (
        match Greedy.solve t ~w with
        | Some sol -> describe_solution sol
        | None -> Format.printf "no solution@.")
    | Algo_dp_nopre -> (
        match Dp_nopre.solve t ~w with
        | Some r -> describe_solution r.Dp_nopre.solution
        | None -> Format.printf "no solution@.")
    | Algo_dp_withpre -> (
        match Dp_withpre.solve t ~w ~cost:bcost with
        | Some r -> describe_solution r.Dp_withpre.solution
        | None -> Format.printf "no solution@.")
    | Algo_dp_power -> (
        match
          Dp_power.solve t ~modes ~power ~cost:mcost ~bound ?prune ?domains ()
        with
        | Some r -> describe_power r
        | None -> Format.printf "no solution within bound@.")
    | Algo_gr_power -> (
        match Greedy_power.solve t ~modes ~power ~cost:mcost ~bound () with
        | Some r -> describe_power r
        | None -> Format.printf "no solution within bound@.")
    | Algo_heuristic -> (
        match Heuristics.solve t ~modes ~power ~cost:mcost ~bound () with
        | Some r -> describe_power r
        | None -> Format.printf "no solution within bound@."));
    if stats then
      if verbose then prerr_string (Report.stats_report ~timers:true ())
      else print_string (Report.stats_report ())
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve one random instance with a chosen algorithm.")
    Term.(
      const run $ shape_arg $ nodes_arg 20 $ pre_arg 3 $ seed_arg $ algo_arg
      $ bound_arg $ w_arg $ verbose_flag $ stats_flag $ prune_arg
      $ domains_arg $ trace_file_arg)

(* --- experiments --- *)

let exp1_cmd =
  let run shape trees nodes seed quiet csv domains =
    let config =
      {
        (Workload.default_cost_config ~shape ()) with
        Workload.cc_trees = trees;
        cc_nodes = nodes;
        cc_seed = seed;
      }
    in
    let points =
      Exp1.run ?domains
        ~on_progress:(fun e -> progress quiet "exp1: E=%d done\n%!" e)
        config
    in
    emit csv (Exp1.to_table points)
  in
  Cmd.v
    (Cmd.info "exp1"
       ~doc:"Experiment 1 (Fig. 4/6): reuse of pre-existing servers vs E.")
    Term.(
      const run $ shape_arg $ trees_arg 200 $ nodes_arg 100 $ seed_arg
      $ quiet_progress $ csv_flag $ domains_arg)

let exp2_cmd =
  let steps_arg =
    Arg.(
      value & opt int 20
      & info [ "steps" ] ~docv:"K" ~doc:"Number of reconfiguration steps.")
  in
  let run shape trees nodes seed steps quiet csv domains =
    let config =
      {
        (Workload.default_cost_config ~shape ()) with
        Workload.cc_trees = trees;
        cc_nodes = nodes;
        cc_seed = seed;
      }
    in
    let result =
      Exp2.run ?domains ~steps
        ~on_progress:(fun i -> progress quiet "exp2: tree %d done\n%!" i)
        config
    in
    if not csv then print_endline "cumulative reuse per step:";
    emit csv (Exp2.steps_table result);
    if not csv then print_endline "histogram of reused(DP) - reused(GR):";
    emit csv (Exp2.histogram_table result)
  in
  Cmd.v
    (Cmd.info "exp2"
       ~doc:"Experiment 2 (Fig. 5/7): consecutive reconfiguration steps.")
    Term.(
      const run $ shape_arg $ trees_arg 200 $ nodes_arg 100 $ seed_arg
      $ steps_arg $ quiet_progress $ csv_flag $ domains_arg)

let exp3_cmd =
  let expensive_arg =
    Arg.(
      value & flag
      & info [ "expensive" ]
          ~doc:"Use the Fig. 11 cost function (create=delete=1, changed=0.1).")
  in
  let run shape trees nodes pre seed expensive quiet csv domains =
    let config =
      {
        (Workload.default_power_config ~shape ~pre ~expensive ()) with
        Workload.pc_trees = trees;
        pc_nodes = nodes;
        pc_seed = seed;
      }
    in
    let result =
      Exp3.run ?domains
        ~on_progress:(fun i -> progress quiet "exp3: tree %d done\n%!" i)
        config
    in
    emit csv (Exp3.to_table result);
    if not csv then
      Printf.printf
        "GR consumes on average %.1f%% more power than DP (peak bound: %.1f%%)\n"
        result.Exp3.gr_overconsumption_percent
        result.Exp3.gr_peak_overconsumption_percent
  in
  Cmd.v
    (Cmd.info "exp3"
       ~doc:
         "Experiment 3 (Fig. 8-11): power minimization under a cost bound.")
    Term.(
      const run $ shape_arg $ trees_arg 100 $ nodes_arg 50 $ pre_arg 5
      $ seed_arg $ expensive_arg $ quiet_progress $ csv_flag $ domains_arg)

let policies_cmd =
  let epochs_arg =
    Arg.(
      value & opt int 20
      & info [ "epochs" ] ~docv:"K" ~doc:"Number of demand epochs.")
  in
  let run shape trees nodes seed epochs csv domains trace =
    let config =
      {
        (Exp_policy.default_config ~shape ()) with
        Exp_policy.trees;
        nodes;
        seed;
        epochs;
      }
    in
    with_tracing trace (fun () ->
        emit csv (Exp_policy.to_table (Exp_policy.run ?domains config)))
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:
         "Ablation: lazy/systematic/periodic/drift update policies over \
          drifting demand (the §6 trade-off).")
    Term.(
      const run $ shape_arg $ trees_arg 20 $ nodes_arg 50 $ seed_arg
      $ epochs_arg $ csv_flag $ domains_arg $ trace_file_arg)

let heuristics_cmd =
  let fraction_arg =
    Arg.(
      value & opt float 0.35
      & info [ "bound-fraction" ] ~docv:"F"
          ~doc:"Cost bound as a fraction of each tree's frontier range.")
  in
  let no_time_flag =
    Arg.(
      value & flag
      & info [ "no-time" ]
          ~doc:
            "Print '-' instead of wall-clock timings, making the output \
             fully deterministic for a fixed seed (used by the cram \
             test).")
  in
  let setup_domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"D"
          ~doc:
            "Domains for the untimed setup solves (frontier sweep and \
             reference optima). The measured heuristic runs stay \
             sequential, so reported timings remain meaningful; results \
             are identical at any value.")
  in
  let run shape trees nodes pre seed fraction csv no_time domains =
    let config =
      {
        (Exp_heuristics.default_config ~shape ()) with
        Exp_heuristics.trees;
        nodes;
        pre;
        seed;
        bound_fraction = fraction;
      }
    in
    emit csv
      (Exp_heuristics.to_table ~no_time (Exp_heuristics.run ?domains config))
  in
  Cmd.v
    (Cmd.info "heuristics"
       ~doc:
         "Ablation: power heuristics (hill-climb, multi-start, annealing) \
          vs the DP optimum.")
    Term.(
      const run $ shape_arg $ trees_arg 20 $ nodes_arg 40 $ pre_arg 4
      $ seed_arg $ fraction_arg $ csv_flag $ no_time_flag
      $ setup_domains_arg)

(* --- online runs over synthetic traces --- *)

let horizon_arg =
  Arg.(
    value & opt float 24.
    & info [ "horizon" ] ~docv:"T" ~doc:"Trace length in time units.")

let window_arg =
  Arg.(
    value & opt float 1.
    & info [ "window" ] ~docv:"T" ~doc:"Epoch aggregation window.")

let policy_arg =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "invalid policy %S: expected lazy, systematic, periodic:K or \
               drift:F"
              s))
    in
    match String.lowercase_ascii s with
    | "lazy" -> Ok Update_policy.Lazy
    | "systematic" -> Ok Update_policy.Systematic
    | s -> (
        match String.index_opt s ':' with
        | None -> fail ()
        | Some i -> (
            let kind = String.sub s 0 i
            and v = String.sub s (i + 1) (String.length s - i - 1) in
            match kind with
            | "periodic" -> (
                match int_of_string_opt v with
                | Some k when k > 0 -> Ok (Update_policy.Periodic k)
                | _ -> fail ())
            | "drift" -> (
                match float_of_string_opt v with
                | Some f when f > 0. -> Ok (Update_policy.Drift f)
                | _ -> fail ())
            | _ -> fail ()))
  in
  let print ppf p =
    Format.pp_print_string ppf (Update_policy.policy_to_string p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Update_policy.Lazy
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Update policy: $(b,lazy), $(b,systematic), $(b,periodic:K) \
           (every K epochs) or $(b,drift:F) (relative demand drift \
           threshold F).")

let trace_cmd =
  let run shape nodes seed horizon window policy =
    let open Replica_trace in
    let rng = Rng.create seed in
    let tree =
      Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
    in
    let trace = Arrivals.diurnal rng tree ~horizon ~period:24. ~floor:0.25 in
    Printf.printf "trace: %d requests over %.1f time units\n"
      (Trace.length trace) (Trace.duration trace);
    let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
    let cfg =
      Engine.config ~policy ~w:Workload.capacity (Engine.Min_cost cost)
    in
    Timeline.print stdout (Engine.run_trace cfg tree trace ~window)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Synthesize a diurnal request trace, aggregate it into epochs and \
          serve it through the online engine under an update policy.")
    Term.(
      const run $ shape_arg $ nodes_arg 40 $ seed_arg $ horizon_arg
      $ window_arg $ policy_arg)

let engine_cmd =
  let workload_arg =
    let workload_conv =
      Arg.enum [ ("poisson", `Poisson); ("diurnal", `Diurnal); ("flash", `Flash) ]
    in
    Arg.(
      value & opt workload_conv `Diurnal
      & info [ "workload" ] ~docv:"KIND"
          ~doc:
            "Arrival process: $(b,poisson) (homogeneous), $(b,diurnal) \
             (day/night modulation) or $(b,flash) (Poisson plus a flash \
             crowd on the root's first subtree).")
  in
  let solver_arg =
    let solver_conv =
      Arg.enum [ ("full", Engine.Full); ("incremental", Engine.Incremental) ]
    in
    Arg.(
      value & opt solver_conv Engine.Incremental
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:
            "Re-solving strategy: $(b,full) rebuilds every DP table each \
             reconfiguration; $(b,incremental) reuses subtree tables \
             cached under demand fingerprints. Placements are identical; \
             only the work differs (visible in the per-epoch counter \
             deltas and solve times).")
  in
  let w_arg =
    Arg.(
      value & opt int Workload.capacity
      & info [ "w" ] ~docv:"W" ~doc:"Server capacity (maximal mode).")
  in
  let power_flag =
    Arg.(
      value & flag
      & info [ "power" ]
          ~doc:
            "Minimize power under a cost bound (the Eq. 3/4 objective, \
             modes W/2 and W) instead of reconfiguration cost alone.")
  in
  let bound_arg =
    Arg.(
      value & opt float infinity
      & info [ "bound" ] ~docv:"COST"
          ~doc:"Per-reconfiguration cost bound for $(b,--power).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full machine-readable timeline to $(docv).")
  in
  let no_time_flag =
    Arg.(
      value & flag
      & info [ "no-time" ]
          ~doc:
            "Omit wall-clock figures from the printed timeline, making \
             the output fully deterministic for a fixed seed (used by the \
             cram test). The JSON artifact always records solve times.")
  in
  let run shape nodes seed horizon window workload policy solver w power
      bound json no_time trace_file metrics =
    let open Replica_trace in
    let rng = Rng.create seed in
    let tree =
      Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
    in
    let trace =
      match workload with
      | `Poisson -> Arrivals.poisson rng tree ~horizon
      | `Diurnal -> Arrivals.diurnal rng tree ~horizon ~period:24. ~floor:0.25
      | `Flash ->
          let base = Arrivals.poisson rng tree ~horizon in
          let node =
            match Tree.children tree (Tree.root tree) with
            | c :: _ -> c
            | [] -> Tree.root tree
          in
          Arrivals.flash_crowd rng tree ~base ~at:(horizon /. 3.)
            ~duration:(horizon /. 4.) ~node ~multiplier:3.
    in
    let objective =
      if power then
        let modes =
          if w >= 2 then Modes.make [ w / 2; w ] else Modes.make [ w ]
        in
        Engine.Min_power
          {
            modes;
            power = Power.paper_exp3 ~modes;
            cost = Cost.paper_cheap ~modes:(Modes.count modes);
            bound;
          }
      else Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ())
    in
    let cfg = Engine.config ~policy ~solver ~w objective in
    Printf.printf "trace: %d requests over %.1f time units\n"
      (Trace.length trace) (Trace.duration trace);
    let timeline =
      with_tracing trace_file (fun () ->
          let tl = Engine.run_trace cfg tree trace ~window in
          (* Metrics are written inside the traced region: with_tracing's
             cleanup resets the span buffers (and the dropped-span count
             the exposition includes), so snapshotting after it would
             always report obs.spans_dropped 0. *)
          Option.iter write_metrics metrics;
          tl)
    in
    Timeline.print ~times:(not no_time) stdout timeline;
    Option.iter
      (fun path ->
        let config =
          [
            ( "workload",
              Json.String
                (match workload with
                | `Poisson -> "poisson"
                | `Diurnal -> "diurnal"
                | `Flash -> "flash") );
            ("policy", Json.String (Update_policy.policy_to_string policy));
            ( "solver",
              Json.String
                (match solver with
                | Engine.Full -> "full"
                | Engine.Incremental -> "incremental") );
            ( "objective",
              Json.String (if power then "min_power" else "min_cost") );
            ("w", Json.Int w);
            ("nodes", Json.Int nodes);
            ("seed", Json.Int seed);
            ("horizon", Json.Float horizon);
            ("window", Json.Float window);
          ]
        in
        let oc = open_out path in
        output_string oc (Timeline.to_json_string ~config timeline);
        output_char oc '\n';
        close_out oc)
      json
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Run the online reconfiguration engine over a synthetic trace: \
          aggregate arrivals into epochs, fire the update policy each \
          epoch, re-solve (fully or incrementally) and print the \
          timeline.")
    Term.(
      const run $ shape_arg $ nodes_arg 40 $ seed_arg $ horizon_arg
      $ window_arg $ workload_arg $ policy_arg $ solver_arg $ w_arg
      $ power_flag $ bound_arg $ json_arg $ no_time_flag $ trace_file_arg
      $ metrics_file_arg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let profile_cmd =
  let trace_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Chrome trace-event JSON file to analyse (as written by \
             $(b,solve --trace) or $(b,engine --trace)).")
  in
  let folded_flag =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "Emit Brendan Gregg collapsed-stack lines (stack frames joined \
             by ';', weighted by self time in nanoseconds) instead of the \
             hotspot table — pipe into inferno, speedscope or \
             flamegraph.pl to render a flamegraph.")
  in
  let critical_flag =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "Print the longest chain of nested spans through the trace's \
             longest root span, with each phase's contribution to the \
             total.")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K"
          ~doc:"Rows in the hotspot table (default 10).")
  in
  let run trace folded critical top =
    let module Obs = Replica_obs in
    match Obs.Trace_reader.of_file trace with
    | Error e ->
        Printf.eprintf "profile: %s: %s\n" trace e;
        exit 2
    | Ok t ->
        if t.Obs.Trace_reader.dropped > 0 then
          Printf.eprintf
            "profile: warning: %d spans were dropped while recording %s — \
             self times and counts undercount the truncated subtrees\n%!"
            t.Obs.Trace_reader.dropped (Filename.basename trace);
        let roots = t.Obs.Trace_reader.roots in
        if folded then print_string (Obs.Profile.folded roots);
        if critical then
          print_string (Obs.Critical_path.render (Obs.Critical_path.longest roots));
        if not (folded || critical) then
          print_string (Obs.Profile.top_table ~k:top roots)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyse a recorded span trace: aggregate per-span self/total \
          times into a hotspot table (default), emit folded stacks for \
          flamegraph tooling ($(b,--folded)), or extract the critical \
          path ($(b,--critical-path)). Warns when the trace was \
          truncated by the span-buffer cap.")
    Term.(const run $ trace_arg $ folded_flag $ critical_flag $ top_arg)

let bench_diff_cmd =
  let baseline_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Committed BENCH_*.json baseline.")
  in
  let current_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Freshly produced BENCH_*.json artifact.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Override every directional metric's relative tolerance with \
             $(docv) percent (exact-match metrics are unaffected).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the comparison report as JSON.")
  in
  let run baseline current threshold json =
    let module Obs = Replica_obs in
    let parse what path =
      match Obs.Json.parse (read_file path) with
      | Ok v -> v
      | Error e ->
          Printf.eprintf "bench-diff: %s %s: %s\n" what path e;
          exit 2
    in
    let b = parse "baseline" baseline and c = parse "current" current in
    let rel_tol = Option.map (fun pct -> pct /. 100.) threshold in
    match Obs.Bench_history.diff ?rel_tol ~baseline:b ~current:c () with
    | Error e ->
        Printf.eprintf "bench-diff: %s\n" e;
        exit 2
    | Ok report ->
        if json then
          print_endline
            (Obs.Json.to_string ~pretty:true
               (Obs.Bench_history.to_json report))
        else print_string (Obs.Bench_history.render report);
        if report.Obs.Bench_history.hard_regressions > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_*.json artifacts of the same kind and schema \
          version with the noise-aware regression gate: deterministic \
          count metrics (merge products, optima, placements) hard-fail \
          with a nonzero exit on any worsening; wall-clock metrics only \
          warn unless they move beyond both a relative tolerance and an \
          absolute noise floor.")
    Term.(const run $ baseline_arg $ current_arg $ threshold_arg $ json_flag)

let obs_validate_cmd =
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Chrome trace-event JSON file to validate.")
  in
  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Prometheus text-exposition file to validate.")
  in
  let run trace metrics =
    if trace = None && metrics = None then begin
      prerr_endline
        "obs-validate: nothing to validate (pass --trace and/or --metrics)";
      exit 2
    end;
    let ok = ref true in
    Option.iter
      (fun path ->
        match Replica_obs.Chrome_trace.validate (read_file path) with
        | Ok events ->
            Printf.printf "trace %s: valid chrome trace, %d events\n"
              (Filename.basename path) events
        | Error e ->
            ok := false;
            Printf.printf "trace %s: INVALID: %s\n" (Filename.basename path) e)
      trace;
    Option.iter
      (fun path ->
        (* The sample count varies with latency bin occupancy, so only
           the verdict is printed — cram tests pin this output. *)
        match Replica_obs.Prometheus.validate (read_file path) with
        | Ok _ ->
            Printf.printf "metrics %s: valid prometheus exposition\n"
              (Filename.basename path)
        | Error e ->
            ok := false;
            Printf.printf "metrics %s: INVALID: %s\n" (Filename.basename path) e)
      metrics;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "obs-validate"
       ~doc:
         "Validate observability artifacts without external tooling: a \
          Chrome trace-event JSON file ($(b,--trace)) and/or a Prometheus \
          text exposition ($(b,--metrics)). Exits nonzero on malformed \
          input; used by the cram suite and the CI smoke step.")
    Term.(const run $ trace_arg $ metrics_arg)

let scaling_cmd =
  let power_flag =
    Arg.(
      value & flag
      & info [ "power" ] ~doc:"Measure the power DP instead of the cost solvers.")
  in
  let run shape seed power =
    let measurements =
      if power then Scaling.measure_power_dp ~seed ~shape ()
      else Scaling.measure_cost_algorithms ~seed ~shape ()
    in
    Table.print (Scaling.to_table measurements)
  in
  Cmd.v
    (Cmd.info "scaling" ~doc:"Runtime scaling measurements (§5 claims).")
    Term.(const run $ shape_arg $ seed_arg $ power_flag)

let () =
  let doc =
    "Power-aware replica placement in tree networks (Benoit, Renaud-Goud, \
     Robert)"
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "replica_cli" ~doc)
          [
            generate_cmd;
            solve_cmd;
            exp1_cmd;
            exp2_cmd;
            exp3_cmd;
            policies_cmd;
            heuristics_cmd;
            trace_cmd;
            engine_cmd;
            profile_cmd;
            bench_diff_cmd;
            obs_validate_cmd;
            scaling_cmd;
          ]))
