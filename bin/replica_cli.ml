(* Command-line interface to the replicaml library: generate trees, solve
   single instances with any registered algorithm, and run the paper's
   experiments. Each subcommand lives in its own Cli_* module; this file
   only assembles the group. *)

open Cmdliner

let () =
  let doc =
    "Power-aware replica placement in tree networks (Benoit, Renaud-Goud, \
     Robert)"
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "replica_cli" ~doc)
          [
            Cli_generate.cmd;
            Cli_solve.cmd;
            Cli_experiments.exp1_cmd;
            Cli_experiments.exp2_cmd;
            Cli_experiments.exp3_cmd;
            Cli_experiments.policies_cmd;
            Cli_experiments.heuristics_cmd;
            Cli_engine.trace_cmd;
            Cli_engine.engine_cmd;
            Cli_forest.cmd;
            Cli_top.cmd;
            Cli_obs.profile_cmd;
            Cli_obs.bench_diff_cmd;
            Cli_obs.bench_history_cmd;
            Cli_obs.obs_validate_cmd;
            Cli_experiments.scaling_cmd;
          ]))
