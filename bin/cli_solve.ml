(* replica_cli solve: one random instance through any registered solver.

   The algorithm enum, the --list-algos table and the capability checks
   all come from the registry, so a solver registered in
   Replica_core.Registry is selectable here with no CLI change. *)

open Replica_core
open Cmdliner
open Cli_common

let cmd =
  let algo_arg =
    (* Plain string, resolved through the registry at run time: an
       unknown name exits 2 through the shared error path rather than
       cmdliner's usage error. Defaults to dp-withpre, or dp-qos when
       the instance carries --qos/--bw constraints. *)
    Arg.(
      value & opt (some string) None
      & info [ "algo" ] ~docv:"ALGO" ~doc:(algo_doc ()))
  in
  let list_algos_flag =
    Arg.(
      value & flag
      & info [ "list-algos" ]
          ~doc:
            "Print the registry's capability matrix (one row per \
             registered solver) and exit.")
  in
  let bound_arg =
    Arg.(
      value & opt float infinity
      & info [ "bound" ] ~docv:"COST" ~doc:"Cost bound for power solvers.")
  in
  let w_arg =
    Arg.(
      value & opt int 10 & info [ "w" ] ~docv:"W" ~doc:"Server capacity.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "After solving, print the solver's counter registry (table \
             cells created, merge products attempted, capacity-rejected \
             pairs, dominance-pruned cells, peak table size). \
             Deterministic for a fixed instance; combine with \
             $(b,--verbose) for wall-clock phase timers on stderr.")
  in
  let prune_arg =
    Arg.(
      value & opt (some bool) None
      & info [ "prune" ] ~docv:"BOOL"
          ~doc:
            "Force dominance pruning on or off for $(b,dp-power) \
             (default: automatic — on exactly where it is provably \
             exact).")
  in
  let run shape nodes pre seed qos bw algo bound w verbose stats prune domains
      trace list_algos =
    if list_algos then print_string (Registry.list_algos ())
    else begin
      setup_logs verbose;
      let algo =
        match algo with
        | Some a -> a
        | None -> if qos <> None || bw <> None then "dp-qos" else "dp-withpre"
      in
      let solver = resolve_algo algo in
      let cap = solver.Solver.capability in
      (* Shared capability-mismatch UX: a finite bound on a solver that
         cannot honour it is an error (the result would silently be a
         different problem's optimum); an ignored tuning flag only
         warns. *)
      if bound < infinity && not cap.Solver.handles_bound then
        die "%s does not support a finite cost bound" solver.Solver.name;
      List.iter
        (fun msg -> warn "%s" msg)
        (Solver.option_warnings solver (Solver.request ?prune ?domains ()));
      let t = make_tree ~shape ~nodes ~pre ~seed ~max_requests:5 ~pre_mode:2 in
      let t = constrain_tree ~qos ~bw ~seed t in
      let modes =
        if w >= 2 then Modes.make [ w / 2; w ] else Modes.make [ w ]
      in
      let power = Power.paper_exp3 ~modes in
      let mcost = Cost.paper_cheap ~modes:(Modes.count modes) in
      let bcost = Cost.basic ~create:0.1 ~delete:0.01 () in
      (* Power-only solvers get the Eq. 3/4 power instance; everything
         else (including dual-objective oracles) the Eq. 2 cost
         instance. *)
      let is_power = cap.Solver.handles_power && not cap.Solver.handles_cost in
      let problem =
        if is_power then
          Problem.min_power t ~modes ~power ~cost:mcost ~bound ()
        else Problem.min_cost t ~w ~cost:bcost
      in
      (match Solver.mismatch solver problem with
      | Some reason -> die "%s" reason
      | None -> ());
      with_tracing trace (fun () ->
          match
            Solver.run solver problem (Solver.request ?prune ?domains ())
          with
          | Error reason -> die "%s" reason
          | Ok None ->
              if is_power then Format.printf "no solution within bound@."
              else Format.printf "no solution@."
          | Ok (Some o) ->
              if is_power then
                print_string
                  (Report.power_report t modes power mcost o.Solver.solution)
              else
                print_string (Report.cost_report t ~w bcost o.Solver.solution));
      if stats then
        if verbose then prerr_string (Report.stats_report ~timers:true ())
        else print_string (Report.stats_report ())
    end
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve one random instance with a chosen algorithm.")
    Term.(
      const run $ shape_arg $ nodes_arg 20 $ pre_arg 3 $ seed_arg $ qos_arg
      $ bw_arg $ algo_arg $ bound_arg $ w_arg $ verbose_flag $ stats_flag
      $ prune_arg $ domains_arg $ trace_file_arg $ list_algos_flag)
