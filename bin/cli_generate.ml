(* replica_cli generate: random distribution trees, stats and renderings. *)

open Replica_tree
open Cmdliner
open Cli_common

let cmd =
  let dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz rendering.")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print structural statistics instead of the tree.")
  in
  let svg_arg =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Also write a standalone SVG rendering.")
  in
  let run shape nodes pre seed qos bw dot stats svg =
    let t = make_tree ~shape ~nodes ~pre ~seed ~max_requests:6 ~pre_mode:1 in
    let t = constrain_tree ~qos ~bw ~seed t in
    if stats then begin
      Format.printf "%a" Metrics.pp (Metrics.compute t);
      Format.printf "nodes per depth:";
      List.iter
        (fun (d, c) -> Format.printf " %d:%d" d c)
        (Metrics.depth_histogram t);
      Format.printf "@.branching histogram:";
      List.iter
        (fun (b, c) -> Format.printf " %d:%d" b c)
        (Metrics.branching_histogram t);
      Format.printf "@."
    end
    else begin
      Format.printf "%a" Tree.pp t;
      Format.printf "serialized: %s@." (Tree.to_string t)
    end;
    Option.iter (fun path -> Dot.write_file path t) dot;
    Option.iter (fun path -> Svg.write_file path t) svg
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate and print a random distribution tree.")
    Term.(
      const run $ shape_arg $ nodes_arg 20 $ pre_arg 0 $ seed_arg $ qos_arg
      $ bw_arg $ dot_arg $ stats_flag $ svg_arg)
