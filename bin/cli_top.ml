(* replica_cli top: a live, top-style terminal view of an engine or
   forest run, rendered from the same per-epoch Timeseries the --json
   artifacts embed — the view is a reader of the telemetry subsystem,
   not a second instrumentation path. *)

open Replica_tree
open Replica_core
open Replica_experiments
open Replica_engine
open Replica_forest
module Ts = Replica_obs.Timeseries
module Clock = Replica_obs.Clock
open Cmdliner
open Cli_common

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
      let lo = List.fold_left min infinity values
      and hi = List.fold_left max neg_infinity values in
      let span = hi -. lo in
      String.concat ""
        (List.map
           (fun v ->
             let i =
               if span <= 0. then 0
               else
                 min 7 (int_of_float (7.9 *. ((v -. lo) /. span)))
             in
             blocks.(i))
           values)

(* All series rows carrying [name], merged across label sets: one
   (epoch, value) per point, combining multiple label sets (forest
   shards) by max. *)
let series ts name ~combine =
  List.filter_map
    (fun (pt : Ts.point) ->
      match
        List.filter_map
          (fun (r : Ts.row) ->
            if r.Ts.r_name = name then Some r.Ts.r_value else None)
          pt.Ts.pt_rows
      with
      | [] -> None
      | v :: vs -> Some (pt.Ts.pt_epoch, List.fold_left combine v vs))
    (Ts.points ts)

let sum_series ts name =
  List.fold_left (fun a (_, v) -> a +. v) 0. (series ts name ~combine:( +. ))

let last_value ts name =
  match List.rev (series ts name ~combine:max) with
  | (_, v) :: _ -> Some v
  | [] -> None

(* Per-label-set last values for one name (the per-shard rows). *)
let last_by_label ts name =
  match List.rev (Ts.points ts) with
  | [] -> []
  | pt :: _ ->
      List.filter_map
        (fun (r : Ts.row) ->
          if r.Ts.r_name = name then Some (r.Ts.r_labels, r.Ts.r_value)
          else None)
        pt.Ts.pt_rows

let line fmt = Printf.printf (fmt ^^ "\n")

let latency_line ts label name =
  let s = series ts name ~combine:max in
  match s with
  | [] -> ()
  | _ ->
      let _, last = List.hd (List.rev s) in
      line "%-20s %8.3f  %s" label (last /. 1e6)
        (sparkline (List.map snd s))

(* Heap rows, fed by the Gc_stats collector through the same
   Timeseries as everything else: live major heap as a gauge, and the
   per-epoch minor-word delta as an allocation-rate sparkline (words
   are 8 bytes on 64-bit). *)
let heap_lines ts =
  (* quick_stat's heap size only refreshes at collection boundaries;
     before the first major collection the gauge reads 0 — suppress
     the row rather than print a misleading empty heap. *)
  (match last_value ts "gc.heap_words" with
  | Some v when v > 0. -> line "%-20s %8.2f" "heap (MB major)" (v *. 8. /. 1e6)
  | _ -> ());
  match series ts "gc.minor_words" ~combine:( +. ) with
  | [] -> ()
  | s ->
      let _, last = List.hd (List.rev s) in
      line "%-20s %8.2f  %s" "alloc rate (MB/ep)" (last *. 8. /. 1e6)
        (sparkline (List.map snd s))

let render ~mode ~solver ~policy ~served ~total ~elapsed_s ts =
  line "replica top - %s  solver=%s  policy=%s" mode solver policy;
  line "%-20s %d/%d" "epochs served" served total;
  if elapsed_s > 0. then
    line "%-20s %.1f" "epoch rate (1/s)" (float_of_int served /. elapsed_s);
  (match mode with
  | "engine" ->
      line "%-20s %.0f" "reconfigurations"
        (sum_series ts "engine.reconfigurations");
      latency_line ts "solve p50 (ms)" "engine.epoch_solve_ns.p50";
      latency_line ts "solve p99 (ms)" "engine.epoch_solve_ns.p99";
      (match last_value ts "engine.memo_hit_ratio_pct.p50" with
      | Some v -> line "%-20s %.0f" "memo hit pct (p50)" v
      | None -> ());
      (match last_value ts "engine.staleness" with
      | Some v -> line "%-20s %.0f" "staleness" v
      | None -> ())
  | _ ->
      line "%-20s %.0f" "reconfigured shards"
        (sum_series ts "engine.reconfigurations");
      latency_line ts "shard p50 (ms)" "forest.shard_solve_ns.p50";
      latency_line ts "shard p99 (ms)" "forest.shard_solve_ns.p99";
      line "%-20s %.0f" "repair pushdowns"
        (sum_series ts "forest.repair_pushdowns");
      (match last_value ts "forest.max_server_load" with
      | Some v -> line "%-20s %.0f" "max server load" v
      | None -> ());
      let shards = last_by_label ts "forest.shard_demand" in
      if shards <> [] then begin
        let hi = List.fold_left (fun a (_, v) -> max a v) 1. shards in
        line "%-20s %s" "shard demand"
          (String.concat "  "
             (List.map
                (fun (labels, v) ->
                  let shard =
                    Option.value ~default:"?" (List.assoc_opt "shard" labels)
                  in
                  let i = min 7 (int_of_float (7.9 *. (v /. hi))) in
                  Printf.sprintf "s%s %s %.0f" shard blocks.(i) v)
                (List.sort compare shards)))
      end);
  heap_lines ts;
  flush stdout

let clear_screen () = print_string "\027[H\027[2J"

let once_flag =
  Arg.(
    value & flag
    & info [ "once" ]
        ~doc:
          "Run the whole workload silently, render one final snapshot and \
           exit 0 — the mode the cram suite and CI smoke pin.")

let forest_flag =
  Arg.(
    value & flag
    & info [ "forest" ]
        ~doc:
          "Watch a forest run (sharded trees, parallel per-shard solves) \
           instead of a single engine.")

let cmd =
  let run shape nodes seed horizon window policy w once forest_mode trees
      objects coupling =
    let stride = 1 in
    Replica_obs.Gc_stats.register ();
    let ts = Ts.create ~stride () in
    let t_start = Clock.now_ns () in
    let elapsed () = float_of_int (Clock.now_ns () - t_start) /. 1e9 in
    if forest_mode then begin
      let profile = Workload.profile shape ~nodes ~max_requests:6 in
      let forest =
        try Forest.generate { Forest.trees; objects; servers = 2 * nodes; profile; seed }
        with Invalid_argument msg -> die "%s" msg
      in
      let ft =
        Forest_trace.generate forest ~horizon ~seed:(seed + 1)
          (Forest_trace.Diurnal { period = 24.; floor = 0.25 })
      in
      let ecfg =
        Engine.config ~policy ~w
          (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
      in
      let engine =
        try
          Forest_engine.create forest
            { Forest_engine.engine = ecfg; coupling; domains = 1 }
        with Invalid_argument msg -> die "%s" msg
      in
      let grid = Forest_trace.epochs ft forest ~window in
      let total = List.length grid in
      List.iter
        (fun views ->
          let e = Forest_engine.step engine views in
          Ts.sample ts ~epoch:e.Forest_timeline.epoch;
          if not once then begin
            clear_screen ();
            render ~mode:"forest"
              ~solver:(Forest_engine.solver_name engine)
              ~policy:(Update_policy.policy_to_string policy)
              ~served:e.Forest_timeline.epoch ~total ~elapsed_s:(elapsed ())
              ts
          end)
        grid;
      if once then
        render ~mode:"forest"
          ~solver:(Forest_engine.solver_name engine)
          ~policy:(Update_policy.policy_to_string policy) ~served:total
          ~total ~elapsed_s:(elapsed ()) ts
    end
    else begin
      let open Replica_trace in
      let rng = Rng.create seed in
      let tree =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
      in
      let trace =
        Arrivals.diurnal rng tree ~horizon ~period:24. ~floor:0.25
      in
      let cfg =
        Engine.config ~policy ~w
          (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
      in
      let engine =
        try Engine.create cfg with Invalid_argument msg -> die "%s" msg
      in
      let epochs = Epochs.epochs trace tree ~window in
      let total = List.length epochs in
      List.iter
        (fun t ->
          let e = Engine.step engine t in
          Ts.sample ts ~epoch:e.Timeline.epoch;
          if not once then begin
            clear_screen ();
            render ~mode:"engine" ~solver:(Engine.solver_name engine)
              ~policy:(Update_policy.policy_to_string policy)
              ~served:e.Timeline.epoch ~total ~elapsed_s:(elapsed ()) ts
          end)
        epochs;
      if once then
        render ~mode:"engine" ~solver:(Engine.solver_name engine)
          ~policy:(Update_policy.policy_to_string policy) ~served:total
          ~total ~elapsed_s:(elapsed ()) ts
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Watch an online run live: a top-style terminal view (epoch rate, \
          solve-latency sparklines, memo hit rate, per-shard load) rendered \
          each epoch from the same per-epoch time series the --json \
          artifacts embed. With $(b,--once), render a single snapshot \
          after the run — deterministic enough for CI.")
    Term.(
      const run $ shape_arg $ nodes_arg 40 $ seed_arg
      $ Arg.(
          value & opt float 8.
          & info [ "horizon" ] ~docv:"T" ~doc:"Trace length in time units.")
      $ Arg.(
          value & opt float 1.
          & info [ "window" ] ~docv:"T" ~doc:"Epoch aggregation window.")
      $ Cli_engine.policy_arg
      $ Arg.(
          value & opt int Workload.capacity
          & info [ "w" ] ~docv:"W" ~doc:"Server capacity.")
      $ once_flag $ forest_flag
      $ Arg.(
          value & opt int 4
          & info [ "trees" ] ~docv:"K"
              ~doc:"Topologies in the forest ($(b,--forest)).")
      $ Arg.(
          value & opt int 8
          & info [ "objects" ] ~docv:"O"
              ~doc:"Replicated objects ($(b,--forest)).")
      $ Arg.(
          value & flag
          & info [ "coupling" ]
              ~doc:"Cross-object capacity coupling ($(b,--forest))."))
