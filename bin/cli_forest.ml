(* replica_cli forest: lock-step online runs over a forest of sharded
   trees sharing one physical server pool, with optional cross-object
   capacity coupling. *)

open Replica_core
open Replica_experiments
open Replica_engine
open Replica_forest
module Json = Replica_obs.Json
open Cmdliner
open Cli_common

let trees_arg =
  Arg.(
    value & opt int 4
    & info [ "trees" ] ~docv:"K"
        ~doc:"Number of distinct tree topologies in the forest.")

let objects_arg =
  Arg.(
    value & opt int 8
    & info [ "objects" ] ~docv:"O"
        ~doc:
          "Number of replicated objects (shards), assigned round-robin to \
           the topologies.")

let servers_arg =
  Arg.(
    value & opt (some int) None
    & info [ "servers" ] ~docv:"S"
        ~doc:
          "Physical server pool size the tree nodes map onto (default: \
           twice the tree size; must be at least the tree size).")

let horizon_arg =
  Arg.(
    value & opt float 8.
    & info [ "horizon" ] ~docv:"T" ~doc:"Trace length in time units.")

let window_arg =
  Arg.(
    value & opt float 1.
    & info [ "window" ] ~docv:"T" ~doc:"Epoch aggregation window.")

let workload_arg =
  let workload_conv =
    Arg.enum [ ("poisson", `Poisson); ("diurnal", `Diurnal); ("flash", `Flash) ]
  in
  Arg.(
    value & opt workload_conv `Diurnal
    & info [ "workload" ] ~docv:"KIND"
        ~doc:
          "Arrival process per shard: $(b,poisson), $(b,diurnal) or \
           $(b,flash) (Poisson plus a flash crowd on each shard's first \
           root subtree).")

let solver_arg =
  let solver_conv =
    Arg.enum [ ("full", Engine.Full); ("incremental", Engine.Incremental) ]
  in
  Arg.(
    value & opt solver_conv Engine.Incremental
    & info [ "solver" ] ~docv:"SOLVER"
        ~doc:
          "Per-shard re-solving strategy: $(b,full) or $(b,incremental) \
           (each shard keeps its own memo). Placements are identical; only \
           the work differs.")

let algo_arg =
  Arg.(
    value & opt (some string) None
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "Registry solver every shard reconfigures with (default: \
           $(b,dp-withpre)). With $(b,--coupling), only solvers whose \
           capability row shows $(b,coupling) are accepted. See $(b,solve \
           --list-algos).")

let coupling_flag =
  Arg.(
    value & flag
    & info [ "coupling" ]
        ~doc:
          "Enforce cross-object capacity coupling on the shared physical \
           servers: after each epoch's solves, overloaded machines are \
           repaired by greedy push-down and the repaired placements carry \
           into the next epoch.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "domains" ] ~docv:"D"
        ~doc:
          "Domains for the parallel per-shard solves. Placements are \
           identical at any value.")

let w_arg =
  Arg.(
    value & opt int Workload.capacity
    & info [ "w" ] ~docv:"W" ~doc:"Server capacity.")

let json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full machine-readable forest timeline to $(docv).")

let no_time_flag =
  Arg.(
    value & flag
    & info [ "no-time" ]
        ~doc:
          "Omit wall-clock figures from the printed timeline, making the \
           output fully deterministic for a fixed seed (used by the cram \
           test). The JSON artifact always records times.")

let cmd =
  let run shape nodes seed trees objects servers horizon window workload
      policy solver algo coupling domains w json no_time trace_file metrics
      timeseries ts_stride openmetrics flight_record anomaly_k =
    if nodes <= 0 then die "--nodes must be positive";
    let servers = match servers with Some s -> s | None -> 2 * nodes in
    let profile = Workload.profile shape ~nodes ~max_requests:6 in
    let forest =
      try Forest.generate { Forest.trees; objects; servers; profile; seed }
      with Invalid_argument msg -> die "%s" msg
    in
    let ft =
      let wk =
        match workload with
        | `Poisson -> Forest_trace.Poisson
        | `Diurnal -> Forest_trace.Diurnal { period = 24.; floor = 0.25 }
        | `Flash -> Forest_trace.Flash { multiplier = 3. }
      in
      Forest_trace.generate forest ~horizon ~seed:(seed + 1) wk
    in
    let ecfg =
      Engine.config ~policy ~solver ?algo ~w
        (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
    in
    let cfg = { Forest_engine.engine = ecfg; coupling; domains } in
    (* Capability problems — unknown --algo, a coupled run on a solver
       without the coupling capability — surface as Invalid_argument
       from Forest_engine.create; shared exit-2 path. *)
    let engine =
      try Forest_engine.create forest cfg
      with Invalid_argument msg -> die "%s" msg
    in
    Printf.printf
      "forest: %d trees, %d shards, %d servers, %d requests over %.1f time \
       units\n"
      (Forest.num_trees forest) (Forest.num_shards forest)
      (Forest.num_servers forest)
      (Forest_trace.total_events ft)
      (Replica_trace.Trace.duration ft.Forest_trace.merged);
    let tele =
      make_telemetry ~json ~timeseries ~stride:ts_stride ~openmetrics
        ~flight_record ~anomaly_k ~trace_file ()
    in
    let timeline =
      try
        with_tracing ~counters:(telemetry_counters tele) trace_file (fun () ->
            let grid = Forest_trace.epochs ft forest ~window in
            let tl =
              Forest_timeline.of_entries
                (List.map
                   (fun views ->
                     let e = Forest_engine.step engine views in
                     telemetry_epoch tele ~epoch:e.Forest_timeline.epoch
                       ~latency_ns:
                         (int_of_float
                            (e.Forest_timeline.epoch_seconds *. 1e9));
                     e)
                   grid)
            in
            (* Inside the traced region: with_tracing's cleanup resets
               the span buffers the metrics exposition includes. *)
            Option.iter write_metrics metrics;
            tl)
      with Invalid_argument msg -> die "%s" msg
    in
    telemetry_finish tele ~timeseries ~openmetrics;
    Forest_timeline.print ~times:(not no_time) stdout timeline;
    Option.iter
      (fun path ->
        let config =
          [
            ("trees", Json.Int trees);
            ("objects", Json.Int objects);
            ("servers", Json.Int servers);
            ("nodes", Json.Int nodes);
            ("shape", Json.String (Workload.shape_to_string shape));
            ("seed", Json.Int seed);
            ("horizon", Json.Float horizon);
            ("window", Json.Float window);
            ( "workload",
              Json.String
                (match workload with
                | `Poisson -> "poisson"
                | `Diurnal -> "diurnal"
                | `Flash -> "flash") );
            ("policy", Json.String (Update_policy.policy_to_string policy));
            ( "solver",
              Json.String
                (match solver with
                | Engine.Full -> "full"
                | Engine.Incremental -> "incremental") );
            ("algo", Json.String (Forest_engine.solver_name engine));
            ("coupling", Json.Bool coupling);
            ("domains", Json.Int domains);
            ("w", Json.Int w);
          ]
        in
        let oc = open_out path in
        output_string oc
          (Forest_timeline.to_json_string ~config ?timeseries:tele.tele_ts
             timeline);
        output_char oc '\n';
        close_out oc)
      json
  in
  Cmd.v
    (Cmd.info "forest"
       ~doc:
         "Run the lock-step online engine over a forest of sharded trees \
          sharing one physical server pool: per-shard traces merged onto \
          one epoch grid, parallel per-shard re-solves, and (with \
          $(b,--coupling)) cross-object capacity repair on the shared \
          machines.")
    Term.(
      const run $ shape_arg $ nodes_arg 20 $ seed_arg $ trees_arg
      $ objects_arg $ servers_arg $ horizon_arg $ window_arg $ workload_arg
      $ Cli_engine.policy_arg $ solver_arg $ algo_arg $ coupling_flag
      $ domains_arg $ w_arg $ json_arg $ no_time_flag $ trace_file_arg
      $ metrics_file_arg $ timeseries_file_arg $ timeseries_stride_arg
      $ openmetrics_file_arg $ flight_record_arg $ anomaly_k_arg)
