(* replica_cli trace/engine: online runs over synthetic traces. *)

open Replica_tree
open Replica_core
open Replica_experiments
open Replica_engine
module Json = Replica_obs.Json
open Cmdliner
open Cli_common

let horizon_arg =
  Arg.(
    value & opt float 24.
    & info [ "horizon" ] ~docv:"T" ~doc:"Trace length in time units.")

let window_arg =
  Arg.(
    value & opt float 1.
    & info [ "window" ] ~docv:"T" ~doc:"Epoch aggregation window.")

let policy_arg =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf
              "invalid policy %S: expected lazy, systematic, periodic:K or \
               drift:F"
              s))
    in
    match String.lowercase_ascii s with
    | "lazy" -> Ok Update_policy.Lazy
    | "systematic" -> Ok Update_policy.Systematic
    | s -> (
        match String.index_opt s ':' with
        | None -> fail ()
        | Some i -> (
            let kind = String.sub s 0 i
            and v = String.sub s (i + 1) (String.length s - i - 1) in
            match kind with
            | "periodic" -> (
                match int_of_string_opt v with
                | Some k when k > 0 -> Ok (Update_policy.Periodic k)
                | _ -> fail ())
            | "drift" -> (
                match float_of_string_opt v with
                | Some f when f > 0. -> Ok (Update_policy.Drift f)
                | _ -> fail ())
            | _ -> fail ()))
  in
  let print ppf p =
    Format.pp_print_string ppf (Update_policy.policy_to_string p)
  in
  Arg.(
    value
    & opt (conv (parse, print)) Update_policy.Lazy
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Update policy: $(b,lazy), $(b,systematic), $(b,periodic:K) \
           (every K epochs) or $(b,drift:F) (relative demand drift \
           threshold F).")

let trace_cmd =
  let run shape nodes seed horizon window policy =
    let open Replica_trace in
    let rng = Rng.create seed in
    let tree =
      Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
    in
    let trace = Arrivals.diurnal rng tree ~horizon ~period:24. ~floor:0.25 in
    Printf.printf "trace: %d requests over %.1f time units\n"
      (Trace.length trace) (Trace.duration trace);
    let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
    let cfg =
      Engine.config ~policy ~w:Workload.capacity (Engine.Min_cost cost)
    in
    Timeline.print stdout (Engine.run_trace cfg tree trace ~window)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Synthesize a diurnal request trace, aggregate it into epochs and \
          serve it through the online engine under an update policy.")
    Term.(
      const run $ shape_arg $ nodes_arg 40 $ seed_arg $ horizon_arg
      $ window_arg $ policy_arg)

let engine_cmd =
  let workload_arg =
    let workload_conv =
      Arg.enum [ ("poisson", `Poisson); ("diurnal", `Diurnal); ("flash", `Flash) ]
    in
    Arg.(
      value & opt workload_conv `Diurnal
      & info [ "workload" ] ~docv:"KIND"
          ~doc:
            "Arrival process: $(b,poisson) (homogeneous), $(b,diurnal) \
             (day/night modulation) or $(b,flash) (Poisson plus a flash \
             crowd on the root's first subtree).")
  in
  let solver_arg =
    let solver_conv =
      Arg.enum [ ("full", Engine.Full); ("incremental", Engine.Incremental) ]
    in
    Arg.(
      value & opt solver_conv Engine.Incremental
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:
            "Re-solving strategy: $(b,full) rebuilds every DP table each \
             reconfiguration; $(b,incremental) reuses subtree tables \
             cached under demand fingerprints. Placements are identical; \
             only the work differs (visible in the per-epoch counter \
             deltas and solve times).")
  in
  let algo_arg =
    Arg.(
      value & opt (some string) None
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            "Registry solver to reconfigure with (default: the exact DP \
             for the objective — $(b,dp-withpre) for cost, $(b,dp-power) \
             for $(b,--power)). See $(b,solve --list-algos).")
  in
  let w_arg =
    Arg.(
      value & opt int Workload.capacity
      & info [ "w" ] ~docv:"W" ~doc:"Server capacity (maximal mode).")
  in
  let power_flag =
    Arg.(
      value & flag
      & info [ "power" ]
          ~doc:
            "Minimize power under a cost bound (the Eq. 3/4 objective, \
             modes W/2 and W) instead of reconfiguration cost alone.")
  in
  let bound_arg =
    Arg.(
      value & opt float infinity
      & info [ "bound" ] ~docv:"COST"
          ~doc:"Per-reconfiguration cost bound for $(b,--power).")
  in
  let json_arg =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the full machine-readable timeline to $(docv).")
  in
  let no_time_flag =
    Arg.(
      value & flag
      & info [ "no-time" ]
          ~doc:
            "Omit wall-clock figures from the printed timeline, making \
             the output fully deterministic for a fixed seed (used by the \
             cram test). The JSON artifact always records solve times.")
  in
  (* --qos Q[@E] / --bw S[@E]: constrain the epoch demand trees from
     epoch E on (default 1 = the whole run), so a run can tighten QoS or
     shrink bandwidth mid-trace. *)
  let at_arg name docv doc =
    let parse s =
      let value, epoch =
        match String.index_opt s '@' with
        | None -> (s, "1")
        | Some i ->
            (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      in
      match (float_of_string_opt value, int_of_string_opt epoch) with
      | Some v, Some e when e >= 1 -> Ok (v, e)
      | _ ->
          Error
            (`Msg
               (Printf.sprintf "invalid --%s %S: expected VALUE or VALUE@EPOCH"
                  name s))
    in
    let print ppf (v, e) = Format.fprintf ppf "%g@%d" v e in
    Arg.(
      value
      & opt (some (conv (parse, print))) None
      & info [ name ] ~docv ~doc)
  in
  let qos_at_arg =
    at_arg "qos" "Q[@E]"
      "Bound every client's distance to its server at Q hops, from epoch E \
       on (default: the whole run). Cost objective only; selects \
       $(b,dp-qos) unless $(b,--algo) says otherwise."
  in
  let bw_at_arg =
    at_arg "bw" "S[@E]"
      "Cap every link at S times its subtree demand, from epoch E on \
       (default: the whole run). Cost objective only; selects $(b,dp-qos) \
       unless $(b,--algo) says otherwise."
  in
  let run shape nodes seed horizon window workload policy solver algo w power
      bound qos bw json no_time trace_file metrics timeseries ts_stride
      openmetrics flight_record anomaly_k =
    let open Replica_trace in
    let rng = Rng.create seed in
    let tree =
      Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
    in
    let trace =
      match workload with
      | `Poisson -> Arrivals.poisson rng tree ~horizon
      | `Diurnal -> Arrivals.diurnal rng tree ~horizon ~period:24. ~floor:0.25
      | `Flash ->
          let base = Arrivals.poisson rng tree ~horizon in
          let node =
            match Tree.children tree (Tree.root tree) with
            | c :: _ -> c
            | [] -> Tree.root tree
          in
          Arrivals.flash_crowd rng tree ~base ~at:(horizon /. 3.)
            ~duration:(horizon /. 4.) ~node ~multiplier:3.
    in
    let objective =
      if power then
        let modes =
          if w >= 2 then Modes.make [ w / 2; w ] else Modes.make [ w ]
        in
        Engine.Min_power
          {
            modes;
            power = Power.paper_exp3 ~modes;
            cost = Cost.paper_cheap ~modes:(Modes.count modes);
            bound;
          }
      else Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ())
    in
    let qos =
      Option.map
        (fun (q, e) ->
          if Float.is_integer q && q >= 0. then (int_of_float q, e)
          else die "--qos must be a non-negative integer")
        qos
    in
    (match bw with
    | Some (s, _) when s <= 0. -> die "--bw must be positive"
    | _ -> ());
    (* A constrained run needs a constraint-capable solver; default to
       the constrained exact DP instead of dp-withpre. *)
    let algo =
      match (algo, qos, bw) with
      | None, None, None -> None
      | None, _, _ when not power -> Some "dp-qos"
      | _ -> algo
    in
    let cfg = Engine.config ~policy ~solver ?algo ~w objective in
    (* Capability problems (unknown --algo, wrong objective family, a
       finite bound the solver cannot honour) surface as
       Invalid_argument from Engine.create; route them through the
       shared exit-2 error path. *)
    let engine =
      try Engine.create cfg with Invalid_argument msg -> die "%s" msg
    in
    Printf.printf "trace: %d requests over %.1f time units\n"
      (Trace.length trace) (Trace.duration trace);
    let constrain i t =
      let t =
        match qos with
        | Some (q, e) when i >= e -> Tree.with_qos t (fun _ _ -> q)
        | _ -> t
      in
      match bw with
      | Some (s, e) when i >= e ->
          Generator.add_bandwidth (Rng.create seed) t ~slack:s
      | _ -> t
    in
    let tele =
      make_telemetry ~json ~timeseries ~stride:ts_stride ~openmetrics
        ~flight_record ~anomaly_k ~trace_file ()
    in
    let timeline =
      try
        with_tracing ~counters:(telemetry_counters tele) trace_file (fun () ->
          let epochs = Epochs.epochs trace tree ~window in
          let epochs = List.mapi (fun i t -> constrain (i + 1) t) epochs in
          let tl =
            Timeline.of_entries
              (List.map
                 (fun t ->
                   let e = Engine.step engine t in
                   telemetry_epoch tele ~epoch:e.Timeline.epoch
                     ~latency_ns:
                       (int_of_float (e.Timeline.solve_seconds *. 1e9));
                   e)
                 epochs)
          in
          (* Metrics are written inside the traced region: with_tracing's
             cleanup resets the span buffers (and the dropped-span count
             the exposition includes), so snapshotting after it would
             always report obs.spans_dropped 0. *)
          Option.iter write_metrics metrics;
          tl)
      with Invalid_argument msg ->
        (* An epoch's constraints outran the solver's capability
           (Engine.step's per-epoch guard): same exit-2 path as the
           creation-time checks. *)
        die "%s" msg
    in
    telemetry_finish tele ~timeseries ~openmetrics;
    Timeline.print ~times:(not no_time) stdout timeline;
    Option.iter
      (fun path ->
        let config =
          [
            ( "workload",
              Json.String
                (match workload with
                | `Poisson -> "poisson"
                | `Diurnal -> "diurnal"
                | `Flash -> "flash") );
            ("policy", Json.String (Update_policy.policy_to_string policy));
            ( "solver",
              Json.String
                (match solver with
                | Engine.Full -> "full"
                | Engine.Incremental -> "incremental") );
            ("algo", Json.String (Engine.solver_name engine));
            ( "objective",
              Json.String (if power then "min_power" else "min_cost") );
            ("w", Json.Int w);
            ("nodes", Json.Int nodes);
            ("seed", Json.Int seed);
            ("horizon", Json.Float horizon);
            ("window", Json.Float window);
          ]
        in
        let oc = open_out path in
        output_string oc
          (Timeline.to_json_string ~config ?timeseries:tele.tele_ts timeline);
        output_char oc '\n';
        close_out oc)
      json
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Run the online reconfiguration engine over a synthetic trace: \
          aggregate arrivals into epochs, fire the update policy each \
          epoch, re-solve (fully or incrementally, with any capable \
          registry solver) and print the timeline.")
    Term.(
      const run $ shape_arg $ nodes_arg 40 $ seed_arg $ horizon_arg
      $ window_arg $ workload_arg $ policy_arg $ solver_arg $ algo_arg
      $ w_arg $ power_flag $ bound_arg $ qos_at_arg $ bw_at_arg $ json_arg
      $ no_time_flag $ trace_file_arg $ metrics_file_arg
      $ timeseries_file_arg $ timeseries_stride_arg $ openmetrics_file_arg
      $ flight_record_arg $ anomaly_k_arg)
