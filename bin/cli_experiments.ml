(* replica_cli exp1/exp2/exp3/policies/heuristics/scaling: the paper's
   experiments and the repo's ablations. *)

open Replica_experiments
open Cmdliner
open Cli_common

let exp1_cmd =
  let run shape trees nodes seed quiet csv domains =
    let config =
      {
        (Workload.default_cost_config ~shape ()) with
        Workload.cc_trees = trees;
        cc_nodes = nodes;
        cc_seed = seed;
      }
    in
    let points =
      Exp1.run ?domains
        ~on_progress:(fun e -> progress quiet "exp1: E=%d done\n%!" e)
        config
    in
    emit csv (Exp1.to_table points)
  in
  Cmd.v
    (Cmd.info "exp1"
       ~doc:"Experiment 1 (Fig. 4/6): reuse of pre-existing servers vs E.")
    Term.(
      const run $ shape_arg $ trees_arg 200 $ nodes_arg 100 $ seed_arg
      $ quiet_progress $ csv_flag $ domains_arg)

let exp2_cmd =
  let steps_arg =
    Arg.(
      value & opt int 20
      & info [ "steps" ] ~docv:"K" ~doc:"Number of reconfiguration steps.")
  in
  let run shape trees nodes seed steps quiet csv domains =
    let config =
      {
        (Workload.default_cost_config ~shape ()) with
        Workload.cc_trees = trees;
        cc_nodes = nodes;
        cc_seed = seed;
      }
    in
    let result =
      Exp2.run ?domains ~steps
        ~on_progress:(fun i -> progress quiet "exp2: tree %d done\n%!" i)
        config
    in
    if not csv then print_endline "cumulative reuse per step:";
    emit csv (Exp2.steps_table result);
    if not csv then print_endline "histogram of reused(DP) - reused(GR):";
    emit csv (Exp2.histogram_table result)
  in
  Cmd.v
    (Cmd.info "exp2"
       ~doc:"Experiment 2 (Fig. 5/7): consecutive reconfiguration steps.")
    Term.(
      const run $ shape_arg $ trees_arg 200 $ nodes_arg 100 $ seed_arg
      $ steps_arg $ quiet_progress $ csv_flag $ domains_arg)

let exp3_cmd =
  let expensive_arg =
    Arg.(
      value & flag
      & info [ "expensive" ]
          ~doc:"Use the Fig. 11 cost function (create=delete=1, changed=0.1).")
  in
  let run shape trees nodes pre seed expensive quiet csv domains =
    let config =
      {
        (Workload.default_power_config ~shape ~pre ~expensive ()) with
        Workload.pc_trees = trees;
        pc_nodes = nodes;
        pc_seed = seed;
      }
    in
    let result =
      Exp3.run ?domains
        ~on_progress:(fun i -> progress quiet "exp3: tree %d done\n%!" i)
        config
    in
    emit csv (Exp3.to_table result);
    if not csv then
      Printf.printf
        "GR consumes on average %.1f%% more power than DP (peak bound: %.1f%%)\n"
        result.Exp3.gr_overconsumption_percent
        result.Exp3.gr_peak_overconsumption_percent
  in
  Cmd.v
    (Cmd.info "exp3"
       ~doc:
         "Experiment 3 (Fig. 8-11): power minimization under a cost bound.")
    Term.(
      const run $ shape_arg $ trees_arg 100 $ nodes_arg 50 $ pre_arg 5
      $ seed_arg $ expensive_arg $ quiet_progress $ csv_flag $ domains_arg)

let policies_cmd =
  let epochs_arg =
    Arg.(
      value & opt int 20
      & info [ "epochs" ] ~docv:"K" ~doc:"Number of demand epochs.")
  in
  let run shape trees nodes seed epochs csv domains trace =
    let config =
      {
        (Exp_policy.default_config ~shape ()) with
        Exp_policy.trees;
        nodes;
        seed;
        epochs;
      }
    in
    with_tracing trace (fun () ->
        emit csv (Exp_policy.to_table (Exp_policy.run ?domains config)))
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:
         "Ablation: lazy/systematic/periodic/drift update policies over \
          drifting demand (the §6 trade-off).")
    Term.(
      const run $ shape_arg $ trees_arg 20 $ nodes_arg 50 $ seed_arg
      $ epochs_arg $ csv_flag $ domains_arg $ trace_file_arg)

let heuristics_cmd =
  let fraction_arg =
    Arg.(
      value & opt float 0.35
      & info [ "bound-fraction" ] ~docv:"F"
          ~doc:"Cost bound as a fraction of each tree's frontier range.")
  in
  let no_time_flag =
    Arg.(
      value & flag
      & info [ "no-time" ]
          ~doc:
            "Print '-' instead of wall-clock timings, making the output \
             fully deterministic for a fixed seed (used by the cram \
             test).")
  in
  let setup_domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"D"
          ~doc:
            "Domains for the untimed setup solves (frontier sweep and \
             reference optima). The measured heuristic runs stay \
             sequential, so reported timings remain meaningful; results \
             are identical at any value.")
  in
  let run shape trees nodes pre seed fraction csv no_time domains =
    let config =
      {
        (Exp_heuristics.default_config ~shape ()) with
        Exp_heuristics.trees;
        nodes;
        pre;
        seed;
        bound_fraction = fraction;
      }
    in
    emit csv
      (Exp_heuristics.to_table ~no_time (Exp_heuristics.run ?domains config))
  in
  Cmd.v
    (Cmd.info "heuristics"
       ~doc:
         "Ablation: every registered power heuristic (gr-power, \
          hill-climb, multi-start, annealing) vs the DP optimum.")
    Term.(
      const run $ shape_arg $ trees_arg 20 $ nodes_arg 40 $ pre_arg 4
      $ seed_arg $ fraction_arg $ csv_flag $ no_time_flag
      $ setup_domains_arg)

let scaling_cmd =
  let power_flag =
    Arg.(
      value & flag
      & info [ "power" ] ~doc:"Measure the power DP instead of the cost solvers.")
  in
  let large_flag =
    Arg.(
      value & flag
      & info [ "large" ]
          ~doc:
            "With --power: the large-N preset (dp-power and gr-power on a \
             sparse workload) instead of the paper-scale mode ladder.")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "sizes" ] ~docv:"N,N,..."
          ~doc:"Tree sizes to sweep, overriding the preset's defaults.")
  in
  let run shape seed power large sizes =
    let measurements =
      if power && large then Scaling.measure_power_dp_large ?sizes ~seed ~shape ()
      else if power then Scaling.measure_power_dp ?sizes ~seed ~shape ()
      else Scaling.measure_cost_algorithms ?sizes ~seed ~shape ()
    in
    Table.print (Scaling.to_table measurements)
  in
  Cmd.v
    (Cmd.info "scaling" ~doc:"Runtime scaling measurements (§5 claims).")
    Term.(const run $ shape_arg $ seed_arg $ power_flag $ large_flag $ sizes_arg)
