(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§5) as a series table, then times every algorithm with Bechamel,
   reproducing the §5 runtime observations (GR orders of magnitude faster
   than DP; DP still practical at paper scale).

   Usage: bench/main.exe [section...]
   Sections: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 dp-stats engine
   forest qos obs scaling timing (default: all). The dp-stats section additionally
   writes a machine-readable BENCH_dp_power.json with the solver's
   counter and timer registry for the pruned and unpruned merge; the
   engine section writes BENCH_engine.json comparing full vs incremental
   re-solving; the forest section writes BENCH_forest.json with the
   forest engine's merged-stream conservation, shard-parallel
   bit-identity and speedup, and coupling-repair products; the qos section writes BENCH_qos.json with feasible
   fractions, server inflation and solve times for the constrained DP
   under the tight/loose presets; the obs section writes BENCH_obs.json
   quantifying the span-tracing overhead (on, via interleaved paired
   runs with a noise floor; and estimated when off) against its 2%
   budget.
   All artifacts share the versioned Replica_obs.Json.envelope, and
   every artifact is also appended to the local BENCH_history.jsonl
   (gitignored) through Replica_obs.Bench_history so any two past runs
   can be compared with `replica_cli bench-diff`. *)

open Replica_experiments

let section_enabled =
  let requested =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun s -> not (String.length s > 0 && s.[0] = '-'))
  in
  fun name -> requested = [] || List.mem name requested

let banner name description =
  Printf.printf "\n=== %s: %s ===\n%!" name description

(* --- Experiment 1 (Figures 4 and 6) --- *)

let run_exp1 name shape description =
  if section_enabled name then begin
    banner name description;
    let config = Workload.default_cost_config ~shape () in
    Table.print (Exp1.to_table (Exp1.run config));
    let g = Exp1.gap_summary config in
    Printf.printf
      "DP reuses on average %.2f more servers than GR (max gap %d over %d \
       tree/E pairs)\n"
      g.Exp1.avg_gap g.Exp1.max_gap g.Exp1.pairs
  end

(* --- Experiment 2 (Figures 5 and 7) --- *)

let run_exp2 name shape description =
  if section_enabled name then begin
    banner name description;
    let config = Workload.default_cost_config ~shape () in
    let result = Exp2.run config in
    print_endline "left plot - cumulative reuse per step:";
    Table.print (Exp2.steps_table result);
    print_endline "right plot - histogram of reused(DP) - reused(GR):";
    Table.print (Exp2.histogram_table result)
  end

(* --- Experiment 3 (Figures 8-11) --- *)

let run_exp3 name ~shape ~pre ~expensive description =
  if section_enabled name then begin
    banner name description;
    let config = Workload.default_power_config ~shape ~pre ~expensive () in
    let result = Exp3.run config in
    Table.print (Exp3.to_table result);
    Printf.printf "GR over DP power: avg %.1f%%, peak-bound %.1f%%\n"
      result.Exp3.gr_overconsumption_percent
      result.Exp3.gr_peak_overconsumption_percent
  end

(* --- Ablations (not paper figures; design choices DESIGN.md calls out) --- *)

let run_ablation_policies () =
  if section_enabled "ablation-policies" then begin
    banner "ablation-policies"
      "update-policy trade-off (§6): reconfiguration bill vs staleness";
    let rows = Exp_policy.run (Exp_policy.default_config ()) in
    Table.print (Exp_policy.to_table rows)
  end

let run_ablation_heuristics () =
  if section_enabled "ablation-heuristics" then begin
    banner "ablation-heuristics"
      "power heuristics (§6) vs the DP optimum: quality/time trade-off";
    let rows = Exp_heuristics.run (Exp_heuristics.default_config ()) in
    Table.print (Exp_heuristics.to_table rows)
  end

let run_ablation_update () =
  if section_enabled "ablation-update" then begin
    banner "ablation-update"
      "cost-update heuristic (§6) vs the exact O(N^5) DP: quality/time";
    let rows = Exp_update.run (Exp_update.default_config ()) in
    Table.print (Exp_update.to_table rows)
  end

let run_ablation_shapes () =
  if section_enabled "ablation-shapes" then begin
    banner "ablation-shapes"
      "tree-shape sensitivity: reuse quality and DP hardness per shape";
    let rows = Exp_shapes.run (Exp_shapes.default_config ()) in
    Table.print (Exp_shapes.to_table rows)
  end

let run_ablation_drift () =
  if section_enabled "ablation-drift" then begin
    banner "ablation-drift"
      "demand volatility vs lazy-update savings (the §6 interval question)";
    let rows =
      Exp_policy.run_drift_sweep
        (Exp_policy.default_config ())
        [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
    in
    Table.print (Exp_policy.drift_table rows)
  end

let run_ablation_window () =
  if section_enabled "ablation-window" then begin
    banner "ablation-window"
      "reconfiguration interval on trace-driven demand (§6, trace side)";
    let rows =
      Exp_trace.run (Exp_trace.default_config ()) [ 0.5; 1.; 2.; 4.; 8.; 16. ]
    in
    Table.print (Exp_trace.to_table rows)
  end

let run_ablation_modes () =
  if section_enabled "ablation-modes" then begin
    banner "ablation-modes"
      "Experiment 3 with M = 3 modes {4, 7, 10} (paper: M typically 2 or 3)";
    let open Replica_core in
    let modes = Modes.make [ 4; 7; 10 ] in
    let config =
      {
        (Workload.default_power_config ()) with
        Workload.pc_modes = modes;
        pc_power = Power.paper_exp3 ~modes;
        pc_cost = Cost.paper_cheap ~modes:3;
      }
    in
    let result = Exp3.run config in
    Table.print (Exp3.to_table result);
    Printf.printf "GR over DP power: avg %.1f%%, peak-bound %.1f%%\n"
      result.Exp3.gr_overconsumption_percent
      result.Exp3.gr_peak_overconsumption_percent
  end

(* --- Instrumented pruned-vs-unpruned MinPower DP (BENCH_dp_power.json) --- *)

let run_dp_stats () =
  if section_enabled "dp-stats" then begin
    banner "dp-stats"
      "instrumented MinPower DP: dominance pruning on a 3-mode, 60-node tree";
    let open Replica_tree in
    let open Replica_core in
    let nodes = 60 and pre = 5 and seed = 42 in
    let modes = Modes.make [ 4; 7; 10 ] in
    let power = Power.paper_exp3 ~modes in
    let cost = Cost.paper_cheap ~modes:3 in
    let rng = Rng.create seed in
    let tree =
      Generator.add_pre_existing rng ~mode:2
        (Generator.random rng
           (Workload.profile Workload.Fat ~nodes ~max_requests:5))
        pre
    in
    (* bound = infinity makes pruning exact for any cost model (see
       Dp_power's dominance proof), so the two runs must agree. The
       solve goes through the registry entry — the same dispatch the
       engine and CLI use — so this section also gates registry-seam
       overhead: the counter totals below are bit-compared against the
       committed baseline by `replica_cli bench-diff`. *)
    let entry =
      match Registry.find "dp-power" with
      | Some s -> s
      | None -> failwith "dp-stats: dp-power not registered"
    in
    let problem = Problem.min_power tree ~modes ~power ~cost () in
    let run ~prune =
      Stats_counters.reset ();
      let bytes0 = Gc.allocated_bytes () in
      let result =
        match Solver.run entry problem (Solver.request ~prune ()) with
        | Ok r -> r
        | Error e -> failwith ("dp-stats: " ^ e)
      in
      let alloc_bytes = Gc.allocated_bytes () -. bytes0 in
      (result, Stats_counters.counters (), Stats_counters.timers (), alloc_bytes)
    in
    let find name l = try List.assoc name l with Not_found -> 0 in
    let findf name l = try List.assoc name l with Not_found -> 0. in
    let unpruned, uc, ut, ua = run ~prune:false in
    let pruned, pc, pt, pa = run ~prune:true in
    (match (unpruned, pruned) with
    | Some (u : Solver.outcome), Some (p : Solver.outcome) ->
        if u.Solver.power <> p.Solver.power || u.Solver.cost <> p.Solver.cost
        then failwith "dp-stats: pruned and unpruned runs disagree"
    | _ -> failwith "dp-stats: expected a solution");
    let u_products = find "dp_power.merge_products" uc in
    let p_products = find "dp_power.merge_products" pc in
    if p_products >= u_products then
      failwith "dp-stats: pruning did not reduce merge products";
    Printf.printf
      "merge products attempted: %d unpruned vs %d pruned (%.1fx fewer)\n"
      u_products p_products
      (float_of_int u_products /. float_of_int p_products);
    Printf.printf "peak table size: %d unpruned vs %d pruned\n"
      (find "dp_power.peak_table_size" uc)
      (find "dp_power.peak_table_size" pc);
    Printf.printf "table phase: %.4fs unpruned vs %.4fs pruned\n"
      (findf "dp_power.tables" ut) (findf "dp_power.tables" pt);
    Printf.printf "identical (power, cost) across both runs: verified\n";
    Printf.printf "allocated per solve: %.1f MB unpruned vs %.1f MB pruned\n"
      (ua /. 1e6) (pa /. 1e6);
    (* Hard gate: rebuilding the packed table pyramid with warm scratch
       buffers must allocate exactly zero minor words — any nonzero
       delta means a box, closure or spine crept back into the merge
       kernels. Probed after the counter snapshots above so the extra
       builds do not pollute the JSON totals. *)
    let merge_words = Dp_power.merge_minor_words tree ~modes ~prune:true in
    Printf.printf "packed merge minor words (warm rebuild): %.0f\n" merge_words;
    if merge_words <> 0. then
      failwith
        (Printf.sprintf "dp-stats: packed merge allocated %.0f minor words"
           merge_words);
    let module J = Replica_obs.Json in
    let json_side ~prune (result, counters, timers, alloc_bytes) =
      let o : Solver.outcome = Option.get result in
      let ours (k, _) = String.starts_with ~prefix:"dp_power." k in
      J.Obj
        ([
           ("prune", J.Bool prune);
           ("power", J.Float (Option.value o.Solver.power ~default:nan));
           ("cost", J.Float (Option.value o.Solver.cost ~default:nan));
           ("servers", J.Int o.Solver.servers);
           ("allocated_bytes_per_solve", J.Float alloc_bytes);
         ]
        @ List.map (fun (k, v) -> (k, J.Int v)) (List.filter ours counters)
        @ List.map
            (fun (k, s) -> (k ^ ".seconds", J.Float s))
            (List.filter ours timers))
    in
    let json =
      J.envelope ~kind:"dp_power"
        ~config:
          [
            ("nodes", J.Int nodes);
            ("pre", J.Int pre);
            ("seed", J.Int seed);
            ("modes", J.List [ J.Int 4; J.Int 7; J.Int 10 ]);
            ("domains", J.Int (Par.default_domains ()));
          ]
        [
          ("unpruned", json_side ~prune:false (unpruned, uc, ut, ua));
          ("pruned", json_side ~prune:true (pruned, pc, pt, pa));
          ( "merge_products_ratio",
            J.Float (float_of_int u_products /. float_of_int p_products) );
          ("merge_minor_words", J.Float merge_words);
          ( "peak_major_words",
            J.Int (Replica_obs.Gc_stats.peak_major_words ()) );
        ]
    in
    let oc = open_out "BENCH_dp_power.json" in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Replica_obs.Bench_history.append ~path:"BENCH_history.jsonl" json;
    Printf.printf "wrote BENCH_dp_power.json\n"
  end

(* --- Online engine: full vs incremental re-solving (BENCH_engine.json) --- *)

let run_engine () =
  if section_enabled "engine" then begin
    banner "engine"
      "online engine at N=100: incremental vs full re-solving under a \
       single-subtree demand shift";
    let open Replica_tree in
    let open Replica_core in
    let module Engine = Replica_engine.Engine in
    let module Timeline = Replica_engine.Timeline in
    let module J = Replica_obs.Json in
    let nodes = 100 and seed = 7 and epochs = 32 and warm_from = 3 in
    let w = Workload.capacity in
    let rng = Rng.create seed in
    let base =
      Generator.random rng
        (Workload.profile Workload.Fat ~nodes ~max_requests:5)
    in
    (* Deterministic epoch stream: all demand movement is confined to one
       subtree under the root, whose clients gain a request on every
       other epoch. Everything outside that subtree is untouched, so an
       incremental re-solve only rebuilds the shifted root-to-leaf
       paths; the full re-solve rebuilds every table every epoch. *)
    let shifted_root =
      match Tree.children base (Tree.root base) with
      | c :: _ -> c
      | [] -> Tree.root base
    in
    let in_subtree = Array.make (Tree.size base) false in
    let rec mark j =
      in_subtree.(j) <- true;
      List.iter mark (Tree.children base j)
    in
    mark shifted_root;
    let boosted =
      Tree.with_clients base (fun j ->
          let cs = Tree.clients base j in
          if in_subtree.(j) then
            match cs with
            | c :: rest when List.fold_left ( + ) 0 cs < w -> (c + 1) :: rest
            | _ -> cs
          else cs)
    in
    let demands =
      List.init epochs (fun i -> if i mod 2 = 1 then boosted else base)
    in
    let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
    let run solver =
      Stats_counters.reset ();
      let cfg =
        Engine.config ~policy:Update_policy.Systematic ~solver ~w
          (Engine.Min_cost cost)
      in
      let bytes0 = Gc.allocated_bytes () in
      let tl = Engine.run cfg demands in
      (tl, (Gc.allocated_bytes () -. bytes0) /. float_of_int epochs)
    in
    let full, f_alloc = run Engine.Full in
    let incremental, i_alloc = run Engine.Incremental in
    List.iter2
      (fun (a : Timeline.entry) (b : Timeline.entry) ->
        if not (Solution.equal a.Timeline.servers b.Timeline.servers) then
          failwith "engine: incremental placement diverged from full re-solve")
      full.Timeline.entries incremental.Timeline.entries;
    if full.Timeline.invalid_epochs > 0 then
      failwith "engine: expected every epoch to be serveable";
    (* Warm epochs only: the first solve is cold for both solvers and the
       second is the first with a pre-existing set; from [warm_from] on
       the incremental memo has seen both demand phases. *)
    let warm (t : Timeline.t) =
      List.filter
        (fun (e : Timeline.entry) -> e.Timeline.epoch >= warm_from)
        t.Timeline.entries
    in
    let warm_seconds t =
      let es = warm t in
      List.fold_left (fun a (e : Timeline.entry) -> a +. e.Timeline.solve_seconds) 0. es
      /. float_of_int (List.length es)
    in
    let warm_products t =
      List.fold_left
        (fun a (e : Timeline.entry) ->
          a
          + (try List.assoc "dp_withpre.merge_products" e.Timeline.counters
             with Not_found -> 0))
        0 (warm t)
    in
    let f_sec = warm_seconds full and i_sec = warm_seconds incremental in
    let f_prod = warm_products full and i_prod = warm_products incremental in
    let speedup = f_sec /. i_sec in
    let products_ratio = float_of_int f_prod /. float_of_int i_prod in
    Printf.printf
      "identical placements across all %d epochs: verified\n\
       warm epoch solve: %.6fs full vs %.6fs incremental (%.1fx speedup)\n\
       warm merge products: %d full vs %d incremental (%.1fx fewer)\n"
      epochs f_sec i_sec speedup f_prod i_prod products_ratio;
    if speedup < 2. then
      failwith "engine: expected >=2x warm epoch-solve speedup";
    Printf.printf
      "allocated per epoch: %.2f MB full vs %.2f MB incremental\n"
      (f_alloc /. 1e6) (i_alloc /. 1e6);
    let side name (t : Timeline.t) sec prod alloc =
      ( name,
        J.Obj
          [
            ("warm_avg_solve_seconds", J.Float sec);
            ("warm_merge_products", J.Int prod);
            ("total_solve_seconds", J.Float t.Timeline.solve_seconds);
            ("reconfigurations", J.Int t.Timeline.reconfigurations);
            ("total_cost", J.Float t.Timeline.total_cost);
            ("allocated_bytes_per_epoch", J.Float alloc);
          ] )
    in
    let json =
      J.envelope ~kind:"engine"
        ~config:
          [
            ("nodes", J.Int nodes);
            ("seed", J.Int seed);
            ("epochs", J.Int epochs);
            ("warm_from_epoch", J.Int warm_from);
            ("w", J.Int w);
            ("policy", J.String "systematic");
            ("objective", J.String "min_cost");
            ("shifted_subtree_root", J.Int shifted_root);
          ]
        [
          ("full", side "full" full f_sec f_prod f_alloc |> snd);
          ( "incremental",
            side "incremental" incremental i_sec i_prod i_alloc |> snd );
          ("warm_epoch_speedup", J.Float speedup);
          ("warm_merge_products_ratio", J.Float products_ratio);
          ("placements_identical", J.Bool true);
          ( "peak_major_words",
            J.Int (Replica_obs.Gc_stats.peak_major_words ()) );
        ]
    in
    let oc = open_out "BENCH_engine.json" in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Replica_obs.Bench_history.append ~path:"BENCH_history.jsonl" json;
    Printf.printf "wrote BENCH_engine.json\n"
  end

(* --- Forest engine: 1000 shards x 100 nodes, shard-parallel solves and
   cross-object coupling repair (BENCH_forest.json) --- *)

let run_forest () =
  if section_enabled "forest" then begin
    banner "forest"
      "forest engine at 1000 trees x 100 nodes: merged epoch stream, \
       shard-parallel solves, coupling repair on a small sub-forest";
    let open Replica_core in
    let module Engine = Replica_engine.Engine in
    let module F = Replica_forest.Forest in
    let module FT = Replica_forest.Forest_trace in
    let module FE = Replica_forest.Forest_engine in
    let module FTl = Replica_forest.Forest_timeline in
    let module J = Replica_obs.Json in
    let trees = 1000 and objects = 1000 and nodes = 100 and seed = 11 in
    let servers = 2 * nodes and horizon = 6. and window = 1. in
    let w = Workload.capacity in
    let profile = Workload.profile Workload.Fat ~nodes ~max_requests:5 in
    let forest = F.generate { F.trees; objects; servers; profile; seed } in
    let ft = FT.generate forest ~horizon ~seed:(seed + 1) FT.Poisson in
    if not (FT.conservation ft) then
      failwith "forest: merged trace dropped events";
    let grid = FT.epochs ft forest ~window in
    let epochs = List.length grid in
    let ecfg =
      Engine.config ~policy:Update_policy.Systematic ~w
        (Engine.Min_cost (Cost.basic ~create:0.5 ~delete:0.25 ()))
    in
    (* Decoupled runs at different domain counts must be bit-identical;
       the wall-clock difference is the shard-parallel speedup. *)
    let run_grid domains =
      Stats_counters.reset ();
      let engine =
        FE.create forest { FE.engine = ecfg; coupling = false; domains }
      in
      let bytes0 = Gc.allocated_bytes () in
      let tl = FTl.of_entries (List.map (FE.step engine) grid) in
      (* Gc.allocated_bytes meters the calling domain only, so the
         per-epoch figure is recorded from the sequential run. *)
      let alloc = (Gc.allocated_bytes () -. bytes0) /. float_of_int epochs in
      (tl, FE.placements engine, alloc)
    in
    let seq_tl, seq_placements, seq_alloc = run_grid 1 in
    let par_domains = 4 in
    let par_tl, par_placements, _ = run_grid par_domains in
    let identical =
      Array.for_all2 Solution.equal seq_placements par_placements
      && List.for_all2
           (fun (a : FTl.entry) (b : FTl.entry) ->
             a.FTl.servers = b.FTl.servers
             && a.FTl.reconfigured_shards = b.FTl.reconfigured_shards
             && a.FTl.step_cost = b.FTl.step_cost)
           seq_tl.FTl.entries par_tl.FTl.entries
    in
    if not identical then
      failwith "forest: domain count changed the placements";
    let merge_products (tl : FTl.t) =
      List.fold_left
        (fun acc (e : FTl.entry) ->
          acc
          + (try List.assoc "dp_withpre.merge_products" e.FTl.counters
             with Not_found -> 0))
        0 tl.FTl.entries
    in
    let products = merge_products seq_tl in
    if merge_products par_tl <> products then
      failwith "forest: domain count changed the solve work";
    let eps (tl : FTl.t) = float_of_int epochs /. tl.FTl.epoch_seconds in
    let seq_eps = eps seq_tl and par_eps = eps par_tl in
    let speedup = seq_tl.FTl.epoch_seconds /. par_tl.FTl.epoch_seconds in
    Printf.printf
      "%d shards x %d nodes, %d epochs, %d merged events\n\
       sequential: %.2f epochs/s; %d domains: %.2f epochs/s (%.2fx)\n"
      objects nodes epochs (FT.total_events ft) seq_eps par_domains par_eps
      speedup;
    (* A 1-core container cannot show real parallel speedup; enforce the
       >1x bar only where the hardware can deliver it. *)
    if Domain.recommended_domain_count () >= par_domains && speedup < 1. then
      failwith "forest: shard-parallel run slower than sequential";
    (* Coupling repair on a sub-forest sized so the brute-force-adjacent
       differential suite's regime (shared pool, slack demand) holds;
       everything here is deterministic for the seed. *)
    let small =
      F.generate
        {
          F.trees = 4;
          objects = 12;
          servers = 60;
          profile = Workload.profile Workload.Fat ~nodes:30 ~max_requests:5;
          seed = seed + 2;
        }
    in
    let sft = FT.generate small ~horizon ~seed:(seed + 3) FT.Poisson in
    let sgrid = FT.epochs sft small ~window in
    Stats_counters.reset ();
    let coupled =
      FE.run small { FE.engine = ecfg; coupling = true; domains = 1 } sgrid
    in
    let unrepaired =
      List.fold_left (fun a (e : FTl.entry) -> a + e.FTl.unrepaired) 0
        coupled.FTl.entries
    in
    let coupled_overloads =
      List.fold_left
        (fun a (e : FTl.entry) -> a + e.FTl.coupling_overloads)
        0 coupled.FTl.entries
    in
    (* Decoupled forest stepping is bit-identical to solving every shard
       alone: the forest adds no cross-talk unless coupling is on. *)
    Stats_counters.reset ();
    let dec_engine =
      FE.create small { FE.engine = ecfg; coupling = false; domains = 1 }
    in
    List.iter (fun v -> ignore (FE.step dec_engine v)) sgrid;
    let solo =
      Array.map (fun _ -> Engine.create ecfg) (F.shards small)
    in
    List.iter
      (fun views ->
        List.iteri (fun o v -> ignore (Engine.step solo.(o) v)) views)
      sgrid;
    let decoupled_identical =
      Array.for_all2
        (fun sol e -> Solution.equal sol (Engine.placement e))
        (FE.placements dec_engine) solo
    in
    if not decoupled_identical then
      failwith "forest: decoupled run diverged from independent solves";
    Printf.printf
      "coupling: %d overloads repaired (+%d replicas), %d unrepaired\n\
       decoupled placements identical to independent solves: %b\n"
      coupled_overloads coupled.FTl.repair_added unrepaired
      decoupled_identical;
    let final_servers =
      Array.fold_left
        (fun a s -> a + Solution.cardinal s)
        0 seq_placements
    in
    let json =
      J.envelope ~kind:"forest"
        ~config:
          [
            ("trees", J.Int trees);
            ("objects", J.Int objects);
            ("nodes", J.Int nodes);
            ("servers", J.Int servers);
            ("seed", J.Int seed);
            ("horizon", J.Float horizon);
            ("window", J.Float window);
            ("w", J.Int w);
            ("policy", J.String "systematic");
            ("algo", J.String "dp-withpre");
            ("par_domains", J.Int par_domains);
            ( "recommended_domains",
              J.Int (Domain.recommended_domain_count ()) );
          ]
        [
          ("epochs", J.Int epochs);
          ("merged_events", J.Int (FT.total_events ft));
          ("merge_conserved", J.Bool (FT.conservation ft));
          ("placements_identical", J.Bool identical);
          ("decoupled_identical", J.Bool decoupled_identical);
          ("reconfigurations", J.Int seq_tl.FTl.reconfigurations);
          ("total_cost", J.Float seq_tl.FTl.total_cost);
          ("final_servers", J.Int final_servers);
          ("merge_products", J.Int products);
          ( "seq",
            J.Obj
              [
                ("epochs_per_second", J.Float seq_eps);
                ("epoch_seconds", J.Float seq_tl.FTl.epoch_seconds);
              ] );
          ( "par",
            J.Obj
              [
                ("epochs_per_second", J.Float par_eps);
                ("epoch_seconds", J.Float par_tl.FTl.epoch_seconds);
              ] );
          ("parallel_speedup", J.Float speedup);
          ("allocated_bytes_per_epoch", J.Float seq_alloc);
          ( "peak_major_words",
            J.Int (Replica_obs.Gc_stats.peak_major_words ()) );
          ( "coupled",
            J.Obj
              [
                ("epochs", J.Int (List.length coupled.FTl.entries));
                ("overloads", J.Int coupled_overloads);
                ("repair_added", J.Int coupled.FTl.repair_added);
                ("unrepaired", J.Int unrepaired);
                ("invalid_epochs", J.Int coupled.FTl.invalid_epochs);
              ] );
        ]
    in
    let oc = open_out "BENCH_forest.json" in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Replica_obs.Bench_history.append ~path:"BENCH_history.jsonl" json;
    Printf.printf "wrote BENCH_forest.json\n"
  end

(* --- Constrained placement: QoS/bandwidth regimes (BENCH_qos.json) --- *)

let run_qos () =
  if section_enabled "qos" then begin
    banner "qos"
      "constrained placement: feasible fraction, server inflation and solve \
       time under the tight and loose QoS/bandwidth presets";
    let open Replica_tree in
    let open Replica_core in
    let module J = Replica_obs.Json in
    (* max_requests > w makes capacity the occasional true blocker, so
       the feasible fraction is a real (deterministic) metric rather
       than a constant 1. Constraints themselves never flip feasibility
       under the closest policy — a server at every loaded node always
       satisfies them — they only inflate the server count, which the
       per-regime [servers_total] captures. *)
    let nodes = 12 and instances = 50 and seed = 23 and w = 7 in
    let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
    let trees =
      List.init instances (fun i ->
          let rng = Rng.create (seed + i) in
          let t =
            Generator.random rng
              (Workload.profile Workload.Fat ~nodes ~max_requests:8)
          in
          Generator.add_pre_existing rng t 3)
    in
    (* Degeneracy gate: on these (unconstrained) trees dp-qos must be
       bit-identical to dp-withpre — placement and cost. *)
    let unconstrained_identical =
      List.for_all
        (fun t ->
          match (Dp_qos.solve t ~w ~cost, Dp_withpre.solve t ~w ~cost) with
          | Some q, Some p ->
              Solution.equal q.Dp_qos.solution p.Dp_withpre.solution
              && q.Dp_qos.cost = p.Dp_withpre.cost
          | None, None -> true
          | _ -> false)
        trees
    in
    if not unconstrained_identical then
      failwith "qos: dp-qos diverged from dp-withpre on unconstrained trees";
    let greedy_agrees = ref true in
    let regime name constrain =
      Stats_counters.reset ();
      let feasible = ref 0 and servers = ref 0 in
      List.iteri
        (fun i t ->
          let rng = Rng.create ((1000 * seed) + i) in
          let ct = constrain rng t in
          let dp = Dp_qos.solve ct ~w ~cost in
          (match dp with
          | Some r ->
              incr feasible;
              servers := !servers + r.Dp_qos.servers
          | None -> ());
          if Greedy_qos.solve ct ~w <> None <> (dp <> None) then
            greedy_agrees := false)
        trees;
      let ours prefix (k, _) = String.starts_with ~prefix k in
      let counters =
        List.filter (ours "dp_qos.") (Stats_counters.counters ())
      in
      let timers = List.filter (ours "dp_qos.") (Stats_counters.timers ()) in
      let fraction = float_of_int !feasible /. float_of_int instances in
      Printf.printf
        "%s: %d/%d feasible (%.2f), %d servers total, %d merge products\n"
        name !feasible instances fraction !servers
        (try List.assoc "dp_qos.merge_products" counters with Not_found -> 0);
      ( name,
        J.Obj
          ([
             ("instances", J.Int instances);
             ("feasible", J.Int !feasible);
             ("feasible_fraction", J.Float fraction);
             ("servers_total", J.Int !servers);
           ]
          @ List.map (fun (k, v) -> (k, J.Int v)) counters
          @ List.map (fun (k, s) -> (k ^ ".seconds", J.Float s)) timers) )
    in
    let tight = regime "tight" Generator.tight_constraints in
    let loose = regime "loose" Generator.loose_constraints in
    if not !greedy_agrees then
      failwith "qos: greedy-qos disagreed with dp-qos on feasibility";
    Printf.printf
      "greedy feasibility agreement and dp-withpre degeneracy: verified\n";
    let json =
      J.envelope ~kind:"qos"
        ~config:
          [
            ("nodes", J.Int nodes);
            ("instances", J.Int instances);
            ("seed", J.Int seed);
            ("w", J.Int w);
            ("pre", J.Int 3);
          ]
        [
          tight;
          loose;
          ("greedy_feasibility_agrees", J.Bool !greedy_agrees);
          ("unconstrained_identical_to_dp_withpre", J.Bool unconstrained_identical);
        ]
    in
    let oc = open_out "BENCH_qos.json" in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Replica_obs.Bench_history.append ~path:"BENCH_history.jsonl" json;
    Printf.printf "wrote BENCH_qos.json\n"
  end

(* --- Observability overhead (BENCH_obs.json) --- *)

let run_obs () =
  if section_enabled "obs" then begin
    banner "obs"
      "span-tracing overhead: interleaved paired solves, tracing off vs on";
    let open Replica_tree in
    let open Replica_core in
    let module Obs = Replica_obs in
    let nodes = 100 and pre = 25 and seed = 11 and pairs = 25 in
    let w = Workload.capacity in
    let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
    let rng = Rng.create seed in
    let tree =
      Generator.add_pre_existing rng
        (Generator.random rng
           (Workload.profile Workload.Fat ~nodes ~max_requests:5))
        pre
    in
    (* Earlier sections share the global histogram and metrics
       registries; reset both so the published histogram rows count only
       this section's solves and the timeseries-sampler cost reflects
       this section's intended registry size (the forest section alone
       leaves thousands of per-shard series behind). *)
    Obs.Histogram.reset_all ();
    Obs.Metrics.reset ();
    let time_solve () =
      let t0 = Obs.Clock.now_ns () in
      ignore (Sys.opaque_identity (Dp_withpre.solve tree ~w ~cost));
      Obs.Clock.now_ns () - t0
    in
    let median l =
      let a = List.sort compare l in
      List.nth a (List.length a / 2)
    in
    (* warm: the first runs pay allocator/page-cache noise for both modes *)
    ignore (time_solve ());
    ignore (time_solve ());
    (* Interleaved paired runs: each iteration times one tracing-off and
       one tracing-on solve back to back, so slow drift (frequency
       scaling, competing load) hits both sides of every pair instead of
       biasing whichever mode ran second — the bias that once produced a
       published negative overhead. The within-pair order alternates,
       because the second solve of a pair systematically pays the minor
       collections triggered by the first's garbage: with the solves now
       well under a millisecond, that bias alone exceeded the 6% budget
       when one mode always ran second. *)
    let offs = Array.make pairs 0 and ons = Array.make pairs 0 in
    let spans_per_solve = ref 0 in
    let timed_on i =
      Obs.Span.set_enabled true;
      ons.(i) <- time_solve ();
      spans_per_solve := Obs.Span.count ();
      Obs.Span.set_enabled false;
      Obs.Span.reset ()
    in
    let timed_off i =
      Obs.Span.set_enabled false;
      offs.(i) <- time_solve ();
      Obs.Span.reset ()
    in
    for i = 0 to pairs - 1 do
      if i land 1 = 0 then begin
        timed_off i;
        timed_on i
      end
      else begin
        timed_on i;
        timed_off i
      end
    done;
    let spans_per_solve = !spans_per_solve in
    let off_ns = median (Array.to_list offs) in
    let on_ns = median (Array.to_list ons) in
    let deltas = List.init pairs (fun i -> ons.(i) - offs.(i)) in
    let delta_ns = median deltas in
    (* Median absolute deviation of the paired deltas = the noise floor
       of the delta estimate itself. *)
    let mad_ns = median (List.map (fun d -> abs (d - delta_ns)) deltas) in
    let raw_pct = 100. *. float_of_int delta_ns /. float_of_int off_ns in
    let below_noise = abs delta_ns <= mad_ns || raw_pct < 0. in
    (* Clamp rather than publish a negative overhead: a measured delta
       below the noise floor is "indistinguishable from zero", not a
       speedup. *)
    let on_overhead_pct = if below_noise then 0. else raw_pct in
    (* The disabled path is one atomic load per guard; time it directly
       rather than trying to resolve <2% inside run-to-run solve noise. *)
    let guard_iters = 10_000_000 in
    let acc = ref false in
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to guard_iters do
      acc := Sys.opaque_identity (Obs.Span.enabled ()) || !acc
    done;
    let guard_ns =
      float_of_int (Obs.Clock.now_ns () - t0) /. float_of_int guard_iters
    in
    if !acc then failwith "obs: tracing unexpectedly enabled";
    (* Each recorded span is one begin and one end call site; 4 guard
       evaluations per span over-counts the hoisted [enabled] checks. *)
    let guard_checks = 4 * spans_per_solve in
    let disabled_overhead_pct =
      100. *. guard_ns *. float_of_int guard_checks /. float_of_int off_ns
    in
    Printf.printf
      "solve (N=%d, E=%d): %.3f ms tracing off, %.3f ms tracing on\n\
       paired delta over %d interleaved pairs: median %+.3f ms, MAD %.3f ms\n"
      nodes pre
      (float_of_int off_ns /. 1e6)
      (float_of_int on_ns /. 1e6)
      pairs
      (float_of_int delta_ns /. 1e6)
      (float_of_int mad_ns /. 1e6);
    Printf.printf "tracing-on overhead: %.2f%%%s\n" on_overhead_pct
      (if below_noise then " (measured delta below noise floor; clamped to 0)"
       else "");
    Printf.printf "spans per traced solve: %d\n" spans_per_solve;
    if on_overhead_pct < 0. then
      failwith "obs: refusing to publish a negative tracing-on overhead";
    if on_overhead_pct > 6. then
      failwith "obs: tracing-on overhead above the 6% budget";
    Printf.printf
      "disabled-path guard: %.2f ns/check -> estimated %.4f%% overhead when \
       off (budget 2%%)\n"
      guard_ns disabled_overhead_pct;
    if disabled_overhead_pct > 2. then
      failwith "obs: tracing-disabled overhead above the 2% budget";
    (* Alloc capture adds two noalloc GC reads to begin and two to end;
       price it with the same interleaved paired protocol, tracing on
       for both sides so the delta isolates the memory axis alone. *)
    let aoffs = Array.make pairs 0 and aons = Array.make pairs 0 in
    let alloc_off i =
      Obs.Span.set_alloc false;
      aoffs.(i) <- time_solve ();
      Obs.Span.reset ()
    in
    let alloc_on i =
      Obs.Span.set_alloc true;
      aons.(i) <- time_solve ();
      Obs.Span.set_alloc false;
      Obs.Span.reset ()
    in
    for i = 0 to pairs - 1 do
      Obs.Span.set_enabled true;
      if i land 1 = 0 then begin
        alloc_off i;
        alloc_on i
      end
      else begin
        alloc_on i;
        alloc_off i
      end;
      Obs.Span.set_enabled false;
      Obs.Span.reset ()
    done;
    let a_off_ns = median (Array.to_list aoffs) in
    let a_deltas = List.init pairs (fun i -> aons.(i) - aoffs.(i)) in
    let a_delta_ns = median a_deltas in
    let a_mad_ns = median (List.map (fun d -> abs (d - a_delta_ns)) a_deltas) in
    let a_raw_pct = 100. *. float_of_int a_delta_ns /. float_of_int a_off_ns in
    let a_below_noise = abs a_delta_ns <= a_mad_ns || a_raw_pct < 0. in
    let alloc_on_pct = if a_below_noise then 0. else a_raw_pct in
    Printf.printf "alloc-telemetry-on overhead: %.2f%%%s (budget 3%%)\n"
      alloc_on_pct
      (if a_below_noise then " (below noise floor; clamped to 0)" else "");
    if alloc_on_pct > 3. then
      failwith "obs: alloc-telemetry-on overhead above the 3% budget";
    (* The disabled span path must allocate exactly nothing — otherwise
       the probe perturbs the heap it exists to measure. Meter a
       begin/end loop with the unboxed minor-words counter itself; the
       no-op baseline cancels the measurement scaffolding's own boxing,
       so any nonzero residue is real instrumentation leakage, and the
       assert (plus the hard bench-diff gate on the published metric)
       holds the invariant at zero words. *)
    let alloc_of f =
      let a0 = Gc.minor_words () in
      f ();
      let a1 = Gc.minor_words () in
      int_of_float (a1 -. a0)
    in
    let disabled_loop () =
      for _ = 1 to 100_000 do
        Obs.Span.begin_span "obs.disabled";
        Obs.Span.end_span ()
      done
    in
    Obs.Span.set_enabled false;
    let disabled_baseline = alloc_of (fun () -> ()) in
    let disabled_minor_words = alloc_of disabled_loop - disabled_baseline in
    Printf.printf
      "disabled span path: %d minor words across 100k begin/end pairs \
       (must be 0)\n"
      disabled_minor_words;
    if disabled_minor_words <> 0 then
      failwith "obs: disabled span path allocated";
    (* Allocation per untraced solve: the workload's own memory
       appetite, gated directionally like the timing metrics. *)
    let bytes0 = Gc.allocated_bytes () in
    ignore (Sys.opaque_identity (Dp_withpre.solve tree ~w ~cost));
    let solve_alloc_bytes = Gc.allocated_bytes () -. bytes0 in
    Printf.printf "allocated per solve: %.2f MB\n" (solve_alloc_bytes /. 1e6);
    (* Per-epoch time-series sampling: one whole-registry read per
       recorded epoch. Stress with 100 extra labeled series so the
       published cost reflects a busy registry, then compare against a
       solve epoch's wall time. Budget: 3% — recalibrated when the
       packed DP cores made the reference solve ~10x faster; the
       sampler's absolute cost is unchanged and separately gated by
       the timeseries_sample_ns spec. *)
    let series_n = 100 in
    for i = 0 to series_n - 1 do
      Obs.Metrics.set
        (Obs.Metrics.gauge
           ~labels:[ ("series", string_of_int i) ]
           "obs_bench.series")
        (float_of_int i)
    done;
    let ts = Obs.Timeseries.create ~capacity:256 () in
    let sample_iters = 200 in
    let sample_times =
      List.init sample_iters (fun i ->
          let t0 = Obs.Clock.now_ns () in
          Obs.Timeseries.sample ts ~epoch:(i + 1);
          Obs.Clock.now_ns () - t0)
    in
    let sample_ns = median sample_times in
    let sample_pct = 100. *. float_of_int sample_ns /. float_of_int off_ns in
    let series_count =
      match List.rev (Obs.Timeseries.points ts) with
      | pt :: _ -> List.length pt.Obs.Timeseries.pt_rows
      | [] -> 0
    in
    Printf.printf
      "timeseries sample: %d series, %.1f us/sample -> %.3f%% of a solve \
       epoch (budget 3%%)\n"
      series_count
      (float_of_int sample_ns /. 1e3)
      sample_pct;
    if sample_pct > 3. then
      failwith "obs: timeseries sampling above the 3% budget";
    let module J = Replica_obs.Json in
    let histograms =
      J.Obj
        (List.filter_map
           (fun (name, h) ->
             (* _ns histograms hold wall-clock latencies; publishing them
                would break the artifact's count-metric determinism. *)
             if String.ends_with ~suffix:"_ns" name then None
             else
               let s = Obs.Histogram.summary h in
               Some
                 ( name,
                   J.Obj
                     [
                       ("count", J.Int s.Obs.Histogram.s_count);
                       ("sum", J.Int s.Obs.Histogram.s_sum);
                       ("p50", J.Int s.Obs.Histogram.p50);
                       ("p90", J.Int s.Obs.Histogram.p90);
                       ("p99", J.Int s.Obs.Histogram.p99);
                     ] ))
           (Obs.Histogram.snapshots ()))
    in
    let json =
      J.envelope ~kind:"obs"
        ~config:
          [
            ("nodes", J.Int nodes);
            ("pre", J.Int pre);
            ("seed", J.Int seed);
            ("pairs", J.Int pairs);
            ("solver", J.String "dp_withpre");
          ]
        [
          ("tracing_off_median_ns", J.Int off_ns);
          ("tracing_on_median_ns", J.Int on_ns);
          ("paired_delta_median_ns", J.Int delta_ns);
          ("paired_delta_mad_ns", J.Int mad_ns);
          ("tracing_on_overhead_percent", J.Float on_overhead_pct);
          ("tracing_on_overhead_budget_percent", J.Float 6.);
          ("tracing_on_overhead_below_noise_floor", J.Bool below_noise);
          ("spans_per_solve", J.Int spans_per_solve);
          ("guard_ns_per_check", J.Float guard_ns);
          ( "disabled_overhead_percent_estimate",
            J.Float disabled_overhead_pct );
          ("disabled_overhead_budget_percent", J.Float 2.);
          ("alloc_on_overhead_percent", J.Float alloc_on_pct);
          ("alloc_on_overhead_budget_percent", J.Float 3.);
          ("alloc_on_overhead_below_noise_floor", J.Bool a_below_noise);
          ("alloc_disabled_minor_words", J.Int disabled_minor_words);
          ("allocated_bytes_per_solve", J.Float solve_alloc_bytes);
          ( "peak_major_words",
            J.Int (Replica_obs.Gc_stats.peak_major_words ()) );
          ("timeseries_series_count", J.Int series_count);
          ("timeseries_sample_ns", J.Int sample_ns);
          ("timeseries_sample_overhead_percent", J.Float sample_pct);
          ("timeseries_sample_budget_percent", J.Float 3.);
          ("histograms", histograms);
        ]
    in
    let oc = open_out "BENCH_obs.json" in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Obs.Bench_history.append ~path:"BENCH_history.jsonl" json;
    Printf.printf "wrote BENCH_obs.json\n"
  end

(* --- Bechamel timing suite --- *)

let timing_tests () =
  let open Replica_tree in
  let open Replica_core in
  let w = Workload.capacity in
  let cost = Cost.basic ~create:0.001 ~delete:0.00001 () in
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let mcost = Cost.paper_cheap ~modes:2 in
  let cost_tree nodes pre =
    let rng = Rng.create (100 + nodes) in
    let t =
      Generator.random rng
        (Workload.profile Workload.Fat ~nodes ~max_requests:6)
    in
    Generator.add_pre_existing rng t pre
  in
  let power_tree nodes pre =
    let rng = Rng.create (200 + nodes) in
    let t =
      Generator.random rng
        (Workload.profile Workload.Fat ~nodes ~max_requests:5)
    in
    Generator.add_pre_existing rng ~mode:2 t pre
  in
  let t100 = cost_tree 100 25 in
  let t200 = cost_tree 200 50 in
  let p50 = power_tree 50 5 in
  let p70 = power_tree 70 10 in
  let open Bechamel in
  (* One timing test per registered solver (two sizes for the exact
     ones), driven off the registry: a newly registered algorithm shows
     up here with no bench change. Solves go through the entry's solve
     — the same seam the engine and CLI dispatch over. *)
  let instance_for (s : Solver.t) =
    let c = s.Solver.capability in
    if c.Solver.handles_power && not c.Solver.handles_cost then
      let small = (Problem.min_power p50 ~modes ~power ~cost:mcost (), "N=50,E=5") in
      let big = (Problem.min_power p70 ~modes ~power ~cost:mcost (), "N=70,E=10") in
      if c.Solver.exactness = Solver.Exact then [ small; big ] else [ small ]
    else
      let small = (Problem.min_cost t100 ~w ~cost, "N=100,E=25") in
      let big = (Problem.min_cost t200 ~w ~cost, "N=200,E=50") in
      if c.Solver.exactness = Solver.Exact then [ small; big ] else [ small ]
  in
  let fits (s : Solver.t) (p : Problem.t) =
    match s.Solver.capability.Solver.max_nodes with
    | Some n -> Tree.size p.Problem.tree <= n
    | None -> true
  in
  let solver_tests =
    List.concat_map
      (fun (s : Solver.t) ->
        List.filter_map
          (fun (problem, label) ->
            if not (fits s problem) then None
            else
              Some
                (Test.make
                   ~name:(Printf.sprintf "%s/%s" s.Solver.name label)
                   (Staged.stage (fun () ->
                        s.Solver.solve problem Solver.default_request))))
          (instance_for s))
      (Registry.all ())
  in
  solver_tests
  @ [
      (* The design choice behind the DP's speed: placements as catenable
         lists (O(1) append) vs naive list concatenation (O(n)). *)
      (let chunks = List.init 200 (fun i -> Clist.of_list [ (i, i) ]) in
       Test.make ~name:"clist/200-appends"
         (Staged.stage (fun () ->
              List.fold_left Clist.append Clist.empty chunks)));
      (let chunks = List.init 200 (fun i -> [ (i, i) ]) in
       Test.make ~name:"list/200-appends"
         (Staged.stage (fun () -> List.fold_left ( @ ) [] chunks)));
    ]

(* --- Large-N scaling rows (BENCH_scaling.json) --- *)

let run_scaling () =
  if section_enabled "scaling" then begin
    banner "scaling"
      "large-N rows: MinPower DP at N = 10^4, MinCost greedy at N = 10^6";
    let power_rows =
      Scaling.measure_power_dp_large ~sizes:[ 10_000 ] ~shape:Workload.Fat ()
    in
    let cost_rows =
      Scaling.measure_cost_algorithms ~sizes:[ 1_000_000 ] ~shape:Workload.Fat
        ()
    in
    Table.print (Scaling.to_table (power_rows @ cost_rows));
    let find name rows =
      match
        List.find_opt
          (fun (m : Scaling.measurement) -> m.Scaling.algorithm = name)
          rows
      with
      | Some m -> m
      | None -> failwith ("scaling: missing row " ^ name)
    in
    let module J = Replica_obs.Json in
    let row (m : Scaling.measurement) =
      J.Obj
        [
          ("nodes", J.Int m.Scaling.nodes);
          ("servers", J.Int m.Scaling.servers);
          ("seconds", J.Float m.Scaling.seconds);
          ("alloc_mb", J.Float m.Scaling.allocated_mb);
          ("peak_heap_w", J.Int m.Scaling.peak_major_words);
        ]
    in
    let json =
      J.envelope ~kind:"scaling"
        ~config:[ ("shape", J.String "fat"); ("seed", J.Int 7) ]
        [
          ("minpower_dp", row (find "dp-power" power_rows));
          ("minpower_gr", row (find "gr-power" power_rows));
          ("mincost_greedy", row (find "greedy" cost_rows));
          ("mincost_greedy_qos", row (find "greedy-qos" cost_rows));
        ]
    in
    let oc = open_out "BENCH_scaling.json" in
    output_string oc (J.to_string ~pretty:true json);
    output_char oc '\n';
    close_out oc;
    Replica_obs.Bench_history.append ~path:"BENCH_history.jsonl" json;
    Printf.printf "wrote BENCH_scaling.json\n"
  end

let run_timing () =
  if section_enabled "timing" then begin
    banner "timing"
      "Bechamel wall-clock per solver (the paper's GR-vs-DP runtime claims)";
    let open Bechamel in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
    in
    let tests = Test.make_grouped ~name:"replica" (timing_tests ()) in
    let raw = Benchmark.all cfg [ instance ] tests in
    let results = Analyze.all ols instance raw in
    let table = Table.make ~header:[ "solver"; "time per run" ] in
    let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
    List.iter
      (fun (name, ols_result) ->
        let time_str =
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
          | Some [] | None -> "-"
        in
        Table.add_row table [ name; time_str ])
      (List.sort compare rows);
    Table.print table
  end

let () =
  Printf.printf
    "replicaml benchmark harness - reproducing Benoit, Renaud-Goud, Robert \
     (IPDPS 2011)\n";
  Printf.printf
    "Paper-scale defaults: Exp1/2 use 200 fat/high trees with N=100, W=10; \
     Exp3 uses 100 trees with N=50.\n";
  run_exp1 "fig4" Workload.Fat
    "Experiment 1, fat trees - average reuse of pre-existing servers vs E";
  run_exp2 "fig5" Workload.Fat
    "Experiment 2, fat trees - 20 consecutive reconfiguration steps";
  run_exp1 "fig6" Workload.High "Experiment 1, high trees (2-4 children)";
  run_exp2 "fig7" Workload.High "Experiment 2, high trees (2-4 children)";
  run_exp3 "fig8" ~shape:Workload.Fat ~pre:5 ~expensive:false
    "Experiment 3 - inverse power vs cost bound (with pre-existing)";
  run_exp3 "fig9" ~shape:Workload.Fat ~pre:0 ~expensive:false
    "Experiment 3 - without pre-existing replicas";
  run_exp3 "fig10" ~shape:Workload.High ~pre:5 ~expensive:false
    "Experiment 3 - high trees";
  run_exp3 "fig11" ~shape:Workload.Fat ~pre:5 ~expensive:true
    "Experiment 3 - expensive cost function (create=delete=1, changed=0.1)";
  run_ablation_policies ();
  run_ablation_heuristics ();
  run_ablation_update ();
  run_ablation_shapes ();
  run_ablation_drift ();
  run_ablation_window ();
  run_ablation_modes ();
  run_dp_stats ();
  run_engine ();
  (* obs must run before forest: the forest section registers thousands
     of per-shard gauges that stay in the global metrics registry for
     the rest of the process, which would inflate the obs section's
     timeseries-sampler cost far past its budget. *)
  run_obs ();
  run_forest ();
  run_qos ();
  run_scaling ();
  run_timing ()
