(* Differential fuzzing harness: every polynomial solver against the
   exhaustive oracle on random instances with randomized parameters
   (shape, demand, pre-existing markings, capacities, mode ladders, cost
   models, bounds). Run with `dune exec fuzz/fuzz.exe -- [instances]`
   (default 4000). Exits non-zero on the first discrepancy batch, so it
   can gate CI at any budget. *)
open Replica_tree
open Replica_core

let () =
  let total =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4000
  in
  let fails = ref 0 and runs = ref 0 in
  let report name t msg =
    incr fails;
    Printf.printf "FAIL %s on %s: %s\n%!" name (Tree.to_string t) msg
  in
  let t0 = Sys.time () in
  for seed = 1 to total do
    let rng = Rng.create seed in
    let nodes = 2 + Rng.int rng 10 in
    let profile =
      { Generator.nodes; min_children = 1; max_children = 4;
        client_probability = 0.8; min_requests = 1; max_requests = 6 } in
    let bare = Generator.random rng profile in
    let pre = Rng.int rng (nodes + 1) in
    let t = Generator.add_pre_existing rng ~mode:(1 + Rng.int rng 2) bare pre in
    let w = 3 + Rng.int rng 8 in
    incr runs;
    (* greedy vs brute *)
    (match (Greedy.solve_count t ~w, Option.map fst (Brute.min_servers t ~w)) with
     | Some a, Some b when a <> b -> report "greedy" t (Printf.sprintf "w=%d %d vs %d" w a b)
     | None, Some _ | Some _, None -> report "greedy-feas" t (Printf.sprintf "w=%d" w)
     | _ -> ());
    (* dp_withpre vs brute with random costs *)
    let cost = Cost.basic ~create:(Rng.float rng 3.) ~delete:(Rng.float rng 3.) () in
    (match (Dp_withpre.solve t ~w ~cost, Brute.min_basic_cost t ~w ~cost) with
     | Some d, Some (bc, _) when abs_float (d.Dp_withpre.cost -. bc) > 1e-9 ->
         report "dp_withpre" t (Printf.sprintf "w=%d %f vs %f" w d.Dp_withpre.cost bc)
     | None, Some _ | Some _, None -> report "dp_withpre-feas" t ""
     | _ -> ());
    (* dp_power vs brute with random ladder *)
    let w1 = 2 + Rng.int rng 4 in
    let w2 = w1 + 1 + Rng.int rng 5 in
    let modes = Modes.make [ w1; w2 ] in
    let power = Power.make ~static:(Rng.float rng 5.) ~alpha:(2. +. Rng.float rng 1.) () in
    let mcost = Cost.modal_uniform ~modes:2 ~create:(Rng.float rng 1.)
        ~delete:(Rng.float rng 1.) ~changed:(Rng.float rng 0.5) in
    let bound = if Rng.bool rng then infinity else 1. +. Rng.float rng 8. in
    (match (Dp_power.solve t ~modes ~power ~cost:mcost ~bound (),
            Brute.min_power t ~modes ~power ~cost:mcost ~bound ()) with
     | Some d, Some (bp, _) when abs_float (d.Dp_power.power -. bp) > 1e-6 ->
         report "dp_power" t (Printf.sprintf "%f vs %f" d.Dp_power.power bp)
     | None, Some _ | Some _, None -> report "dp_power-feas" t ""
     | _ -> ());
    (* heuristics: sandwiched between optimum and seed, always valid *)
    (match (Heuristics_cost.solve t ~w ~cost (), Dp_withpre.solve t ~w ~cost) with
     | Some h, Some d ->
         if d.Dp_withpre.cost > h.Heuristics_cost.cost +. 1e-9 then
           report "heuristics_cost" t "beat the optimum (impossible)";
         if not (Solution.is_valid t ~w h.Heuristics_cost.solution) then
           report "heuristics_cost-valid" t ""
     | None, Some _ | Some _, None -> report "heuristics_cost-feas" t ""
     | None, None -> ());
    (* upwards: heuristic validity + hierarchy vs closest/multiple *)
    (if Tree.num_clients t <= Upwards.max_clients_exact then begin
       (match Upwards.solve_heuristic t ~w with
        | Some r ->
            if not (Upwards.assignment_exists t ~w r.Upwards.solution) then
              report "upwards-heuristic-valid" t ""
        | None -> ());
       match (Greedy.solve_count t ~w,
              Option.map (fun r -> r.Multiple.servers) (Multiple.solve t ~w)) with
       | Some c, Some m when m > c -> report "hierarchy" t "multiple > closest"
       | _ -> ()
     end);
    (* constrained placement: dp_qos vs brute (whose validity check
       includes QoS/bandwidth violations) on a randomly constrained
       variant; greedy_qos must agree on feasibility exactly and stay
       valid. Roughly a quarter of the variants end up unconstrained,
       fuzzing the degenerate path too. *)
    (let ct =
       let qt =
         if Rng.bool rng then
           Generator.add_qos rng t ~min_qos:0 ~max_qos:(1 + Rng.int rng 4)
         else t
       in
       if Rng.bool rng then
         Generator.add_bandwidth rng qt ~slack:(0.5 +. Rng.float rng 1.5)
       else qt
     in
     let oracle = Brute.min_basic_cost ct ~w ~cost in
     (match (Dp_qos.solve ct ~w ~cost, oracle) with
      | Some d, Some (bc, _) when abs_float (d.Dp_qos.cost -. bc) > 1e-9 ->
          report "dp_qos" ct (Printf.sprintf "w=%d %f vs %f" w d.Dp_qos.cost bc)
      | Some d, Some _ when not (Solution.is_valid ct ~w d.Dp_qos.solution) ->
          report "dp_qos-valid" ct (Printf.sprintf "w=%d" w)
      | None, Some _ | Some _, None -> report "dp_qos-feas" ct ""
      | _ -> ());
     match (Greedy_qos.solve ct ~w, oracle) with
     | Some g, Some _ when not (Solution.is_valid ct ~w g) ->
         report "greedy_qos-valid" ct (Printf.sprintf "w=%d" w)
     | None, Some _ | Some _, None -> report "greedy_qos-feas" ct ""
     | _ -> ());
    (* multiple vs brute-multiple *)
    (let best = ref None in
     for mask = 0 to (1 lsl nodes) - 1 do
       let sel = ref [] in
       for j = nodes - 1 downto 0 do
         if mask land (1 lsl j) <> 0 then sel := j :: !sel done;
       let sol = Solution.of_nodes !sel in
       if Multiple.is_valid t ~w sol then
         match !best with
         | Some b when b <= Solution.cardinal sol -> ()
         | _ -> best := Some (Solution.cardinal sol)
     done;
     match (Option.map (fun r -> r.Multiple.servers) (Multiple.solve t ~w), !best) with
     | Some a, Some b when a <> b -> report "multiple" t (Printf.sprintf "%d vs %d" a b)
     | None, Some _ | Some _, None -> report "multiple-feas" t ""
     | _ -> ())
  done;
  Printf.printf "fuzz: %d instances, %d failures, %.1fs\n" !runs !fails
    (Sys.time () -. t0);
  if !fails > 0 then exit 1
