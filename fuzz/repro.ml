open Replica_tree
open Replica_core

let () =
  (* `repro.exe [instances]` — the budget is an argv so CI can time-box
     the sweep (default keeps the historical 20000). *)
  let total =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20000
  in
  for seed = 1 to total do
    let rng = Rng.create seed in
    let nodes = 2 + Rng.int rng 10 in
    let profile =
      { Generator.nodes; min_children = 1; max_children = 4;
        client_probability = 0.8; min_requests = 1; max_requests = 6 } in
    let bare = Generator.random rng profile in
    let pre = Rng.int rng (nodes + 1) in
    let t = Generator.add_pre_existing rng ~mode:(1 + Rng.int rng 2) bare pre in
    let w = 3 + Rng.int rng 8 in
    ignore (Greedy.solve_count t ~w);
    let _cost = Cost.basic ~create:(Rng.float rng 3.) ~delete:(Rng.float rng 3.) () in
    let w1 = 2 + Rng.int rng 4 in
    let w2 = w1 + 1 + Rng.int rng 5 in
    let modes = Modes.make [ w1; w2 ] in
    let static = Rng.float rng 5. in
    let alpha = 2. +. Rng.float rng 1. in
    let power = Power.make ~static ~alpha () in
    let c1 = Rng.float rng 1. and c2 = Rng.float rng 1. and c3 = Rng.float rng 0.5 in
    let mcost = Cost.modal_uniform ~modes:2 ~create:c1 ~delete:c2 ~changed:c3 in
    let bound = if Rng.bool rng then infinity else 1. +. Rng.float rng 8. in
    let dp = Dp_power.solve t ~modes ~power ~cost:mcost ~bound () in
    let brute = Brute.min_power t ~modes ~power ~cost:mcost ~bound () in
    (match (dp, brute) with
     | Some _, Some _ | None, None -> ()
     | d, b ->
         Printf.printf "seed=%d w1=%d w2=%d static=%f alpha=%f c=(%f,%f,%f) bound=%f dp=%s brute=%s\n  tree=%s\n"
           seed w1 w2 static alpha c1 c2 c3 bound
           (match d with Some r -> Printf.sprintf "%f@%f" r.Dp_power.power r.Dp_power.cost | None -> "none")
           (match b with Some (p,_) -> Printf.sprintf "%f" p | None -> "none")
           (Tree.to_string t))
  done
