(* Dynamic replica management: the paper's §6 trade-off between "lazy"
   and "systematic" update strategies, built on the single-step optimal
   reconfiguration of §3 through the library's Update_policy module.

   Client demand drifts over 20 epochs; four policies manage the same
   tree with the same optimal single-step solver:
     - systematic: reconfigure every epoch;
     - lazy: only when the placement breaks;
     - periodic(4): every fourth epoch (and on breakage);
     - drift(0.2): when total demand moved by >20% (and on breakage).
   We report each policy's reconfiguration bill — the quantity §6 argues
   the single-step optimum is the key ingredient for.

   Run with: dune exec examples/dynamic_updates.exe *)

open Replica_tree
open Replica_core

let w = 10
let cost = Cost.basic ~create:0.5 ~delete:0.25 ()

let drift rng tree =
  (* Each epoch nudges every client population: requests move by ±1 and
     nodes occasionally gain or lose a client. A node's aggregate demand
     is clamped to W — all clients of a node share one server under the
     closest policy, so anything above W is unserveable by construction. *)
  Tree.with_clients tree (fun j ->
      let survived =
        List.filter_map
          (fun r ->
            if Rng.bernoulli rng 0.04 then None
            else
              let r = r + Rng.int_in_range rng ~min:(-1) ~max:1 in
              if r <= 0 then None else Some (min r 6))
          (Tree.clients tree j)
      in
      let proposed =
        if Rng.bernoulli rng 0.06 then (1 + Rng.int rng 4) :: survived
        else survived
      in
      let rec clamp total = function
        | [] -> []
        | r :: rest ->
            if total + r > w then clamp total rest
            else r :: clamp (total + r) rest
      in
      clamp 0 proposed)

let () =
  let rng = Rng.create 99 in
  let tree0 = Generator.random rng (Generator.high ~nodes:50 ()) in
  let demands =
    let rec go tree k acc =
      if k = 0 then List.rev acc
      else
        let next = drift rng tree in
        go next (k - 1) (next :: acc)
    in
    go tree0 20 []
  in
  Printf.printf
    "50-node tree, 20 demand epochs (%d..%d total requests), W = %d\n\n"
    (List.fold_left (fun m t -> min m (Tree.total_requests t)) max_int demands)
    (List.fold_left (fun m t -> max m (Tree.total_requests t)) 0 demands)
    w;
  let policies =
    [
      Update_policy.Systematic;
      Update_policy.Lazy;
      Update_policy.Periodic 4;
      Update_policy.Drift 0.2;
    ]
  in
  Printf.printf "%-14s %16s %18s %16s\n" "policy" "total cost"
    "reconfigurations" "invalid epochs";
  let summaries =
    List.map
      (fun policy ->
        let s = Update_policy.simulate ~w ~cost policy demands in
        Printf.printf "%-14s %16.2f %18d %16d\n"
          (Update_policy.policy_to_string policy)
          s.Update_policy.total_cost s.Update_policy.reconfigurations
          s.Update_policy.invalid_epochs;
        (policy, s))
      policies
  in
  (* Show the lazy policy's actual reconfiguration trace. *)
  (match List.assoc_opt Update_policy.Lazy summaries with
  | Some s ->
      let epochs =
        List.filter_map
          (fun r ->
            if r.Update_policy.reconfigured then Some (string_of_int r.Update_policy.epoch)
            else None)
          s.Update_policy.records
      in
      Printf.printf "\nlazy reconfigured at epochs: %s\n"
        (String.concat ", " epochs)
  | None -> ());
  print_endline
    "\nLazy and drift-triggered policies cut the bill by reconfiguring only \
     when the demand actually moved; the optimal single-step update (§3) \
     is what every one of them calls."
