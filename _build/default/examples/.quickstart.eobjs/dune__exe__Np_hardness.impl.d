examples/np_hardness.ml: Cost Dp_power List Modes Npc Printf Replica_core Replica_tree Solution String Tree
