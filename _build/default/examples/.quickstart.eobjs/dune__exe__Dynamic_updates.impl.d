examples/dynamic_updates.ml: Cost Generator List Printf Replica_core Replica_tree Rng String Tree Update_policy
