examples/access_policies.mli:
