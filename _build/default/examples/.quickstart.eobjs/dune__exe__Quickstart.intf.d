examples/quickstart.mli:
