examples/power_budget.ml: Array Cost Dp_power Generator Greedy_power Heuristics List Modes Power Printf Replica_core Replica_tree Rng Tree
