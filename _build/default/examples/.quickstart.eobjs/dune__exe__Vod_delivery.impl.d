examples/vod_delivery.ml: Cost Dp_withpre Float Generator Greedy List Printf Replica_core Replica_tree Rng Solution Tree
