examples/trace_driven.mli:
