examples/vod_delivery.mli:
