examples/access_policies.ml: Format Greedy Multiple Option Printf Replica_core Replica_tree Solution Tree Upwards
