examples/quickstart.ml: Cost Dp_withpre Greedy List Printf Replica_core Replica_tree Solution Tree
