examples/power_budget.mli:
