examples/trace_driven.ml: Arrivals Cost Epochs Generator List Printf Replica_core Replica_trace Replica_tree Rng Solution Trace Tree Update_policy
