(* The Theorem 2 reduction, live: MinPower encodes 2-Partition.

   §4.2 proves MinPower NP-complete by turning integers a_1..a_n into a
   two-level tree with n+2 server modes, where the optimal placement
   must pick, for every i, either node A_i (running at the mode that
   "absorbs" a_i) or the cheap node B_i — and the total power lands
   under the threshold P_max exactly when the picks split the integers
   in half. This example builds the gadget for two instances (one
   solvable, one not) and lets the exact power DP decide them.

   Run with: dune exec examples/np_hardness.exe *)

open Replica_tree
open Replica_core

let show_instance a =
  let s = List.fold_left ( + ) 0 a in
  Printf.printf "\n2-Partition instance {%s} (sum %d, target %d)\n"
    (String.concat ", " (List.map string_of_int a))
    s (s / 2);
  let inst = Npc.build a in
  Printf.printf "  gadget: %d-node tree, %d modes, threshold P_max = %.1f\n"
    (Tree.size inst.Npc.tree)
    (Modes.count inst.Npc.modes)
    inst.Npc.threshold;
  let cost =
    Cost.modal_uniform
      ~modes:(Modes.count inst.Npc.modes)
      ~create:0. ~delete:0. ~changed:0.
  in
  (match
     Dp_power.solve inst.Npc.tree ~modes:inst.Npc.modes ~power:inst.Npc.power
       ~cost ()
   with
  | Some r ->
      Printf.printf "  optimal power: %.1f (%s threshold)\n" r.Dp_power.power
        (if r.Dp_power.power <= inst.Npc.threshold +. 1e-6 then "UNDER"
         else "over");
      (* Read the chosen subset off the placement: a server on A_i
         (odd preorder ids: 1, 3, 5, ...) selects a_i into I. *)
      let sorted = List.sort compare a in
      let chosen =
        List.filteri (fun i _ -> Solution.mem r.Dp_power.solution ((2 * i) + 1))
          sorted
      in
      Printf.printf "  subset encoded by the placement: {%s} (sum %d)\n"
        (String.concat ", " (List.map string_of_int chosen))
        (List.fold_left ( + ) 0 chosen)
  | None -> print_endline "  gadget infeasible (cannot happen)");
  Printf.printf "  DP decision: %b   reference 2-Partition: %b\n"
    (Npc.decide inst)
    (Npc.two_partition_exists a)

let () =
  print_endline
    "Theorem 2 (paper, §4.2): minimizing power with arbitrarily many modes \
     is NP-complete.";
  print_endline
    "The reduction builds, from integers a_1..a_n, a tree whose optimal \
     power dips under P_max iff the integers 2-partition.";
  show_instance [ 1; 2; 3; 4 ];
  (* No subset of {2,2,3,5} sums to 6. *)
  show_instance [ 2; 2; 3; 5 ];
  print_endline
    "\nOn small gadgets the exponential-in-M dynamic program still decides \
     them exactly — which is precisely why the paper restricts the \
     polynomial claim (Theorem 3) to a constant number of modes."
