(* Trace-driven reconfiguration: from raw request arrivals to placements.

   The paper assumes each client's request rate is "known beforehand";
   in production those rates come from measurement. This example closes
   the loop with the trace substrate: synthesize a day of per-request
   arrivals (diurnal Poisson traffic plus an evening flash crowd on one
   region), aggregate the stream into hourly steady-state epochs, and
   let the lazy update policy — powered by the §3 optimal single-step
   DP — follow the load.

   Run with: dune exec examples/trace_driven.exe *)

open Replica_tree
open Replica_core
open Replica_trace

let w = 10
let cost = Cost.basic ~create:0.5 ~delete:0.25 ()

let () =
  let rng = Rng.create 4242 in
  let tree = Generator.random rng (Generator.high ~nodes:40 ()) in
  Printf.printf
    "network: %d nodes, %d clients, nominal demand %d req/unit (W = %d)\n"
    (Tree.size tree) (Tree.num_clients tree) (Tree.total_requests tree) w;

  (* One "day" of traffic: 24 time units, diurnal cycle, plus a flash
     crowd tripling one first-level region for two hours in the evening. *)
  let base =
    Arrivals.diurnal rng tree ~horizon:24. ~period:24. ~floor:0.25
  in
  let hotspot = List.hd (Tree.children tree (Tree.root tree)) in
  let trace =
    Arrivals.flash_crowd rng tree ~base ~at:18. ~duration:2. ~node:hotspot
      ~multiplier:3.
  in
  Printf.printf "trace: %d requests over %.0f hours (flash crowd on region %d at 18h)\n\n"
    (Trace.length trace) (Trace.duration trace) hotspot;

  let epochs = Epochs.epochs trace tree ~window:1. in
  let summary = Update_policy.simulate ~w ~cost Update_policy.Lazy epochs in
  Printf.printf "%5s %8s %9s %15s %10s\n" "hour" "demand" "servers"
    "reconfigured" "cost paid";
  List.iter2
    (fun epoch record ->
      Printf.printf "%5d %8d %9d %15s %10.2f\n" record.Update_policy.epoch
        (Tree.total_requests epoch)
        (Solution.cardinal record.Update_policy.servers)
        (if record.Update_policy.reconfigured then "yes" else "-")
        record.Update_policy.step_cost)
    epochs summary.Update_policy.records;
  Printf.printf
    "\nlazy policy: %d reconfigurations, total bill %.2f, %d invalid epochs\n"
    summary.Update_policy.reconfigurations summary.Update_policy.total_cost
    summary.Update_policy.invalid_epochs;
  let systematic = Update_policy.simulate ~w ~cost Update_policy.Systematic epochs in
  Printf.printf "systematic would bill %.2f over the same day (%.0f%% more)\n"
    systematic.Update_policy.total_cost
    (100.
    *. ((systematic.Update_policy.total_cost /. summary.Update_policy.total_cost)
       -. 1.));
  print_endline
    "\nThe placement breathes with the diurnal cycle and spikes with the\n\
     flash crowd — every reconfiguration is the exact minimum-cost update\n\
     of the paper's Theorem 1."
