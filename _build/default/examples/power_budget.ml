(* Power budgeting: the bi-criteria MinPower-BoundedCost problem (§4.3).

   An operator has a reconfiguration budget and wants the placement that
   minimizes electricity within it. We compute the exact cost/power
   Pareto frontier with the dynamic program, then show where the greedy
   capacity sweep (GR) and the local-search heuristic land for a few
   budgets — the picture behind Figures 8-11.

   Run with: dune exec examples/power_budget.exe *)

open Replica_tree
open Replica_core

let modes = Modes.make [ 5; 10 ]
let power = Power.paper_exp3 ~modes
let cost = Cost.paper_cheap ~modes:2

let () =
  let rng = Rng.create 7 in
  let tree =
    Generator.add_pre_existing rng ~mode:2
      (Generator.random rng (Generator.fat ~nodes:50 ()))
      5
  in
  Printf.printf
    "tree: %d nodes, %d pre-existing servers, %d requests; modes {5, 10}, \
     P_i = 12.5 + W_i^3\n\n"
    (Tree.size tree)
    (Tree.num_pre_existing tree)
    (Tree.total_requests tree);

  print_endline "exact Pareto frontier (DP): every achievable trade-off";
  let frontier = Dp_power.frontier tree ~modes ~power ~cost in
  Printf.printf "  %-12s %-12s %s\n" "cost" "power" "servers (mode1+mode2)";
  List.iter
    (fun r ->
      let tly = r.Dp_power.tally in
      let at m =
        tly.Cost.created.(m)
        + tly.Cost.reused.(0).(m)
        + tly.Cost.reused.(1).(m)
      in
      Printf.printf "  %-12.3f %-12.1f %d = %d@W1 + %d@W2\n" r.Dp_power.cost
        r.Dp_power.power
        (Cost.tally_servers tly)
        (at 0) (at 1))
    frontier;

  print_endline "\nalgorithms under three budgets:";
  Printf.printf "  %-10s %-22s %-22s %s\n" "budget" "DP (optimal)"
    "heuristic (local search)" "GR (capacity sweep)";
  List.iter
    (fun bound ->
      let show = function
        | Some r -> Printf.sprintf "%.1f W (cost %.2f)" r.Dp_power.power r.Dp_power.cost
        | None -> "infeasible"
      in
      Printf.printf "  %-10.1f %-22s %-22s %s\n" bound
        (show (Dp_power.solve tree ~modes ~power ~cost ~bound ()))
        (show (Heuristics.solve tree ~modes ~power ~cost ~bound ()))
        (show (Greedy_power.solve tree ~modes ~power ~cost ~bound ())))
    [ 18.; 25.; 40. ];

  print_endline
    "\nReading: a tighter budget forces fewer, faster, hungrier servers; \
     the DP finds every crossover exactly, the heuristic tracks it \
     closely, the sweep lags on intermediate budgets."
