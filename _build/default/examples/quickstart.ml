(* Quickstart: the paper's §3.1 running example (Figure 1), end to end.

   We build the four-node tree by hand, ask the greedy baseline and the
   dynamic program for placements under two demand scenarios, and watch
   the DP trade off reusing the pre-existing server against
   load-balancing — the decision §3.1 shows cannot be made locally.

   Run with: dune exec examples/quickstart.exe *)

open Replica_tree
open Replica_core

let w = 10
let cost = Cost.basic ~create:0.1 ~delete:0.01 ()

(* root(clients: k) -- A -- { B [pre-existing] (4 req), C (7 req) } *)
let tree ~root_requests =
  Tree.build
    (Tree.node ~clients:[ root_requests ]
       [
         Tree.node
           [
             Tree.node ~clients:[ 4 ] ~pre:1 [];
             Tree.node ~clients:[ 7 ] [];
           ];
       ])

let name_of = function
  | 0 -> "root"
  | 1 -> "A"
  | 2 -> "B"
  | 3 -> "C"
  | j -> string_of_int j

let show_solution tree sol =
  let ev = Solution.evaluate tree sol in
  List.iter
    (fun (j, load) ->
      Printf.printf "    server at %-4s load %2d/%d%s\n" (name_of j) load w
        (if Tree.is_pre_existing tree j then "  (reused)" else ""))
    ev.Solution.loads

let scenario root_requests =
  Printf.printf "\n--- root has %d client requests ---\n" root_requests;
  let t = tree ~root_requests in
  (match Greedy.solve t ~w with
  | Some sol ->
      Printf.printf "  greedy (ignores pre-existing): %d servers, %d reused\n"
        (Solution.cardinal sol) (Solution.reused t sol);
      show_solution t sol
  | None -> print_endline "  greedy: no solution");
  match Dp_withpre.solve t ~w ~cost with
  | Some r ->
      Printf.printf
        "  DP (update-aware):             %d servers, %d reused, cost %.2f\n"
        r.Dp_withpre.servers r.Dp_withpre.reused r.Dp_withpre.cost;
      show_solution t r.Dp_withpre.solution
  | None -> print_endline "  DP: no solution"

let () =
  print_endline "Figure 1 (paper §3.1): reuse or rebalance?";
  print_endline
    "Tree: root -- A -- { B [pre-existing server] with 4 requests, C with 7 \
     requests }, W = 10.";
  (* Light root: the pre-existing server at B is worth keeping. *)
  scenario 2;
  print_endline
    "  => with 2 requests at the root, the optimal update KEEPS the \
     pre-existing server B.";
  (* Heavy root: B becomes useless, a new server at C is better. *)
  scenario 4;
  print_endline
    "  => with 4 requests at the root, two servers are needed anyway: the \
     optimal update DELETES B and creates C.";
  print_endline
    "\nThe greedy, blind to pre-existing servers, pays creation/deletion \
     costs the DP avoids."
