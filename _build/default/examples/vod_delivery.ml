(* Video-on-demand delivery: the application class the paper's
   introduction motivates ("electronic, ISP, or VOD service delivery").

   A VOD provider serves a metropolitan area through a fixed distribution
   tree. Demand follows a diurnal cycle: overnight the tree is almost
   idle, in prime time every neighborhood is streaming. Once per period
   the operator recomputes the replica placement, paying for new servers
   and for decommissioning old ones. We compare the update-aware DP
   against the oblivious greedy across one 24-hour cycle and report the
   cumulated reconfiguration bill.

   Run with: dune exec examples/vod_delivery.exe *)

open Replica_tree
open Replica_core

let w = 10
let cost = Cost.basic ~create:0.5 ~delete:0.25 ()

(* Six periods of a day with a demand multiplier each. *)
let periods =
  [
    ("night (00-04h)", 0.15);
    ("early (04-08h)", 0.35);
    ("morning (08-12h)", 0.6);
    ("afternoon (12-17h)", 0.7);
    ("evening (17-21h)", 1.0);
    ("late (21-24h)", 0.55);
  ]

(* Fixed metropolitan tree; base demand drawn once, then scaled. *)
let base_demand rng profile tree =
  ignore profile;
  Tree.with_clients tree (fun _ ->
      if Rng.bernoulli rng 0.6 then [ 2 + Rng.int rng 7 ] else [])

let scale_demand factor tree =
  Tree.with_clients tree (fun j ->
      List.filter_map
        (fun r ->
          let scaled = int_of_float (Float.round (float_of_int r *. factor)) in
          if scaled <= 0 then None else Some scaled)
        (Tree.clients tree j))

let () =
  let rng = Rng.create 2024 in
  let profile = Generator.high ~nodes:60 () in
  let skeleton = Generator.random rng profile in
  let demand = base_demand rng profile skeleton in
  Printf.printf
    "VOD distribution tree: %d nodes, peak demand %d requests, W = %d\n"
    (Tree.size demand) (Tree.total_requests demand) w;
  Printf.printf "reconfiguration prices: create %.2f, delete %.2f\n\n"
    cost.Cost.create cost.Cost.delete;
  Printf.printf "%-18s %28s %30s\n" "period"
    "DP servers/reused/cost" "GR servers/reused/cost";
  let dp_servers = ref [] and gr_servers = ref [] in
  let dp_bill = ref 0. and gr_bill = ref 0. in
  List.iter
    (fun (name, factor) ->
      let now = scale_demand factor demand in
      let dp_tree =
        Tree.with_pre_existing now (List.map (fun j -> (j, 1)) !dp_servers)
      in
      let gr_tree =
        Tree.with_pre_existing now (List.map (fun j -> (j, 1)) !gr_servers)
      in
      match (Dp_withpre.solve dp_tree ~w ~cost, Greedy.solve gr_tree ~w) with
      | Some dp, Some gr ->
          let gr_cost = Solution.basic_cost gr_tree cost gr in
          dp_bill := !dp_bill +. dp.Dp_withpre.cost;
          gr_bill := !gr_bill +. gr_cost;
          Printf.printf "%-18s %15d / %2d / %6.2f %17d / %2d / %6.2f\n" name
            dp.Dp_withpre.servers dp.Dp_withpre.reused dp.Dp_withpre.cost
            (Solution.cardinal gr)
            (Solution.reused gr_tree gr)
            gr_cost;
          dp_servers := Solution.nodes dp.Dp_withpre.solution;
          gr_servers := Solution.nodes gr
      | _ -> Printf.printf "%-18s infeasible demand\n" name)
    periods;
  Printf.printf "\n24h reconfiguration bill: DP %.2f vs GR %.2f (%.0f%% saved)\n"
    !dp_bill !gr_bill
    (100. *. (1. -. (!dp_bill /. !gr_bill)))
