(* The access-policy family: closest (the paper's policy) vs upwards vs
   multiple, on one instance.

   The paper's framework section (§2.1) fixes the closest policy — every
   client is served by the first replica on its path — and cites the
   policy family of Benoit, Rehn-Sonigo and Robert [2] it comes from.
   This example shows what the restriction costs: the same tree needs
   fewer and fewer servers as clients gain freedom (closest ⊇ upwards ⊇
   multiple feasible sets, so optimal counts are ordered the other way).

   Run with: dune exec examples/access_policies.exe *)

open Replica_tree
open Replica_core

let w = 10

(* A tree engineered to separate all three policies:
   - node 3 carries bundles 6 and 6: under closest both go to the same
     first server (12 > W) — infeasible;
   - upwards can split the two bundles across stacked ancestors;
   - node 4 carries one 14-request client: upwards cannot serve it at
     all (14 > W on any single server), multiple splits it. *)
let tree ~with_heavy_client =
  Tree.build
    (Tree.node
       [
         Tree.node (* 1 *)
           [ Tree.node ~clients:[ 6; 6 ] [] (* 2 *) ];
         Tree.node
           ~clients:(if with_heavy_client then [ 14 ] else [ 4 ])
           [] (* 3 *);
       ])

let describe name = function
  | Some (count, nodes) ->
      Printf.printf "  %-8s %d servers %s\n" name count nodes
  | None -> Printf.printf "  %-8s infeasible\n" name

let solve_all t =
  describe "closest"
    (Option.map
       (fun s ->
         ( Solution.cardinal s,
           Format.asprintf "%a" Solution.pp s ))
       (Greedy.solve t ~w));
  describe "upwards"
    (Option.map
       (fun r ->
         ( r.Upwards.servers,
           Format.asprintf "%a" Solution.pp r.Upwards.solution ))
       (Upwards.solve_exact t ~w));
  describe "multiple"
    (Option.map
       (fun r ->
         ( r.Multiple.servers,
           Format.asprintf "%a" Solution.pp r.Multiple.solution ))
       (Multiple.solve t ~w))

let () =
  Printf.printf "W = %d\n" w;
  print_endline
    "\nInstance A: node 2 holds two 6-request clients (12 > W together).";
  solve_all (tree ~with_heavy_client:false);
  print_endline
    "  closest must serve both bundles at one server: infeasible;\n\
    \  upwards splits them across stacked replicas.";
  print_endline
    "\nInstance B: additionally node 3 holds one 14-request client.";
  solve_all (tree ~with_heavy_client:true);
  print_endline
    "  now even upwards fails (no server fits 14); only multiple, which\n\
    \  may split a single client's requests, can serve the tree.";
  print_endline
    "\nFeasibility nests (closest => upwards => multiple), so optimal\n\
     server counts run the other way — the price of the closest policy's\n\
     simplicity, and the reason the paper's capacity checks are per-node."
