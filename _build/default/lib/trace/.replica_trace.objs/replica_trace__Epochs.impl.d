lib/trace/epochs.ml: Float Hashtbl List Trace Tree
