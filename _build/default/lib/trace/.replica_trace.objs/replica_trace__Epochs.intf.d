lib/trace/epochs.mli: Trace Tree
