lib/trace/trace.ml: Array Float Hashtbl List Tree
