lib/trace/arrivals.mli: Rng Trace Tree
