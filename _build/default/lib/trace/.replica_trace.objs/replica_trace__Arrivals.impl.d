lib/trace/arrivals.ml: Float List Rng Trace Tree
