lib/trace/trace.mli: Tree
