(** Synthetic request-arrival generators.

    Produces {!Trace.t} streams over an existing tree's client
    population. Each client's base behaviour is a homogeneous Poisson
    process whose rate equals its request count in the tree (requests
    per time unit — exactly the paper's [r_i] semantics), optionally
    modulated by a diurnal profile or perturbed by a flash crowd on one
    subtree. All randomness comes from the seeded {!Rng}. *)

val poisson :
  Rng.t -> Tree.t -> horizon:float -> Trace.t
(** [poisson rng tree ~horizon] draws, for every client position with
    request count [r], a Poisson stream of rate [r] over
    [\[0, horizon)] (exponential inter-arrivals).
    @raise Invalid_argument if [horizon <= 0]. *)

val diurnal :
  Rng.t -> Tree.t -> horizon:float -> period:float -> floor:float -> Trace.t
(** Like {!poisson} but with the instantaneous rate modulated by
    [floor + (1 - floor) · (1 + sin(2πt/period)) / 2] — a smooth
    day/night cycle bottoming at [floor · r] (thinning of a
    max-rate process, so the trace is still exact).
    @raise Invalid_argument if [horizon <= 0], [period <= 0], or
    [floor] outside [\[0, 1\]]. *)

val flash_crowd :
  Rng.t ->
  Tree.t ->
  base:Trace.t ->
  at:float ->
  duration:float ->
  node:Tree.node ->
  multiplier:float ->
  Trace.t
(** Superimpose, on top of [base], extra Poisson traffic of rate
    [(multiplier - 1) · r] for every client in the subtree of [node]
    (inclusive) during [\[at, at + duration)] — a flash crowd localized
    in the tree, the §6 scenario where request {e location} shifts.
    @raise Invalid_argument on a negative window or [multiplier < 1]. *)
