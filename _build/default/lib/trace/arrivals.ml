let exponential rng rate = -.log (1. -. Rng.float rng 1.0) /. rate

let poisson_stream rng ~rate ~start ~stop ~node ~client acc =
  if rate <= 0. then acc
  else begin
    let acc = ref acc in
    let t = ref (start +. exponential rng rate) in
    while !t < stop do
      acc := { Trace.time = !t; node; client } :: !acc;
      t := !t +. exponential rng rate
    done;
    !acc
  end

let iter_clients tree f =
  for j = 0 to Tree.size tree - 1 do
    List.iteri (fun i r -> f ~node:j ~client:i ~rate:(float_of_int r)) (Tree.clients tree j)
  done

let poisson rng tree ~horizon =
  if horizon <= 0. then invalid_arg "Arrivals.poisson: horizon must be positive";
  let acc = ref [] in
  iter_clients tree (fun ~node ~client ~rate ->
      acc := poisson_stream rng ~rate ~start:0. ~stop:horizon ~node ~client !acc);
  Trace.of_events !acc

let diurnal rng tree ~horizon ~period ~floor =
  if horizon <= 0. then invalid_arg "Arrivals.diurnal: horizon must be positive";
  if period <= 0. then invalid_arg "Arrivals.diurnal: period must be positive";
  if floor < 0. || floor > 1. then
    invalid_arg "Arrivals.diurnal: floor must be within [0, 1]";
  let modulation t =
    floor +. ((1. -. floor) *. (1. +. sin (2. *. Float.pi *. t /. period)) /. 2.)
  in
  (* Thinning: draw at the max rate, keep each event with probability
     modulation(t). *)
  let acc = ref [] in
  iter_clients tree (fun ~node ~client ~rate ->
      let events =
        poisson_stream rng ~rate ~start:0. ~stop:horizon ~node ~client []
      in
      List.iter
        (fun e ->
          if Rng.float rng 1.0 < modulation e.Trace.time then acc := e :: !acc)
        events);
  Trace.of_events !acc

let flash_crowd rng tree ~base ~at ~duration ~node ~multiplier =
  if at < 0. || duration < 0. then
    invalid_arg "Arrivals.flash_crowd: negative window";
  if multiplier < 1. then
    invalid_arg "Arrivals.flash_crowd: multiplier must be >= 1";
  let in_subtree j = j = node || Tree.is_ancestor tree ~anc:node ~desc:j in
  let extra = ref [] in
  iter_clients tree (fun ~node:j ~client ~rate ->
      if in_subtree j then
        extra :=
          poisson_stream rng
            ~rate:((multiplier -. 1.) *. rate)
            ~start:at ~stop:(at +. duration) ~node:j ~client !extra);
  Trace.merge base (Trace.of_events !extra)
