(** Experiment 1 (Figures 4 and 6): impact of pre-existing servers.

    For each value of [E] (number of randomly placed pre-existing
    servers), draw the configured number of random trees and solve each
    with the greedy baseline GR (which ignores pre-existing servers) and
    the §3 dynamic program DP. Both return minimum-replica solutions, so
    the cost difference is exactly the number of pre-existing servers
    each manages to reuse — the paper plots the average reuse of both
    algorithms against [E], DP dominating GR except at the [E ≈ 0] and
    [E ≈ N] extremes. *)

type point = {
  pre_existing : int;  (** E, the x-axis *)
  dp_reused : float;  (** average over trees *)
  dp_reused_ci95 : float;  (** 95% confidence half-width of the average *)
  gr_reused : float;
  gr_reused_ci95 : float;
  dp_servers : float;  (** sanity series: both algorithms agree *)
  gr_servers : float;
  feasible_trees : int;  (** trees where a solution exists *)
}

val run :
  ?domains:int -> ?on_progress:(int -> unit) -> Workload.cost_config ->
  point list
(** Sweep [E] from 0 to [cc_nodes] in steps of [max 1 (cc_nodes / 8)];
    [on_progress] is called with each completed [E]. Per-tree solves fan
    out over [domains] (default {!Par.default_domains}); results are
    identical at any domain count. *)

type gap_summary = {
  avg_gap : float;
      (** mean of [reused(DP) - reused(GR)] over every (tree, E) pair
          with 0 < E < N — the paper's "average reuse of 4.13 more
          servers" statistic *)
  max_gap : int;  (** the paper's "up to 15 more" statistic *)
  pairs : int;  (** population size behind the averages *)
}

val gap_summary :
  ?on_progress:(int -> unit) -> Workload.cost_config -> gap_summary
(** Re-runs the sweep collecting per-tree gaps instead of averages. *)

val to_table : point list -> Table.t
(** Figure 4/6 as a series table. *)
