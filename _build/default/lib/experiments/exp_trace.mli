(** Reconfiguration-interval ablation on trace-driven workloads.

    §6 asks how often to reconfigure when demand evolves continuously.
    Working from raw request traces (diurnal Poisson arrivals via
    {!Replica_trace.Arrivals}), this harness sweeps the aggregation
    window: short windows track the load closely but reconfigure often
    and see noisier rate estimates; long windows smooth the demand but
    leave placements stale (capacity violations show up as invalid
    epochs). Reported per window: epochs, lazy-policy reconfigurations,
    total bill, bill per unit time, and invalid epochs. Not a paper
    figure; an ablation this library adds on top of the trace
    substrate. *)

type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  horizon : float;  (** trace length in time units *)
  seed : int;
  cost : Cost.basic;
  floor : float;  (** diurnal modulation floor *)
}

val default_config : ?shape:Workload.shape -> unit -> config
(** 10 high trees of 40 nodes, 48-unit horizon, diurnal floor 0.25,
    create = 0.5, delete = 0.25. *)

type row = {
  window : float;
  epochs : float;  (** average epoch count *)
  reconfigurations : float;
  total_cost : float;
  cost_per_time : float;  (** total bill divided by the horizon *)
  invalid_epochs : float;
      (** epochs whose own (window-averaged) demand was unserveable *)
  stale_fraction : float;
      (** fraction of fine-grained (0.5-unit) sub-windows whose true
          demand violates the placement in force — the staleness that
          window-averaging hides: long windows flatten the diurnal peaks
          their placements then miss *)
}

val run : config -> float list -> row list
(** One row per window width; every width replays the same traces. *)

val to_table : row list -> Table.t
