type point = {
  bound : float;
  dp_inverse_power : float;
  gr_inverse_power : float;
  dp_feasible : int;
  gr_feasible : int;
}

type result = {
  points : point list;
  gr_overconsumption_percent : float;
  gr_peak_overconsumption_percent : float;
}

(* Cheapest power within a cost bound, from a cost-sorted frontier. *)
let power_within frontier bound =
  List.fold_left
    (fun acc r ->
      if r.Dp_power.cost <= bound +. 1e-9 then Some r.Dp_power.power else acc)
    None frontier

let run ?domains ?(on_progress = fun _ -> ()) (config : Workload.power_config) =
  let modes = config.Workload.pc_modes in
  let power = config.Workload.pc_power in
  let cost = config.Workload.pc_cost in
  let master = Rng.create config.Workload.pc_seed in
  let rngs = List.init config.Workload.pc_trees (fun _ -> Rng.split master) in
  let frontiers =
    Par.map ?domains
      (fun rng ->
        let tree = Workload.draw_power_tree rng config in
        let dp = Dp_power.frontier tree ~modes ~power ~cost in
        let gr = Greedy_power.frontier tree ~modes ~power ~cost in
        (dp, gr))
      rngs
  in
  List.iteri (fun i _ -> on_progress (i + 1)) frontiers;
  (* Sample bounds across the union of observed costs. *)
  let all_costs =
    List.concat_map
      (fun (dp, gr) -> List.map (fun r -> r.Dp_power.cost) (dp @ gr))
      frontiers
  in
  let bounds =
    match all_costs with
    | [] -> []
    | _ ->
        let lo = Stats.minimum all_costs and hi = Stats.maximum all_costs in
        let n = max 2 config.Workload.pc_bounds in
        List.init n (fun i ->
            lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))
  in
  let points =
    List.map
      (fun bound ->
        let dp_inv = ref [] and gr_inv = ref [] in
        let dp_feasible = ref 0 and gr_feasible = ref 0 in
        List.iter
          (fun (dp, gr) ->
            (match power_within dp bound with
            | Some p ->
                incr dp_feasible;
                dp_inv := (1. /. p) :: !dp_inv
            | None -> dp_inv := 0. :: !dp_inv);
            match power_within gr bound with
            | Some p ->
                incr gr_feasible;
                gr_inv := (1. /. p) :: !gr_inv
            | None -> gr_inv := 0. :: !gr_inv)
          frontiers;
        {
          bound;
          dp_inverse_power = Stats.mean !dp_inv;
          gr_inverse_power = Stats.mean !gr_inv;
          dp_feasible = !dp_feasible;
          gr_feasible = !gr_feasible;
        })
      bounds
  in
  (* Headline ratio: on per-tree, per-bound pairs where both algorithms
     are feasible, how much more power does GR draw? *)
  let ratios_at bound =
    List.filter_map
      (fun (dp, gr) ->
        match (power_within dp bound, power_within gr bound) with
        | Some pd, Some pg -> Some (100. *. ((pg /. pd) -. 1.))
        | _ -> None)
      frontiers
  in
  let per_bound = List.map (fun b -> Stats.mean (ratios_at b)) bounds in
  {
    points;
    gr_overconsumption_percent = Stats.mean (List.concat_map ratios_at bounds);
    gr_peak_overconsumption_percent = Stats.maximum per_bound;
  }

let to_table r =
  let table =
    Table.make
      ~header:
        [
          "cost bound";
          "DP 1/power";
          "GR 1/power";
          "DP feasible";
          "GR feasible";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Table.fmt_float ~decimals:2 p.bound;
          Table.fmt_float ~decimals:6 p.dp_inverse_power;
          Table.fmt_float ~decimals:6 p.gr_inverse_power;
          string_of_int p.dp_feasible;
          string_of_int p.gr_feasible;
        ])
    r.points;
  table
