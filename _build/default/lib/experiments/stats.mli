(** Small descriptive-statistics toolkit for the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val minimum : float list -> float
val maximum : float list -> float

val median : float list -> float
(** Lower median; 0 on the empty list. *)

val quantile : float -> float list -> float
(** [quantile q l] with [0 <= q <= 1], nearest-rank; 0 on the empty list.
    @raise Invalid_argument if [q] is out of range. *)

val histogram : int list -> (int * int) list
(** Occurrence counts of each distinct value, sorted by value. *)

val mean_int : int list -> float

val confidence95 : float list -> float
(** Half-width of the normal-approximation 95% confidence interval of the
    mean ([1.96 * stddev / sqrt n]); 0 on lists shorter than 2. *)
