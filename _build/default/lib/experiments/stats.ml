let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let stddev l =
  match l with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean l in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. l in
      sqrt (sq /. float_of_int (List.length l))

let minimum = function [] -> 0. | x :: rest -> List.fold_left min x rest
let maximum = function [] -> 0. | x :: rest -> List.fold_left max x rest

let sorted l = List.sort compare l

let median l =
  match sorted l with
  | [] -> 0.
  | s -> List.nth s ((List.length s - 1) / 2)

let quantile q l =
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  match sorted l with
  | [] -> 0.
  | s ->
      let n = List.length s in
      let rank =
        int_of_float (Float.round (q *. float_of_int (n - 1)))
      in
      List.nth s rank

let histogram l =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      Hashtbl.replace tbl v ((try Hashtbl.find tbl v with Not_found -> 0) + 1))
    l;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let mean_int l = mean (List.map float_of_int l)

let confidence95 l =
  match l with
  | [] | [ _ ] -> 0.
  | _ -> 1.96 *. stddev l /. sqrt (float_of_int (List.length l))
