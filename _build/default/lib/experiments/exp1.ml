type point = {
  pre_existing : int;
  dp_reused : float;
  dp_reused_ci95 : float;
  gr_reused : float;
  gr_reused_ci95 : float;
  dp_servers : float;
  gr_servers : float;
  feasible_trees : int;
}

let src = Logs.Src.create "replica.exp1" ~doc:"Experiment 1 harness"

module Log = (val Logs.src_log src : Logs.LOG)

let run ?domains ?(on_progress = fun _ -> ()) (config : Workload.cost_config) =
  let w = Workload.capacity in
  (* The experiment's reading (reuse = solution quality at equal server
     counts) requires the Eq. 2 cost to order solutions by server count
     first: N·create + N·delete < 1. *)
  let n = float_of_int config.Workload.cc_nodes in
  if
    (n *. config.Workload.cc_cost.Cost.create)
    +. (n *. config.Workload.cc_cost.Cost.delete)
    >= 1.
  then
    Log.warn (fun f ->
        f
          "cost parameters do not guarantee minimum-server solutions            (N*create + N*delete >= 1); server-count columns may diverge");
  let master = Rng.create config.Workload.cc_seed in
  (* One independent stream per tree so every E value sees the same
     trees and the same pre-existing draws are comparable across E. *)
  let tree_rngs =
    List.init config.Workload.cc_trees (fun _ -> Rng.split master)
  in
  let bare_trees =
    List.map (fun rng -> Workload.draw_cost_tree rng config) tree_rngs
  in
  let steps =
    let step = max 1 (config.Workload.cc_nodes / 8) in
    let rec up e acc =
      if e >= config.Workload.cc_nodes then
        List.rev (config.Workload.cc_nodes :: acc)
      else up (e + step) (e :: acc)
    in
    up 0 []
  in
  List.map
    (fun e ->
      (* Per-tree work fans out over domains; every tree owns its RNG. *)
      let per_tree =
        Par.map2 ?domains
          (fun rng bare ->
            let rng = Rng.copy rng in
            let tree = Generator.add_pre_existing rng bare e in
            match
              ( Dp_withpre.solve tree ~w ~cost:config.Workload.cc_cost,
                Greedy.solve tree ~w )
            with
            | Some dp, Some gr ->
                Some
                  ( dp.Dp_withpre.reused,
                    Solution.reused tree gr,
                    dp.Dp_withpre.servers,
                    Solution.cardinal gr )
            | None, None -> None
            | Some _, None | None, Some _ ->
                (* Both solvers share one feasibility notion. *)
                assert false)
          tree_rngs bare_trees
      in
      let dp_reused = ref []
      and gr_reused = ref []
      and dp_servers = ref []
      and gr_servers = ref []
      and feasible = ref 0 in
      List.iter
        (function
          | Some (dr, gr_r, ds, gs) ->
              incr feasible;
              dp_reused := float_of_int dr :: !dp_reused;
              gr_reused := float_of_int gr_r :: !gr_reused;
              dp_servers := float_of_int ds :: !dp_servers;
              gr_servers := float_of_int gs :: !gr_servers
          | None -> ())
        per_tree;
      on_progress e;
      {
        pre_existing = e;
        dp_reused = Stats.mean !dp_reused;
        dp_reused_ci95 = Stats.confidence95 !dp_reused;
        gr_reused = Stats.mean !gr_reused;
        gr_reused_ci95 = Stats.confidence95 !gr_reused;
        dp_servers = Stats.mean !dp_servers;
        gr_servers = Stats.mean !gr_servers;
        feasible_trees = !feasible;
      })
    steps

let to_table points =
  let table =
    Table.make
      ~header:
        [
          "E";
          "DP reused";
          "+-95%";
          "GR reused";
          "+-95%";
          "DP servers";
          "GR servers";
          "trees";
        ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          string_of_int p.pre_existing;
          Table.fmt_float ~decimals:2 p.dp_reused;
          Table.fmt_float ~decimals:2 p.dp_reused_ci95;
          Table.fmt_float ~decimals:2 p.gr_reused;
          Table.fmt_float ~decimals:2 p.gr_reused_ci95;
          Table.fmt_float ~decimals:2 p.dp_servers;
          Table.fmt_float ~decimals:2 p.gr_servers;
          string_of_int p.feasible_trees;
        ])
    points;
  table

type gap_summary = { avg_gap : float; max_gap : int; pairs : int }

let gap_summary ?(on_progress = fun _ -> ()) (config : Workload.cost_config) =
  let w = Workload.capacity in
  let master = Rng.create config.Workload.cc_seed in
  let tree_rngs =
    List.init config.Workload.cc_trees (fun _ -> Rng.split master)
  in
  let bare_trees =
    List.map (fun rng -> Workload.draw_cost_tree rng config) tree_rngs
  in
  let gaps = ref [] in
  let step = max 1 (config.Workload.cc_nodes / 8) in
  let e = ref step in
  while !e < config.Workload.cc_nodes do
    List.iter2
      (fun rng bare ->
        let rng = Rng.copy rng in
        let tree = Generator.add_pre_existing rng bare !e in
        match
          ( Dp_withpre.solve tree ~w ~cost:config.Workload.cc_cost,
            Greedy.solve tree ~w )
        with
        | Some dp, Some gr ->
            gaps := (dp.Dp_withpre.reused - Solution.reused tree gr) :: !gaps
        | None, None -> ()
        | Some _, None | None, Some _ -> assert false)
      tree_rngs bare_trees;
    on_progress !e;
    e := !e + step
  done;
  {
    avg_gap = Stats.mean_int !gaps;
    max_gap = List.fold_left max 0 !gaps;
    pairs = List.length !gaps;
  }
