type shape = Fat | High

let shape_to_string = function Fat -> "fat" | High -> "high"

let profile shape ~nodes ~max_requests =
  let base =
    match shape with
    | Fat -> Generator.fat ~nodes ()
    | High -> Generator.high ~nodes ()
  in
  { base with Generator.max_requests }

let capacity = 10

type cost_config = {
  cc_shape : shape;
  cc_trees : int;
  cc_nodes : int;
  cc_seed : int;
  cc_cost : Cost.basic;
}

let default_cost_config ?(shape = Fat) () =
  {
    cc_shape = shape;
    cc_trees = 200;
    cc_nodes = 100;
    cc_seed = 1;
    cc_cost = Cost.basic ~create:0.001 ~delete:0.00001 ();
  }

type power_config = {
  pc_shape : shape;
  pc_trees : int;
  pc_nodes : int;
  pc_pre : int;
  pc_seed : int;
  pc_modes : Modes.t;
  pc_power : Power.t;
  pc_cost : Cost.modal;
  pc_bounds : int;
}

let default_power_config ?(shape = Fat) ?(pre = 5) ?(expensive = false) () =
  let modes = Modes.make [ 5; 10 ] in
  {
    pc_shape = shape;
    pc_trees = 100;
    pc_nodes = 50;
    pc_pre = pre;
    pc_seed = 1;
    pc_modes = modes;
    pc_power = Power.paper_exp3 ~modes;
    pc_cost =
      (if expensive then Cost.paper_expensive ~modes:2
       else Cost.paper_cheap ~modes:2);
    pc_bounds = 16;
  }

let draw_cost_tree rng config =
  Generator.random rng
    (profile config.cc_shape ~nodes:config.cc_nodes ~max_requests:6)

let draw_power_tree rng config =
  let t =
    Generator.random rng
      (profile config.pc_shape ~nodes:config.pc_nodes ~max_requests:5)
  in
  Generator.add_pre_existing rng ~mode:2 t config.pc_pre
