(** Deterministic parallel map over OCaml 5 domains.

    The experiment harness is embarrassingly parallel: every tree gets
    its own pre-split PRNG and the solvers touch no shared state, so
    per-instance work can fan out across cores without changing any
    result — outputs are collected positionally, and randomness is fixed
    before the fan-out. Used by {!Exp1}, {!Exp2} and {!Exp3};
    the timing-oriented harnesses ({!Scaling}, {!Exp_heuristics},
    {!Exp_update}) stay sequential because they measure CPU time. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. [domains] defaults to
    {!default_domains}; values [<= 1] (or lists of length [<= 1]) run
    sequentially in the calling domain. Work is distributed by atomic
    work-stealing over the input positions. An exception raised by [f]
    propagates to the caller. *)

val map2 : ?domains:int -> ('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list
(** Pairwise variant.
    @raise Invalid_argument on length mismatch. *)
