type step_point = {
  step : int;
  dp_cumulative_reused : float;
  gr_cumulative_reused : float;
  dp_servers : float;
  gr_servers : float;
}

type result = { steps : step_point list; histogram : (int * float) list }

(* Per-tree simulation: returns (dp_reused, gr_reused) for each step. *)
let simulate_tree rng (config : Workload.cost_config) ~steps =
  let w = Workload.capacity in
  let profile =
    Workload.profile config.Workload.cc_shape ~nodes:config.Workload.cc_nodes
      ~max_requests:6
  in
  let base = Workload.draw_cost_tree rng config in
  let dp_servers = ref [] and gr_servers = ref [] in
  let out = ref [] in
  for _ = 1 to steps do
    (* One shared request redraw per step, seen by both algorithms. *)
    let demand = Generator.redraw_requests rng profile base in
    let dp_tree =
      Tree.with_pre_existing demand (List.map (fun j -> (j, 1)) !dp_servers)
    in
    let gr_tree =
      Tree.with_pre_existing demand (List.map (fun j -> (j, 1)) !gr_servers)
    in
    match
      ( Dp_withpre.solve dp_tree ~w ~cost:config.Workload.cc_cost,
        Greedy.solve gr_tree ~w )
    with
    | Some dp, Some gr ->
        let gr_reused = Solution.reused gr_tree gr in
        out :=
          (dp.Dp_withpre.reused, gr_reused, dp.Dp_withpre.servers,
           Solution.cardinal gr)
          :: !out;
        dp_servers := Solution.nodes dp.Dp_withpre.solution;
        gr_servers := Solution.nodes gr
    | None, None ->
        (* Infeasible demand draw: both skip the step, keeping servers. *)
        out :=
          (0, 0, List.length !dp_servers, List.length !gr_servers) :: !out
    | Some _, None | None, Some _ -> assert false
  done;
  List.rev !out

let run ?domains ?(steps = 20) ?(on_progress = fun _ -> ())
    (config : Workload.cost_config) =
  let master = Rng.create config.Workload.cc_seed in
  (* Split all streams up front, then fan the independent per-tree
     simulations out over domains. *)
  let rngs = List.init config.Workload.cc_trees (fun _ -> Rng.split master) in
  let per_tree =
    Par.map ?domains (fun rng -> simulate_tree rng config ~steps) rngs
  in
  List.iteri (fun i _ -> on_progress (i + 1)) per_tree;
  let trees = float_of_int config.Workload.cc_trees in
  let step_points =
    List.init steps (fun k ->
        let upto tree = List.filteri (fun i _ -> i <= k) tree in
        let at tree = List.nth tree k in
        let sum f =
          List.fold_left
            (fun acc tree ->
              acc + List.fold_left (fun a x -> a + f x) 0 (upto tree))
            0 per_tree
        in
        let mean_at f =
          float_of_int (List.fold_left (fun acc tree -> acc + f (at tree)) 0 per_tree)
          /. trees
        in
        {
          step = k + 1;
          dp_cumulative_reused =
            float_of_int (sum (fun (d, _, _, _) -> d)) /. trees;
          gr_cumulative_reused =
            float_of_int (sum (fun (_, g, _, _) -> g)) /. trees;
          dp_servers = mean_at (fun (_, _, ds, _) -> ds);
          gr_servers = mean_at (fun (_, _, _, gs) -> gs);
        })
  in
  let diffs =
    List.concat_map
      (fun tree -> List.map (fun (d, g, _, _) -> d - g) tree)
      per_tree
  in
  let histogram =
    List.map
      (fun (v, count) -> (v, float_of_int count /. trees))
      (Stats.histogram diffs)
  in
  { steps = step_points; histogram }

let steps_table r =
  let table =
    Table.make ~header:[ "step"; "DP cumulative reused"; "GR cumulative reused" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          string_of_int p.step;
          Table.fmt_float ~decimals:2 p.dp_cumulative_reused;
          Table.fmt_float ~decimals:2 p.gr_cumulative_reused;
        ])
    r.steps;
  table

let histogram_table r =
  let table =
    Table.make ~header:[ "reused(DP) - reused(GR)"; "avg steps per tree" ]
  in
  List.iter
    (fun (v, c) ->
      Table.add_row table [ string_of_int v; Table.fmt_float ~decimals:2 c ])
    r.histogram;
  table
