lib/experiments/stats.ml: Float Hashtbl List
