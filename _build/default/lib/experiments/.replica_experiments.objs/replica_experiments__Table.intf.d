lib/experiments/table.mli:
