lib/experiments/exp1.mli: Table Workload
