lib/experiments/scaling.ml: Cost Dp_nopre Dp_power Dp_withpre Generator Greedy List Modes Option Power Rng Solution Sys Table Workload
