lib/experiments/exp1.ml: Cost Dp_withpre Generator Greedy List Logs Par Rng Solution Stats Table Workload
