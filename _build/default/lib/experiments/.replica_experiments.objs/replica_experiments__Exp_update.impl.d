lib/experiments/exp_update.ml: Cost Dp_withpre Generator Greedy Heuristics_cost List Option Rng Solution Stats Sys Table Workload
