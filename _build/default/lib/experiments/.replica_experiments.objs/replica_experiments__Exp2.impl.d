lib/experiments/exp2.ml: Dp_withpre Generator Greedy List Par Rng Solution Stats Table Tree Workload
