lib/experiments/workload.mli: Cost Generator Modes Power Rng Tree
