lib/experiments/exp3.ml: Dp_power Greedy_power List Par Rng Stats Table Workload
