lib/experiments/exp_policy.mli: Cost Table Update_policy Workload
