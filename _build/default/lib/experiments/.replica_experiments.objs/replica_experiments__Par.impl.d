lib/experiments/par.ml: Array Atomic Domain List
