lib/experiments/exp_trace.ml: Array Cost Generator List Replica_trace Rng Solution Stats Table Update_policy Workload
