lib/experiments/workload.ml: Cost Generator Modes Power
