lib/experiments/par.mli:
