lib/experiments/scaling.mli: Table Workload
