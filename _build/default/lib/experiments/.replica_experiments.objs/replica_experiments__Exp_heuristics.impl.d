lib/experiments/exp_heuristics.ml: Cost Dp_power Fun Generator Greedy_power Heuristics List Modes Option Power Rng Stats Sys Table Workload
