lib/experiments/exp_shapes.ml: Cost Dp_power Dp_withpre Generator Greedy List Modes Rng Solution Stats Sys Table Tree Workload
