lib/experiments/exp_shapes.mli: Cost Table
