lib/experiments/exp_heuristics.mli: Table Workload
