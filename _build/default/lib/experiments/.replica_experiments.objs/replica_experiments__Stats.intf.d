lib/experiments/stats.mli:
