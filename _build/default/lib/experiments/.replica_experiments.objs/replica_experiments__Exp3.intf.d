lib/experiments/exp3.mli: Table Workload
