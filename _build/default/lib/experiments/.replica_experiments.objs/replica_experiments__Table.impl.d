lib/experiments/table.ml: Array Buffer Float List Printf String
