lib/experiments/exp_update.mli: Cost Table Workload
