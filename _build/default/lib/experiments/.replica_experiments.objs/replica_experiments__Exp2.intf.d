lib/experiments/exp2.mli: Table Workload
