lib/experiments/exp_trace.mli: Cost Table Workload
