lib/experiments/exp_policy.ml: Cost Generator List Rng Stats Table Tree Update_policy Workload
