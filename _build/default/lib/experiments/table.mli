(** Text-table rendering for experiment outputs.

    The benchmark harness prints each reproduced figure as an aligned
    series table; this module owns the formatting so every experiment
    reports through the same visual channel, plus CSV export for external
    plotting. *)

type t

val make : header:string list -> t
(** Start a table with the given column names. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells.
    @raise Invalid_argument if the row is longer than the header. *)

val add_float_row : t -> ?decimals:int -> float list -> unit
(** Convenience: format every cell with [decimals] digits (default 3). *)

val render : t -> string
(** Aligned, boxed, human-oriented rendering. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas or quotes). *)

val print : t -> unit
(** [print t] writes {!render} to stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Shared float formatting ("-" for NaN, "inf"/"-inf" for infinities). *)
