type measurement = {
  algorithm : string;
  nodes : int;
  pre_existing : int;
  seconds : float;
  servers : int;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

let measure_cost_algorithms ?(sizes = [ 20; 40; 80; 160 ]) ?(seed = 7) ~shape
    () =
  let w = Workload.capacity in
  let cost = Cost.basic ~create:0.01 ~delete:0.0001 () in
  List.concat_map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
      in
      let pre = nodes / 4 in
      let tree = Generator.add_pre_existing rng bare pre in
      let gr_time, gr = time (fun () -> Greedy.solve tree ~w) in
      let dpn_time, dpn = time (fun () -> Dp_nopre.solve tree ~w) in
      let dpp_time, dpp = time (fun () -> Dp_withpre.solve tree ~w ~cost) in
      let card = function Some s -> Solution.cardinal s | None -> -1 in
      [
        {
          algorithm = "GR";
          nodes;
          pre_existing = pre;
          seconds = gr_time;
          servers = card gr;
        };
        {
          algorithm = "DP-NoPre";
          nodes;
          pre_existing = pre;
          seconds = dpn_time;
          servers = card (Option.map (fun r -> r.Dp_nopre.solution) dpn);
        };
        {
          algorithm = "DP-WithPre";
          nodes;
          pre_existing = pre;
          seconds = dpp_time;
          servers = card (Option.map (fun r -> r.Dp_withpre.solution) dpp);
        };
      ])
    sizes

let measure_power_dp ?(sizes = [ 10; 20; 30 ]) ?(pre = 3) ?(seed = 7) ~shape
    () =
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let cost = Cost.paper_cheap ~modes:2 in
  List.map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:5)
      in
      let tree = Generator.add_pre_existing rng ~mode:2 bare (min pre nodes) in
      let seconds, solved =
        time (fun () -> Dp_power.solve tree ~modes ~power ~cost ())
      in
      {
        algorithm = "DP-Power";
        nodes;
        pre_existing = min pre nodes;
        seconds;
        servers =
          (match solved with
          | Some r -> Solution.cardinal r.Dp_power.solution
          | None -> -1);
      })
    sizes

let to_table measurements =
  let table =
    Table.make ~header:[ "algorithm"; "N"; "E"; "seconds"; "servers" ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          m.algorithm;
          string_of_int m.nodes;
          string_of_int m.pre_existing;
          Table.fmt_float ~decimals:4 m.seconds;
          string_of_int m.servers;
        ])
    measurements;
  table
