(** Experiment 3 (Figures 8–11): power minimization under a cost bound.

    For each tree, compute the bi-criteria DP's full (cost, power) Pareto
    frontier once, and the GR baseline's capacity-sweep candidates once;
    then for every sampled cost bound read off each algorithm's minimal
    power within the bound. The paper plots the {e inverse} of the power
    (0 when an algorithm finds no solution under the bound), averaged
    over all trees — higher is better. Variants: with pre-existing
    servers (Fig. 8), without (Fig. 9), on high trees (Fig. 10), with the
    expensive cost function (Fig. 11). *)

type point = {
  bound : float;  (** cost bound, the x-axis *)
  dp_inverse_power : float;  (** average of 1/power, 0 when infeasible *)
  gr_inverse_power : float;
  dp_feasible : int;  (** trees DP solved within the bound *)
  gr_feasible : int;
}

type result = {
  points : point list;
  gr_overconsumption_percent : float;
      (** extra power GR pays over DP, in percent, averaged over every
          (tree, bound) pair where both are feasible *)
  gr_peak_overconsumption_percent : float;
      (** the same ratio at the worst bound for GR — the paper's "GR
          consumes more than 30% more power than DP when the cost bound
          is between 29 and 34" headline is a mid-range (peak) figure *)
}

val run :
  ?domains:int -> ?on_progress:(int -> unit) -> Workload.power_config ->
  result
(** Bounds are sampled uniformly across the observed cost range of all
    candidate solutions, [pc_bounds] of them. Per-tree frontier
    computations fan out over [domains] (default
    {!Par.default_domains}); results are identical at any domain
    count. *)

val to_table : result -> Table.t
