(** Experiment 2 (Figures 5 and 7): consecutive reconfigurations.

    Each tree evolves over [steps] update steps: at every step the client
    request pattern is redrawn, and each algorithm recomputes a placement
    {e starting from the servers it placed at the previous step} (its own
    pre-existing set — after step one, DP and GR histories diverge). The
    paper reports (left plot) the cumulative number of reused servers per
    step for both algorithms, and (right plot) the histogram of the
    per-step difference [reused(DP) - reused(GR)]. *)

type step_point = {
  step : int;  (** 1-based reconfiguration step *)
  dp_cumulative_reused : float;  (** averaged over trees *)
  gr_cumulative_reused : float;
  dp_servers : float;  (** mean placement size this step *)
  gr_servers : float;
      (** the paper: "they always reach the same total number of servers
          since they have the same requests" — these two columns must
          coincide whenever the cost function orders by server count
          first (the test suite pins this) *)
}

type result = {
  steps : step_point list;
  histogram : (int * float) list;
      (** value of [reused(DP) - reused(GR)] → average number of steps
          per tree at which it occurred *)
}

val run :
  ?domains:int -> ?steps:int -> ?on_progress:(int -> unit) ->
  Workload.cost_config -> result
(** [steps] defaults to the paper's 20. Per-tree simulations fan out
    over [domains] (default {!Par.default_domains}); results are
    identical at any domain count. *)

val steps_table : result -> Table.t
(** Figure 5-left / 7-left. *)

val histogram_table : result -> Table.t
(** Figure 5-right / 7-right. *)
