(** The paper's §5 synthetic workloads, with a scaling knob.

    §5.1 uses trees of [N = 100] internal nodes of capacity [W = 10]
    where each node has 6–9 children ("fat"; Figures 4–5) or 2–4
    children ("high"; Figures 6–7), carries a client with probability
    0.5, and each client issues 1–6 requests. §5.2 uses [N = 50],
    [E = 5] pre-existing servers, 1–5 requests, modes [{5, 10}],
    [alpha = 3] with [P_i = W_1^3/10 + W_i^3].

    The paper reports ~40 s/tree (Exp. 1) and ~5 min/tree (Exp. 3) on
    2010 hardware; our implementation bounds every DP table by its own
    subtree content and carries placements in O(1)-append lists, which
    brings the full paper-scale sweep to seconds — so the defaults below
    ARE the paper's sizes. Every field is public and exposed by the CLI.
    EXPERIMENTS.md records the outputs. *)

type shape = Fat | High

val shape_to_string : shape -> string

val profile : shape -> nodes:int -> max_requests:int -> Generator.profile
(** The §5 client model (probability 0.5, 1–[max_requests] requests) on
    the given branching shape. *)

val capacity : int
(** [W = 10], the §5 server capacity. *)

(** {1 Experiment 1/2 (cost only)} *)

type cost_config = {
  cc_shape : shape;
  cc_trees : int;  (** trees averaged over (paper: 200) *)
  cc_nodes : int;  (** N (paper: 100) *)
  cc_seed : int;
  cc_cost : Cost.basic;
      (** must satisfy [N·create + N·delete < 1] so that the optimal cost
          orders solutions by server count first, reuse second — the
          paper's Experiment 1 setting "both algorithms return a solution
          with the minimum number of replicas" *)
}

val default_cost_config : ?shape:shape -> unit -> cost_config
(** The paper's scale: 200 trees of 100 nodes, seed 1,
    create = 0.001, delete = 0.00001 (satisfying the ordering condition
    with room to spare at N = 100). *)

(** {1 Experiment 3 (power)} *)

type power_config = {
  pc_shape : shape;
  pc_trees : int;  (** paper: 100 *)
  pc_nodes : int;  (** paper: 50 *)
  pc_pre : int;  (** pre-existing servers, initial mode 2 (paper: 5) *)
  pc_seed : int;
  pc_modes : Modes.t;  (** paper: {5, 10} *)
  pc_power : Power.t;  (** paper: P_i = W_1^3/10 + W_i^3 *)
  pc_cost : Cost.modal;  (** paper: cheap (Fig. 8-10) or expensive (Fig. 11) *)
  pc_bounds : int;  (** number of cost-bound sample points on the x axis *)
}

val default_power_config :
  ?shape:shape -> ?pre:int -> ?expensive:bool -> unit -> power_config
(** The paper's scale: 100 trees of 50 nodes, 5 pre-existing (0 with
    [~pre:0] for Fig. 9), cheap cost function unless [expensive]
    (Fig. 11), 16 bound samples. *)

val draw_cost_tree : Rng.t -> cost_config -> Tree.t
(** One §5.1 tree, without pre-existing servers. *)

val draw_power_tree : Rng.t -> power_config -> Tree.t
(** One §5.2 tree with [pc_pre] pre-existing servers at initial mode 2. *)
