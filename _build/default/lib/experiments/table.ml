type t = { header : string list; mutable rows : string list list }

let make ~header = { header; rows = [] }

let add_row t row =
  let width = List.length t.header in
  if List.length row > width then invalid_arg "Table.add_row: row too long";
  let padded = row @ List.init (width - List.length row) (fun _ -> "") in
  t.rows <- padded :: t.rows

let fmt_float ?(decimals = 3) v =
  if Float.is_nan v then "-"
  else if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else Printf.sprintf "%.*f" decimals v

let add_float_row t ?decimals row =
  add_row t (List.map (fmt_float ?decimals) row)

let columns t = List.length t.header

let widths t =
  let w = Array.make (columns t) 0 in
  let feed row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  feed t.header;
  List.iter feed t.rows;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 512 in
  let line ch =
    Array.iter
      (fun width -> Buffer.add_string buf ("+" ^ String.make (width + 2) ch))
      w;
    Buffer.add_string buf "+\n"
  in
  let row cells =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf "| %*s " w.(i) cell))
      cells;
    Buffer.add_string buf "|\n"
  in
  line '-';
  row t.header;
  line '-';
  List.iter row (List.rev t.rows);
  line '-';
  Buffer.contents buf

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (line t.header :: List.rev_map line t.rows) ^ "\n"

let print t = print_string (render t)
