type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  horizon : float;
  seed : int;
  cost : Cost.basic;
  floor : float;
}

let default_config ?(shape = Workload.High) () =
  {
    shape;
    trees = 10;
    nodes = 40;
    horizon = 48.;
    seed = 1;
    cost = Cost.basic ~create:0.5 ~delete:0.25 ();
    floor = 0.25;
  }

type row = {
  window : float;
  epochs : float;
  reconfigurations : float;
  total_cost : float;
  cost_per_time : float;
  invalid_epochs : float;
  stale_fraction : float;
}

let fine_resolution = 0.5

(* Fraction of fine sub-windows whose true demand overflows the placement
   that the policy had in force at that time. *)
let staleness tree trace ~window summary =
  let fine = Replica_trace.Epochs.epochs trace tree ~window:fine_resolution in
  let records = Array.of_list summary.Update_policy.records in
  let violations = ref 0 and total = ref 0 in
  List.iteri
    (fun k fine_tree ->
      let coarse =
        int_of_float (float_of_int k *. fine_resolution /. window)
      in
      if coarse < Array.length records then begin
        incr total;
        let placement = records.(coarse).Update_policy.servers in
        if
          not
            (Solution.is_valid fine_tree ~w:Workload.capacity placement)
        then incr violations
      end)
    fine;
  if !total = 0 then 0. else float_of_int !violations /. float_of_int !total

let run config windows =
  let master = Rng.create config.seed in
  (* Draw trees and traces once; each window re-aggregates them. *)
  let instances =
    List.init config.trees (fun _ ->
        let rng = Rng.split master in
        let tree =
          Generator.random rng
            (Workload.profile config.shape ~nodes:config.nodes ~max_requests:6)
        in
        let trace =
          Replica_trace.Arrivals.diurnal rng tree ~horizon:config.horizon
            ~period:24. ~floor:config.floor
        in
        (tree, trace))
  in
  List.map
    (fun window ->
      let summaries =
        List.map
          (fun (tree, trace) ->
            let epochs = Replica_trace.Epochs.epochs trace tree ~window in
            let summary =
              Update_policy.simulate ~w:Workload.capacity ~cost:config.cost
                Update_policy.Lazy epochs
            in
            (List.length epochs, summary, staleness tree trace ~window summary))
          instances
      in
      {
        window;
        epochs =
          Stats.mean (List.map (fun (n, _, _) -> float_of_int n) summaries);
        reconfigurations =
          Stats.mean
            (List.map
               (fun (_, s, _) -> float_of_int s.Update_policy.reconfigurations)
               summaries);
        total_cost =
          Stats.mean
            (List.map (fun (_, s, _) -> s.Update_policy.total_cost) summaries);
        cost_per_time =
          Stats.mean
            (List.map
               (fun (_, s, _) -> s.Update_policy.total_cost /. config.horizon)
               summaries);
        invalid_epochs =
          Stats.mean
            (List.map
               (fun (_, s, _) -> float_of_int s.Update_policy.invalid_epochs)
               summaries);
        stale_fraction =
          Stats.mean (List.map (fun (_, _, f) -> f) summaries);
      })
    windows

let to_table rows =
  let table =
    Table.make
      ~header:
        [
          "window";
          "epochs";
          "reconfigurations";
          "total cost";
          "cost/time";
          "invalid epochs";
          "stale fraction";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.fmt_float ~decimals:1 r.window;
          Table.fmt_float ~decimals:1 r.epochs;
          Table.fmt_float ~decimals:1 r.reconfigurations;
          Table.fmt_float ~decimals:2 r.total_cost;
          Table.fmt_float ~decimals:3 r.cost_per_time;
          Table.fmt_float ~decimals:2 r.invalid_epochs;
          Table.fmt_float ~decimals:3 r.stale_fraction;
        ])
    rows;
  table
