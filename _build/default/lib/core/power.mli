(** Power-consumption model (Eq. 3).

    A server operated at mode [W_i] dissipates
    [P(static) + W_i^alpha] watts, where [alpha ∈ [2..3]] depends on the
    hardware model and [P(static)] is the cost of being powered on at
    all. The total power of a solution is the sum over its servers. *)

type t = { static : float; alpha : float }
(** Model parameters. *)

val make : ?static:float -> ?alpha:float -> unit -> t
(** Defaults: [static = 0.], [alpha = 3.] (the paper's NP-completeness
    proof uses no static power; its Experiment 3 uses [alpha = 3] with
    [static = W_1^3 / 10]).
    @raise Invalid_argument if [static < 0] or [alpha < 1]. *)

val paper_exp3 : modes:Modes.t -> t
(** The §5.2 model: [P_i = W_1^3 / 10 + W_i^3]. *)

val of_mode : t -> Modes.t -> int -> float
(** [of_mode p modes i] is the power drawn by one server at mode [i]. *)

val of_load : t -> Modes.t -> int -> float
(** Power drawn by one server processing a given load (mode inferred). *)

val dynamic : t -> Modes.t -> int -> float
(** Dynamic part only, [W_i^alpha]. *)

val total : t -> Modes.t -> int list -> float
(** [total p modes loads] sums {!of_load} over the server loads. *)
