(** The {e Upwards} access policy (extension; cf. reference [2]).

    Under Upwards, each client's request bundle is served in full by
    {e some} ancestor holding a replica — not necessarily the closest
    one — but may not be split (that is {!Multiple}). Deciding the
    minimal replica count under Upwards is NP-hard ([2]): even checking
    a fixed replica set is a bin-packing-style assignment problem, so
    this module offers an exact backtracking solver for small instances
    (the test oracle) and a bottom-up first-fit-decreasing heuristic for
    everything else.

    Feasibility relations the test-suite checks, for any fixed replica
    set: closest-valid ⇒ upwards-valid ⇒ multiple-valid, and therefore
    [min-servers(Multiple) <= min-servers(Upwards) <= min-servers(closest)].

    This module is an extension beyond the reproduced paper; it rounds
    out the access-policy family the framework section situates the
    closest policy in. *)

val max_clients_exact : int
(** Backtracking guard (20 client bundles). *)

val assignment_exists : Tree.t -> w:int -> Solution.t -> bool
(** Exact check that every client bundle fits on some replica ancestor
    within capacity [w]. Backtracking over bundles in decreasing size.
    @raise Invalid_argument if the tree has more than
    {!max_clients_exact} clients or [w <= 0]. *)

type result = { solution : Solution.t; servers : int }

val solve_exact : Tree.t -> w:int -> result option
(** Minimal replica count by subset enumeration in increasing
    cardinality; exact, exponential — test oracle only.
    @raise Invalid_argument beyond {!Brute.max_nodes} nodes or
    {!max_clients_exact} clients. *)

val solve_heuristic : Tree.t -> w:int -> result option
(** Bottom-up heuristic: carry unassigned bundles upward; when their sum
    exceeds [w] at a node, open a server there and pack it
    first-fit-decreasing; close the run at the root. Always returns a
    valid Upwards placement when it returns at all; may use more servers
    than the optimum (tests quantify the gap against {!solve_exact}). *)
