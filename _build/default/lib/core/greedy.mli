(** Optimal greedy algorithm for [MinCost-NoPre] (the baseline "GR").

    This is the O(N log N) strategy of Wu, Lin and Liu [19] for the
    closest policy: traverse the tree bottom-up, maintaining for every
    node the number of requests flowing up through it; whenever the flow
    at a node exceeds the capacity [W], place replicas at the children
    carrying the largest flows — each absorbs its whole flow — until the
    residue fits. Deferring placement as high as possible and absorbing
    the largest flows first simultaneously minimizes the replica count
    and, for that count, the number of requests traversing each node
    (cf. Lemma 1), which makes the greedy optimal {e without}
    pre-existing servers. §3.1 shows it is no longer optimal with them. *)

val solve : Tree.t -> w:int -> Solution.t option
(** Minimal-cardinality replica set, or [None] when no valid placement
    exists (some aggregated client demand exceeds [w]).
    @raise Invalid_argument if [w <= 0]. *)

val solve_count : Tree.t -> w:int -> int option
(** Cardinality of {!solve}'s answer. *)
