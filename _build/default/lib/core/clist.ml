type 'a t = Empty | Leaf of 'a | Cat of int * 'a t * 'a t

let empty = Empty
let is_empty = function Empty -> true | Leaf _ | Cat _ -> false
let singleton x = Leaf x

let length = function Empty -> 0 | Leaf _ -> 1 | Cat (n, _, _) -> n

let append a b =
  match (a, b) with
  | Empty, t | t, Empty -> t
  | _ -> Cat (length a + length b, a, b)

let cons x t = append (Leaf x) t
let snoc t x = append t (Leaf x)

let to_list t =
  (* Explicit work list keeps this tail-recursive on deep spines. *)
  let rec go acc = function
    | [] -> List.rev acc
    | Empty :: rest -> go acc rest
    | Leaf x :: rest -> go (x :: acc) rest
    | Cat (_, l, r) :: rest -> go acc (l :: r :: rest)
  in
  go [] [ t ]

let of_list l = List.fold_left snoc Empty l

let iter f t =
  let rec go = function
    | [] -> ()
    | Empty :: rest -> go rest
    | Leaf x :: rest ->
        f x;
        go rest
    | Cat (_, l, r) :: rest -> go (l :: r :: rest)
  in
  go [ t ]

let fold_left f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let rec map f = function
  | Empty -> Empty
  | Leaf x -> Leaf (f x)
  | Cat (n, l, r) -> Cat (n, map f l, map f r)

let exists p t =
  let rec go = function
    | [] -> false
    | Empty :: rest -> go rest
    | Leaf x :: rest -> p x || go rest
    | Cat (_, l, r) :: rest -> go (l :: r :: rest)
  in
  go [ t ]
