(** Exhaustive oracle for small instances.

    Enumerates every subset of internal nodes, keeps the valid ones under
    the closest policy, and optimizes any objective exactly. Exponential —
    guarded to trees of at most {!max_nodes} nodes — and used as ground
    truth by the test suite for every polynomial algorithm in the
    library. *)

val max_nodes : int
(** Hard limit (20) on the tree size accepted by this module. *)

val fold_valid :
  Tree.t ->
  w:int ->
  init:'a ->
  f:('a -> Solution.t -> Solution.evaluation -> 'a) ->
  'a
(** Fold [f] over every valid solution (all loads within [w], no client
    unserved), including the empty one when it is valid.
    @raise Invalid_argument if the tree exceeds {!max_nodes}. *)

val min_servers : Tree.t -> w:int -> (int * Solution.t) option
(** Optimal [MinCost-NoPre] value. *)

val min_basic_cost :
  Tree.t -> w:int -> cost:Cost.basic -> (float * Solution.t) option
(** Optimal [MinCost-WithPre] value (Eq. 2). *)

val min_power :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  unit ->
  (float * Solution.t) option
(** Optimal [MinPower-BoundedCost] value (Eq. 3 s.t. Eq. 4 <= bound). *)
