(** Polynomial update heuristics for [MinCost-WithPre].

    §6 observes that "with frequent updates or low-cost servers, we may
    prefer to resort to faster (but sub-optimal) update heuristics" than
    the O(N^5) dynamic program. This module is that alternative: seed
    with the O(N log N) greedy (which ignores pre-existing servers),
    then locally improve the Eq. 2 cost with single-replica moves:

    - {b retarget}: replace a new server by an idle pre-existing node
      whose takeover keeps the placement valid (the dominant win — it
      converts a creation plus a deletion into a reuse);
    - {b drop}: remove a server whose load fits upstream;
    - {b hoist}/{b lower}: slide a server along its tree edge;
    - {b add}: insert a server (occasionally pays when deletion is
      expensive and an idle pre-existing node can absorb flow).

    Hill-climbing with first-improvement over these moves runs in
    O(N^2) evaluations of O(N) per round — typically two to four orders
    of magnitude faster than the DP (see the [ablation-update] bench
    section), at a cost gap the same section quantifies. *)

type result = {
  solution : Solution.t;
  cost : float;  (** Eq. 2 value *)
  servers : int;
  reused : int;
}

val solve :
  Tree.t -> w:int -> cost:Cost.basic -> ?max_rounds:int -> unit -> result option
(** Greedy seed plus hill-climbing (default [max_rounds] 200). [None]
    exactly when the instance is infeasible. *)

val improve :
  Tree.t -> w:int -> cost:Cost.basic -> ?max_rounds:int -> Solution.t ->
  result option
(** Hill-climb from an explicit valid seed; [None] if the seed is
    invalid. *)
