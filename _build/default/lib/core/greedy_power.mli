(** The paper's power baseline "GR" (§5.2).

    The greedy of [19] knows nothing about modes or power. The paper
    adapts it as follows: run the greedy once for every integer capacity
    [W'] between [W_1] and [W_M] (placing more, lightly-loaded servers as
    [W'] shrinks), operate every server at the mode its load forces (a
    server with at most [W_1] requests runs in mode 1), evaluate the
    modal cost (Eq. 4) and power (Eq. 3) of each of the resulting
    solutions, and keep — for a given cost bound — the cheapest-power
    one within the bound. *)

type candidate = {
  capacity : int;  (** the greedy's capacity parameter [W'] *)
  result : Dp_power.result;
}

val candidates :
  Tree.t -> modes:Modes.t -> power:Power.t -> cost:Cost.modal -> candidate list
(** One entry per feasible capacity sweep value, increasing [W']. *)

val solve :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  unit ->
  Dp_power.result option
(** Minimal-power candidate of cost at most [bound] (default infinity). *)

val frontier :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  Dp_power.result list
(** Pareto filtering of {!candidates}, sorted by increasing cost. *)
