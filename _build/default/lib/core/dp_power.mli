(** Dynamic program for [MinPower] and [MinPower-BoundedCost] (§4.3).

    §4.1 shows that with power modes, minimizing the requests traversing a
    node is no longer sufficient: a single-server subtree may be better
    served by a slow server letting requests through than by a fast one
    absorbing everything. The paper's fix — which this module implements —
    is to refine the per-node table: instead of the pair [(e, n)] of
    [Dp_withpre], a table entry is indexed by the full vector state

    [(n_1, …, n_M, e_{1,1}, …, e_{M,M}, flow)]

    giving the exact number of new servers operated at each mode, of
    reused pre-existing servers per (initial, operating) mode pair, and
    the number of requests traversing the node. For a fixed key the
    cost (Eq. 4) and power (Eq. 3) of the subtree contribution and its
    influence upstream are fully determined, so one representative
    placement per key suffices. A server's operating mode is forced by
    its absorbed load ([Modes.mode_of_load]), so merging a child tries
    exactly two decisions: no replica, or a replica whose mode follows
    from the child's residual flow.

    Note a deviation from a literal reading of the paper, uncovered by
    this library's differential fuzzer and documented in DESIGN.md: §4.3
    keeps, per count-vector, only the flow-minimal placement (the §3
    Lemma 1 device). Under load-determined modes that is {e unsound}
    once mode-change costs are positive — raising a subtree's residual
    flow can keep an upstream reused server in its original (higher)
    mode and avoid a [changed_{i,i'}] charge, so the flow-minimal
    representative can be the only one that busts a tight cost bound.
    Keying cells by (counts, flow) restores exactness at the price of a
    factor bounded by the number of achievable flow values ([<= W]).

    Tables are {e sparse} (hash tables keyed by the full vector): a
    subtree of [s] nodes with [p] pre-existing servers can only realize
    keys within its own [(s, p, W)] budget, which is what makes the
    algorithm practical despite the O(N^{2M^2+2M+1}) worst case. With no
    pre-existing server the counts collapse to [(n_1..n_M)]; [MinPower]
    (Theorem 2, NP-complete for arbitrary M) is the special case
    [bound = ∞]. *)

type result = {
  solution : Solution.t;
  power : float;  (** Eq. 3 value *)
  cost : float;  (** Eq. 4 value *)
  tally : Cost.tally;  (** server classification behind [cost] *)
}

val solve :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  unit ->
  result option
(** Minimal-power placement among those of cost at most [bound] (default
    [infinity], i.e. the pure [MinPower] problem). [None] when no valid
    placement meets the bound.
    @raise Invalid_argument if the cost model's mode count differs from
    [modes]. *)

val frontier :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  result list
(** All Pareto-optimal (cost, power) trade-offs, sorted by increasing
    cost (and strictly decreasing power). [solve ~bound] is equivalent to
    picking the last frontier point with [cost <= bound]; computing the
    frontier once answers every bound, which is how the Experiment 3
    harness sweeps cost bounds. *)

val root_state_count : Tree.t -> modes:Modes.t -> int
(** Number of distinct (counts, flow) cells in the root table — a direct
    measure of the instance's combinatorial hardness, used by the
    scaling benches. *)
