type result = {
  solution : Solution.t;
  cost : float;
  servers : int;
  reused : int;
}

let evaluate tree ~w ~cost solution =
  if not (Solution.is_valid tree ~w solution) then None
  else
    Some
      {
        solution;
        cost = Solution.basic_cost tree cost solution;
        servers = Solution.cardinal solution;
        reused = Solution.reused tree solution;
      }

let neighbors tree solution =
  let nodes = Solution.nodes solution in
  let member = Solution.mem solution in
  let out = ref [] in
  let push s = out := s :: !out in
  List.iter
    (fun r ->
      let without = List.filter (fun x -> x <> r) nodes in
      push (Solution.of_nodes without);
      (match Tree.parent tree r with
      | Some p when not (member p) -> push (Solution.of_nodes (p :: without))
      | Some _ | None -> ());
      List.iter
        (fun c ->
          if not (member c) then push (Solution.of_nodes (c :: without)))
        (Tree.children tree r);
      (* retarget: swap a non-pre-existing server for an idle
         pre-existing node anywhere in the tree *)
      if not (Tree.is_pre_existing tree r) then
        List.iter
          (fun p ->
            if not (member p) then push (Solution.of_nodes (p :: without)))
          (Tree.pre_existing tree))
    nodes;
  for j = 0 to Tree.size tree - 1 do
    if not (member j) then push (Solution.of_nodes (j :: nodes))
  done;
  !out

let strictly_better a b = b.cost < a.cost -. 1e-12

let improve tree ~w ~cost ?(max_rounds = 200) seed =
  match evaluate tree ~w ~cost seed with
  | None -> None
  | Some start ->
      let current = ref start in
      let continue = ref true in
      let rounds = ref 0 in
      while !continue && !rounds < max_rounds do
        incr rounds;
        let improved =
          List.fold_left
            (fun acc candidate ->
              match evaluate tree ~w ~cost candidate with
              | None -> acc
              | Some r -> (
                  match acc with
                  | Some b when not (strictly_better b r) -> acc
                  | Some _ | None ->
                      if strictly_better !current r then Some r else acc))
            None
            (neighbors tree !current.solution)
        in
        match improved with
        | Some r -> current := r
        | None -> continue := false
      done;
      Some !current

let solve tree ~w ~cost ?max_rounds () =
  match Greedy.solve tree ~w with
  | None -> None
  | Some seed -> improve tree ~w ~cost ?max_rounds seed
