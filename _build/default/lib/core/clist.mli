(** Catenable lists with O(1) append.

    The dynamic programs of this library carry, in every table cell, the
    replica placement realizing that cell. The paper's pseudo-code copies
    an O(N) request vector on every improvement and §3.3 describes how to
    hoist those copies out of the inner loop; here we obtain the same
    effect functionally: a placement is a persistent binary tree of
    segments, so extending a placement with another one is a single
    allocation and full materialization happens once, at the root. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val singleton : 'a -> 'a t

val append : 'a t -> 'a t -> 'a t
(** O(1). *)

val cons : 'a -> 'a t -> 'a t
val snoc : 'a t -> 'a -> 'a t

val length : 'a t -> int
(** O(1) — lengths are cached in the spine. *)

val to_list : 'a t -> 'a list
(** O(n), tail-recursive; elements in left-to-right order. *)

val of_list : 'a list -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val map : ('a -> 'b) -> 'a t -> 'b t
val exists : ('a -> bool) -> 'a t -> bool
