(** Server operation modes (§2.2).

    A mode ladder is a strictly increasing sequence of capacities
    [W_1 < W_2 < … < W_M]; [W_M = W] is the maximal capacity. A server
    processing [req] requests, with [W_{i-1} < req <= W_i], is operated at
    mode [i] — the mode is a function of the load, not a free choice.
    Modes are 1-based, matching the paper. *)

type t
(** A validated mode ladder. *)

val make : int list -> t
(** [make ws] builds a ladder from the capacities in increasing order.
    @raise Invalid_argument if the list is empty, non-increasing, or
    contains a non-positive capacity. *)

val single : int -> t
(** [single w] is the one-mode ladder used by the cost-only problems. *)

val count : t -> int
(** [M], the number of modes. *)

val capacity : t -> int -> int
(** [capacity t i] is [W_i] for [1 <= i <= M].
    @raise Invalid_argument out of range. *)

val max_capacity : t -> int
(** [W = W_M]. *)

val capacities : t -> int list
(** All capacities, increasing. *)

val mode_of_load : t -> int -> int
(** [mode_of_load t req] is the operating mode of a server processing
    [req] requests: the smallest [i] with [req <= W_i]. A zero load maps
    to mode 1.
    @raise Invalid_argument if [req < 0] or [req > W_M] (capacity
    violation — no mode can process that load). *)

val fits : t -> int -> bool
(** [fits t req] iff [0 <= req <= W_M]. *)

val pp : Format.formatter -> t -> unit
