(** Dynamic program for [MinCost-WithPre] (§3, Theorem 1).

    The paper's main update-strategy algorithm: for every node [j], a
    table indexed by the exact number [e] of reused pre-existing servers
    and [n] of newly created servers in the subtree below [j] (excluding
    [j]) stores the minimal number of requests that must traverse [j]
    together with a placement realizing it. Lemma 1 shows an optimal
    global solution can be assembled from these flow-minimal local ones.
    Children are merged one by one (Algorithm 3); the root table is then
    scanned with the cost function Eq. 2 to pick the cheapest feasible
    pair (Algorithm 4).

    Two deliberate deviations from the paper's pseudo-code, both
    documented in DESIGN.md:
    - placements are carried as O(1)-append catenable lists instead of
      per-cell O(N) request vectors, realizing the §3.3 "copy outside the
      loop" optimization functionally and bounding every node's pair of
      dimensions by its own subtree content, which is what makes the
      worst-case O(N^5) bound loose in practice;
    - when the root flow is zero and the root is itself a pre-existing
      server, we additionally consider {e reusing it at zero load}, which
      beats deleting it whenever [delete > 1]; Algorithm 4 omits that
      branch. *)

type result = {
  solution : Solution.t;
  cost : float;  (** Eq. 2 value of [solution] *)
  servers : int;  (** [R] *)
  reused : int;  (** [e = |R ∩ E|] *)
}

val solve : Tree.t -> w:int -> cost:Cost.basic -> result option
(** Optimal-cost placement, or [None] when the instance is infeasible.
    @raise Invalid_argument if [w <= 0]. *)

val root_table : Tree.t -> w:int -> int option array array
(** Diagnostic view: the root's [minr] table, entry [(e, n)] being the
    minimal number of requests traversing the root with exactly [e]
    reused and [n] new servers strictly below it. *)
