type candidate = { capacity : int; result : Dp_power.result }

let result_of_solution tree ~modes ~power ~cost solution =
  let tally = Solution.tally tree modes solution in
  {
    Dp_power.solution;
    power = Solution.power tree modes power solution;
    cost = Cost.modal_cost cost tally;
    tally;
  }

let candidates tree ~modes ~power ~cost =
  if Cost.mode_count cost <> Modes.count modes then
    invalid_arg "Greedy_power: cost model mode count mismatch";
  let w_min = Modes.capacity modes 1 and w_max = Modes.max_capacity modes in
  let rec sweep w acc =
    if w > w_max then List.rev acc
    else
      let acc =
        match Greedy.solve tree ~w with
        | None -> acc
        | Some sol ->
            { capacity = w; result = result_of_solution tree ~modes ~power ~cost sol }
            :: acc
      in
      sweep (w + 1) acc
  in
  sweep w_min []

let solve tree ~modes ~power ~cost ?(bound = infinity) () =
  List.fold_left
    (fun best c ->
      if c.result.Dp_power.cost > bound then best
      else
        match best with
        | Some b
          when (b.Dp_power.power, b.Dp_power.cost)
               <= (c.result.Dp_power.power, c.result.Dp_power.cost) ->
            best
        | Some _ | None -> Some c.result)
    None
    (candidates tree ~modes ~power ~cost)

let frontier tree ~modes ~power ~cost =
  let sorted =
    List.sort
      (fun a b ->
        compare
          (a.result.Dp_power.cost, a.result.Dp_power.power)
          (b.result.Dp_power.cost, b.result.Dp_power.power))
      (candidates tree ~modes ~power ~cost)
  in
  let rec filter best_power = function
    | [] -> []
    | c :: rest ->
        if c.result.Dp_power.power < best_power then
          c.result :: filter c.result.Dp_power.power rest
        else filter best_power rest
  in
  filter infinity sorted
