type evaluation = { loads : (Tree.node * int) list; unserved : int }

let evaluate tree ~w solution =
  if w <= 0 then invalid_arg "Multiple.evaluate: w must be positive";
  let n = Tree.size tree in
  let flow = Array.make n 0 in
  let loads = Array.make n 0 in
  Array.iter
    (fun j ->
      let arriving =
        List.fold_left
          (fun acc c -> acc + flow.(c))
          (Tree.client_load tree j)
          (Tree.children tree j)
      in
      if Solution.mem solution j then begin
        let absorbed = min w arriving in
        loads.(j) <- absorbed;
        flow.(j) <- arriving - absorbed
      end
      else flow.(j) <- arriving)
    (Tree.postorder tree);
  {
    loads = List.map (fun j -> (j, loads.(j))) (Solution.nodes solution);
    unserved = flow.(Tree.root tree);
  }

let is_valid tree ~w solution = (evaluate tree ~w solution).unserved = 0

type result = { solution : Solution.t; servers : int }

(* Per-node table over the exact number of replicas strictly below the
   node: flow-minimal placement, flows unbounded (they may be served by
   several ancestors). *)
type cell = { flow : int; placed : int Clist.t }

let set table k candidate =
  match table.(k) with
  | Some current when current.flow <= candidate.flow -> ()
  | Some _ | None -> table.(k) <- Some candidate

let rec table_of tree ~w j =
  let start = Array.make 1 None in
  start.(0) <- Some { flow = Tree.client_load tree j; placed = Clist.empty };
  List.fold_left (merge tree ~w) start (Tree.children tree j)

and merge tree ~w left c =
  let sub = table_of tree ~w c in
  let extended = Array.make (Array.length sub + 1) None in
  Array.iteri
    (fun k cell_opt ->
      match cell_opt with
      | None -> ()
      | Some cell ->
          set extended k cell;
          set extended (k + 1)
            {
              flow = max 0 (cell.flow - w);
              placed = Clist.snoc cell.placed c;
            })
    sub;
  let merged = Array.make (Array.length left + Array.length extended - 1) None in
  Array.iteri
    (fun k1 l ->
      match l with
      | None -> ()
      | Some lc ->
          Array.iteri
            (fun k2 r ->
              match r with
              | None -> ()
              | Some rc ->
                  set merged (k1 + k2)
                    {
                      flow = lc.flow + rc.flow;
                      placed = Clist.append lc.placed rc.placed;
                    })
            extended)
    left;
  merged

let solve tree ~w =
  if w <= 0 then invalid_arg "Multiple.solve: w must be positive";
  let root = Tree.root tree in
  let table = table_of tree ~w root in
  let best = ref None in
  Array.iteri
    (fun k cell_opt ->
      match cell_opt with
      | None -> ()
      | Some cell ->
          let consider servers placed =
            match !best with
            | Some (s, _) when s <= servers -> ()
            | Some _ | None -> best := Some (servers, placed)
          in
          if cell.flow = 0 then consider k cell.placed
          else if cell.flow <= w then
            consider (k + 1) (Clist.snoc cell.placed root))
    table;
  match !best with
  | None -> None
  | Some (servers, placed) ->
      Some { solution = Solution.of_nodes (Clist.to_list placed); servers }

let min_servers_lower_bound tree ~w =
  if w <= 0 then invalid_arg "Multiple.min_servers_lower_bound";
  (Tree.total_requests tree + w - 1) / w
