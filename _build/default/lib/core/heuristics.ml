let evaluate tree ~modes ~power ~cost ~bound solution =
  let w = Modes.max_capacity modes in
  if not (Solution.is_valid tree ~w solution) then None
  else
    let c = Solution.modal_cost tree modes cost solution in
    if c > bound then None
    else
      let tally = Solution.tally tree modes solution in
      Some
        {
          Dp_power.solution;
          power = Solution.power tree modes power solution;
          cost = c;
          tally;
        }

let neighbors tree solution =
  let nodes = Solution.nodes solution in
  let member = Solution.mem solution in
  let out = ref [] in
  let push s = out := s :: !out in
  List.iter
    (fun r ->
      let without = List.filter (fun x -> x <> r) nodes in
      (* drop *)
      push (Solution.of_nodes without);
      (* hoist *)
      (match Tree.parent tree r with
      | Some p when not (member p) -> push (Solution.of_nodes (p :: without))
      | Some _ | None -> ());
      (* lower *)
      List.iter
        (fun c ->
          if not (member c) then push (Solution.of_nodes (c :: without)))
        (Tree.children tree r))
    nodes;
  (* add *)
  for j = 0 to Tree.size tree - 1 do
    if not (member j) then push (Solution.of_nodes (j :: nodes))
  done;
  !out

let strictly_better a b =
  (* b improves on a: lower power, or equal power at lower cost. *)
  b.Dp_power.power < a.Dp_power.power -. 1e-12
  || (abs_float (b.Dp_power.power -. a.Dp_power.power) <= 1e-12
     && b.Dp_power.cost < a.Dp_power.cost -. 1e-12)

let improve tree ~modes ~power ~cost ?(bound = infinity) ?(max_rounds = 200)
    seed =
  match evaluate tree ~modes ~power ~cost ~bound seed with
  | None -> None
  | Some start ->
      let current = ref start in
      let continue = ref true in
      let rounds = ref 0 in
      while !continue && !rounds < max_rounds do
        incr rounds;
        let best_neighbor =
          List.fold_left
            (fun acc candidate ->
              match evaluate tree ~modes ~power ~cost ~bound candidate with
              | None -> acc
              | Some r -> (
                  match acc with
                  | Some b when not (strictly_better b r) -> acc
                  | Some _ | None ->
                      if strictly_better !current r then Some r else acc))
            None
            (neighbors tree !current.Dp_power.solution)
        in
        match best_neighbor with
        | Some r -> current := r
        | None -> continue := false
      done;
      Some !current

let solve tree ~modes ~power ~cost ?(bound = infinity) ?max_rounds () =
  match Greedy_power.solve tree ~modes ~power ~cost ~bound () with
  | None -> None
  | Some seed ->
      improve tree ~modes ~power ~cost ~bound ?max_rounds
        seed.Dp_power.solution

let best a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ra, Some rb -> if strictly_better ra rb then Some rb else Some ra

let solve_restarts tree ~modes ~power ~cost ?(bound = infinity) ?max_rounds
    ?(restarts = 8) rng =
  (* Seeds: every GR sweep candidate, plus random perturbations of the
     best one. Each seed is hill-climbed; the best climb wins. *)
  let sweep = Greedy_power.candidates tree ~modes ~power ~cost in
  let climb sol = improve tree ~modes ~power ~cost ~bound ?max_rounds sol in
  let from_sweep =
    List.fold_left
      (fun acc c -> best acc (climb c.Greedy_power.result.Dp_power.solution))
      None sweep
  in
  match from_sweep with
  | None -> None
  | Some initial ->
      let nodes = Tree.size tree in
      let perturb sol =
        (* Toggle a few random nodes; invalid perturbations are rejected
           by the climb's seed check and simply skipped. *)
        let members = Solution.nodes sol in
        let set = Hashtbl.create 16 in
        List.iter (fun j -> Hashtbl.replace set j ()) members;
        let flips = 1 + Rng.int rng 3 in
        for _ = 1 to flips do
          let j = Rng.int rng nodes in
          if Hashtbl.mem set j then Hashtbl.remove set j
          else Hashtbl.replace set j ()
        done;
        Solution.of_nodes (Hashtbl.fold (fun j () acc -> j :: acc) set [])
      in
      let result = ref (Some initial) in
      for _ = 1 to restarts do
        result := best !result (climb (perturb initial.Dp_power.solution))
      done;
      !result

let anneal tree ~modes ~power ~cost ?(bound = infinity)
    ?(initial_temperature = 0.) ?(cooling = 0.95) ?(iterations = 2000) rng =
  match Greedy_power.solve tree ~modes ~power ~cost ~bound () with
  | None -> None
  | Some seed ->
      let temperature =
        if initial_temperature > 0. then ref initial_temperature
        else ref (0.1 *. seed.Dp_power.power +. 1.)
      in
      let current = ref seed and best_seen = ref seed in
      for _ = 1 to iterations do
        let neighborhood = neighbors tree !current.Dp_power.solution in
        (match neighborhood with
        | [] -> ()
        | _ ->
            let pick = List.nth neighborhood (Rng.int rng (List.length neighborhood)) in
            (match evaluate tree ~modes ~power ~cost ~bound pick with
            | None -> ()
            | Some candidate ->
                let delta = candidate.Dp_power.power -. !current.Dp_power.power in
                let accept =
                  delta <= 0.
                  || Rng.float rng 1.0 < exp (-.delta /. !temperature)
                in
                if accept then begin
                  current := candidate;
                  if strictly_better !best_seen candidate then
                    best_seen := candidate
                end));
        temperature := !temperature *. cooling
      done;
      Some !best_seen
