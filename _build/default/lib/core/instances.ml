let figure1 ~root_requests =
  Tree.build
    (Tree.node ~clients:[ root_requests ]
       [
         Tree.node
           [
             Tree.node ~clients:[ 4 ] ~pre:1 [];
             Tree.node ~clients:[ 7 ] [];
           ];
       ])

let figure1_capacity = 10

let figure2 ~root_requests =
  Tree.build
    (Tree.node ~clients:[ root_requests ]
       [
         Tree.node
           [ Tree.node ~clients:[ 3 ] []; Tree.node ~clients:[ 7 ] [] ];
       ])

let figure2_modes = Modes.make [ 7; 10 ]

let figure2_power = Power.make ~static:10. ~alpha:2. ()

let node_name = function
  | 0 -> "root"
  | 1 -> "A"
  | 2 -> "B"
  | 3 -> "C"
  | j -> string_of_int j
