type instance = {
  tree : Tree.t;
  modes : Modes.t;
  power : Power.t;
  threshold : float;
}

let build a =
  if a = [] then invalid_arg "Npc.build: empty instance";
  List.iter (fun x -> if x <= 0 then invalid_arg "Npc.build: non-positive value") a;
  let a = List.sort compare a in
  let n = List.length a in
  let s = List.fold_left ( + ) 0 a in
  if s mod 2 <> 0 then invalid_arg "Npc.build: odd sum has no 2-partition";
  (* The proof's step "the root server must run at W_{n+2}" relies on the
     root load K + (S/2)X exceeding every intermediate capacity K + a_i X,
     i.e. on max a_i < S/2. Instances with max a_i >= S/2 are trivially
     decidable 2-Partition instances (solvable iff max a_i = S/2), so
     NP-hardness is untouched, but the gadget threshold is only sound
     under the precondition. *)
  let a_max = List.fold_left max 0 a in
  if 2 * a_max >= s then
    invalid_arg "Npc.build: requires max a_i < S/2 (see Theorem 2 proof)";
  let k = n * s * s in
  (* Scaled by 2K (alpha = 2, X = 1/(2K)): capacities become integers. *)
  let scale = 2 * k in
  let w1 = scale * k in
  let modes =
    (* Equal a_i values collapse onto one mode: the ladder must be
       strictly increasing, and power depends on loads only. *)
    Modes.make
      (List.sort_uniq compare
         ((w1 :: List.map (fun ai -> w1 + ai) a) @ [ w1 + s ]))
  in
  let power = Power.make ~static:0. ~alpha:2. () in
  (* Tree: root has a client with K + (S/2)X requests (scaled: w1 + S/2);
     children A_i with client a_i·X (scaled: a_i) and grandchild B_i with
     client K (scaled: w1). *)
  let spec =
    Tree.node
      ~clients:[ w1 + (s / 2) ]
      (List.map
         (fun ai ->
           Tree.node ~clients:[ ai ] [ Tree.node ~clients:[ w1 ] [] ])
         a)
  in
  let tree = Tree.build spec in
  (* P_max = (K+S·X)^α + n·K^α + S/2 + (n-1)/n, scaled by (2K)^α = scale². *)
  let fk = float_of_int k and fs = float_of_int s and fn = float_of_int n in
  let fscale = float_of_int scale in
  let x = 1. /. (2. *. fk) in
  let unscaled =
    ((fk +. (fs *. x)) ** 2.)
    +. (fn *. (fk ** 2.))
    +. (fs /. 2.)
    +. ((fn -. 1.) /. fn)
  in
  let threshold = unscaled *. (fscale ** 2.) in
  { tree; modes; power; threshold }

let two_partition_exists a =
  let arr = Array.of_list a in
  let n = Array.length arr in
  if n > 30 then invalid_arg "Npc.two_partition_exists: instance too large";
  let s = Array.fold_left ( + ) 0 arr in
  if s mod 2 <> 0 then false
  else begin
    let target = s / 2 in
    let found = ref false in
    for mask = 0 to (1 lsl n) - 1 do
      if not !found then begin
        let sum = ref 0 in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) <> 0 then sum := !sum + arr.(i)
        done;
        if !sum = target then found := true
      end
    done;
    !found
  end

let decide inst =
  let cost = Cost.modal_uniform ~modes:(Modes.count inst.modes) ~create:0. ~delete:0. ~changed:0. in
  match
    Dp_power.solve inst.tree ~modes:inst.modes ~power:inst.power ~cost ()
  with
  | None -> false
  | Some r ->
      (* Tolerate float rounding: the gap engineered by the proof is at
         least 1/n of the scaled unit, far above double-precision noise
         for small instances. *)
      r.Dp_power.power <= inst.threshold +. 1e-6
