(** The Theorem 2 NP-completeness gadget (§4.2).

    The paper reduces 2-Partition to [MinPower]: from integers
    [a_1 <= … <= a_n] of even sum [S] it builds an instance with [n+2]
    modes — [W_1 = K], [W_{1+i} = K + a_i·X], [W_{n+2} = K + S·X] — no
    static power, and a two-level tree where choosing, for each [i],
    whether the server goes on [A_i] (mode [W_{1+i}]) or on [B_i]
    (mode [W_1]) encodes choosing the subset [I].

    The paper's [X = 1/(α·K^{α-1})] is fractional; our capacities are
    integers, so we build the {e scaled} instance with [α = 2]: every
    capacity and request is multiplied by [2K], giving
    [W'_1 = 2K²], [W'_{1+i} = 2K² + a_i], [W'_{n+2} = 2K² + S]. Power is
    [W^α], so uniform scaling multiplies every solution's power by the
    same [(2K)^α] and preserves all comparisons; the decision threshold
    [P_max] is scaled accordingly. This module is used by the tests to
    check that {!Dp_power} decides the gadget exactly as 2-Partition
    dictates. *)

type instance = {
  tree : Tree.t;
  modes : Modes.t;
  power : Power.t;  (** no static power, [alpha = 2] *)
  threshold : float;  (** scaled [P_max]: a placement of at most this
                          power exists iff the 2-Partition instance is
                          solvable *)
}

val build : int list -> instance
(** [build [a_1; …; a_n]] constructs the scaled reduction instance.

    The gadget additionally requires [max a_i < S/2], a precondition the
    paper's proof uses implicitly: it asserts the root server "must" run
    at mode [W_{n+2}], which under load-determined modes only follows
    when the root load [K + (S/2)X] exceeds every intermediate capacity
    [K + a_i X]. Instances with [max a_i >= S/2] are trivially decidable
    (solvable iff [max a_i = S/2]), so the restriction does not weaken
    NP-hardness — but without it the threshold test is unsound (e.g. on
    [\[1; 3\]] the placement {root, B_1, A_2} runs the root at the
    intermediate mode [W_3] and slips under [P_max]).
    @raise Invalid_argument if the list is empty, contains a non-positive
    integer, has an odd sum, or violates [max a_i < S/2]. *)

val two_partition_exists : int list -> bool
(** Exhaustive 2-Partition check (for [n <= 30]), the reference answer. *)

val decide : instance -> bool
(** Run {!Dp_power} on the gadget and compare the optimal power to the
    threshold — the [MinPower] decision problem of the proof. *)
