(** Polynomial local-search heuristics for [MinPower-BoundedCost].

    The paper's conclusion (§6) calls for "polynomial time heuristics
    with a lower complexity than the optimal solution … performing local
    optimizations to better load-balance the number of requests per
    replica". This module implements that program: seed with the best
    {!Greedy_power} sweep solution within the cost bound, then hill-climb
    over single-replica moves, accepting a neighbor when it lowers power
    (tie-broken by cost) while staying valid and within the bound.

    Moves explored from a solution [R]:
    - {b drop} a replica (its load spills to the next server up);
    - {b hoist} a replica to its parent (merging with the parent flow);
    - {b lower} a replica to one of its children (shedding the other
      branches upward);
    - {b add} a replica at any node (splitting some server's load, which
      can downgrade it to a cheaper mode).

    Each iteration costs O(N²) evaluations of O(N): cheap against the
    exponential-in-M dynamic program, and the ablation bench measures how
    close it lands to {!Dp_power}'s optimum. *)

val solve :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  ?max_rounds:int ->
  unit ->
  Dp_power.result option
(** Best solution found, or [None] when even the seed is infeasible
    within the bound. [max_rounds] (default 200) caps hill-climbing
    iterations; convergence is almost always much earlier. *)

val improve :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  ?max_rounds:int ->
  Solution.t ->
  Dp_power.result option
(** Hill-climb from an explicit seed solution. [None] if the seed itself
    is invalid or over the bound. *)

val solve_restarts :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  ?max_rounds:int ->
  ?restarts:int ->
  Rng.t ->
  Dp_power.result option
(** Multi-start variant: hill-climb from every capacity-sweep candidate
    and from [restarts] (default 8) random perturbations of the best
    climb, keeping the overall best. Escapes the local optima that trap
    {!solve} on trees where the greedy seed is structurally wrong. *)

val anneal :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?iterations:int ->
  Rng.t ->
  Dp_power.result option
(** Simulated annealing over the same move set: random neighbor,
    Metropolis acceptance on the power delta, geometric cooling
    (default factor 0.95 per step over 2000 iterations; the default
    initial temperature is a tenth of the seed's power). Returns the
    best solution seen. [None] when no feasible seed exists within the
    bound. *)
