lib/core/brute.ml: Modes Option Solution Tree
