lib/core/update_policy.mli: Cost Solution Tree
