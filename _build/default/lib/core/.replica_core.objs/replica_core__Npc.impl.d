lib/core/npc.ml: Array Cost Dp_power List Modes Power Tree
