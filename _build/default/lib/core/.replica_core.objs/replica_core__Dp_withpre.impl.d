lib/core/dp_withpre.ml: Array Clist Cost List Logs Option Solution Tree
