lib/core/upwards.ml: Array Brute Fun List Solution Tree
