lib/core/brute.mli: Cost Modes Power Solution Tree
