lib/core/dp_withpre.mli: Cost Solution Tree
