lib/core/dp_nopre.mli: Solution Tree
