lib/core/solution.mli: Cost Format Modes Power Tree
