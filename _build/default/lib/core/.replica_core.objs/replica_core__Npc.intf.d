lib/core/npc.mli: Modes Power Tree
