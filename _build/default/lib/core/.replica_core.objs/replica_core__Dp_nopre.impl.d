lib/core/dp_nopre.ml: Array Clist List Option Solution Tree
