lib/core/heuristics_cost.mli: Cost Solution Tree
