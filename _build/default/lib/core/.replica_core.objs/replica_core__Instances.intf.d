lib/core/instances.mli: Modes Power Tree
