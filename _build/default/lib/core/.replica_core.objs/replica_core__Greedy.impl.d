lib/core/greedy.ml: Array List Option Solution Tree
