lib/core/multiple.mli: Solution Tree
