lib/core/power.mli: Modes
