lib/core/power.ml: List Modes
