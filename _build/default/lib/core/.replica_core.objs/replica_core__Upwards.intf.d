lib/core/upwards.mli: Solution Tree
