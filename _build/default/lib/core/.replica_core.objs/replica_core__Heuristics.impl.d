lib/core/heuristics.ml: Dp_power Greedy_power Hashtbl List Modes Rng Solution Tree
