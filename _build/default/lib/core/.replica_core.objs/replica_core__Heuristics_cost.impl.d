lib/core/heuristics_cost.ml: Greedy List Solution Tree
