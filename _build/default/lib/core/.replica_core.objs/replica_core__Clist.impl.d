lib/core/clist.ml: List
