lib/core/greedy_power.ml: Cost Dp_power Greedy List Modes Solution
