lib/core/update_policy.ml: Dp_withpre List Printf Solution Tree
