lib/core/dp_power.ml: Array Clist Cost Hashtbl List Logs Modes Power Solution Tree
