lib/core/clist.mli:
