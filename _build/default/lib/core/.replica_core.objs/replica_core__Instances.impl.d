lib/core/instances.ml: Modes Power Tree
