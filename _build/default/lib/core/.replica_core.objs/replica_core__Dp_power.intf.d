lib/core/dp_power.mli: Cost Modes Power Solution Tree
