lib/core/report.ml: Buffer List Modes Power Printf Solution String Tree
