lib/core/solution.ml: Array Cost Format Int List Modes Power Set String Tree
