lib/core/modes.mli: Format
