lib/core/cost.mli:
