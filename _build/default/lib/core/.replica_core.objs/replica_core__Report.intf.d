lib/core/report.mli: Cost Modes Power Solution Tree
