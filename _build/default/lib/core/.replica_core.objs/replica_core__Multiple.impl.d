lib/core/multiple.ml: Array Clist List Solution Tree
