lib/core/heuristics.mli: Cost Dp_power Modes Power Rng Solution Tree
