lib/core/greedy_power.mli: Cost Dp_power Modes Power Tree
