lib/core/modes.ml: Array Format
