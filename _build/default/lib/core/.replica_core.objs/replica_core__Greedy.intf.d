lib/core/greedy.mli: Solution Tree
