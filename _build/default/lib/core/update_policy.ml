type policy =
  | Systematic
  | Lazy
  | Periodic of int
  | Drift of float

type step_record = {
  epoch : int;
  reconfigured : bool;
  servers : Solution.t;
  step_cost : float;
  valid : bool;
  unserved : int;
}

type summary = {
  records : step_record list;
  total_cost : float;
  reconfigurations : int;
  invalid_epochs : int;
}

let demand_of tree = Tree.total_requests tree

(* Requests the placement fails to serve properly: flow escaping past the
   root plus per-server load beyond the capacity. *)
let shortfall tree ~w servers =
  let ev = Solution.evaluate tree servers in
  List.fold_left
    (fun acc (_, load) -> acc + max 0 (load - w))
    ev.Solution.unserved ev.Solution.loads

let should_reconfigure policy ~epoch ~servers_valid ~demand ~last_demand =
  match policy with
  | Systematic -> true
  | Lazy -> not servers_valid
  | Periodic k ->
      if k <= 0 then invalid_arg "Update_policy: period must be positive";
      (not servers_valid) || epoch mod k = 0
  | Drift fraction ->
      if fraction < 0. then invalid_arg "Update_policy: negative drift";
      (not servers_valid)
      ||
      let base = float_of_int (max 1 last_demand) in
      abs_float (float_of_int (demand - last_demand)) /. base > fraction

let simulate ~w ~cost policy demands =
  let servers = ref Solution.empty in
  let last_demand = ref 0 in
  let records = ref [] in
  List.iteri
    (fun i demand_tree ->
      let epoch = i + 1 in
      let demand = demand_of demand_tree in
      let servers_valid = Solution.is_valid demand_tree ~w !servers in
      let reconfigure =
        should_reconfigure policy ~epoch ~servers_valid ~demand
          ~last_demand:!last_demand
      in
      let record =
        if reconfigure then begin
          let with_pre =
            Tree.with_pre_existing demand_tree
              (List.map (fun j -> (j, 1)) (Solution.nodes !servers))
          in
          match Dp_withpre.solve with_pre ~w ~cost with
          | Some r ->
              servers := r.Dp_withpre.solution;
              last_demand := demand;
              {
                epoch;
                reconfigured = true;
                servers = !servers;
                step_cost = r.Dp_withpre.cost;
                valid = true;
                unserved = 0;
              }
          | None ->
              (* Demand is unserveable even with a fresh optimal placement:
                 keep the old servers and report the shortfall. *)
              {
                epoch;
                reconfigured = false;
                servers = !servers;
                step_cost = 0.;
                valid = false;
                unserved = shortfall demand_tree ~w !servers;
              }
        end
        else
          {
            epoch;
            reconfigured = false;
            servers = !servers;
            step_cost = 0.;
            valid = servers_valid;
            unserved =
              (if servers_valid then 0 else shortfall demand_tree ~w !servers);
          }
      in
      records := record :: !records)
    demands;
  let records = List.rev !records in
  {
    records;
    total_cost = List.fold_left (fun acc r -> acc +. r.step_cost) 0. records;
    reconfigurations =
      List.length (List.filter (fun r -> r.reconfigured) records);
    invalid_epochs = List.length (List.filter (fun r -> not r.valid) records);
  }

let policy_to_string = function
  | Systematic -> "systematic"
  | Lazy -> "lazy"
  | Periodic k -> Printf.sprintf "periodic(%d)" k
  | Drift f -> Printf.sprintf "drift(%.2f)" f
