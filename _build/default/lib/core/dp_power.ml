let src =
  Logs.Src.create "replica.dp_power" ~doc:"MinPower-BoundedCost dynamic program"

module Log = (val Logs.src_log src : Logs.LOG)

module Key = struct
  type t = int array

  let equal (a : int array) b = a = b

  let hash a =
    Array.fold_left (fun h x -> (h * 31) + x + 1) 17 a land max_int
end

module Tbl = Hashtbl.Make (Key)

type result = {
  solution : Solution.t;
  power : float;
  cost : float;
  tally : Cost.tally;
}

(* Cell key layout: [| n_1; ...; n_M; e_11; ...; e_MM; flow |] — the
   exact per-mode server counts AND the number of requests traversing
   the node. Keeping the flow in the key (rather than minimizing it per
   state, as a literal reading of the paper's §4.3 suggests) is
   necessary under load-determined modes: raising a subtree's residual
   flow can keep an upstream reused server in its original (higher)
   mode and thereby avoid a positive changed_{i,i'} cost, so two
   placements with the same counts but different flows are NOT
   interchangeable once mode-change costs are involved. Two placements
   agreeing on counts AND flow are fully interchangeable (same cost,
   same power, same influence upstream), so one representative
   placement per key suffices. *)

let state_size m = m + (m * m)

let flow_of key = key.(Array.length key - 1)

let bump key ~m ~initial ~operating =
  let s = Array.copy key in
  let idx =
    match initial with
    | None -> operating - 1
    | Some i0 -> m + ((i0 - 1) * m) + (operating - 1)
  in
  s.(idx) <- s.(idx) + 1;
  s

let set tbl key placed = if not (Tbl.mem tbl key) then Tbl.replace tbl key placed

let initial_mode_default tree j =
  match Tree.initial_mode tree j with Some m -> m | None -> 1

(* Table of node j over servers strictly below j: key -> placement. *)
let rec table_of tree ~modes j =
  let m = Modes.count modes in
  let w = Modes.max_capacity modes in
  let start = Tbl.create 16 in
  let client = Tree.client_load tree j in
  if client <= w then begin
    let key = Array.make (state_size m + 1) 0 in
    key.(state_size m) <- client;
    Tbl.replace start key Clist.empty
  end;
  List.fold_left (merge tree ~modes) start (Tree.children tree j)

and merge tree ~modes left c =
  let m = Modes.count modes in
  let sm = state_size m in
  let w = Modes.max_capacity modes in
  let sub = table_of tree ~modes c in
  (* Extend the child's table with the decision at c: its operating mode
     is forced by the flow it absorbs. *)
  let extended = Tbl.create (2 * Tbl.length sub) in
  let c_initial =
    if Tree.is_pre_existing tree c then Some (initial_mode_default tree c)
    else None
  in
  Tbl.iter
    (fun key placed ->
      set extended key placed;
      let flow = flow_of key in
      let operating = Modes.mode_of_load modes flow in
      let key' = bump key ~m ~initial:c_initial ~operating in
      key'.(sm) <- 0;
      set extended key' (Clist.snoc placed (c, flow)))
    sub;
  Log.debug (fun f ->
      f "merge child %d: %d x %d cells" c (Tbl.length left)
        (Tbl.length extended));
  let merged = Tbl.create (Tbl.length left * 2) in
  Tbl.iter
    (fun k1 p1 ->
      Tbl.iter
        (fun k2 p2 ->
          let flow = k1.(sm) + k2.(sm) in
          if flow <= w then begin
            let key = Array.init (sm + 1) (fun i -> k1.(i) + k2.(i)) in
            key.(sm) <- flow;
            set merged key (Clist.append p1 p2)
          end)
        extended)
    left;
  merged

let tally_of_state ~modes tree key =
  let m = Modes.count modes in
  let t = Cost.empty_tally ~modes:m in
  for i = 0 to m - 1 do
    t.Cost.created.(i) <- key.(i)
  done;
  let available = Array.make m 0 in
  List.iter
    (fun j ->
      let i0 = initial_mode_default tree j in
      available.(i0 - 1) <- available.(i0 - 1) + 1)
    (Tree.pre_existing tree);
  for i = 0 to m - 1 do
    let reused_from_i = ref 0 in
    for i' = 0 to m - 1 do
      t.Cost.reused.(i).(i') <- key.(m + (i * m) + i');
      reused_from_i := !reused_from_i + t.Cost.reused.(i).(i')
    done;
    t.Cost.deleted.(i) <- available.(i) - !reused_from_i
  done;
  t

let power_of_state ~modes ~power key =
  let m = Modes.count modes in
  let total = ref 0. in
  for op = 1 to m do
    let count = ref key.(op - 1) in
    for i0 = 1 to m do
      count := !count + key.(m + ((i0 - 1) * m) + (op - 1))
    done;
    if !count > 0 then
      total := !total +. (float_of_int !count *. Power.of_mode power modes op)
  done;
  !total

(* Enumerate every complete solution at the root: for each root-table
   cell, either the residual flow is zero (no root server needed — with
   an optional zero-load reuse when the root is pre-existing), or the
   root must host a server whose mode follows from the flow. *)
let candidates tree ~modes ~power ~cost =
  if Cost.mode_count cost <> Modes.count modes then
    invalid_arg "Dp_power: cost model mode count mismatch";
  let m = Modes.count modes in
  let root = Tree.root tree in
  let table = table_of tree ~modes root in
  let root_initial =
    if Tree.is_pre_existing tree root then
      Some (initial_mode_default tree root)
    else None
  in
  let out = ref [] in
  let emit key placed root_used =
    let tally = tally_of_state ~modes tree key in
    let cost_v = Cost.modal_cost cost tally in
    let power_v = power_of_state ~modes ~power key in
    let nodes = List.map fst (Clist.to_list placed) in
    let nodes = if root_used then root :: nodes else nodes in
    out :=
      {
        solution = Solution.of_nodes nodes;
        power = power_v;
        cost = cost_v;
        tally;
      }
      :: !out
  in
  Tbl.iter
    (fun key placed ->
      let flow = flow_of key in
      if flow = 0 then begin
        emit key placed false;
        (* Zero-load reuse of a pre-existing root (can be cheaper than
           deleting it, at the price of its mode-1 power). *)
        match root_initial with
        | Some _ ->
            emit (bump key ~m ~initial:root_initial ~operating:1) placed true
        | None -> ()
      end
      else
        let operating = Modes.mode_of_load modes flow in
        emit (bump key ~m ~initial:root_initial ~operating) placed true)
    table;
  !out

let solve tree ~modes ~power ~cost ?(bound = infinity) () =
  let best = ref None in
  List.iter
    (fun r ->
      if r.cost <= bound then
        match !best with
        | Some b when (b.power, b.cost) <= (r.power, r.cost) -> ()
        | Some _ | None -> best := Some r)
    (candidates tree ~modes ~power ~cost);
  !best

let frontier tree ~modes ~power ~cost =
  let all =
    List.sort
      (fun a b -> compare (a.cost, a.power) (b.cost, b.power))
      (candidates tree ~modes ~power ~cost)
  in
  (* Keep points that strictly improve power as cost increases. *)
  let rec filter best_power = function
    | [] -> []
    | r :: rest ->
        if r.power < best_power then r :: filter r.power rest
        else filter best_power rest
  in
  filter infinity all

let root_state_count tree ~modes =
  Tbl.length (table_of tree ~modes (Tree.root tree))
