(** Dynamic program for [MinCost-NoPre] (the O(N^2) algorithm of [6]).

    For every node [j], a table indexed by the exact number [k] of
    replicas placed strictly below [j] stores the minimal number of
    requests that must traverse [j] (Lemma 1 justifies keeping only the
    flow-minimal placement per [k]). Children are merged one at a time by
    convolution, so the whole run is the classical O(N^2) tree knapsack.
    Kept as an independently-implemented cross-check for {!Greedy} and as
    the base case of {!Dp_withpre}. *)

type result = { solution : Solution.t; servers : int }

val solve : Tree.t -> w:int -> result option
(** Minimal number of servers and a placement achieving it, or [None]
    when the instance is infeasible.
    @raise Invalid_argument if [w <= 0]. *)

val min_flow_per_count : Tree.t -> w:int -> int option array
(** Diagnostic view of the root table: entry [k] is the minimal number of
    requests traversing the root with exactly [k] replicas strictly below
    it ([None] when unachievable). Used by tests and by the examples to
    visualize the trade-off. *)
