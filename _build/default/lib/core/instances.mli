(** The paper's running examples as ready-made instances.

    These are the exact situations discussed in §3.1 (Figure 1) and §4.1
    (Figure 2); tests assert the published trade-offs on them and the
    examples walk through them. Node identifiers are preorder:
    root = 0, A = 1, B = 2, C = 3. *)

(** {1 Figure 1 (§3.1) — reuse vs. rebalance, W = 10} *)

val figure1 : root_requests:int -> Tree.t
(** [root -- A -- { B (pre-existing, 4 requests), C (7 requests) }] with
    [root_requests] client requests at the root. Keeping only B leaves 7
    requests traversing A; a new server at C instead leaves 4; B plus a
    server at A or C leaves none. With 2 root requests the optimal
    update reuses B; with 4 it deletes B and creates C. *)

val figure1_capacity : int
(** [W = 10]. *)

(** {1 Figure 2 (§4.1) — power modes, W1 = 7, W2 = 10} *)

val figure2 : root_requests:int -> Tree.t
(** [root -- A -- { B (3 requests), C (7 requests) }] with
    [root_requests] at the root. With the {!figure2_power} model, one
    mode-2 server at A (110 W) beats two mode-1 servers at B and C
    (118 W) locally — yet with 4 root requests the global optimum is a
    mode-1 server at C letting 3 requests through (118 W total), while
    with 10 root requests nothing may traverse A (220 W total). *)

val figure2_modes : Modes.t
(** [{W1 = 7, W2 = 10}]. *)

val figure2_power : Power.t
(** [P_i = 10 + W_i^2] (static 10, alpha 2). *)

(** {1 Node names} *)

val node_name : Tree.node -> string
(** ["root"], ["A"], ["B"], ["C"] for 0–3; the decimal id otherwise. *)
