(** The {e Multiple} access policy (extension; cf. reference [2]).

    The paper studies the {e closest} policy, defined in §2.1 against the
    access-policy family of Benoit, Rehn-Sonigo and Robert [2]. Under
    {e Multiple}, a client's requests may be split across several servers
    on its path to the root, and a server may serve any subset of the
    requests reaching it — so a replica no longer has to absorb
    everything underneath, and the per-node demand cap of the closest
    policy ([client load <= W]) disappears entirely.

    Feasibility of a fixed replica set is decided by one bottom-up pass
    absorbing greedily: a unit of flow served low consumes capacity no
    other flow could use (only subtree flow reaches a server), so maximal
    low absorption is exchange-optimal. Minimizing the number of replicas
    is polynomial; we solve it with the same per-node flow-minimal table
    as [Dp_nopre], except cells may carry flows above [W] (several
    ancestors can share a load) and a server absorbs [min W flow].

    This module is an extension beyond the reproduced paper; it rounds
    out the access-policy family the framework section situates the
    closest policy in. *)

type evaluation = {
  loads : (Tree.node * int) list;  (** absorbed requests per replica *)
  unserved : int;  (** flow escaping past the root *)
}

val evaluate : Tree.t -> w:int -> Solution.t -> evaluation
(** Maximal bottom-up absorption — the canonical optimal assignment. *)

val is_valid : Tree.t -> w:int -> Solution.t -> bool
(** True iff {!evaluate} serves every request. *)

type result = { solution : Solution.t; servers : int }

val solve : Tree.t -> w:int -> result option
(** Minimal replica count under Multiple, or [None] if even a replica on
    every node cannot serve the demand.
    @raise Invalid_argument if [w <= 0]. *)

val min_servers_lower_bound : Tree.t -> w:int -> int
(** [ceil(total requests / W)] — the counting bound any policy obeys. *)
