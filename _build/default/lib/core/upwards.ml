let max_clients_exact = 20

(* All client bundles as (attachment node, requests). *)
let bundles tree =
  let out = ref [] in
  for j = Tree.size tree - 1 downto 0 do
    List.iter (fun r -> if r > 0 then out := (j, r) :: !out) (Tree.clients tree j)
  done;
  !out

let on_path tree ~server ~client =
  server = client || Tree.is_ancestor tree ~anc:server ~desc:client

let assignment_exists tree ~w solution =
  if w <= 0 then invalid_arg "Upwards.assignment_exists: w must be positive";
  let all = bundles tree in
  if List.length all > max_clients_exact then
    invalid_arg "Upwards.assignment_exists: too many clients for exact check";
  let servers = Array.of_list (Solution.nodes solution) in
  let remaining = Array.map (fun _ -> w) servers in
  (* Largest bundles first: fail fast. *)
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
  let rec assign = function
    | [] -> true
    | (node, r) :: rest ->
        let rec try_server i =
          if i >= Array.length servers then false
          else if
            remaining.(i) >= r && on_path tree ~server:servers.(i) ~client:node
          then begin
            remaining.(i) <- remaining.(i) - r;
            if assign rest then true
            else begin
              remaining.(i) <- remaining.(i) + r;
              try_server (i + 1)
            end
          end
          else try_server (i + 1)
        in
        try_server 0
  in
  assign sorted

type result = { solution : Solution.t; servers : int }

let solve_exact tree ~w =
  let n = Tree.size tree in
  if n > Brute.max_nodes then
    invalid_arg "Upwards.solve_exact: tree too large";
  if List.length (bundles tree) > max_clients_exact then
    invalid_arg "Upwards.solve_exact: too many clients";
  (* Subsets in increasing cardinality: the first feasible one is
     optimal. *)
  let popcount m =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go m 0
  in
  let masks = Array.init (1 lsl n) Fun.id in
  Array.sort (fun a b -> compare (popcount a, a) (popcount b, b)) masks;
  let found = ref None in
  (try
     Array.iter
       (fun mask ->
         let nodes = ref [] in
         for j = n - 1 downto 0 do
           if mask land (1 lsl j) <> 0 then nodes := j :: !nodes
         done;
         let sol = Solution.of_nodes !nodes in
         if assignment_exists tree ~w sol then begin
           found := Some { solution = sol; servers = Solution.cardinal sol };
           raise Exit
         end)
       masks
   with Exit -> ());
  !found

let solve_heuristic tree ~w =
  if w <= 0 then invalid_arg "Upwards.solve_heuristic: w must be positive";
  if List.exists (fun (_, r) -> r > w) (bundles tree) then None
  else begin
    let n = Tree.size tree in
    (* carried.(j): bundles flowing up out of node j. *)
    let carried = Array.make n [] in
    let servers = ref [] in
    let infeasible = ref false in
    Array.iter
      (fun j ->
        let arriving =
          List.fold_left
            (fun acc c -> acc @ carried.(c))
            (Tree.clients tree j)
            (Tree.children tree j)
        in
        let total = List.fold_left ( + ) 0 arriving in
        let is_root = j = Tree.root tree in
        if total > w || (is_root && total > 0) then begin
          (* Open a server here; pack first-fit-decreasing. *)
          servers := j :: !servers;
          let sorted = List.sort (fun a b -> compare b a) arriving in
          let room = ref w in
          let leftover =
            List.filter
              (fun r ->
                if r <= !room then begin
                  room := !room - r;
                  false
                end
                else true)
              sorted
          in
          if is_root && leftover <> [] then infeasible := true;
          carried.(j) <- leftover
        end
        else carried.(j) <- arriving)
      (Tree.postorder tree);
    if !infeasible then None
    else Some { solution = Solution.of_nodes !servers; servers = List.length !servers }
  end
