type t = { static : float; alpha : float }

let make ?(static = 0.) ?(alpha = 3.) () =
  if static < 0. then invalid_arg "Power.make: negative static power";
  if alpha < 1. then invalid_arg "Power.make: alpha must be >= 1";
  { static; alpha }

let paper_exp3 ~modes =
  let w1 = float_of_int (Modes.capacity modes 1) in
  { static = (w1 ** 3.) /. 10.; alpha = 3. }

let dynamic t modes i = float_of_int (Modes.capacity modes i) ** t.alpha

let of_mode t modes i = t.static +. dynamic t modes i

let of_load t modes load = of_mode t modes (Modes.mode_of_load modes load)

let total t modes loads =
  List.fold_left (fun acc load -> acc +. of_load t modes load) 0. loads
