type highlight = {
  replicas : Tree.node list;
  loads : (Tree.node * int) list;
  capacity : int;
}

(* Layout: leaves of the internal tree get successive horizontal slots
   (widened when they carry several clients); internal nodes sit at the
   mean of their children; y is the depth. Client leaves hang half a
   layer below their node. *)

let x_gap = 70.
let y_gap = 80.
let node_r = 16.

type layout = {
  xs : float array;
  client_xs : float array array; (* per node, per client *)
  width : float;
  height : float;
}

let layout tree =
  let n = Tree.size tree in
  let xs = Array.make n 0. in
  let client_xs =
    Array.init n (fun j ->
        Array.make (List.length (Tree.clients tree j)) 0.)
  in
  let cursor = ref 0. in
  let advance slots =
    let start = !cursor in
    cursor := !cursor +. (float_of_int (max 1 slots) *. x_gap);
    start +. ((float_of_int (max 1 slots) -. 1.) *. x_gap /. 2.)
  in
  Array.iter
    (fun j ->
      let kids = Tree.children tree j in
      let clients = List.length (Tree.clients tree j) in
      (match kids with
      | [] -> xs.(j) <- advance (max 1 clients)
      | _ ->
          let sum = List.fold_left (fun acc c -> acc +. xs.(c)) 0. kids in
          xs.(j) <- sum /. float_of_int (List.length kids));
      (* Spread the node's clients around its x. *)
      let m = Array.length client_xs.(j) in
      for i = 0 to m - 1 do
        client_xs.(j).(i) <-
          xs.(j)
          +. ((float_of_int i -. (float_of_int (m - 1) /. 2.)) *. (x_gap /. 2.))
      done)
    (Tree.postorder tree);
  {
    xs;
    client_xs;
    width = max !cursor x_gap;
    height = float_of_int (Tree.height tree + 2) *. y_gap;
  }

let escape s =
  String.concat ""
    (List.map
       (function
         | '<' -> "&lt;" | '>' -> "&gt;" | '&' -> "&amp;" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let render ?highlight tree =
  let l = layout tree in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let margin = 40. in
  let y_of j = margin +. (float_of_int (Tree.depth tree j) *. y_gap) in
  let is_replica j =
    match highlight with
    | Some h -> List.mem j h.replicas
    | None -> false
  in
  let load_of j =
    Option.bind highlight (fun h -> List.assoc_opt j h.loads)
  in
  add
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     font-family=\"Helvetica\" font-size=\"12\">\n"
    (l.width +. (2. *. margin))
    (l.height +. (2. *. margin));
  (* Edges first. *)
  for j = 0 to Tree.size tree - 1 do
    (match Tree.parent tree j with
    | Some p ->
        add
          "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
           stroke=\"#888\"/>\n"
          (margin +. l.xs.(p))
          (y_of p)
          (margin +. l.xs.(j))
          (y_of j)
    | None -> ());
    List.iteri
      (fun i _ ->
        add
          "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
           stroke=\"#bbb\" stroke-dasharray=\"3,3\"/>\n"
          (margin +. l.xs.(j))
          (y_of j)
          (margin +. l.client_xs.(j).(i))
          (y_of j +. (y_gap /. 2.)))
      (Tree.clients tree j)
  done;
  (* Internal nodes. *)
  for j = 0 to Tree.size tree - 1 do
    let x = margin +. l.xs.(j) and y = y_of j in
    let fill = if Tree.is_pre_existing tree j then "#d9d9d9" else "#ffffff" in
    let stroke, width =
      if is_replica j then ("#c0392b", 3.) else ("#333333", 1.)
    in
    add
      "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"4\" \
       fill=\"%s\" stroke=\"%s\" stroke-width=\"%.1f\"/>\n"
      (x -. node_r) (y -. node_r) (2. *. node_r) (2. *. node_r) fill stroke
      width;
    add
      "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" dy=\"4\">%d</text>\n"
      x y j;
    (match Tree.initial_mode tree j with
    | Some m ->
        add
          "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
           fill=\"#555\" font-size=\"9\">pre@W%d</text>\n"
          x
          (y -. node_r -. 4.)
          m
    | None -> ());
    match (load_of j, highlight) with
    | Some load, Some h ->
        add
          "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
           fill=\"#c0392b\" font-size=\"10\">%d/%d</text>\n"
          x
          (y +. node_r +. 12.)
          load h.capacity
    | _ -> ()
  done;
  (* Client leaves. *)
  for j = 0 to Tree.size tree - 1 do
    List.iteri
      (fun i r ->
        let x = margin +. l.client_xs.(j).(i) in
        let y = y_of j +. (y_gap /. 2.) in
        add
          "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"10\" fill=\"#eaf2fb\" \
           stroke=\"#4a78a8\"/>\n"
          x y;
        add
          "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" dy=\"4\" \
           font-size=\"10\">%s</text>\n"
          x y
          (escape (string_of_int r)))
      (Tree.clients tree j)
  done;
  add "</svg>\n";
  Buffer.contents buf

let write_file ?highlight path tree =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?highlight tree))
