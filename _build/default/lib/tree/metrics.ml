type t = {
  nodes : int;
  height : int;
  leaves : int;
  min_branching : int;
  max_branching : int;
  mean_branching : float;
  clients : int;
  total_requests : int;
  mean_requests_per_client : float;
  max_node_demand : int;
  pre_existing : int;
}

let compute tree =
  let n = Tree.size tree in
  let leaves = ref 0 in
  let min_b = ref max_int and max_b = ref 0 and sum_b = ref 0 and parents = ref 0 in
  let max_demand = ref 0 in
  for j = 0 to n - 1 do
    let c = List.length (Tree.children tree j) in
    if c = 0 then incr leaves
    else begin
      incr parents;
      sum_b := !sum_b + c;
      if c < !min_b then min_b := c;
      if c > !max_b then max_b := c
    end;
    let demand = Tree.client_load tree j in
    if demand > !max_demand then max_demand := demand
  done;
  let clients = Tree.num_clients tree in
  {
    nodes = n;
    height = Tree.height tree;
    leaves = !leaves;
    min_branching = (if !parents = 0 then 0 else !min_b);
    max_branching = !max_b;
    mean_branching =
      (if !parents = 0 then 0.
       else float_of_int !sum_b /. float_of_int !parents);
    clients;
    total_requests = Tree.total_requests tree;
    mean_requests_per_client =
      (if clients = 0 then 0.
       else float_of_int (Tree.total_requests tree) /. float_of_int clients);
    max_node_demand = !max_demand;
    pre_existing = Tree.num_pre_existing tree;
  }

let tally_by f tree =
  let tbl = Hashtbl.create 16 in
  for j = 0 to Tree.size tree - 1 do
    let key, value = f j in
    Hashtbl.replace tbl key
      ((try Hashtbl.find tbl key with Not_found -> 0) + value)
  done;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let depth_histogram tree = tally_by (fun j -> (Tree.depth tree j, 1)) tree

let branching_histogram tree =
  tally_by (fun j -> (List.length (Tree.children tree j), 1)) tree

let demand_by_depth tree =
  List.filter
    (fun (_, v) -> v > 0)
    (tally_by (fun j -> (Tree.depth tree j, Tree.client_load tree j)) tree)

let pp fmt t =
  Format.fprintf fmt
    "nodes: %d  height: %d  leaves: %d@\n\
     branching: %d..%d (mean %.2f)@\n\
     clients: %d  requests: %d (mean %.2f/client, max node demand %d)@\n\
     pre-existing servers: %d@."
    t.nodes t.height t.leaves t.min_branching t.max_branching
    t.mean_branching t.clients t.total_requests t.mean_requests_per_client
    t.max_node_demand t.pre_existing
