let to_dot ?(highlight = []) t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let highlighted = Hashtbl.create 16 in
  List.iter (fun j -> Hashtbl.replace highlighted j ()) highlight;
  add "digraph tree {\n";
  add "  node [fontname=\"Helvetica\"];\n";
  for j = 0 to Tree.size t - 1 do
    let attrs = Buffer.create 32 in
    Buffer.add_string attrs "shape=box";
    if Tree.is_pre_existing t j then
      Buffer.add_string attrs ", style=filled, fillcolor=lightgray";
    if Hashtbl.mem highlighted j then
      Buffer.add_string attrs ", penwidth=3, color=red";
    let mode_label =
      match Tree.initial_mode t j with
      | Some m -> Printf.sprintf "\\npre@W%d" m
      | None -> ""
    in
    add "  n%d [label=\"%d%s\", %s];\n" j j mode_label (Buffer.contents attrs);
    (match Tree.parent t j with
    | Some p -> add "  n%d -> n%d;\n" p j
    | None -> ());
    List.iteri
      (fun i r ->
        add "  c%d_%d [label=\"%d req\", shape=ellipse];\n" j i r;
        add "  n%d -> c%d_%d;\n" j j i)
      (Tree.clients t j)
  done;
  add "}\n";
  Buffer.contents buf

let write_file ?highlight path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight t))
