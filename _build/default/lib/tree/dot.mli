(** Graphviz (DOT) export of distribution trees.

    Internal nodes are boxes, client leaves are ellipses labelled with
    their request count; pre-existing servers are shaded. An optional
    highlight set (e.g. a computed replica placement) is drawn in bold. *)

val to_dot : ?highlight:Tree.node list -> Tree.t -> string
(** Render the tree as a [digraph]. Nodes in [highlight] get a bold,
    colored outline. *)

val write_file : ?highlight:Tree.node list -> string -> Tree.t -> unit
(** [write_file path t] writes {!to_dot}[ t] to [path]. *)
