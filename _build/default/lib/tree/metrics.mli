(** Structural statistics of distribution trees.

    Used by the CLI ([generate --stats]), the shape-sensitivity ablation
    bench, and anywhere a workload needs to be characterized: the §5
    experiments distinguish "fat" and "high" trees exactly through these
    quantities (branching factor and height). *)

type t = {
  nodes : int;
  height : int;
  leaves : int;  (** internal nodes without internal children *)
  min_branching : int;  (** over nodes with at least one child *)
  max_branching : int;
  mean_branching : float;
  clients : int;
  total_requests : int;
  mean_requests_per_client : float;
  max_node_demand : int;  (** largest per-node aggregate client load *)
  pre_existing : int;
}

val compute : Tree.t -> t

val depth_histogram : Tree.t -> (int * int) list
(** Number of internal nodes at each depth, increasing. *)

val branching_histogram : Tree.t -> (int * int) list
(** Number of internal nodes with each child count, increasing. *)

val demand_by_depth : Tree.t -> (int * int) list
(** Total client requests attached at each depth, increasing. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)
