lib/tree/rng.mli:
