lib/tree/svg.ml: Array Buffer Fun List Option Printf String Tree
