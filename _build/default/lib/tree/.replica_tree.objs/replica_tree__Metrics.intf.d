lib/tree/metrics.mli: Format Tree
