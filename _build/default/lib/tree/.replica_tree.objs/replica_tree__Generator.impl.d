lib/tree/generator.ml: Array List Queue Rng Tree
