lib/tree/svg.mli: Tree
