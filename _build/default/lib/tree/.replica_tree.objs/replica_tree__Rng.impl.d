lib/tree/rng.ml: Array Int Int64 Set
