lib/tree/dot.mli: Tree
