lib/tree/tree.ml: Array Buffer Format List String
