lib/tree/dot.ml: Buffer Fun Hashtbl List Printf Tree
