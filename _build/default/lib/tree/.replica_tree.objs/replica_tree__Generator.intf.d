lib/tree/generator.mli: Rng Tree
