lib/tree/metrics.ml: Format Hashtbl List Tree
