(** Self-contained SVG rendering of distribution trees.

    Unlike {!Dot} (which needs Graphviz to rasterize), this module emits
    a complete standalone [.svg]: a layered layout (internal nodes by
    depth, subtrees centered over their children), client leaves hanging
    under their nodes with request counts, pre-existing servers shaded,
    and an optional highlighted replica set with per-server loads — the
    picture the paper's Figures 1–3 draw by hand. *)

type highlight = {
  replicas : Tree.node list;  (** drawn with a bold outline *)
  loads : (Tree.node * int) list;  (** shown as "load/W" next to servers *)
  capacity : int;  (** the W displayed in load labels *)
}

val render : ?highlight:highlight -> Tree.t -> string
(** Complete SVG document. *)

val write_file : ?highlight:highlight -> string -> Tree.t -> unit
