fuzz/repro.ml: Brute Cost Dp_power Generator Greedy Modes Power Printf Replica_core Replica_tree Rng Tree
