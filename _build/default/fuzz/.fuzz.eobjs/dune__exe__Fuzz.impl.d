fuzz/fuzz.ml: Array Brute Cost Dp_power Dp_withpre Generator Greedy Heuristics_cost Modes Multiple Option Power Printf Replica_core Replica_tree Rng Solution Sys Tree Upwards
