fuzz/repro.mli:
