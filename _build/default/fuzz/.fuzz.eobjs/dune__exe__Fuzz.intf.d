fuzz/fuzz.mli:
