open Replica_tree
open Replica_core
open Helpers

(* §4.1 Figure 2 fixture: modes W1=7, W2=10; P_i = 10 + W_i^2.
   root = 0 (clients k), A = 1, B = 2 (clients 3), C = 3 (clients 7). *)
let figure2_tree ~root_requests =
  Tree.build
    (Tree.node ~clients:[ root_requests ]
       [
         Tree.node
           [ Tree.node ~clients:[ 3 ] []; Tree.node ~clients:[ 7 ] [] ];
       ])

let fig2_modes = Modes.make [ 7; 10 ]
let fig2_power = Power.make ~static:10. ~alpha:2. ()
let fig2_cost = Cost.modal_uniform ~modes:2 ~create:0. ~delete:0. ~changed:0.

let solve_fig2 ~root_requests =
  Dp_power.solve (figure2_tree ~root_requests) ~modes:fig2_modes
    ~power:fig2_power ~cost:fig2_cost ()

let test_figure2_light_root () =
  (* 4 requests at the root: let 3 requests through A; two mode-1 servers
     (C and root) dissipate 2*(10+49) = 118. *)
  match solve_fig2 ~root_requests:4 with
  | Some r ->
      check cf "power" 118. r.Dp_power.power;
      check cb "C serves" true (Solution.mem r.Dp_power.solution 3);
      check cb "root serves" true (Solution.mem r.Dp_power.solution 0);
      check cb "A idle" false (Solution.mem r.Dp_power.solution 1)
  | None -> Alcotest.fail "expected a solution"

let test_figure2_heavy_root () =
  (* 10 requests at the root: nothing may traverse A, so A and the root
     both run at mode 2: 2*(10+100) = 220. *)
  match solve_fig2 ~root_requests:10 with
  | Some r ->
      check cf "power" 220. r.Dp_power.power;
      check cb "A serves" true (Solution.mem r.Dp_power.solution 1);
      check cb "root serves" true (Solution.mem r.Dp_power.solution 0)
  | None -> Alcotest.fail "expected a solution"

let test_figure2_local_claim () =
  (* The §4.1 local observation: within A's subtree, one mode-2 server at
     A beats two mode-1 servers at B and C (110 < 118). *)
  let t = figure2_tree ~root_requests:10 in
  let p sol = Solution.power t fig2_modes fig2_power (Solution.of_nodes sol) in
  check cb "A alone cheaper than B+C" true (p [ 0; 1 ] < p [ 0; 2; 3 ])

let test_infeasible () =
  let t = Tree.build (Tree.node ~clients:[ 11 ] []) in
  check cb "infeasible" true
    (Dp_power.solve t ~modes:fig2_modes ~power:fig2_power ~cost:fig2_cost ()
    = None)

let test_matches_brute_min_power () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 31) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 7 in
        let pre = Rng.int rng (min 3 nodes + 1) in
        let t = small_tree_with_pre rng ~nodes ~max_requests:4 ~pre in
        let dp =
          Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
        in
        let brute =
          Brute.min_power t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
        in
        match (dp, brute) with
        | None, None -> ()
        | Some d, Some (bp, _) ->
            check cf (Printf.sprintf "min power (seed %d)" seed) bp
              d.Dp_power.power
        | Some _, None -> Alcotest.fail "dp found a phantom solution"
        | None, Some _ -> Alcotest.fail "dp missed a solution"
      done)
    seeds

let test_matches_brute_bounded_cost () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 37) in
      for _ = 1 to 8 do
        let nodes = 2 + Rng.int rng 6 in
        let pre = Rng.int rng (min 3 nodes + 1) in
        let t = small_tree_with_pre rng ~nodes ~max_requests:4 ~pre in
        let bound = 1. +. Rng.float rng 5. in
        let dp =
          Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
            ~bound ()
        in
        let brute =
          Brute.min_power t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
            ~bound ()
        in
        match (dp, brute) with
        | None, None -> ()
        | Some d, Some (bp, _) ->
            check cf "bounded min power" bp d.Dp_power.power;
            check cb "bound respected" true (d.Dp_power.cost <= bound +. 1e-9)
        | Some _, None -> Alcotest.fail "dp found a phantom solution"
        | None, Some _ -> Alcotest.fail "dp missed a solution"
      done)
    seeds

let test_frontier_properties () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 41) in
      let nodes = 3 + Rng.int rng 8 in
      let pre = Rng.int rng 3 in
      let t = small_tree_with_pre rng ~nodes ~max_requests:4 ~pre in
      let frontier =
        Dp_power.frontier t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
      in
      (* Costs strictly increase, powers strictly decrease. *)
      let rec walk = function
        | a :: (b :: _ as rest) ->
            check cb "cost increases" true (a.Dp_power.cost < b.Dp_power.cost);
            check cb "power decreases" true (b.Dp_power.power < a.Dp_power.power);
            walk rest
        | _ -> ()
      in
      walk frontier;
      (* The frontier answers any bound exactly like solve. *)
      List.iter
        (fun bound ->
          let via_solve =
            Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
              ~bound ()
          in
          let via_frontier =
            List.fold_left
              (fun acc r -> if r.Dp_power.cost <= bound then Some r else acc)
              None frontier
          in
          match (via_solve, via_frontier) with
          | None, None -> ()
          | Some a, Some b -> check cf "same power" a.Dp_power.power b.Dp_power.power
          | _ -> Alcotest.fail "frontier/solve disagree on feasibility")
        [ 1.; 2.; 3.; 5.; 10. ])
    seeds

let test_result_consistency () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 43) in
      let nodes = 3 + Rng.int rng 10 in
      let pre = Rng.int rng 4 in
      let t = small_tree_with_pre rng ~nodes ~max_requests:4 ~pre in
      match
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
      with
      | None -> ()
      | Some r ->
          let w = Modes.max_capacity modes_2 in
          check cb "valid" true (Solution.is_valid t ~w r.Dp_power.solution);
          check cf "power recomputes"
            (Solution.power t modes_2 power_exp3 r.Dp_power.solution)
            r.Dp_power.power;
          check cf "cost recomputes"
            (Solution.modal_cost t modes_2 cost_cheap r.Dp_power.solution)
            r.Dp_power.cost)
    seeds

let test_state_count_grows () =
  let small = Generator.star ~leaves:3 ~client_requests:2 in
  let big = Generator.star ~leaves:8 ~client_requests:2 in
  let c1 = Dp_power.root_state_count small ~modes:modes_2 in
  let c2 = Dp_power.root_state_count big ~modes:modes_2 in
  check cb "bigger tree, more states" true (c2 > c1);
  check cb "at least one state" true (c1 >= 1)

let test_three_modes_matches_brute () =
  (* M = 3 (the other "realistic" mode count the paper names), with
     pre-existing servers at assorted initial modes. *)
  let modes3 = Modes.make [ 3; 6; 9 ] in
  let power3 = Power.make ~static:2. ~alpha:2. () in
  let cost3 = Cost.paper_cheap ~modes:3 in
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 47) in
      for _ = 1 to 6 do
        let nodes = 2 + Rng.int rng 6 in
        let t = small_tree rng ~nodes ~max_requests:3 in
        let marks =
          List.filter_map
            (fun j ->
              if Rng.bernoulli rng 0.4 then Some (j, 1 + Rng.int rng 3)
              else None)
            (List.init nodes Fun.id)
        in
        let t = Tree.with_pre_existing t marks in
        let bound = if Rng.bool rng then infinity else 2. +. Rng.float rng 6. in
        let dp =
          Dp_power.solve t ~modes:modes3 ~power:power3 ~cost:cost3 ~bound ()
        in
        let brute =
          Brute.min_power t ~modes:modes3 ~power:power3 ~cost:cost3 ~bound ()
        in
        match (dp, brute) with
        | None, None -> ()
        | Some d, Some (bp, _) ->
            check cf
              (Printf.sprintf "3-mode min power (seed %d)" seed)
              bp d.Dp_power.power
        | Some _, None -> Alcotest.fail "dp found a phantom solution"
        | None, Some _ -> Alcotest.fail "dp missed a solution"
      done)
    seeds

let test_three_modes_mode_boundaries () =
  (* A chain forcing each mode: loads 2, 5, 8 under ladder {3, 6, 9}. *)
  let modes3 = Modes.make [ 3; 6; 9 ] in
  let power3 = Power.make ~static:0. ~alpha:2. () in
  let cost3 = Cost.modal_uniform ~modes:3 ~create:0. ~delete:0. ~changed:0. in
  let t =
    Tree.build
      (Tree.node ~clients:[ 8 ]
         [ Tree.node ~clients:[ 5 ] [ Tree.node ~clients:[ 2 ] [] ] ])
  in
  match Dp_power.solve t ~modes:modes3 ~power:power3 ~cost:cost3 () with
  | Some r ->
      (* One server per node: 2 -> W1, 5 -> W2, 8 -> W3; any merge
         overloads a mode or wastes power (9+36+81=126 is minimal). *)
      check cf "power" 126. r.Dp_power.power;
      check ci "three servers" 3 (Solution.cardinal r.Dp_power.solution)
  | None -> Alcotest.fail "expected a solution"

let test_four_modes_matches_brute () =
  (* M = 4 stresses the general-M machinery (state vectors of length
     4 + 16 = 20) beyond the paper's practical 2-3 range. *)
  let modes4 = Modes.make [ 2; 4; 6; 8 ] in
  let power4 = Power.make ~static:1. ~alpha:2. () in
  let cost4 = Cost.paper_cheap ~modes:4 in
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 53) in
      for _ = 1 to 4 do
        let nodes = 2 + Rng.int rng 5 in
        let t = small_tree rng ~nodes ~max_requests:3 in
        let marks =
          List.filter_map
            (fun j ->
              if Rng.bernoulli rng 0.3 then Some (j, 1 + Rng.int rng 4)
              else None)
            (List.init nodes Fun.id)
        in
        let t = Tree.with_pre_existing t marks in
        let dp = Dp_power.solve t ~modes:modes4 ~power:power4 ~cost:cost4 () in
        let brute = Brute.min_power t ~modes:modes4 ~power:power4 ~cost:cost4 () in
        match (dp, brute) with
        | None, None -> ()
        | Some d, Some (bp, _) ->
            check cf (Printf.sprintf "4-mode min power (seed %d)" seed) bp
              d.Dp_power.power
        | Some _, None -> Alcotest.fail "dp found a phantom solution"
        | None, Some _ -> Alcotest.fail "dp missed a solution"
      done)
    seeds

let test_mode_count_mismatch () =
  let t = figure2_tree ~root_requests:4 in
  let bad_cost = Cost.modal_uniform ~modes:3 ~create:0. ~delete:0. ~changed:0. in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Dp_power: cost model mode count mismatch") (fun () ->
      ignore (Dp_power.solve t ~modes:fig2_modes ~power:fig2_power ~cost:bad_cost ()))

let () =
  Alcotest.run "dp_power"
    [
      ( "paper figure 2",
        [
          Alcotest.test_case "light root" `Quick test_figure2_light_root;
          Alcotest.test_case "heavy root" `Quick test_figure2_heavy_root;
          Alcotest.test_case "local claim" `Quick test_figure2_local_claim;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "min power = brute" `Slow test_matches_brute_min_power;
          Alcotest.test_case "bounded cost = brute" `Slow test_matches_brute_bounded_cost;
          Alcotest.test_case "3 modes = brute" `Slow test_three_modes_matches_brute;
          Alcotest.test_case "3-mode boundaries" `Quick test_three_modes_mode_boundaries;
          Alcotest.test_case "4 modes = brute" `Slow test_four_modes_matches_brute;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "pareto properties" `Quick test_frontier_properties;
          Alcotest.test_case "result consistency" `Quick test_result_consistency;
          Alcotest.test_case "state counting" `Quick test_state_count_grows;
          Alcotest.test_case "mode mismatch" `Quick test_mode_count_mismatch;
        ] );
    ]
