open Replica_tree
open Replica_core
open Helpers

let test_single_node () =
  let t = Tree.build (Tree.node ~clients:[ 3 ] []) in
  match Dp_nopre.solve t ~w:5 with
  | Some r ->
      check ci "one server" 1 r.Dp_nopre.servers;
      check (Alcotest.list ci) "at root" [ 0 ] (Solution.nodes r.Dp_nopre.solution)
  | None -> Alcotest.fail "expected a solution"

let test_no_requests () =
  let t = Tree.build (Tree.node [ Tree.node [] ]) in
  match Dp_nopre.solve t ~w:5 with
  | Some r -> check ci "zero servers" 0 r.Dp_nopre.servers
  | None -> Alcotest.fail "expected the empty solution"

let test_infeasible () =
  let t = Tree.build (Tree.node [ Tree.node ~clients:[ 9 ] [] ]) in
  check cb "infeasible" true (Dp_nopre.solve t ~w:5 = None)

let test_min_flow_table () =
  (* Star with 3 leaves of 2 requests, W=4: flows through root with k
     replicas below: k=0 -> 6 (> W, pruned to None), k=1 -> 4, k=2 -> 2,
     k=3 -> 0. *)
  let t = Generator.star ~leaves:3 ~client_requests:2 in
  let table = Dp_nopre.min_flow_per_count t ~w:4 in
  check (Alcotest.array (Alcotest.option ci)) "root table"
    [| None; Some 4; Some 2; Some 0 |]
    table

let test_matches_greedy_and_brute () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      for _ = 1 to 15 do
        let nodes = 2 + Rng.int rng 9 in
        let t = small_tree rng ~nodes ~max_requests:4 in
        let w = 3 + Rng.int rng 6 in
        let dp = Option.map (fun r -> r.Dp_nopre.servers) (Dp_nopre.solve t ~w) in
        let brute = Option.map fst (Brute.min_servers t ~w) in
        let greedy = Greedy.solve_count t ~w in
        check (Alcotest.option ci) "dp = brute" brute dp;
        check (Alcotest.option ci) "dp = greedy" greedy dp
      done)
    seeds

let test_solution_consistency () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 77) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 25 in
        let t = small_tree rng ~nodes ~max_requests:6 in
        let w = 4 + Rng.int rng 8 in
        match Dp_nopre.solve t ~w with
        | Some r ->
            check ci "cardinal matches count" r.Dp_nopre.servers
              (Solution.cardinal r.Dp_nopre.solution);
            check cb "valid" true (Solution.is_valid t ~w r.Dp_nopre.solution)
        | None -> ()
      done)
    seeds

let () =
  Alcotest.run "dp_nopre"
    [
      ( "basics",
        [
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "no requests" `Quick test_no_requests;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "root flow table" `Quick test_min_flow_table;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "matches greedy and brute" `Slow test_matches_greedy_and_brute;
          Alcotest.test_case "solutions consistent" `Quick test_solution_consistency;
        ] );
    ]
