test/test_rng.ml: Alcotest Array Fun Helpers List Printf Replica_tree Rng
