test/test_dp_power.mli:
