test/test_props.ml: Alcotest Cost Dp_nopre Dp_power Dp_withpre Fun Generator Greedy Greedy_power Hashtbl Helpers List Option QCheck2 Replica_core Replica_tree Rng Solution Tree
