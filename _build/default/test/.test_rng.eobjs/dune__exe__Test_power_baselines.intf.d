test/test_power_baselines.mli:
