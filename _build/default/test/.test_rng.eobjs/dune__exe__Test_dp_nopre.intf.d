test/test_dp_nopre.mli:
