test/test_update_policy.mli:
