test/test_dp_power.ml: Alcotest Brute Cost Dp_power Fun Generator Helpers List Modes Power Printf Replica_core Replica_tree Rng Solution Tree
