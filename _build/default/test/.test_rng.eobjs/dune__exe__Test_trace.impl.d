test/test_trace.ml: Alcotest Arrivals Epochs Helpers List Printf Replica_trace Replica_tree Rng Trace Tree
