test/test_generator.ml: Alcotest Generator Helpers List Printf Replica_tree Rng Tree
