test/test_npc.ml: Alcotest Helpers List Modes Npc Printf Replica_core Replica_tree Rng String Tree
