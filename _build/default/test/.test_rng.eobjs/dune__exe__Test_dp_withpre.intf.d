test/test_dp_withpre.mli:
