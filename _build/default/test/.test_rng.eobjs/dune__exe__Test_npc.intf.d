test/test_npc.mli:
