test/test_heuristics_cost.mli:
