test/test_tree.ml: Alcotest Array Hashtbl Helpers List Replica_tree Tree
