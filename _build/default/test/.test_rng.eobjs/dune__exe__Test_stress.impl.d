test/test_stress.ml: Alcotest Cost Dp_power Dp_withpre Generator Greedy Greedy_power Helpers Heuristics_cost List Modes Multiple Power Replica_core Replica_tree Rng Solution Tree
