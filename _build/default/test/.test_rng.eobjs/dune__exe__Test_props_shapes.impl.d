test/test_props_shapes.ml: Alcotest Clist Cost Dp_nopre Dp_withpre Generator Greedy Helpers List Modes Option Power QCheck2 Replica_core Replica_tree Rng Solution Tree Update_policy
