test/helpers.ml: Alcotest Cost Generator Modes Power QCheck2 QCheck_alcotest Replica_core Replica_tree Solution Tree
