test/test_metrics_report.mli:
