test/test_power_baselines.ml: Alcotest Cost Dp_power Greedy Greedy_power Helpers Heuristics List Modes Power Replica_core Replica_tree Rng Solution Tree
