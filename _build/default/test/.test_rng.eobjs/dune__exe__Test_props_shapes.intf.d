test/test_props_shapes.mli:
