test/test_greedy.ml: Alcotest Brute Fun Generator Greedy Helpers List Option Printf Replica_core Replica_tree Rng Solution Tree
