test/test_heuristics_cost.ml: Alcotest Cost Dp_power Dp_withpre Greedy Helpers Heuristics_cost Instances List Modes Option Replica_core Replica_tree Rng Solution Tree
