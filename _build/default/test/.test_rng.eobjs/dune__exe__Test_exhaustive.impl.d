test/test_exhaustive.ml: Alcotest Array Brute Cost Dp_nopre Dp_power Dp_withpre Greedy Helpers List Modes Multiple Option Power Replica_core Replica_tree Tree
