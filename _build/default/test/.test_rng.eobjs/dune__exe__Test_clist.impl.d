test/test_clist.ml: Alcotest Clist Fun Helpers List Replica_core
