test/test_update_policy.ml: Alcotest Cost Helpers List Replica_core Replica_tree Tree Update_policy
