test/test_dp_nopre.ml: Alcotest Brute Dp_nopre Generator Greedy Helpers List Option Replica_core Replica_tree Rng Solution Tree
