test/test_policies_ext.mli:
