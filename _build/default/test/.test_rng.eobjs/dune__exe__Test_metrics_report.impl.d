test/test_metrics_report.ml: Alcotest Cost Filename Fun Generator Helpers Metrics Modes Power Replica_core Replica_tree Report Rng Solution String Svg Sys Tree
