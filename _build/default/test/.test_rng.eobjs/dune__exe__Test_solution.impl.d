test/test_solution.ml: Alcotest Array Cost Dot Helpers Modes Power Replica_core Replica_tree Solution String Tree
