test/test_models.ml: Alcotest Array Cost Helpers Modes Power Replica_core
