test/test_dp_withpre.ml: Alcotest Array Brute Cost Dp_nopre Dp_withpre Helpers List Printf Replica_core Replica_tree Rng Solution Tree
