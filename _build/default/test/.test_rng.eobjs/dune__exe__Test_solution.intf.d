test/test_solution.mli:
