test/test_clist.mli:
