test/test_policies_ext.ml: Alcotest Fun Generator Greedy Helpers List Multiple Option Printf Replica_core Replica_tree Rng Solution Tree Upwards
