open Replica_core
open Helpers

let test_empty () =
  check cb "is_empty" true (Clist.is_empty Clist.empty);
  check ci "length" 0 (Clist.length Clist.empty);
  check (Alcotest.list ci) "to_list" [] (Clist.to_list Clist.empty)

let test_singleton () =
  let c = Clist.singleton 7 in
  check cb "not empty" false (Clist.is_empty c);
  check ci "length" 1 (Clist.length c);
  check (Alcotest.list ci) "to_list" [ 7 ] (Clist.to_list c)

let test_append_order () =
  let a = Clist.of_list [ 1; 2 ] and b = Clist.of_list [ 3; 4 ] in
  check (Alcotest.list ci) "left to right" [ 1; 2; 3; 4 ]
    (Clist.to_list (Clist.append a b));
  check ci "length" 4 (Clist.length (Clist.append a b))

let test_append_identity () =
  let a = Clist.of_list [ 1; 2 ] in
  check (Alcotest.list ci) "empty left" [ 1; 2 ]
    (Clist.to_list (Clist.append Clist.empty a));
  check (Alcotest.list ci) "empty right" [ 1; 2 ]
    (Clist.to_list (Clist.append a Clist.empty))

let test_cons_snoc () =
  let a = Clist.of_list [ 2; 3 ] in
  check (Alcotest.list ci) "cons" [ 1; 2; 3 ] (Clist.to_list (Clist.cons 1 a));
  check (Alcotest.list ci) "snoc" [ 2; 3; 4 ] (Clist.to_list (Clist.snoc a 4))

let test_roundtrip () =
  let l = List.init 100 Fun.id in
  check (Alcotest.list ci) "of_list/to_list" l (Clist.to_list (Clist.of_list l))

let test_iter_fold_map () =
  let c = Clist.of_list [ 1; 2; 3; 4 ] in
  let sum = ref 0 in
  Clist.iter (fun x -> sum := !sum + x) c;
  check ci "iter" 10 !sum;
  check ci "fold_left" 10 (Clist.fold_left ( + ) 0 c);
  check (Alcotest.list ci) "map" [ 2; 4; 6; 8 ]
    (Clist.to_list (Clist.map (fun x -> 2 * x) c));
  check cb "exists" true (Clist.exists (fun x -> x = 3) c);
  check cb "not exists" false (Clist.exists (fun x -> x = 9) c)

let test_deep_spine () =
  (* One million appends must not overflow the stack on to_list. *)
  let c = ref Clist.empty in
  for i = 1 to 1_000_000 do
    c := Clist.snoc !c i
  done;
  check ci "length" 1_000_000 (Clist.length !c);
  check ci "materializes" 1_000_000 (List.length (Clist.to_list !c))

let test_tree_shape_balance_independent () =
  (* Same contents through different association orders. *)
  let a = Clist.append (Clist.of_list [ 1 ]) (Clist.of_list [ 2; 3 ]) in
  let b = Clist.append (Clist.of_list [ 1; 2 ]) (Clist.of_list [ 3 ]) in
  check (Alcotest.list ci) "same list" (Clist.to_list a) (Clist.to_list b)

let () =
  Alcotest.run "clist"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "append order" `Quick test_append_order;
          Alcotest.test_case "append identity" `Quick test_append_identity;
          Alcotest.test_case "cons/snoc" `Quick test_cons_snoc;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "iter/fold/map" `Quick test_iter_fold_map;
          Alcotest.test_case "deep spine" `Slow test_deep_spine;
          Alcotest.test_case "shape independence" `Quick test_tree_shape_balance_independent;
        ] );
    ]
