(* Property tests on structured shapes with closed-form answers, plus
   algebraic properties of the small data structures. *)

open Replica_tree
open Replica_core
open Helpers

let gen_small_ints = QCheck2.Gen.(pair (int_range 1 8) (int_range 1 10))

let prop_path_single_server =
  qcheck_case "path: one client within W needs exactly one server"
    QCheck2.Gen.(triple (int_range 1 20) (int_range 1 10) (int_range 10 15))
    (fun (n, r, w) ->
      let t = Generator.path ~n ~client_requests:r in
      Greedy.solve_count t ~w = Some 1
      && Option.map (fun x -> x.Dp_nopre.servers) (Dp_nopre.solve t ~w) = Some 1)

let prop_star_closed_form =
  qcheck_case "star: greedy matches the closed-form optimum"
    QCheck2.Gen.(triple (int_range 1 10) (int_range 1 6) (int_range 1 12))
    (fun (leaves, r, w) ->
      let t = Generator.star ~leaves ~client_requests:r in
      let expected =
        if r > w then None (* a single client exceeds every server *)
        else
          let total = leaves * r in
          if total <= w then Some 1
          else
            (* k leaf servers absorb k*r; the root takes the rest. *)
            let k = (total - w + r - 1) / r in
            Some (k + 1)
      in
      Greedy.solve_count t ~w = expected)

let prop_balanced_symmetric =
  qcheck_case ~count:40 "balanced: server count depends only on shape"
    QCheck2.Gen.(pair (int_range 2 3) (int_range 1 3))
    (fun (arity, depth) ->
      let t = Generator.balanced ~arity ~depth ~client_requests:2 in
      let w = 6 in
      match (Greedy.solve t ~w, Dp_nopre.solve t ~w) with
      | Some g, Some d ->
          Solution.cardinal g = d.Dp_nopre.servers
          (* Leaf loads are uniform: every chosen leaf-level server
             carries the same load. *)
          && Solution.is_valid t ~w g
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_all_pre_existing_cost_is_count =
  qcheck_case "all nodes pre-existing + free delete: optimal cost = R*"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 12))
    (fun (seed, nodes) ->
      let rng = Rng.create seed in
      let t = small_tree rng ~nodes ~max_requests:4 in
      let all = List.init (Tree.size t) (fun j -> (j, 1)) in
      let t = Tree.with_pre_existing t all in
      let w = 8 in
      let cost = Cost.basic ~create:0.7 ~delete:0. () in
      match (Dp_withpre.solve t ~w ~cost, Dp_nopre.solve t ~w) with
      | Some r, Some base ->
          (* Everything can be reused: no creation is ever needed, so the
             optimal cost is exactly the minimal server count. *)
          r.Dp_withpre.reused = r.Dp_withpre.servers
          && abs_float (r.Dp_withpre.cost -. float_of_int base.Dp_nopre.servers)
             < 1e-9
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_greedy_monotone_in_w =
  qcheck_case "server count is non-increasing in W"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 20))
    (fun (seed, nodes) ->
      let rng = Rng.create seed in
      let t = small_tree rng ~nodes ~max_requests:5 in
      let counts =
        List.map (fun w -> Greedy.solve_count t ~w) [ 5; 7; 9; 12; 20 ]
      in
      let rec monotone = function
        | Some a :: (Some b :: _ as rest) -> b <= a && monotone rest
        | None :: rest -> monotone rest
        | [ Some _ ] | [] -> true
        | Some _ :: None :: _ -> false (* larger W cannot lose feasibility *)
      in
      monotone counts)

let prop_mode_of_load_window =
  qcheck_case "mode_of_load lands in the right window" gen_small_ints
    (fun (m, span) ->
      let ladder = List.init m (fun i -> (i + 1) * span) in
      let modes = Modes.make ladder in
      let ok = ref true in
      for load = 0 to Modes.max_capacity modes do
        let mode = Modes.mode_of_load modes load in
        let upper = Modes.capacity modes mode in
        let lower = if mode = 1 then 0 else Modes.capacity modes (mode - 1) in
        if not (load <= upper && (load > lower || mode = 1)) then ok := false
      done;
      !ok)

let prop_power_monotone_in_mode =
  qcheck_case "power strictly increases with the mode" gen_small_ints
    (fun (m, span) ->
      let modes = Modes.make (List.init m (fun i -> (i + 1) * span)) in
      let power = Power.make ~static:1. ~alpha:2.5 () in
      let rec increasing i =
        i >= m
        || (Power.of_mode power modes i < Power.of_mode power modes (i + 1)
           && increasing (i + 1))
      in
      m = 1 || increasing 1)

let prop_clist_append_assoc =
  qcheck_case "clist append is associative on contents"
    QCheck2.Gen.(triple (list small_int) (list small_int) (list small_int))
    (fun (a, b, c) ->
      let ca = Clist.of_list a and cb = Clist.of_list b and cc = Clist.of_list c in
      Clist.to_list (Clist.append (Clist.append ca cb) cc)
      = Clist.to_list (Clist.append ca (Clist.append cb cc))
      && Clist.to_list (Clist.append ca cb) = a @ b)

let prop_clist_length =
  qcheck_case "clist length agrees with to_list"
    QCheck2.Gen.(list small_int)
    (fun l ->
      let c = Clist.of_list l in
      Clist.length c = List.length l && Clist.to_list c = l)

let prop_basic_cost_formula =
  qcheck_case "Eq. 2 equals its closed form"
    QCheck2.Gen.(
      quad (float_bound_inclusive 3.) (float_bound_inclusive 3.) (int_bound 20)
        (pair (int_bound 20) (int_bound 20)))
    (fun (create, delete, servers, (reused0, pre0)) ->
      let pre = max reused0 pre0 and reused = min reused0 pre0 in
      let reused = min reused servers in
      let c = Cost.basic ~create ~delete () in
      let v = Cost.basic_cost c ~servers ~reused ~pre_existing:pre in
      abs_float
        (v
        -. (float_of_int servers
           +. (float_of_int (servers - reused) *. create)
           +. (float_of_int (pre - reused) *. delete)))
      < 1e-9)

let prop_update_policy_lazy_subset =
  qcheck_case ~count:40 "lazy reconfigures on a subset of systematic's epochs"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 10))
    (fun (seed, nodes) ->
      let rng = Rng.create seed in
      let t = small_tree rng ~nodes ~max_requests:4 in
      let demands =
        List.init 6 (fun k ->
            Tree.with_clients t (fun j ->
                List.map (fun r -> max 1 ((r + k) mod 5)) (Tree.clients t j)))
      in
      let w = 8 in
      let cost = Cost.basic ~create:0.3 ~delete:0.1 () in
      let lazy_sum = Update_policy.simulate ~w ~cost Update_policy.Lazy demands in
      let sys_sum =
        Update_policy.simulate ~w ~cost Update_policy.Systematic demands
      in
      lazy_sum.Update_policy.reconfigurations
      <= sys_sum.Update_policy.reconfigurations
      && lazy_sum.Update_policy.invalid_epochs
         = sys_sum.Update_policy.invalid_epochs)

let () =
  Alcotest.run "properties_shapes"
    [
      ( "closed forms",
        [
          prop_path_single_server;
          prop_star_closed_form;
          prop_balanced_symmetric;
          prop_all_pre_existing_cost_is_count;
          prop_greedy_monotone_in_w;
        ] );
      ( "models",
        [
          prop_mode_of_load_window;
          prop_power_monotone_in_mode;
          prop_basic_cost_formula;
        ] );
      ( "structures",
        [ prop_clist_append_assoc; prop_clist_length ] );
      ("policies", [ prop_update_policy_lazy_subset ]);
    ]
