open Replica_tree
open Replica_core
open Helpers

let cost = Cost.basic ~create:0.5 ~delete:0.25 ()

let test_sandwiched_between_greedy_and_dp () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 2100) in
      for _ = 1 to 8 do
        let nodes = 3 + Rng.int rng 15 in
        let pre = Rng.int rng (nodes / 2 + 1) in
        let t = small_tree_with_pre rng ~nodes ~max_requests:5 ~pre in
        let w = 6 + Rng.int rng 6 in
        let dp = Dp_withpre.solve t ~w ~cost in
        let h = Heuristics_cost.solve t ~w ~cost () in
        let gr =
          Option.map (fun s -> Solution.basic_cost t cost s) (Greedy.solve t ~w)
        in
        match (dp, h, gr) with
        | None, None, None -> ()
        | Some d, Some h, Some g ->
            check cb "dp <= heuristic" true
              (d.Dp_withpre.cost <= h.Heuristics_cost.cost +. 1e-9);
            check cb "heuristic <= greedy seed" true
              (h.Heuristics_cost.cost <= g +. 1e-9);
            check cb "valid" true
              (Solution.is_valid t ~w h.Heuristics_cost.solution)
        | _ -> Alcotest.fail "feasibility disagreement"
      done)
    seeds

let test_retarget_move_reuses_idle_pre () =
  (* Greedy puts a server on the root; node 1 (pre-existing) can absorb
     the same flow. With delete > 0 the retarget strictly pays. *)
  let t =
    Tree.build
      (Tree.node [ Tree.node ~pre:1 [ Tree.node ~clients:[ 7 ] [] ] ])
  in
  match Heuristics_cost.solve t ~w:10 ~cost () with
  | Some r ->
      check ci "one server" 1 r.Heuristics_cost.servers;
      check ci "reuses the pre-existing node" 1 r.Heuristics_cost.reused;
      check cf "cost 1" 1. r.Heuristics_cost.cost
  | None -> Alcotest.fail "expected a solution"

let test_metrics_consistent () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 2300) in
      let nodes = 5 + Rng.int rng 20 in
      let pre = Rng.int rng 6 in
      let t = small_tree_with_pre rng ~nodes ~max_requests:5 ~pre in
      match Heuristics_cost.solve t ~w:10 ~cost () with
      | None -> ()
      | Some r ->
          check ci "servers" r.Heuristics_cost.servers
            (Solution.cardinal r.Heuristics_cost.solution);
          check ci "reused" r.Heuristics_cost.reused
            (Solution.reused t r.Heuristics_cost.solution);
          check cf "cost recomputes"
            (Solution.basic_cost t cost r.Heuristics_cost.solution)
            r.Heuristics_cost.cost)
    seeds

let test_improve_rejects_invalid_seed () =
  let t = Tree.build (Tree.node ~clients:[ 5 ] []) in
  check cb "invalid seed" true
    (Heuristics_cost.improve t ~w:10 ~cost Solution.empty = None)

let test_infeasible () =
  let t = Tree.build (Tree.node ~clients:[ 11 ] []) in
  check cb "infeasible" true (Heuristics_cost.solve t ~w:10 ~cost () = None)

(* --- Instances module --- *)

let test_instances_figure1 () =
  let t = Instances.figure1 ~root_requests:2 in
  check ci "four nodes" 4 (Tree.size t);
  check cb "B pre-existing" true (Tree.is_pre_existing t 2);
  check ci "capacity" 10 Instances.figure1_capacity;
  (* The published outcome, via the DP. *)
  let c = Cost.basic ~create:0.1 ~delete:0.01 () in
  (match Dp_withpre.solve t ~w:Instances.figure1_capacity ~cost:c with
  | Some r -> check cb "reuses B" true (Solution.mem r.Dp_withpre.solution 2)
  | None -> Alcotest.fail "expected a solution");
  let t4 = Instances.figure1 ~root_requests:4 in
  match Dp_withpre.solve t4 ~w:Instances.figure1_capacity ~cost:c with
  | Some r -> check cb "drops B" false (Solution.mem r.Dp_withpre.solution 2)
  | None -> Alcotest.fail "expected a solution"

let test_instances_figure2 () =
  let t = Instances.figure2 ~root_requests:4 in
  check ci "four nodes" 4 (Tree.size t);
  check ci "two modes" 2 (Modes.count Instances.figure2_modes);
  let zero = Cost.modal_uniform ~modes:2 ~create:0. ~delete:0. ~changed:0. in
  match
    Dp_power.solve t ~modes:Instances.figure2_modes
      ~power:Instances.figure2_power ~cost:zero ()
  with
  | Some r -> check cf "published optimum" 118. r.Dp_power.power
  | None -> Alcotest.fail "expected a solution"

let test_instances_names () =
  check Alcotest.string "root" "root" (Instances.node_name 0);
  check Alcotest.string "A" "A" (Instances.node_name 1);
  check Alcotest.string "fallback" "7" (Instances.node_name 7)

let () =
  Alcotest.run "heuristics_cost"
    [
      ( "local search",
        [
          Alcotest.test_case "sandwiched" `Slow test_sandwiched_between_greedy_and_dp;
          Alcotest.test_case "retarget" `Quick test_retarget_move_reuses_idle_pre;
          Alcotest.test_case "metrics" `Quick test_metrics_consistent;
          Alcotest.test_case "invalid seed" `Quick test_improve_rejects_invalid_seed;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
        ] );
      ( "instances",
        [
          Alcotest.test_case "figure 1" `Quick test_instances_figure1;
          Alcotest.test_case "figure 2" `Quick test_instances_figure2;
          Alcotest.test_case "names" `Quick test_instances_names;
        ] );
    ]
