  $ replica_cli generate --nodes 6 --pre 1 --seed 3
  $ replica_cli generate --nodes 6 --pre 1 --seed 3 --stats
  $ replica_cli solve --algo dp-withpre --nodes 6 --pre 2 --seed 5 -w 8
  $ replica_cli solve --algo greedy --nodes 6 --pre 2 --seed 5 -w 8
  $ replica_cli exp1 -q --trees 2 --nodes 8 --seed 1 --csv
  $ replica_cli solve --algo dp-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  $ replica_cli solve --algo gr-power --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  $ replica_cli solve --algo heuristic --nodes 8 --pre 2 --seed 7 -w 10 --bound 6
  $ replica_cli policies --trees 2 --nodes 10 --epochs 4 --seed 2 --csv
  $ replica_cli heuristics --trees 2 --nodes 10 --pre 2 --seed 2 --csv
  $ replica_cli exp3 -q --trees 2 --nodes 10 --pre 2 --seed 2 --csv
  $ replica_cli trace --nodes 12 --seed 6 --horizon 6 --window 2
