(* Property-based tests (qcheck) on the core invariants. *)

open Replica_tree
open Replica_core
open Helpers

(* A generator of small random trees driven by a qcheck-provided seed, so
   shrinking reproduces instances. *)
let tree_gen ?(max_nodes = 12) ?(with_pre = true) () =
  QCheck2.Gen.map
    (fun (seed, nodes, pre_frac) ->
      let rng = Rng.create seed in
      let nodes = 1 + (nodes mod max_nodes) in
      let t = small_tree rng ~nodes ~max_requests:5 in
      if with_pre then
        Generator.add_pre_existing rng t (pre_frac mod (nodes + 1))
      else t)
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_bound 1_000) (int_bound 1_000))

let prop_greedy_valid_or_infeasible =
  qcheck_case "greedy: valid or truly infeasible" (tree_gen ~with_pre:false ())
    (fun t ->
      let w = 8 in
      match Greedy.solve t ~w with
      | Some sol -> Solution.is_valid t ~w sol
      | None ->
          let all = Solution.of_nodes (List.init (Tree.size t) Fun.id) in
          not (Solution.is_valid t ~w all))

let prop_greedy_equals_dp_nopre =
  qcheck_case "greedy count = DP count" (tree_gen ~with_pre:false ())
    (fun t ->
      let w = 7 in
      Greedy.solve_count t ~w
      = Option.map (fun r -> r.Dp_nopre.servers) (Dp_nopre.solve t ~w))

let prop_withpre_cost_at_most_nopre_policy =
  (* Adding pre-existing markers can only lower (or keep) the optimal
     Eq. 2 cost when delete = 0: reuse discounts creations. *)
  qcheck_case "pre-existing markers never hurt when deletion is free"
    (tree_gen ())
    (fun t ->
      let w = 8 in
      let cost = Cost.basic ~create:0.4 ~delete:0. () in
      let stripped = Tree.with_pre_existing t [] in
      match (Dp_withpre.solve t ~w ~cost, Dp_withpre.solve stripped ~w ~cost) with
      | None, None -> true
      | Some a, Some b -> a.Dp_withpre.cost <= b.Dp_withpre.cost +. 1e-9
      | Some _, None | None, Some _ -> false)

let prop_withpre_solution_accounting =
  qcheck_case "dp_withpre: reported metrics match the solution"
    (tree_gen ())
    (fun t ->
      let w = 9 in
      let cost = Cost.basic ~create:0.3 ~delete:0.2 () in
      match Dp_withpre.solve t ~w ~cost with
      | None -> true
      | Some r ->
          Solution.is_valid t ~w r.Dp_withpre.solution
          && r.Dp_withpre.servers = Solution.cardinal r.Dp_withpre.solution
          && r.Dp_withpre.reused = Solution.reused t r.Dp_withpre.solution
          && abs_float
               (r.Dp_withpre.cost
               -. Solution.basic_cost t cost r.Dp_withpre.solution)
             < 1e-9)

let prop_power_monotone_in_bound =
  qcheck_case ~count:50 "optimal power is non-increasing in the cost bound"
    (tree_gen ~max_nodes:9 ())
    (fun t ->
      let solve bound =
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~bound ()
      in
      let bounds = [ 1.; 2.; 4.; 8.; infinity ] in
      let powers = List.map (fun b -> Option.map (fun r -> r.Dp_power.power) (solve b)) bounds in
      let rec monotone = function
        | Some a :: (Some b :: _ as rest) -> b <= a +. 1e-9 && monotone rest
        | None :: (Some _ :: _ as rest) -> monotone rest
        | Some _ :: None :: _ -> false (* loosening can't lose feasibility *)
        | [ _ ] | [] -> true
        | None :: (None :: _ as rest) -> monotone rest
      in
      monotone powers)

let prop_power_dp_beats_gr =
  qcheck_case ~count:50 "DP power <= GR power at every bound"
    (tree_gen ~max_nodes:10 ())
    (fun t ->
      List.for_all
        (fun bound ->
          let dp =
            Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
              ~bound ()
          in
          let gr =
            Greedy_power.solve t ~modes:modes_2 ~power:power_exp3
              ~cost:cost_cheap ~bound ()
          in
          match (dp, gr) with
          | _, None -> true
          | None, Some _ -> false
          | Some d, Some g -> d.Dp_power.power <= g.Dp_power.power +. 1e-9)
        [ 2.; 5.; infinity ])

let prop_min_power_unbounded_no_static_prefers_slow =
  (* Without static power and alpha >= 1, replacing any single server by
     the optimal solution can't beat the DP: sanity vs brute on tiny
     trees. Covered elsewhere; here check DP result validity only. *)
  qcheck_case ~count:80 "dp_power result is always valid"
    (tree_gen ~max_nodes:10 ())
    (fun t ->
      match
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
      with
      | None ->
          let all = Solution.of_nodes (List.init (Tree.size t) Fun.id) in
          not (Solution.is_valid t ~w:10 all)
      | Some r -> Solution.is_valid t ~w:10 r.Dp_power.solution)

let prop_evaluate_conservation =
  (* Requests are conserved: served + unserved = total. *)
  qcheck_case "closest policy conserves requests" (tree_gen ())
    (fun t ->
      let rng = Rng.create (Tree.size t) in
      let nodes =
        List.filter (fun _ -> Rng.bool rng) (List.init (Tree.size t) Fun.id)
      in
      let sol = Solution.of_nodes nodes in
      let ev = Solution.evaluate t sol in
      let served = List.fold_left (fun acc (_, l) -> acc + l) 0 ev.Solution.loads in
      served + ev.Solution.unserved = Tree.total_requests t)

let prop_server_of_agrees_with_loads =
  qcheck_case "server_of partitions clients consistently" (tree_gen ())
    (fun t ->
      let rng = Rng.create (17 + Tree.size t) in
      let nodes =
        List.filter (fun _ -> Rng.bool rng) (List.init (Tree.size t) Fun.id)
      in
      let sol = Solution.of_nodes nodes in
      let ev = Solution.evaluate t sol in
      (* Recompute loads from scratch via server_of. *)
      let recomputed = Hashtbl.create 16 in
      for j = 0 to Tree.size t - 1 do
        match Solution.server_of t sol j with
        | Some s ->
            Hashtbl.replace recomputed s
              ((try Hashtbl.find recomputed s with Not_found -> 0)
              + Tree.client_load t j)
        | None -> ()
      done;
      List.for_all
        (fun (j, load) ->
          (try Hashtbl.find recomputed j with Not_found -> 0) = load)
        ev.Solution.loads)

let prop_tree_serialization_roundtrip =
  qcheck_case "tree serialization roundtrips" (tree_gen ())
    (fun t -> Tree.equal t (Tree.of_string (Tree.to_string t)))

let prop_frontier_matches_bounded_solve =
  qcheck_case ~count:40 "frontier answers bounds like solve"
    (tree_gen ~max_nodes:9 ())
    (fun t ->
      let f =
        Dp_power.frontier t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
      in
      List.for_all
        (fun bound ->
          let via_frontier =
            List.fold_left
              (fun acc r -> if r.Dp_power.cost <= bound then Some r.Dp_power.power else acc)
              None f
          in
          let via_solve =
            Option.map
              (fun r -> r.Dp_power.power)
              (Dp_power.solve t ~modes:modes_2 ~power:power_exp3
                 ~cost:cost_cheap ~bound ())
          in
          match (via_frontier, via_solve) with
          | None, None -> true
          | Some a, Some b -> abs_float (a -. b) < 1e-9
          | Some _, None | None, Some _ -> false)
        [ 1.5; 3.; 6. ])

let () =
  Alcotest.run "properties"
    [
      ( "algorithms",
        [
          prop_greedy_valid_or_infeasible;
          prop_greedy_equals_dp_nopre;
          prop_withpre_cost_at_most_nopre_policy;
          prop_withpre_solution_accounting;
          prop_power_monotone_in_bound;
          prop_power_dp_beats_gr;
          prop_min_power_unbounded_no_static_prefers_slow;
        ] );
      ( "model",
        [
          prop_evaluate_conservation;
          prop_server_of_agrees_with_loads;
          prop_tree_serialization_roundtrip;
          prop_frontier_matches_bounded_solve;
        ] );
    ]
