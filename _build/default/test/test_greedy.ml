open Replica_tree
open Replica_core
open Helpers

let test_single_node () =
  let t = Tree.build (Tree.node ~clients:[ 3 ] []) in
  match Greedy.solve t ~w:5 with
  | Some sol ->
      check (Alcotest.list ci) "root hosts" [ 0 ] (Solution.nodes sol)
  | None -> Alcotest.fail "expected a solution"

let test_no_requests () =
  let t = Tree.build (Tree.node [ Tree.node [] ]) in
  match Greedy.solve t ~w:5 with
  | Some sol -> check ci "no server needed" 0 (Solution.cardinal sol)
  | None -> Alcotest.fail "expected the empty solution"

let test_infeasible () =
  let t = Tree.build (Tree.node ~clients:[ 7 ] []) in
  check cb "infeasible" true (Greedy.solve t ~w:5 = None);
  let t2 = Tree.build (Tree.node ~clients:[ 3; 3 ] []) in
  check cb "aggregate overload" true (Greedy.solve t2 ~w:5 = None)

let test_star () =
  (* 6 leaf nodes with 2 requests each, W=5. A leaf server only absorbs
     its own 2 requests; the root absorbs the rest, so at least 4 leaf
     servers are needed to bring the root load to 4: optimum is 5. *)
  let t = Generator.star ~leaves:6 ~client_requests:2 in
  match Greedy.solve t ~w:5 with
  | Some sol ->
      check ci "five servers" 5 (Solution.cardinal sol);
      check cb "valid" true (Solution.is_valid t ~w:5 sol)
  | None -> Alcotest.fail "expected a solution"

let test_path () =
  let t = Generator.path ~n:10 ~client_requests:4 in
  match Greedy.solve t ~w:5 with
  | Some sol -> check ci "one server" 1 (Solution.cardinal sol)
  | None -> Alcotest.fail "expected a solution"

let test_largest_first_matters () =
  (* Root with clients 4; children with flows 5, 4, 1; W = 5.
     Total at root = 14 > 5; absorbing 5 then 4 leaves 5 = W: 2 servers
     below + root. A naive smallest-first would need 3 below. *)
  let t =
    Tree.build
      (Tree.node ~clients:[ 4 ]
         [
           Tree.node ~clients:[ 5 ] [];
           Tree.node ~clients:[ 4 ] [];
           Tree.node ~clients:[ 1 ] [];
         ])
  in
  match Greedy.solve t ~w:5 with
  | Some sol ->
      check ci "three servers total" 3 (Solution.cardinal sol);
      check cb "child 1 chosen" true (Solution.mem sol 1);
      check cb "child 2 chosen" true (Solution.mem sol 2);
      check cb "valid" true (Solution.is_valid t ~w:5 sol)
  | None -> Alcotest.fail "expected a solution"

let test_matches_brute_on_random_trees () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      for _ = 1 to 20 do
        let nodes = 2 + Rng.int rng 9 in
        let t = small_tree rng ~nodes ~max_requests:4 in
        let w = 3 + Rng.int rng 6 in
        let greedy = Greedy.solve_count t ~w in
        let brute = Option.map fst (Brute.min_servers t ~w) in
        check (Alcotest.option ci)
          (Printf.sprintf "optimal count (seed %d)" seed)
          brute greedy
      done)
    seeds

let test_solutions_always_valid () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed * 100) in
      for _ = 1 to 20 do
        let nodes = 2 + Rng.int rng 30 in
        let t = small_tree rng ~nodes ~max_requests:6 in
        let w = 5 + Rng.int rng 10 in
        match Greedy.solve t ~w with
        | Some sol -> check cb "valid" true (Solution.is_valid t ~w sol)
        | None ->
            (* Infeasibility must be real: even all-nodes fails. *)
            let all = Solution.of_nodes (List.init (Tree.size t) Fun.id) in
            check cb "really infeasible" false (Solution.is_valid t ~w all)
      done)
    seeds

let () =
  Alcotest.run "greedy"
    [
      ( "basics",
        [
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "no requests" `Quick test_no_requests;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "largest-first" `Quick test_largest_first_matters;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "matches brute force" `Slow test_matches_brute_on_random_trees;
          Alcotest.test_case "always valid" `Quick test_solutions_always_valid;
        ] );
    ]
