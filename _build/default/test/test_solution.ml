open Replica_tree
open Replica_core
open Helpers

(* Fixture (preorder ids):
   0 (clients 2)
   ├── 1 (pre@1, clients 3)
   │    └── 2 (clients 4)
   └── 3 (clients 5)  *)
let sample () =
  Tree.build
    (Tree.node ~clients:[ 2 ]
       [
         Tree.node ~clients:[ 3 ] ~pre:1 [ Tree.node ~clients:[ 4 ] [] ];
         Tree.node ~clients:[ 5 ] [];
       ])

let eval_loads tree sol =
  (Solution.evaluate tree sol).Solution.loads

let test_evaluate_root_only () =
  let t = sample () in
  let sol = Solution.of_nodes [ 0 ] in
  let ev = Solution.evaluate t sol in
  check (Alcotest.list (Alcotest.pair ci ci)) "root absorbs all" [ (0, 14) ] ev.Solution.loads;
  check ci "nothing unserved" 0 ev.Solution.unserved

let test_evaluate_closest () =
  let t = sample () in
  (* Server at 1 absorbs its own clients and node 3's. *)
  let sol = Solution.of_nodes [ 0; 1 ] in
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "closest split"
    [ (0, 7); (1, 7) ]
    (eval_loads t sol)

let test_evaluate_empty () =
  let t = sample () in
  let ev = Solution.evaluate t Solution.empty in
  check ci "all unserved" 14 ev.Solution.unserved

let test_server_of () =
  let t = sample () in
  let sol = Solution.of_nodes [ 0; 1 ] in
  check (Alcotest.option ci) "node 2 served by 1" (Some 1)
    (Solution.server_of t sol 2);
  check (Alcotest.option ci) "node 3 served by 0" (Some 0)
    (Solution.server_of t sol 3);
  check (Alcotest.option ci) "node 1 served by itself" (Some 1)
    (Solution.server_of t sol 1);
  check (Alcotest.option ci) "no server" None
    (Solution.server_of t Solution.empty 3)

let test_validate () =
  let t = sample () in
  check cb "valid at w=14" true (Solution.is_valid t ~w:14 (Solution.of_nodes [ 0 ]));
  check cb "invalid at w=13" false (Solution.is_valid t ~w:13 (Solution.of_nodes [ 0 ]));
  (match Solution.validate t ~w:13 (Solution.of_nodes [ 0 ]) with
  | Error [ Solution.Overloaded (0, 14) ] -> ()
  | _ -> Alcotest.fail "expected a single overload violation");
  match Solution.validate t ~w:20 Solution.empty with
  | Error [ Solution.Unserved 14 ] -> ()
  | _ -> Alcotest.fail "expected an unserved violation"

let test_out_of_tree () =
  let t = sample () in
  Alcotest.check_raises "foreign node"
    (Invalid_argument "Solution: replica outside the tree") (fun () ->
      ignore (Solution.evaluate t (Solution.of_nodes [ 9 ])))

let test_reused_and_basic_cost () =
  let t = sample () in
  check ci "reuse of {0,1}" 1 (Solution.reused t (Solution.of_nodes [ 0; 1 ]));
  check ci "reuse of {0}" 0 (Solution.reused t (Solution.of_nodes [ 0 ]));
  let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
  (* {0,1}: R=2, e=1, E=1 -> 2 + 1*0.5 + 0*0.25 = 2.5 *)
  check cf "cost {0,1}" 2.5 (Solution.basic_cost t cost (Solution.of_nodes [ 0; 1 ]));
  (* {0}: R=1, e=0 -> 1 + 0.5 + 0.25 = 1.75 *)
  check cf "cost {0}" 1.75 (Solution.basic_cost t cost (Solution.of_nodes [ 0 ]))

let test_tally_and_modal_cost () =
  let t = sample () in
  let modes = Modes.make [ 7; 14 ] in
  let sol = Solution.of_nodes [ 0; 1 ] in
  (* loads: node 0 -> 7 (mode 1), node 1 -> 7 (mode 1).
     node 1 is pre-existing at mode 1 and reused at mode 1;
     node 0 is new at mode 1; nothing deleted. *)
  let tly = Solution.tally t modes sol in
  check (Alcotest.array ci) "created" [| 1; 0 |] tly.Cost.created;
  check ci "reused 1->1" 1 tly.Cost.reused.(0).(0);
  check (Alcotest.array ci) "deleted" [| 0; 0 |] tly.Cost.deleted;
  let cost = Cost.modal_uniform ~modes:2 ~create:0.1 ~delete:0.01 ~changed:0.001 in
  (* R=2 + create 0.1 + changed 1->1 is free *)
  check cf "modal cost" 2.1 (Solution.modal_cost t modes cost sol);
  (* Dropping node 1 instead: {0} at load 14 -> mode 2, delete node 1. *)
  let tly' = Solution.tally t modes (Solution.of_nodes [ 0 ]) in
  check (Alcotest.array ci) "created'" [| 0; 1 |] tly'.Cost.created;
  check (Alcotest.array ci) "deleted'" [| 1; 0 |] tly'.Cost.deleted

let test_tally_mode_change () =
  let t =
    Tree.build
      (Tree.node ~clients:[ 10 ] [ Tree.node ~clients:[ 2 ] ~pre:2 [] ])
  in
  let modes = Modes.make [ 5; 12 ] in
  (* Node 1 pre-existing at mode 2, reused at load 2 -> mode 1: downgrade. *)
  let tly = Solution.tally t modes (Solution.of_nodes [ 0; 1 ]) in
  check ci "downgrade 2->1" 1 tly.Cost.reused.(1).(0);
  check ci "servers" 2 (Cost.tally_servers tly)

let test_power () =
  let t = sample () in
  let modes = Modes.make [ 7; 14 ] in
  let power = Power.make ~static:1. ~alpha:2. () in
  (* {0,1}: two servers at mode 1 -> 2*(1+49) = 100 *)
  check cf "power {0,1}" 100. (Solution.power t modes power (Solution.of_nodes [ 0; 1 ]));
  (* {0}: one server at mode 2 -> 1+196 = 197 *)
  check cf "power {0}" 197. (Solution.power t modes power (Solution.of_nodes [ 0 ]))

let test_serialization () =
  let sol = Solution.of_nodes [ 3; 1; 2 ] in
  check Alcotest.string "to_string" "1,2,3" (Solution.to_string sol);
  check cb "roundtrip" true
    (Solution.equal sol (Solution.of_string (Solution.to_string sol)));
  check cb "empty roundtrip" true
    (Solution.equal Solution.empty (Solution.of_string ""));
  check cb "spaces tolerated" true
    (Solution.equal sol (Solution.of_string " 1, 2 ,3 "));
  Alcotest.check_raises "garbage"
    (Invalid_argument "Solution.of_string: malformed input") (fun () ->
      ignore (Solution.of_string "1,x,3"))

let test_dot_export () =
  let t = sample () in
  let dot = Dot.to_dot ~highlight:[ 1 ] t in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec at i = i + n <= h && (String.sub dot i n = needle || at (i + 1)) in
    at 0
  in
  check cb "digraph" true (contains "digraph tree");
  check cb "pre-existing shaded" true (contains "fillcolor=lightgray");
  check cb "highlight" true (contains "penwidth=3");
  check cb "client labelled" true (contains "4 req");
  check cb "edge" true (contains "n0 -> n1")

let test_set_semantics () =
  let sol = Solution.of_nodes [ 3; 1; 3; 2 ] in
  check (Alcotest.list ci) "sorted distinct" [ 1; 2; 3 ] (Solution.nodes sol);
  check ci "cardinal" 3 (Solution.cardinal sol);
  check cb "mem" true (Solution.mem sol 2);
  check cb "not mem" false (Solution.mem sol 4);
  check cb "equal" true (Solution.equal sol (Solution.of_nodes [ 1; 2; 3 ]))

let () =
  Alcotest.run "solution"
    [
      ( "evaluation",
        [
          Alcotest.test_case "root only" `Quick test_evaluate_root_only;
          Alcotest.test_case "closest policy" `Quick test_evaluate_closest;
          Alcotest.test_case "empty solution" `Quick test_evaluate_empty;
          Alcotest.test_case "server_of" `Quick test_server_of;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "foreign nodes rejected" `Quick test_out_of_tree;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "reuse and Eq.2 cost" `Quick test_reused_and_basic_cost;
          Alcotest.test_case "tally and Eq.4 cost" `Quick test_tally_and_modal_cost;
          Alcotest.test_case "mode change tally" `Quick test_tally_mode_change;
          Alcotest.test_case "power Eq.3" `Quick test_power;
        ] );
      ( "sets",
        [
          Alcotest.test_case "set semantics" `Quick test_set_semantics;
          Alcotest.test_case "serialization" `Quick test_serialization;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
    ]
