open Replica_tree
open Helpers

let test_profiles () =
  let f = Generator.fat () in
  check ci "fat nodes" 100 f.Generator.nodes;
  check ci "fat min children" 6 f.Generator.min_children;
  check ci "fat max children" 9 f.Generator.max_children;
  let h = Generator.high ~nodes:50 () in
  check ci "high nodes" 50 h.Generator.nodes;
  check ci "high min children" 2 h.Generator.min_children;
  check ci "high max children" 4 h.Generator.max_children

let test_random_size () =
  let rng = Rng.create 1 in
  List.iter
    (fun n ->
      let t = Generator.random rng (Generator.fat ~nodes:n ()) in
      check ci (Printf.sprintf "exactly %d nodes" n) n (Tree.size t))
    [ 1; 2; 10; 100; 357 ]

let test_random_branching_bounds () =
  let rng = Rng.create 2 in
  let p = Generator.fat ~nodes:200 () in
  let t = Generator.random rng p in
  (* Every internal node has at most max_children children; interior
     (non-frontier) nodes have at least min_children. A node is frontier
     when the budget ran out while filling it or after it. *)
  for j = 0 to Tree.size t - 1 do
    let c = List.length (Tree.children t j) in
    check cb "within max" true (c <= p.Generator.max_children);
    check cb "min or frontier" true (c >= p.Generator.min_children || c = 0 || j > 0)
  done

let test_random_request_bounds () =
  let rng = Rng.create 3 in
  let p = Generator.fat ~nodes:150 () in
  let t = Generator.random rng p in
  let some_client = ref false in
  for j = 0 to Tree.size t - 1 do
    List.iter
      (fun r ->
        some_client := true;
        check cb "request in range" true
          (r >= p.Generator.min_requests && r <= p.Generator.max_requests))
      (Tree.clients t j)
  done;
  check cb "clients exist" true !some_client

let test_random_determinism () =
  let p = Generator.high ~nodes:60 () in
  let t1 = Generator.random (Rng.create 42) p in
  let t2 = Generator.random (Rng.create 42) p in
  check cb "same seed, same tree" true (Tree.equal t1 t2);
  let t3 = Generator.random (Rng.create 43) p in
  check cb "different seed, different tree" false (Tree.equal t1 t3)

let test_random_high_is_higher () =
  (* High trees (2-4 children) must be deeper than fat trees (6-9) on
     average. *)
  let height profile =
    let rng = Rng.create 7 in
    let total = ref 0 in
    for _ = 1 to 20 do
      total := !total + Tree.height (Generator.random rng profile)
    done;
    !total
  in
  check cb "high deeper than fat" true
    (height (Generator.high ~nodes:100 ()) > height (Generator.fat ~nodes:100 ()))

let test_add_pre_existing () =
  let rng = Rng.create 4 in
  let t = Generator.random rng (Generator.fat ~nodes:50 ()) in
  let t' = Generator.add_pre_existing rng ~mode:2 t 10 in
  check ci "ten pre-existing" 10 (Tree.num_pre_existing t');
  List.iter
    (fun j ->
      check (Alcotest.option ci) "mode stamped" (Some 2) (Tree.initial_mode t' j))
    (Tree.pre_existing t');
  check ci "original untouched" 0 (Tree.num_pre_existing t);
  let t_all = Generator.add_pre_existing rng t 50 in
  check ci "all nodes" 50 (Tree.num_pre_existing t_all);
  Alcotest.check_raises "too many" (Invalid_argument "Generator.add_pre_existing")
    (fun () -> ignore (Generator.add_pre_existing rng t 51))

let test_redraw_requests () =
  let rng = Rng.create 5 in
  let p = Generator.fat ~nodes:80 () in
  let t = Generator.add_pre_existing rng (Generator.random rng p) 5 in
  let t' = Generator.redraw_requests rng p t in
  check ci "same size" (Tree.size t) (Tree.size t');
  check (Alcotest.list ci) "same pre-existing" (Tree.pre_existing t)
    (Tree.pre_existing t');
  (* Structure preserved. *)
  for j = 0 to Tree.size t - 1 do
    check (Alcotest.list ci) "same children" (Tree.children t j)
      (Tree.children t' j)
  done

let test_structured_shapes () =
  let p = Generator.path ~n:5 ~client_requests:3 in
  check ci "path size" 5 (Tree.size p);
  check ci "path height" 4 (Tree.height p);
  check ci "path load at tail" 3 (Tree.client_load p 4);
  check ci "path requests" 3 (Tree.total_requests p);
  let s = Generator.star ~leaves:7 ~client_requests:2 in
  check ci "star size" 8 (Tree.size s);
  check ci "star height" 1 (Tree.height s);
  check ci "star requests" 14 (Tree.total_requests s);
  let b = Generator.balanced ~arity:2 ~depth:3 ~client_requests:1 in
  check ci "balanced size" 15 (Tree.size b);
  check ci "balanced height" 3 (Tree.height b);
  check ci "balanced requests" 8 (Tree.total_requests b);
  let c = Generator.caterpillar ~spine:4 ~legs:2 ~client_requests:1 in
  check ci "caterpillar size" 12 (Tree.size c);
  check ci "caterpillar requests" 8 (Tree.total_requests c)

let test_profile_validation () =
  let rng = Rng.create 6 in
  let bad p = fun () -> ignore (Generator.random rng p) in
  Alcotest.check_raises "zero nodes"
    (Invalid_argument "Generator: nodes must be positive")
    (bad { (Generator.fat ()) with Generator.nodes = 0 });
  Alcotest.check_raises "bad branching"
    (Invalid_argument "Generator: bad branching bounds")
    (bad { (Generator.fat ()) with Generator.min_children = 5; max_children = 3 });
  Alcotest.check_raises "bad requests"
    (Invalid_argument "Generator: bad request bounds")
    (bad { (Generator.fat ()) with Generator.min_requests = 0 });
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Generator: bad client probability")
    (bad { (Generator.fat ()) with Generator.client_probability = 1.5 })

let () =
  Alcotest.run "generator"
    [
      ( "random",
        [
          Alcotest.test_case "profiles" `Quick test_profiles;
          Alcotest.test_case "exact size" `Quick test_random_size;
          Alcotest.test_case "branching bounds" `Quick test_random_branching_bounds;
          Alcotest.test_case "request bounds" `Quick test_random_request_bounds;
          Alcotest.test_case "determinism" `Quick test_random_determinism;
          Alcotest.test_case "high vs fat shape" `Quick test_random_high_is_higher;
        ] );
      ( "derivation",
        [
          Alcotest.test_case "add_pre_existing" `Quick test_add_pre_existing;
          Alcotest.test_case "redraw_requests" `Quick test_redraw_requests;
        ] );
      ( "structured",
        [
          Alcotest.test_case "shapes" `Quick test_structured_shapes;
          Alcotest.test_case "profile validation" `Quick test_profile_validation;
        ] );
    ]
