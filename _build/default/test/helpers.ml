(* Shared helpers for the test suites. *)

open Replica_tree
open Replica_core

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cf = Alcotest.float 1e-9

(* Small random trees for cross-checks against the brute-force oracle. *)
let small_tree rng ~nodes ~max_requests =
  let profile =
    {
      Generator.nodes;
      min_children = 1;
      max_children = 3;
      client_probability = 0.7;
      min_requests = 1;
      max_requests;
    }
  in
  Generator.random rng profile

let small_tree_with_pre rng ~nodes ~max_requests ~pre =
  let t = small_tree rng ~nodes ~max_requests in
  Generator.add_pre_existing rng t pre

(* The paper's Figure 1 situation (§3.1), W = 10. Node ids in comments.
   Keeping only B leaves 7 requests traversing A (C's clients); removing
   B and placing a server at C leaves 4 (B's clients); keeping B and
   adding a server at A or C leaves 0. With [root_requests = 2] the
   optimum reuses B ({B, root}); with [root_requests = 4] it does not
   ({C, root}). *)
let figure1_tree ~root_requests =
  Tree.build
    (Tree.node ~clients:[ root_requests ] (* root = 0 *)
       [
         Tree.node (* A = 1 *)
           [
             Tree.node ~clients:[ 4 ] ~pre:1 [] (* B = 2 *);
             Tree.node ~clients:[ 7 ] [] (* C = 3 *);
           ];
       ])

let fig1_root = 0
let fig1_a = 1
let fig1_b = 2
let fig1_c = 3

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic seeds for reproducible suites. *)
let seeds = [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 89 ]

let modes_2 = Modes.make [ 5; 10 ]
let power_exp3 = Power.paper_exp3 ~modes:modes_2
let cost_cheap = Cost.paper_cheap ~modes:2
let cost_expensive = Cost.paper_expensive ~modes:2
let zero_cost = Cost.basic ()

let solution_testable =
  Alcotest.testable Solution.pp Solution.equal
