open Replica_tree
open Replica_core
open Helpers

let default_cost = Cost.basic ~create:0.1 ~delete:0.01 ()

let test_figure1_reuse_when_root_light () =
  (* §3.1: with 2 requests at the root, keep pre-existing B. *)
  let t = figure1_tree ~root_requests:2 in
  match Dp_withpre.solve t ~w:10 ~cost:default_cost with
  | Some r ->
      check cb "B reused" true (Solution.mem r.Dp_withpre.solution fig1_b);
      check ci "reused count" 1 r.Dp_withpre.reused;
      check ci "two servers" 2 r.Dp_withpre.servers;
      check cb "root serves the rest" true (Solution.mem r.Dp_withpre.solution fig1_root);
      (* cost: 2 servers + 1 create + 0 delete *)
      check cf "cost" 2.1 r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution"

let test_figure1_drop_when_root_heavy () =
  (* §3.1: with 4 requests at the root, two servers are needed anyway and
     B becomes useless: keep a server at C and one at the root. *)
  let t = figure1_tree ~root_requests:4 in
  match Dp_withpre.solve t ~w:10 ~cost:default_cost with
  | Some r ->
      check cb "C chosen" true (Solution.mem r.Dp_withpre.solution fig1_c);
      check cb "B dropped" false (Solution.mem r.Dp_withpre.solution fig1_b);
      check ci "two servers" 2 r.Dp_withpre.servers;
      check ci "nothing reused" 0 r.Dp_withpre.reused;
      (* cost: 2 servers + 2 creates + 1 delete *)
      check cf "cost" 2.21 r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution"

let test_no_pre_matches_dp_nopre () =
  (* With E = ∅ and zero create/delete costs, the optimal cost is the
     minimal server count. *)
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 13) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 12 in
        let t = small_tree rng ~nodes ~max_requests:4 in
        let w = 3 + Rng.int rng 6 in
        let with_pre = Dp_withpre.solve t ~w ~cost:zero_cost in
        let nopre = Dp_nopre.solve t ~w in
        match (with_pre, nopre) with
        | None, None -> ()
        | Some a, Some b ->
            check ci "same server count" b.Dp_nopre.servers a.Dp_withpre.servers
        | Some _, None | None, Some _ -> Alcotest.fail "feasibility mismatch"
      done)
    seeds

let test_matches_brute () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 17) in
      for _ = 1 to 15 do
        let nodes = 2 + Rng.int rng 9 in
        let pre = Rng.int rng (nodes + 1) in
        let t = small_tree_with_pre rng ~nodes ~max_requests:4 ~pre in
        let w = 3 + Rng.int rng 6 in
        let cost =
          Cost.basic
            ~create:(Rng.float rng 2.)
            ~delete:(Rng.float rng 2.)
            ()
        in
        let dp = Dp_withpre.solve t ~w ~cost in
        let brute = Brute.min_basic_cost t ~w ~cost in
        match (dp, brute) with
        | None, None -> ()
        | Some d, Some (bc, _) ->
            check cf
              (Printf.sprintf "optimal cost (seed %d)" seed)
              bc d.Dp_withpre.cost
        | Some _, None -> Alcotest.fail "dp found a phantom solution"
        | None, Some _ -> Alcotest.fail "dp missed a solution"
      done)
    seeds

let test_zero_load_reuse_when_delete_expensive () =
  (* A pre-existing root above a self-sufficient subtree: with delete > 1
     it is cheaper to keep the root server idling than to delete it. *)
  let t =
    Tree.build
      (Tree.node ~pre:1 [ Tree.node ~clients:[ 2 ] ~pre:1 [] ])
  in
  let expensive = Cost.basic ~create:0.5 ~delete:3. () in
  (match Dp_withpre.solve t ~w:10 ~cost:expensive with
  | Some r ->
      check ci "both kept" 2 r.Dp_withpre.servers;
      check ci "both reused" 2 r.Dp_withpre.reused;
      check cf "cost 2" 2. r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution");
  (* With cheap deletion the idle root goes away. *)
  let cheap = Cost.basic ~create:0.5 ~delete:0.1 () in
  match Dp_withpre.solve t ~w:10 ~cost:cheap with
  | Some r ->
      check ci "one server" 1 r.Dp_withpre.servers;
      check cf "cost 1.1" 1.1 r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution"

let test_reuse_priority () =
  (* Two 5-request branches at W = 5: two servers are unavoidable, and
     with create > 0, delete > 0 every optimal solution keeps the
     pre-existing node 1. (At W = 10 the same instance is consolidated
     onto the root instead: create + 2*delete < 1, §2.1.) *)
  let t =
    Tree.build
      (Tree.node
         [
           Tree.node ~clients:[ 5 ] ~pre:1 [];
           Tree.node ~clients:[ 5 ] [];
         ])
  in
  (match Dp_withpre.solve t ~w:10 ~cost:default_cost with
  | Some r ->
      check ci "consolidated on the root" 1 r.Dp_withpre.servers;
      check cf "consolidation cost" 1.11 r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution");
  match Dp_withpre.solve t ~w:5 ~cost:default_cost with
  | Some r ->
      check cb "pre-existing node kept" true (Solution.mem r.Dp_withpre.solution 1);
      check ci "reused" 1 r.Dp_withpre.reused
  | None -> Alcotest.fail "expected a solution"

let test_section21_consolidation_boundary () =
  (* §2.1: "if create + 2·delete < 1, it is always advantageous to
     replace two pre-existing servers by a new one (if capacities
     permit)". Two 4-request pre-existing branches consolidatable onto
     the root at W = 10. *)
  let t =
    Tree.build
      (Tree.node
         [
           Tree.node ~clients:[ 4 ] ~pre:1 [];
           Tree.node ~clients:[ 4 ] ~pre:1 [];
         ])
  in
  (* create + 2*delete = 0.9 < 1: consolidate. *)
  (match Dp_withpre.solve t ~w:10 ~cost:(Cost.basic ~create:0.5 ~delete:0.2 ()) with
  | Some r ->
      check ci "one new server" 1 r.Dp_withpre.servers;
      check ci "nothing reused" 0 r.Dp_withpre.reused;
      check cf "cost" 1.9 r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution");
  (* create + 2*delete = 1.2 > 1: keep both pre-existing servers. *)
  (match Dp_withpre.solve t ~w:10 ~cost:(Cost.basic ~create:0.8 ~delete:0.2 ()) with
  | Some r ->
      check ci "two servers kept" 2 r.Dp_withpre.servers;
      check ci "both reused" 2 r.Dp_withpre.reused;
      check cf "cost" 2. r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution");
  (* Exactly at the boundary (0.6 + 2*0.2 = 1.0) both cost 2.0; the DP
     must return that optimal value either way. *)
  match Dp_withpre.solve t ~w:10 ~cost:(Cost.basic ~create:0.6 ~delete:0.2 ()) with
  | Some r -> check cf "boundary cost" 2. r.Dp_withpre.cost
  | None -> Alcotest.fail "expected a solution"

let test_capacity_blocks_consolidation () =
  (* The §2.1 rule is conditional on capacity: at W = 7 the two branches
     cannot merge, so even cheap creation keeps both servers. *)
  let t =
    Tree.build
      (Tree.node
         [
           Tree.node ~clients:[ 4 ] ~pre:1 [];
           Tree.node ~clients:[ 4 ] ~pre:1 [];
         ])
  in
  match Dp_withpre.solve t ~w:7 ~cost:(Cost.basic ~create:0.5 ~delete:0.2 ()) with
  | Some r ->
      check ci "two servers" 2 r.Dp_withpre.servers;
      check ci "both reused" 2 r.Dp_withpre.reused
  | None -> Alcotest.fail "expected a solution"

let test_result_invariants () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 23) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 20 in
        let pre = Rng.int rng (nodes + 1) in
        let t = small_tree_with_pre rng ~nodes ~max_requests:5 ~pre in
        let w = 4 + Rng.int rng 8 in
        match Dp_withpre.solve t ~w ~cost:default_cost with
        | None -> ()
        | Some r ->
            check cb "valid" true (Solution.is_valid t ~w r.Dp_withpre.solution);
            check ci "server count" r.Dp_withpre.servers
              (Solution.cardinal r.Dp_withpre.solution);
            check ci "reuse count" r.Dp_withpre.reused
              (Solution.reused t r.Dp_withpre.solution);
            check cf "reported cost is the solution's cost"
              (Solution.basic_cost t default_cost r.Dp_withpre.solution)
              r.Dp_withpre.cost
      done)
    seeds

let test_root_table_shape () =
  let t = figure1_tree ~root_requests:2 in
  let table = Dp_withpre.root_table t ~w:10 in
  (* One pre-existing node (B) and two others (A, C) below the root. *)
  check ci "pre dimension" 2 (Array.length table);
  check ci "new dimension" 3 (Array.length table.(0));
  let opt = Alcotest.option ci in
  (* (e, n) = (0, 0): all 13 requests reach the root, above W: pruned. *)
  check opt "(0,0) infeasible" None table.(0).(0);
  (* (1, 0): reuse B, 2 + 7 pass. *)
  check opt "(1,0)" (Some 9) table.(1).(0);
  (* (0, 1): new server at C, 2 + 4 pass. *)
  check opt "(0,1)" (Some 6) table.(0).(1);
  (* (1, 1): B and C (or B and A), only the root client passes. *)
  check opt "(1,1)" (Some 2) table.(1).(1)

let () =
  Alcotest.run "dp_withpre"
    [
      ( "paper examples",
        [
          Alcotest.test_case "figure 1: reuse" `Quick test_figure1_reuse_when_root_light;
          Alcotest.test_case "figure 1: drop" `Quick test_figure1_drop_when_root_heavy;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "reduces to NoPre" `Quick test_no_pre_matches_dp_nopre;
          Alcotest.test_case "matches brute force" `Slow test_matches_brute;
          Alcotest.test_case "zero-load reuse" `Quick test_zero_load_reuse_when_delete_expensive;
          Alcotest.test_case "reuse priority" `Quick test_reuse_priority;
          Alcotest.test_case "§2.1 consolidation boundary" `Quick test_section21_consolidation_boundary;
          Alcotest.test_case "capacity blocks consolidation" `Quick test_capacity_blocks_consolidation;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "result invariants" `Quick test_result_invariants;
          Alcotest.test_case "root table" `Quick test_root_table_shape;
        ] );
    ]
