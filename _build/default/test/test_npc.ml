open Replica_tree
open Replica_core
open Helpers

let test_two_partition_reference () =
  check cb "1+2=3" true (Npc.two_partition_exists [ 1; 2; 3 ]);
  check cb "2+2" true (Npc.two_partition_exists [ 2; 2 ]);
  check cb "1,3 has none" false (Npc.two_partition_exists [ 1; 3 ]);
  check cb "1,1,4 has none" false (Npc.two_partition_exists [ 1; 1; 4 ]);
  check cb "odd sum" false (Npc.two_partition_exists [ 1; 2 ]);
  check cb "2,3,3,4" true (Npc.two_partition_exists [ 2; 3; 3; 4 ])

let test_instance_shape () =
  let inst = Npc.build [ 1; 2; 3; 4 ] in
  (* Root + n pairs (A_i, B_i): 1 + 2n internal nodes; n+2 modes. *)
  check ci "nodes" 9 (Tree.size inst.Npc.tree);
  check ci "modes" 6 (Modes.count inst.Npc.modes);
  (* Capacities strictly increasing with W_{n+2} = W_1 + S. *)
  let caps = Modes.capacities inst.Npc.modes in
  let w1 = List.hd caps and wlast = List.nth caps 5 in
  check ci "span is S" 10 (wlast - w1)

let test_gadget_decides_positive () =
  List.iter
    (fun a ->
      let inst = Npc.build a in
      check cb "solvable gadget" true (Npc.decide inst))
    [ [ 1; 1; 1; 1 ]; [ 1; 1; 2; 2 ]; [ 1; 2; 3; 4 ]; [ 2; 3; 3; 4 ] ]

let test_gadget_decides_negative () =
  (* Hard negatives: even sum, no 2-partition, max a_i < S/2 (the
     gadget's precondition — see Npc.build). *)
  List.iter
    (fun a ->
      let inst = Npc.build a in
      check cb "unsolvable gadget" false (Npc.decide inst))
    [ [ 2; 2; 3; 5 ]; [ 2; 4; 5; 5 ] ]

let test_precondition_enforced () =
  (* max a_i >= S/2 would let the root slip to an intermediate mode and
     break the threshold; build must reject such (trivial) instances. *)
  Alcotest.check_raises "max too large"
    (Invalid_argument "Npc.build: requires max a_i < S/2 (see Theorem 2 proof)")
    (fun () -> ignore (Npc.build [ 1; 3 ]))

let test_gadget_matches_reference () =
  (* Systematic agreement on random small instances satisfying the
     gadget precondition. *)
  let rng = Rng.create 99 in
  let tried = ref 0 in
  while !tried < 8 do
    let n = 3 + Rng.int rng 2 in
    let a = List.init n (fun _ -> 1 + Rng.int rng 5) in
    let s = List.fold_left ( + ) 0 a in
    let a_max = List.fold_left max 0 a in
    if s mod 2 = 0 && 2 * a_max < s then begin
      incr tried;
      check cb
        (Printf.sprintf "agreement on [%s]"
           (String.concat ";" (List.map string_of_int a)))
        (Npc.two_partition_exists a)
        (Npc.decide (Npc.build a))
    end
  done

let test_build_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Npc.build: empty instance")
    (fun () -> ignore (Npc.build []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Npc.build: non-positive value") (fun () ->
      ignore (Npc.build [ 1; 0 ]));
  Alcotest.check_raises "odd sum"
    (Invalid_argument "Npc.build: odd sum has no 2-partition") (fun () ->
      ignore (Npc.build [ 1; 2 ]))

let () =
  Alcotest.run "npc"
    [
      ( "reference",
        [
          Alcotest.test_case "two_partition_exists" `Quick test_two_partition_reference;
          Alcotest.test_case "instance shape" `Quick test_instance_shape;
          Alcotest.test_case "build validation" `Quick test_build_validation;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "positive instances" `Slow test_gadget_decides_positive;
          Alcotest.test_case "negative instances" `Slow test_gadget_decides_negative;
          Alcotest.test_case "precondition enforced" `Quick test_precondition_enforced;
          Alcotest.test_case "random agreement" `Slow test_gadget_matches_reference;
        ] );
    ]
