open Replica_tree
open Replica_core
open Helpers

let w = 10
let cost = Cost.basic ~create:0.5 ~delete:0.25 ()

(* A fixed 3-node chain whose leaf demand ramps up then collapses. *)
let demand_sequence loads =
  let base =
    Tree.build (Tree.node [ Tree.node [ Tree.node [] ] ])
  in
  List.map
    (fun load -> Tree.with_clients base (fun j -> if j = 2 then [ load ] else []))
    loads

let simulate policy loads =
  Update_policy.simulate ~w ~cost policy (demand_sequence loads)

let test_systematic_reconfigures_every_epoch () =
  let s = simulate Update_policy.Systematic [ 3; 4; 5; 6 ] in
  check ci "four reconfigurations" 4 s.Update_policy.reconfigurations;
  check ci "no invalid epoch" 0 s.Update_policy.invalid_epochs;
  List.iter
    (fun r -> check cb "reconfigured" true r.Update_policy.reconfigured)
    s.Update_policy.records

let test_lazy_keeps_valid_placement () =
  (* Demand stays under W: one reconfiguration, then the same server. *)
  let s = simulate Update_policy.Lazy [ 3; 4; 5; 6 ] in
  check ci "single reconfiguration" 1 s.Update_policy.reconfigurations;
  let first = List.hd s.Update_policy.records in
  List.iter
    (fun r ->
      check solution_testable "placement unchanged"
        first.Update_policy.servers r.Update_policy.servers)
    s.Update_policy.records

let test_lazy_reacts_to_overflow () =
  (* One server suffices for load <= 10; the jump to 11 is unserveable at
     a single node (total at the client node stays <= W though), so use
     two client nodes to overflow a shared server instead. *)
  let base =
    Tree.build
      (Tree.node [ Tree.node ~clients:[] []; Tree.node ~clients:[] [] ])
  in
  let at l1 l2 =
    Tree.with_clients base (fun j ->
        if j = 1 then [ l1 ] else if j = 2 then [ l2 ] else [])
  in
  let demands = [ at 3 3; at 4 4; at 8 8 ] in
  let s = Update_policy.simulate ~w ~cost Update_policy.Lazy demands in
  (* Epoch 1: place (root alone absorbs 6). Epoch 2: still fits (8).
     Epoch 3: 16 > 10 -> must reconfigure. *)
  check ci "two reconfigurations" 2 s.Update_policy.reconfigurations;
  check ci "no invalid epoch" 0 s.Update_policy.invalid_epochs

let test_periodic () =
  let s = simulate (Update_policy.Periodic 2) [ 3; 3; 3; 3; 3; 3 ] in
  (* Epochs 2, 4, 6 are forced; epoch 1 also reconfigures because the
     empty placement is invalid. *)
  check ci "four reconfigurations" 4 s.Update_policy.reconfigurations

let test_drift () =
  let s = simulate (Update_policy.Drift 0.5) [ 4; 5; 4; 9; 9 ] in
  (* Epoch 1: invalid empty placement -> reconfigure (last_demand 4).
     Epochs 2-3: drift below 50%. Epoch 4: 9 vs 4 -> 125% drift ->
     reconfigure. Epoch 5: no drift. *)
  check ci "two reconfigurations" 2 s.Update_policy.reconfigurations

let test_lazy_never_costs_more_than_systematic () =
  (* On any demand sequence, lazy pays at most systematic's total cost:
     it reconfigures on a subset of epochs with the same optimal
     single-step solver. (Not a theorem in general — lazy can inherit a
     worse pre-existing set — but holds on these monotone ramps.) *)
  List.iter
    (fun loads ->
      let lazy_sum = simulate Update_policy.Lazy loads in
      let sys_sum = simulate Update_policy.Systematic loads in
      check cb "lazy <= systematic" true
        (lazy_sum.Update_policy.total_cost
        <= sys_sum.Update_policy.total_cost +. 1e-9))
    [ [ 3; 4; 5 ]; [ 2; 2; 2; 2 ]; [ 1; 5; 9; 9; 9 ] ]

let test_unserveable_epoch_is_reported () =
  (* A demand of 11 at one node exceeds W: no placement at all works. *)
  let s = simulate Update_policy.Systematic [ 3; 11; 4 ] in
  check ci "one invalid epoch" 1 s.Update_policy.invalid_epochs;
  let bad = List.nth s.Update_policy.records 1 in
  check cb "flagged" false bad.Update_policy.valid;
  (* Whatever single server epoch 1 placed sits on the chain, so the 11
     requests reach it and overload it by 1. *)
  check ci "shortfall" 1 bad.Update_policy.unserved;
  (* The previous placement survives the bad epoch. *)
  let before = List.nth s.Update_policy.records 0 in
  check solution_testable "placement kept" before.Update_policy.servers
    bad.Update_policy.servers

let test_validation () =
  Alcotest.check_raises "bad period"
    (Invalid_argument "Update_policy: period must be positive") (fun () ->
      ignore (simulate (Update_policy.Periodic 0) [ 3 ]));
  Alcotest.check_raises "bad drift"
    (Invalid_argument "Update_policy: negative drift") (fun () ->
      ignore (simulate (Update_policy.Drift (-0.1)) [ 3; 4 ]))

let test_policy_names () =
  check Alcotest.string "systematic" "systematic"
    (Update_policy.policy_to_string Update_policy.Systematic);
  check Alcotest.string "periodic" "periodic(3)"
    (Update_policy.policy_to_string (Update_policy.Periodic 3));
  check Alcotest.string "drift" "drift(0.25)"
    (Update_policy.policy_to_string (Update_policy.Drift 0.25))

let test_total_cost_matches_records () =
  let s = simulate Update_policy.Systematic [ 3; 7; 2; 9 ] in
  let sum =
    List.fold_left
      (fun acc r -> acc +. r.Update_policy.step_cost)
      0. s.Update_policy.records
  in
  check cf "sum of steps" sum s.Update_policy.total_cost

let () =
  Alcotest.run "update_policy"
    [
      ( "policies",
        [
          Alcotest.test_case "systematic" `Quick test_systematic_reconfigures_every_epoch;
          Alcotest.test_case "lazy keeps valid" `Quick test_lazy_keeps_valid_placement;
          Alcotest.test_case "lazy reacts" `Quick test_lazy_reacts_to_overflow;
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "drift" `Quick test_drift;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "lazy cheaper" `Quick test_lazy_never_costs_more_than_systematic;
          Alcotest.test_case "unserveable epoch" `Quick test_unserveable_epoch_is_reported;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "names" `Quick test_policy_names;
          Alcotest.test_case "cost bookkeeping" `Quick test_total_cost_matches_records;
        ] );
    ]
