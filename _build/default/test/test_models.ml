(* Unit tests for the Modes, Power and Cost models. *)

open Replica_core
open Helpers

(* --- Modes --- *)

let test_modes_make () =
  let m = Modes.make [ 5; 10 ] in
  check ci "count" 2 (Modes.count m);
  check ci "W1" 5 (Modes.capacity m 1);
  check ci "W2" 10 (Modes.capacity m 2);
  check ci "max" 10 (Modes.max_capacity m);
  check (Alcotest.list ci) "capacities" [ 5; 10 ] (Modes.capacities m)

let test_modes_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Modes.make: empty ladder")
    (fun () -> ignore (Modes.make []));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Modes.make: capacities must be strictly increasing")
    (fun () -> ignore (Modes.make [ 5; 5 ]));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Modes.make: non-positive capacity") (fun () ->
      ignore (Modes.make [ 0; 3 ]))

let test_mode_of_load_boundaries () =
  let m = Modes.make [ 5; 10 ] in
  check ci "zero load -> mode 1" 1 (Modes.mode_of_load m 0);
  check ci "load 5 -> mode 1" 1 (Modes.mode_of_load m 5);
  check ci "load 6 -> mode 2" 2 (Modes.mode_of_load m 6);
  check ci "load 10 -> mode 2" 2 (Modes.mode_of_load m 10);
  Alcotest.check_raises "overload"
    (Invalid_argument "Modes.mode_of_load: load exceeds maximal capacity")
    (fun () -> ignore (Modes.mode_of_load m 11));
  Alcotest.check_raises "negative"
    (Invalid_argument "Modes.mode_of_load: negative load") (fun () ->
      ignore (Modes.mode_of_load m (-1)))

let test_fits () =
  let m = Modes.make [ 5; 10 ] in
  check cb "0 fits" true (Modes.fits m 0);
  check cb "10 fits" true (Modes.fits m 10);
  check cb "11 does not" false (Modes.fits m 11);
  check cb "-1 does not" false (Modes.fits m (-1))

let test_single () =
  let m = Modes.single 7 in
  check ci "one mode" 1 (Modes.count m);
  check ci "any load is mode 1" 1 (Modes.mode_of_load m 7)

(* --- Power --- *)

let test_power_of_mode () =
  let m = Modes.make [ 5; 10 ] in
  let p = Power.make ~static:2. ~alpha:2. () in
  check cf "mode 1" 27. (Power.of_mode p m 1);
  check cf "mode 2" 102. (Power.of_mode p m 2);
  check cf "dynamic only" 25. (Power.dynamic p m 1)

let test_power_of_load () =
  let m = Modes.make [ 5; 10 ] in
  let p = Power.make ~static:0. ~alpha:3. () in
  check cf "load 3 -> W1^3" 125. (Power.of_load p m 3);
  check cf "load 7 -> W2^3" 1000. (Power.of_load p m 7);
  check cf "total" 1125. (Power.total p m [ 3; 7 ])

let test_power_paper_exp3 () =
  let m = Modes.make [ 5; 10 ] in
  let p = Power.paper_exp3 ~modes:m in
  (* P_i = W1^3/10 + W_i^3 = 12.5 + W_i^3 *)
  check cf "P1" 137.5 (Power.of_mode p m 1);
  check cf "P2" 1012.5 (Power.of_mode p m 2)

let test_power_validation () =
  Alcotest.check_raises "negative static"
    (Invalid_argument "Power.make: negative static power") (fun () ->
      ignore (Power.make ~static:(-1.) ()));
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Power.make: alpha must be >= 1") (fun () ->
      ignore (Power.make ~alpha:0.5 ()))

(* --- Cost, Eq. 2 --- *)

let test_basic_cost_formula () =
  let c = Cost.basic ~create:0.5 ~delete:0.25 () in
  (* R=3, e=1, E=2: 3 + 2*0.5 + 1*0.25 *)
  check cf "Eq.2" 4.25 (Cost.basic_cost c ~servers:3 ~reused:1 ~pre_existing:2);
  check cf "no servers" 0.5 (Cost.basic_cost c ~servers:0 ~reused:0 ~pre_existing:2)

let test_basic_cost_validation () =
  let c = Cost.basic () in
  Alcotest.check_raises "reused > servers"
    (Invalid_argument "Cost.basic_cost: inconsistent counts") (fun () ->
      ignore (Cost.basic_cost c ~servers:1 ~reused:2 ~pre_existing:3));
  Alcotest.check_raises "negative create"
    (Invalid_argument "Cost.basic: negative cost") (fun () ->
      ignore (Cost.basic ~create:(-0.1) ()))

(* --- Cost, Eq. 4 --- *)

let test_modal_cost_formula () =
  let c = Cost.modal_uniform ~modes:2 ~create:0.1 ~delete:0.01 ~changed:0.001 in
  let tally = Cost.empty_tally ~modes:2 in
  tally.Cost.created.(1) <- 2;
  (* two new servers at mode 2 *)
  tally.Cost.reused.(0).(1) <- 1;
  (* one upgrade 1 -> 2 *)
  tally.Cost.deleted.(0) <- 3;
  (* three mode-1 pre-existing dropped *)
  check ci "R" 3 (Cost.tally_servers tally);
  (* 3 + 2*0.1 + 3*0.01 + 1*0.001 *)
  check cf "Eq.4" 3.231 (Cost.modal_cost c tally)

let test_modal_diagonal_free () =
  let c = Cost.modal_uniform ~modes:2 ~create:0. ~delete:0. ~changed:5. in
  let tally = Cost.empty_tally ~modes:2 in
  tally.Cost.reused.(0).(0) <- 1;
  check cf "unchanged mode is free" 1. (Cost.modal_cost c tally);
  tally.Cost.reused.(0).(1) <- 1;
  check cf "changed mode costs" 7. (Cost.modal_cost c tally)

let test_modal_validation () =
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Cost.modal: dimension mismatch") (fun () ->
      ignore
        (Cost.modal ~create:[| 1. |] ~delete:[| 1.; 2. |]
           ~changed:[| [| 0. |] |]));
  Alcotest.check_raises "nonzero diagonal"
    (Invalid_argument "Cost.modal: changed diagonal must be 0") (fun () ->
      ignore
        (Cost.modal ~create:[| 1. |] ~delete:[| 1. |] ~changed:[| [| 1. |] |]));
  let c = Cost.modal_uniform ~modes:2 ~create:0. ~delete:0. ~changed:0. in
  Alcotest.check_raises "tally mismatch"
    (Invalid_argument "Cost.modal_cost: mode count mismatch") (fun () ->
      ignore (Cost.modal_cost c (Cost.empty_tally ~modes:3)))

let test_paper_cost_presets () =
  let cheap = Cost.paper_cheap ~modes:2 in
  let tally = Cost.empty_tally ~modes:2 in
  tally.Cost.created.(0) <- 1;
  check cf "cheap create" 1.1 (Cost.modal_cost cheap tally);
  let expensive = Cost.paper_expensive ~modes:2 in
  check cf "expensive create" 2. (Cost.modal_cost expensive tally)

let () =
  Alcotest.run "models"
    [
      ( "modes",
        [
          Alcotest.test_case "make" `Quick test_modes_make;
          Alcotest.test_case "validation" `Quick test_modes_validation;
          Alcotest.test_case "mode_of_load boundaries" `Quick test_mode_of_load_boundaries;
          Alcotest.test_case "fits" `Quick test_fits;
          Alcotest.test_case "single" `Quick test_single;
        ] );
      ( "power",
        [
          Alcotest.test_case "of_mode" `Quick test_power_of_mode;
          Alcotest.test_case "of_load" `Quick test_power_of_load;
          Alcotest.test_case "paper exp3 model" `Quick test_power_paper_exp3;
          Alcotest.test_case "validation" `Quick test_power_validation;
        ] );
      ( "cost",
        [
          Alcotest.test_case "Eq.2 formula" `Quick test_basic_cost_formula;
          Alcotest.test_case "Eq.2 validation" `Quick test_basic_cost_validation;
          Alcotest.test_case "Eq.4 formula" `Quick test_modal_cost_formula;
          Alcotest.test_case "diagonal free" `Quick test_modal_diagonal_free;
          Alcotest.test_case "Eq.4 validation" `Quick test_modal_validation;
          Alcotest.test_case "paper presets" `Quick test_paper_cost_presets;
        ] );
    ]
