open Replica_tree
open Helpers

let sample () =
  (* Preorder ids:
     0
     ├── 1 (pre@1, clients 2 3)
     │    ├── 2 (clients 1)
     │    └── 3
     └── 4 (clients 5) *)
  Tree.build
    (Tree.node
       [
         Tree.node ~clients:[ 2; 3 ] ~pre:1
           [ Tree.node ~clients:[ 1 ] []; Tree.node [] ];
         Tree.node ~clients:[ 5 ] [];
       ])

let test_build_shape () =
  let t = sample () in
  check ci "size" 5 (Tree.size t);
  check ci "root" 0 (Tree.root t);
  check (Alcotest.option ci) "parent of root" None (Tree.parent t 0);
  check (Alcotest.option ci) "parent of 3" (Some 1) (Tree.parent t 3);
  check (Alcotest.list ci) "children of 0" [ 1; 4 ] (Tree.children t 0);
  check (Alcotest.list ci) "children of 1" [ 2; 3 ] (Tree.children t 1);
  check (Alcotest.list ci) "children of 4 empty" [] (Tree.children t 4)

let test_clients () =
  let t = sample () in
  check (Alcotest.list ci) "clients of 1" [ 2; 3 ] (Tree.clients t 1);
  check ci "client load of 1" 5 (Tree.client_load t 1);
  check ci "client load of 0" 0 (Tree.client_load t 0);
  check ci "num clients" 4 (Tree.num_clients t);
  check ci "total requests" 11 (Tree.total_requests t)

let test_pre_existing () =
  let t = sample () in
  check cb "1 is pre" true (Tree.is_pre_existing t 1);
  check cb "0 not pre" false (Tree.is_pre_existing t 0);
  check (Alcotest.option ci) "initial mode" (Some 1) (Tree.initial_mode t 1);
  check (Alcotest.list ci) "pre set" [ 1 ] (Tree.pre_existing t);
  check ci "pre count" 1 (Tree.num_pre_existing t)

let test_traversal () =
  let t = sample () in
  let post = Array.to_list (Tree.postorder t) in
  check (Alcotest.list ci) "postorder" [ 2; 3; 1; 4; 0 ] post;
  let pre = Array.to_list (Tree.preorder t) in
  check (Alcotest.list ci) "preorder" [ 0; 1; 2; 3; 4 ] pre;
  (* children before parents, structurally *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun j ->
      List.iter
        (fun c -> check cb "child visited first" true (Hashtbl.mem seen c))
        (Tree.children t j);
      Hashtbl.replace seen j ())
    post

let test_subtree_metrics () =
  let t = sample () in
  check ci "subtree size of 0" 4 (Tree.subtree_size t 0);
  check ci "subtree size of 1" 2 (Tree.subtree_size t 1);
  check ci "subtree size of leaf" 0 (Tree.subtree_size t 2);
  check ci "subtree pre of 0" 1 (Tree.subtree_pre_count t 0);
  check ci "subtree pre of 1" 0 (Tree.subtree_pre_count t 1);
  check ci "depth root" 0 (Tree.depth t 0);
  check ci "depth of 3" 2 (Tree.depth t 3);
  check ci "height" 2 (Tree.height t)

let test_ancestors () =
  let t = sample () in
  check (Alcotest.list ci) "ancestors of 3" [ 1; 0 ] (Tree.ancestors t 3);
  check (Alcotest.list ci) "ancestors of root" [] (Tree.ancestors t 0);
  check cb "0 anc of 3" true (Tree.is_ancestor t ~anc:0 ~desc:3);
  check cb "1 anc of 3" true (Tree.is_ancestor t ~anc:1 ~desc:3);
  check cb "4 not anc of 3" false (Tree.is_ancestor t ~anc:4 ~desc:3);
  check cb "3 not anc of 3" false (Tree.is_ancestor t ~anc:3 ~desc:3);
  check cb "3 not anc of 1" false (Tree.is_ancestor t ~anc:3 ~desc:1)

let test_with_pre_existing () =
  let t = sample () in
  let t' = Tree.with_pre_existing t [ (2, 2); (3, 1) ] in
  check (Alcotest.list ci) "new pre set" [ 2; 3 ] (Tree.pre_existing t');
  check (Alcotest.option ci) "mode of 2" (Some 2) (Tree.initial_mode t' 2);
  check cb "old pre dropped" false (Tree.is_pre_existing t' 1);
  (* original untouched *)
  check cb "original intact" true (Tree.is_pre_existing t 1)

let test_with_clients () =
  let t = sample () in
  let t' = Tree.with_clients t (fun j -> if j = 0 then [ 9 ] else []) in
  check ci "new root load" 9 (Tree.client_load t' 0);
  check ci "cleared elsewhere" 0 (Tree.client_load t' 1);
  check cb "pre preserved" true (Tree.is_pre_existing t' 1);
  check ci "original load intact" 5 (Tree.client_load t 1)

let test_serialization_roundtrip () =
  let t = sample () in
  let t' = Tree.of_string (Tree.to_string t) in
  check cb "roundtrip equal" true (Tree.equal t t')

let test_serialization_malformed () =
  Alcotest.check_raises "garbage" (Invalid_argument "Tree.of_string: malformed input")
    (fun () -> ignore (Tree.of_string "nonsense"));
  Alcotest.check_raises "bad field" (Invalid_argument "Tree.of_string: malformed input")
    (fun () -> ignore (Tree.of_string "-1 px c"))

let test_of_parents_validation () =
  let bad () =
    ignore
      (Tree.of_parents ~parents:[| 0 |] ~clients:[| [] |] ~pre:[| None |])
  in
  Alcotest.check_raises "self root" (Invalid_argument "Tree: node 0 must be the root") bad;
  let cyclic () =
    ignore
      (Tree.of_parents ~parents:[| -1; 2; 1 |]
         ~clients:[| []; []; [] |]
         ~pre:[| None; None; None |])
  in
  Alcotest.check_raises "cycle" (Invalid_argument "Tree: disconnected or cyclic parent structure") cyclic;
  let negative_requests () =
    ignore
      (Tree.of_parents ~parents:[| -1 |] ~clients:[| [ -1 ] |] ~pre:[| None |])
  in
  Alcotest.check_raises "negative requests" (Invalid_argument "Tree: negative request count")
    negative_requests

let test_single_node () =
  let t = Tree.build (Tree.node ~clients:[ 3 ] []) in
  check ci "size" 1 (Tree.size t);
  check ci "height" 0 (Tree.height t);
  check (Alcotest.list ci) "postorder" [ 0 ] (Array.to_list (Tree.postorder t))

let test_equal () =
  let t = sample () in
  check cb "reflexive" true (Tree.equal t t);
  let t' = Tree.with_clients t (fun j -> Tree.clients t j) in
  check cb "rebuilt equal" true (Tree.equal t t');
  let t'' = Tree.with_clients t (fun _ -> []) in
  check cb "different clients differ" false (Tree.equal t t'')

let () =
  Alcotest.run "tree"
    [
      ( "structure",
        [
          Alcotest.test_case "build shape" `Quick test_build_shape;
          Alcotest.test_case "clients" `Quick test_clients;
          Alcotest.test_case "pre-existing" `Quick test_pre_existing;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "equality" `Quick test_equal;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "orders" `Quick test_traversal;
          Alcotest.test_case "subtree metrics" `Quick test_subtree_metrics;
          Alcotest.test_case "ancestors" `Quick test_ancestors;
        ] );
      ( "derivation",
        [
          Alcotest.test_case "with_pre_existing" `Quick test_with_pre_existing;
          Alcotest.test_case "with_clients" `Quick test_with_clients;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "malformed" `Quick test_serialization_malformed;
          Alcotest.test_case "of_parents validation" `Quick test_of_parents_validation;
        ] );
    ]
