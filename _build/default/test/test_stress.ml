(* Scale-level sanity: at N = 100-200 the brute-force oracle is out of
   reach, but strong relative invariants still pin the solvers down:
   optimal solvers never lose to feasible baselines, analytic lower
   bounds hold, and everything returned is valid. *)

open Replica_tree
open Replica_core
open Helpers

let w = 10
let cost = Cost.basic ~create:0.2 ~delete:0.05 ()

let instance seed nodes pre =
  let rng = Rng.create seed in
  let shape = if seed mod 2 = 0 then Generator.fat ~nodes () else Generator.high ~nodes () in
  let t = Generator.random rng shape in
  Generator.add_pre_existing rng ~mode:2 t pre

let test_dp_withpre_dominates_feasible_baselines () =
  List.iter
    (fun seed ->
      let t = instance seed 100 25 in
      match (Dp_withpre.solve t ~w ~cost, Greedy.solve t ~w) with
      | Some dp, Some gr ->
          let gr_cost = Solution.basic_cost t cost gr in
          check cb "dp <= greedy's cost" true (dp.Dp_withpre.cost <= gr_cost +. 1e-9);
          (* … and never worse than keeping every pre-existing server plus
             a fresh greedy fill, when that is feasible. *)
          let heur = Heuristics_cost.solve t ~w ~cost () in
          (match heur with
          | Some h ->
              check cb "dp <= local search" true
                (dp.Dp_withpre.cost <= h.Heuristics_cost.cost +. 1e-9)
          | None -> Alcotest.fail "heuristic lost a feasible instance");
          check cb "valid at scale" true
            (Solution.is_valid t ~w dp.Dp_withpre.solution)
      | None, None -> ()
      | Some _, None | None, Some _ -> Alcotest.fail "feasibility mismatch")
    seeds

let test_dp_power_bounds_at_scale () =
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let mcost = Cost.paper_cheap ~modes:2 in
  List.iter
    (fun seed ->
      let t = instance (seed + 1000) 60 6 in
      match
        ( Dp_power.solve t ~modes ~power ~cost:mcost (),
          Greedy_power.solve t ~modes ~power ~cost:mcost () )
      with
      | Some dp, Some gr ->
          check cb "dp power <= gr power" true
            (dp.Dp_power.power <= gr.Dp_power.power +. 1e-9);
          (* Counting lower bound: at least ceil(T / W_M) servers, each
             drawing at least the mode-1 power. *)
          let t_req = Tree.total_requests t in
          let min_servers = (t_req + 9) / 10 in
          let floor_power =
            float_of_int min_servers *. Power.of_mode power modes 1
          in
          check cb "above the counting floor" true
            (dp.Dp_power.power >= floor_power -. 1e-9);
          check cb "valid at scale" true
            (Solution.is_valid t ~w:10 dp.Dp_power.solution)
      | None, None -> ()
      | Some _, None -> () (* GR may genuinely miss bounded solutions *)
      | None, Some _ -> Alcotest.fail "dp lost a gr-feasible instance")
    seeds

let test_multiple_bounds_at_scale () =
  List.iter
    (fun seed ->
      let t = instance (seed + 2000) 150 0 in
      match (Multiple.solve t ~w, Greedy.solve_count t ~w) with
      | Some m, closest ->
          check cb "multiple >= counting bound" true
            (m.Multiple.servers >= Multiple.min_servers_lower_bound t ~w);
          (match closest with
          | Some c -> check cb "multiple <= closest" true (m.Multiple.servers <= c)
          | None -> ());
          check cb "multiple valid" true (Multiple.is_valid t ~w m.Multiple.solution)
      | None, _ -> Alcotest.fail "multiple infeasible on a generator tree")
    seeds

let test_dp_withpre_large_single () =
  (* One N = 300, E = 75 instance end to end: the §5 scaling claim in
     test form, bounded to keep the suite quick. *)
  let t = instance 7 300 75 in
  match Dp_withpre.solve t ~w ~cost with
  | Some r ->
      check cb "valid" true (Solution.is_valid t ~w r.Dp_withpre.solution);
      check cb "reuses something" true (r.Dp_withpre.reused > 0);
      check ci "accounting holds" r.Dp_withpre.servers
        (Solution.cardinal r.Dp_withpre.solution)
  | None -> Alcotest.fail "expected a solution at N = 300"

let test_frontier_consistency_at_scale () =
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let mcost = Cost.paper_cheap ~modes:2 in
  let t = instance 11 50 5 in
  let frontier = Dp_power.frontier t ~modes ~power ~cost:mcost in
  check cb "non-empty" true (frontier <> []);
  (* The cheapest frontier point has minimal cost among ALL candidates:
     solving with exactly that bound must succeed, with any tighter
     bound must fail. *)
  let cheapest = List.hd frontier in
  check cb "solvable at min cost" true
    (Dp_power.solve t ~modes ~power ~cost:mcost
       ~bound:cheapest.Dp_power.cost ()
    <> None);
  check cb "unsolvable below" true
    (Dp_power.solve t ~modes ~power ~cost:mcost
       ~bound:(cheapest.Dp_power.cost -. 0.01) ()
    = None)

let () =
  Alcotest.run "stress"
    [
      ( "scale invariants",
        [
          Alcotest.test_case "dp_withpre dominates" `Slow test_dp_withpre_dominates_feasible_baselines;
          Alcotest.test_case "dp_power bounds" `Slow test_dp_power_bounds_at_scale;
          Alcotest.test_case "multiple bounds" `Slow test_multiple_bounds_at_scale;
          Alcotest.test_case "N=300 single shot" `Slow test_dp_withpre_large_single;
          Alcotest.test_case "frontier consistency" `Quick test_frontier_consistency_at_scale;
        ] );
    ]
