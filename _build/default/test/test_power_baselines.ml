(* Tests for Greedy_power (the GR baseline of §5.2) and Heuristics (the
   §6 local-search program). *)

open Replica_tree
open Replica_core
open Helpers

let random_instance seed =
  let rng = Rng.create seed in
  let nodes = 4 + Rng.int rng 12 in
  let pre = Rng.int rng 4 in
  small_tree_with_pre rng ~nodes ~max_requests:4 ~pre

let test_gr_candidates_cover_sweep () =
  let t = random_instance 1001 in
  let cands = Greedy_power.candidates t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap in
  check cb "at least one candidate" true (cands <> []);
  List.iter
    (fun c ->
      check cb "capacity within sweep" true
        (c.Greedy_power.capacity >= 5 && c.Greedy_power.capacity <= 10);
      let r = c.Greedy_power.result in
      check cb "valid at W_M" true
        (Solution.is_valid t ~w:10 r.Dp_power.solution);
      (* Every server respects the sweep capacity it was built with. *)
      let ev = Solution.evaluate t r.Dp_power.solution in
      List.iter
        (fun (_, load) ->
          check cb "load within sweep capacity" true
            (load <= c.Greedy_power.capacity))
        ev.Solution.loads)
    cands

let test_gr_never_beats_dp () =
  (* DP is optimal: for any bound, GR's power is >= DP's. *)
  List.iter
    (fun seed ->
      let t = random_instance seed in
      List.iter
        (fun bound ->
          let dp =
            Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
              ~bound ()
          in
          let gr =
            Greedy_power.solve t ~modes:modes_2 ~power:power_exp3
              ~cost:cost_cheap ~bound ()
          in
          match (dp, gr) with
          | _, None -> ()
          | None, Some _ -> Alcotest.fail "GR found what DP missed"
          | Some d, Some g ->
              check cb "dp <= gr" true
                (d.Dp_power.power <= g.Dp_power.power +. 1e-9))
        [ 2.; 3.; 5.; 10.; infinity ])
    seeds

let test_gr_frontier_pareto () =
  let t = random_instance 2002 in
  let f = Greedy_power.frontier t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        check cb "cost up" true (a.Dp_power.cost < b.Dp_power.cost);
        check cb "power down" true (b.Dp_power.power < a.Dp_power.power);
        walk rest
    | _ -> ()
  in
  walk f

let test_heuristic_improves_on_gr () =
  (* The local search must never be worse than its greedy seed, and never
     better than the DP optimum. *)
  List.iter
    (fun seed ->
      let t = random_instance (seed + 500) in
      let bound = 5. in
      let gr =
        Greedy_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~bound ()
      in
      let h =
        Heuristics.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~bound ()
      in
      let dp =
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~bound ()
      in
      match (gr, h, dp) with
      | None, None, _ -> ()
      | Some g, Some h, Some d ->
          check cb "h <= gr" true (h.Dp_power.power <= g.Dp_power.power +. 1e-9);
          check cb "dp <= h" true (d.Dp_power.power <= h.Dp_power.power +. 1e-9);
          check cb "h within bound" true (h.Dp_power.cost <= bound +. 1e-9);
          check cb "h valid" true (Solution.is_valid t ~w:10 h.Dp_power.solution)
      | Some _, None, _ -> Alcotest.fail "heuristic lost the greedy seed"
      | None, Some _, _ -> Alcotest.fail "heuristic invented a seed"
      | _, _, None -> Alcotest.fail "DP infeasible where GR was feasible")
    seeds

let test_heuristic_finds_figure2_optimum () =
  (* On the Figure 2 instance the heuristic can reach the true optimum:
     GR at W'=10 places a server at A (mode 2); moving it down to C is a
     strictly improving "lower" move. *)
  let t =
    Tree.build
      (Tree.node ~clients:[ 4 ]
         [
           Tree.node
             [ Tree.node ~clients:[ 3 ] []; Tree.node ~clients:[ 7 ] [] ];
         ])
  in
  let modes = Modes.make [ 7; 10 ] in
  let power = Power.make ~static:10. ~alpha:2. () in
  let cost = Cost.modal_uniform ~modes:2 ~create:0. ~delete:0. ~changed:0. in
  match Heuristics.solve t ~modes ~power ~cost () with
  | Some r -> check cf "reaches 118" 118. r.Dp_power.power
  | None -> Alcotest.fail "expected a solution"

let test_improve_rejects_bad_seed () =
  let t = Tree.build (Tree.node ~clients:[ 3 ] []) in
  (* Empty solution is invalid (unserved requests). *)
  check cb "invalid seed rejected" true
    (Heuristics.improve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
       Solution.empty
    = None)

let test_improve_monotone () =
  List.iter
    (fun seed ->
      let t = random_instance (seed + 900) in
      match Greedy.solve t ~w:10 with
      | None -> ()
      | Some sol ->
          let seed_power = Solution.power t modes_2 power_exp3 sol in
          (match
             Heuristics.improve t ~modes:modes_2 ~power:power_exp3
               ~cost:cost_cheap sol
           with
          | Some r ->
              check cb "no regression" true (r.Dp_power.power <= seed_power +. 1e-9)
          | None -> Alcotest.fail "valid seed rejected"))
    seeds

let test_restarts_at_least_as_good_as_solve () =
  List.iter
    (fun seed ->
      let t = random_instance (seed + 1300) in
      let rng = Rng.create seed in
      let plain =
        Heuristics.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
      in
      let multi =
        Heuristics.solve_restarts t ~modes:modes_2 ~power:power_exp3
          ~cost:cost_cheap rng
      in
      let dp =
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
      in
      match (plain, multi, dp) with
      | None, None, _ -> ()
      | Some p, Some m, Some d ->
          check cb "restarts <= plain" true
            (m.Dp_power.power <= p.Dp_power.power +. 1e-9);
          check cb "dp <= restarts" true
            (d.Dp_power.power <= m.Dp_power.power +. 1e-9);
          check cb "restarts valid" true
            (Solution.is_valid t ~w:10 m.Dp_power.solution)
      | _ -> Alcotest.fail "feasibility disagreement across heuristics")
    seeds

let test_anneal_sandwiched () =
  List.iter
    (fun seed ->
      let t = random_instance (seed + 1700) in
      let rng = Rng.create (seed * 3) in
      let annealed =
        Heuristics.anneal t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~iterations:300 rng
      in
      let gr =
        Greedy_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
      in
      let dp =
        Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
      in
      match (annealed, gr, dp) with
      | None, None, _ -> ()
      | Some a, Some g, Some d ->
          check cb "anneal <= seed" true
            (a.Dp_power.power <= g.Dp_power.power +. 1e-9);
          check cb "dp <= anneal" true
            (d.Dp_power.power <= a.Dp_power.power +. 1e-9);
          check cb "anneal valid" true
            (Solution.is_valid t ~w:10 a.Dp_power.solution);
          check cf "anneal metrics consistent"
            (Solution.power t modes_2 power_exp3 a.Dp_power.solution)
            a.Dp_power.power
      | _ -> Alcotest.fail "feasibility disagreement")
    seeds

let test_anneal_respects_bound () =
  List.iter
    (fun seed ->
      let t = random_instance (seed + 1900) in
      let rng = Rng.create seed in
      let bound = 4. in
      match
        Heuristics.anneal t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
          ~bound ~iterations:200 rng
      with
      | None -> ()
      | Some r -> check cb "within bound" true (r.Dp_power.cost <= bound +. 1e-9))
    seeds

let () =
  Alcotest.run "power_baselines"
    [
      ( "greedy_power",
        [
          Alcotest.test_case "sweep candidates" `Quick test_gr_candidates_cover_sweep;
          Alcotest.test_case "never beats DP" `Slow test_gr_never_beats_dp;
          Alcotest.test_case "frontier pareto" `Quick test_gr_frontier_pareto;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "between GR and DP" `Slow test_heuristic_improves_on_gr;
          Alcotest.test_case "figure 2 optimum" `Quick test_heuristic_finds_figure2_optimum;
          Alcotest.test_case "bad seed" `Quick test_improve_rejects_bad_seed;
          Alcotest.test_case "monotone improvement" `Quick test_improve_monotone;
        ] );
      ( "metaheuristics",
        [
          Alcotest.test_case "restarts dominate" `Slow test_restarts_at_least_as_good_as_solve;
          Alcotest.test_case "anneal sandwiched" `Slow test_anneal_sandwiched;
          Alcotest.test_case "anneal bound" `Quick test_anneal_respects_bound;
        ] );
    ]
