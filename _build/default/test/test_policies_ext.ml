(* Tests for the access-policy extensions (Multiple and Upwards) and
   their relationships to the paper's closest policy. *)

open Replica_tree
open Replica_core
open Helpers

(* --- Multiple --- *)

let test_multiple_split_across_ancestors () =
  (* A 12-request client under W=10 is unserveable by any single server
     (closest AND upwards), but two stacked servers split it. *)
  let t = Tree.build (Tree.node [ Tree.node ~clients:[ 12 ] [] ]) in
  check cb "closest infeasible" true (Greedy.solve t ~w:10 = None);
  check cb "upwards infeasible" true (Upwards.solve_exact t ~w:10 = None);
  match Multiple.solve t ~w:10 with
  | Some r ->
      check ci "two servers" 2 r.Multiple.servers;
      check cb "valid" true (Multiple.is_valid t ~w:10 r.Multiple.solution)
  | None -> Alcotest.fail "expected a Multiple solution"

let test_multiple_evaluate () =
  let t = Tree.build (Tree.node ~clients:[ 4 ] [ Tree.node ~clients:[ 9 ] [] ]) in
  let sol = Solution.of_nodes [ 0; 1 ] in
  let ev = Multiple.evaluate t ~w:10 sol in
  (* Node 1 absorbs min(10, 9) = 9; root absorbs its own 4. *)
  check (Alcotest.list (Alcotest.pair ci ci)) "loads" [ (0, 4); (1, 9) ]
    ev.Multiple.loads;
  check ci "served" 0 ev.Multiple.unserved;
  (* Single lower server: absorbs 9, the root client escapes. *)
  let ev1 = Multiple.evaluate t ~w:10 (Solution.of_nodes [ 1 ]) in
  check ci "unserved" 4 ev1.Multiple.unserved

let test_multiple_matches_brute () =
  (* Brute force over subsets with the greedy-absorption validity. *)
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 61) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 8 in
        let t = small_tree rng ~nodes ~max_requests:6 in
        let w = 3 + Rng.int rng 5 in
        let brute =
          let best = ref None in
          for mask = 0 to (1 lsl nodes) - 1 do
            let sel = ref [] in
            for j = nodes - 1 downto 0 do
              if mask land (1 lsl j) <> 0 then sel := j :: !sel
            done;
            let sol = Solution.of_nodes !sel in
            if Multiple.is_valid t ~w sol then
              match !best with
              | Some b when b <= Solution.cardinal sol -> ()
              | Some _ | None -> best := Some (Solution.cardinal sol)
          done;
          !best
        in
        let dp = Option.map (fun r -> r.Multiple.servers) (Multiple.solve t ~w) in
        check (Alcotest.option ci)
          (Printf.sprintf "multiple optimum (seed %d)" seed)
          brute dp
      done)
    seeds

let test_multiple_lower_bound () =
  let t = Generator.star ~leaves:4 ~client_requests:3 in
  check ci "counting bound" 2 (Multiple.min_servers_lower_bound t ~w:10);
  match Multiple.solve t ~w:10 with
  | Some r -> check cb "bound respected" true (r.Multiple.servers >= 2)
  | None -> Alcotest.fail "expected a solution"

(* --- Upwards --- *)

let test_upwards_beats_closest () =
  (* Two 6-request bundles at the same node, W=10: under closest both
     bundles share their first replica ancestor (12 > 10 everywhere), so
     the instance is infeasible; upwards sends one bundle to A and the
     other past it to the root. *)
  let t = Tree.build (Tree.node [ Tree.node ~clients:[ 6; 6 ] [] ]) in
  let sol = Solution.of_nodes [ 0; 1 ] in
  check cb "closest invalid" false (Solution.is_valid t ~w:10 sol);
  check cb "upwards valid" true (Upwards.assignment_exists t ~w:10 sol);
  check cb "closest infeasible" true (Greedy.solve t ~w:10 = None);
  match Upwards.solve_exact t ~w:10 with
  | Some u -> check ci "upwards needs 2" 2 u.Upwards.servers
  | None -> Alcotest.fail "expected an upwards solution"

let test_upwards_assignment_bin_packing () =
  (* Bundles 6,5,4,3 on one path with two servers of W=9: only the
     {6,3}/{5,4} split works; backtracking must find it. *)
  let t =
    Tree.build
      (Tree.node ~clients:[ 6; 5 ]
         [ Tree.node ~clients:[ 4; 3 ] [] ])
  in
  (* Both servers on the path of every bundle? Bundles at root can only
     go to the root. 6+5 = 11 > 9: infeasible no matter what. *)
  check cb "root overload" false
    (Upwards.assignment_exists t ~w:9 (Solution.of_nodes [ 0; 1 ]));
  let t2 =
    Tree.build
      (Tree.node [ Tree.node ~clients:[ 6; 5; 4; 3 ] [] ])
  in
  check cb "path split works" true
    (Upwards.assignment_exists t2 ~w:9 (Solution.of_nodes [ 0; 1 ]));
  check cb "single server fails" false
    (Upwards.assignment_exists t2 ~w:9 (Solution.of_nodes [ 0 ]))

let test_upwards_heuristic_valid () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 67) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 7 in
        let t = small_tree rng ~nodes ~max_requests:5 in
        let w = 5 + Rng.int rng 6 in
        match Upwards.solve_heuristic t ~w with
        | Some r ->
            check cb "heuristic placement is upwards-valid" true
              (Upwards.assignment_exists t ~w r.Upwards.solution);
            (* Heuristic never beats the exact optimum. *)
            (match Upwards.solve_exact t ~w with
            | Some e ->
                check cb "exact <= heuristic" true
                  (e.Upwards.servers <= r.Upwards.servers)
            | None -> Alcotest.fail "exact solver missed a solution")
        | None -> (
            (* The heuristic only gives up when a bundle exceeds w; then
               no solver can succeed. *)
            match Upwards.solve_exact t ~w with
            | Some _ ->
                (* Heuristic incompleteness is allowed, but flag it if the
                   exact solver disagrees for a reason other than packing. *)
                ()
            | None -> ())
      done)
    seeds

(* --- Policy hierarchy --- *)

let test_policy_hierarchy () =
  List.iter
    (fun seed ->
      let rng = Rng.create (seed + 71) in
      for _ = 1 to 10 do
        let nodes = 2 + Rng.int rng 6 in
        let t = small_tree rng ~nodes ~max_requests:5 in
        let w = 4 + Rng.int rng 6 in
        (* Fixed random replica set: validity is ordered
           closest => upwards => multiple. *)
        let sel =
          List.filter (fun _ -> Rng.bool rng) (List.init nodes Fun.id)
        in
        let sol = Solution.of_nodes sel in
        let closest_ok = Solution.is_valid t ~w sol in
        let upwards_ok = Upwards.assignment_exists t ~w sol in
        let multiple_ok = Multiple.is_valid t ~w sol in
        if closest_ok then check cb "closest => upwards" true upwards_ok;
        if upwards_ok then check cb "upwards => multiple" true multiple_ok;
        (* Optimal counts are ordered the other way. *)
        let closest = Greedy.solve_count t ~w in
        let upwards =
          Option.map (fun r -> r.Upwards.servers) (Upwards.solve_exact t ~w)
        in
        let multiple =
          Option.map (fun r -> r.Multiple.servers) (Multiple.solve t ~w)
        in
        (match (closest, upwards) with
        | Some c, Some u -> check cb "upwards <= closest" true (u <= c)
        | None, _ -> ()
        | Some _, None -> Alcotest.fail "upwards lost a closest solution");
        match (upwards, multiple) with
        | Some u, Some m -> check cb "multiple <= upwards" true (m <= u)
        | None, _ -> ()
        | Some _, None -> Alcotest.fail "multiple lost an upwards solution"
      done)
    seeds

let test_validation_errors () =
  let t = Tree.build (Tree.node ~clients:[ 1 ] []) in
  Alcotest.check_raises "multiple w" (Invalid_argument "Multiple.solve: w must be positive")
    (fun () -> ignore (Multiple.solve t ~w:0));
  Alcotest.check_raises "upwards w"
    (Invalid_argument "Upwards.solve_heuristic: w must be positive") (fun () ->
      ignore (Upwards.solve_heuristic t ~w:0));
  let big = Generator.star ~leaves:25 ~client_requests:1 in
  Alcotest.check_raises "too many clients"
    (Invalid_argument "Upwards.assignment_exists: too many clients for exact check")
    (fun () ->
      ignore (Upwards.assignment_exists big ~w:5 (Solution.of_nodes [ 0 ])))

let () =
  Alcotest.run "policies_ext"
    [
      ( "multiple",
        [
          Alcotest.test_case "split across ancestors" `Quick test_multiple_split_across_ancestors;
          Alcotest.test_case "evaluate" `Quick test_multiple_evaluate;
          Alcotest.test_case "matches brute" `Slow test_multiple_matches_brute;
          Alcotest.test_case "lower bound" `Quick test_multiple_lower_bound;
        ] );
      ( "upwards",
        [
          Alcotest.test_case "beats closest" `Quick test_upwards_beats_closest;
          Alcotest.test_case "bin packing" `Quick test_upwards_assignment_bin_packing;
          Alcotest.test_case "heuristic valid" `Slow test_upwards_heuristic_valid;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "policy hierarchy" `Slow test_policy_hierarchy;
          Alcotest.test_case "validation" `Quick test_validation_errors;
        ] );
    ]
