open Replica_tree
open Replica_core
open Helpers

(* Fixture (preorder ids):
   0
   ├── 1 (pre@1, clients 2 3)
   │    ├── 2 (clients 1)
   │    └── 3
   └── 4 (clients 5) *)
let sample () =
  Tree.build
    (Tree.node
       [
         Tree.node ~clients:[ 2; 3 ] ~pre:1
           [ Tree.node ~clients:[ 1 ] []; Tree.node [] ];
         Tree.node ~clients:[ 5 ] [];
       ])

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

(* --- Metrics --- *)

let test_compute () =
  let m = Metrics.compute (sample ()) in
  check ci "nodes" 5 m.Metrics.nodes;
  check ci "height" 2 m.Metrics.height;
  check ci "leaves" 3 m.Metrics.leaves;
  check ci "min branching" 2 m.Metrics.min_branching;
  check ci "max branching" 2 m.Metrics.max_branching;
  check cf "mean branching" 2. m.Metrics.mean_branching;
  check ci "clients" 4 m.Metrics.clients;
  check ci "requests" 11 m.Metrics.total_requests;
  check cf "mean per client" 2.75 m.Metrics.mean_requests_per_client;
  check ci "max node demand" 5 m.Metrics.max_node_demand;
  check ci "pre-existing" 1 m.Metrics.pre_existing

let test_compute_single () =
  let m = Metrics.compute (Tree.build (Tree.node [])) in
  check ci "nodes" 1 m.Metrics.nodes;
  check ci "leaves" 1 m.Metrics.leaves;
  check ci "min branching (none)" 0 m.Metrics.min_branching;
  check cf "mean branching" 0. m.Metrics.mean_branching;
  check cf "mean per client" 0. m.Metrics.mean_requests_per_client

let test_histograms () =
  let t = sample () in
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "depth histogram"
    [ (0, 1); (1, 2); (2, 2) ]
    (Metrics.depth_histogram t);
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "branching histogram"
    [ (0, 3); (2, 2) ]
    (Metrics.branching_histogram t);
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "demand by depth"
    [ (1, 10); (2, 1) ]
    (Metrics.demand_by_depth t)

let test_metrics_match_generator_profile () =
  let rng = Rng.create 12 in
  let t = Generator.random rng (Generator.fat ~nodes:150 ()) in
  let m = Metrics.compute t in
  check ci "nodes" 150 m.Metrics.nodes;
  check cb "branching within profile" true
    (m.Metrics.max_branching <= 9 && m.Metrics.mean_branching > 0.);
  check cb "requests within profile" true
    (m.Metrics.total_requests >= m.Metrics.clients
    && m.Metrics.total_requests <= 6 * m.Metrics.clients)

(* --- Report --- *)

let test_cost_report_content () =
  let t = sample () in
  let cost = Cost.basic ~create:0.5 ~delete:0.25 () in
  let report = Report.cost_report t ~w:10 cost (Solution.of_nodes [ 0; 1 ]) in
  check cb "mentions both servers" true
    (contains report "node 0" && contains report "node 1");
  check cb "provenance" true
    (contains report "reused (was mode 1)" && contains report "new");
  check cb "reuse summary" true (contains report "reused 1 of 1");
  check cb "cost figure" true (contains report "cost (Eq. 2): 2.500");
  check cb "no violations" true (not (contains report "VIOLATIONS"))

let test_cost_report_deletion_and_violation () =
  let t = sample () in
  let cost = Cost.basic () in
  (* Root-only drops the pre-existing node 1 and overloads at w=10. *)
  let report = Report.cost_report t ~w:10 cost (Solution.of_nodes [ 0 ]) in
  check cb "deletion listed" true (contains report "deleted pre-existing servers: 1");
  check cb "violation listed" true (contains report "node 0 overloaded: 11 > 10")

let test_cost_report_unserved () =
  let t = sample () in
  let report = Report.cost_report t ~w:10 (Cost.basic ()) Solution.empty in
  check cb "unserved" true (contains report "11 requests unserved")

let test_power_report_content () =
  let t = sample () in
  let modes = Modes.make [ 7; 14 ] in
  let power = Power.make ~static:1. ~alpha:2. () in
  let cost = Cost.paper_cheap ~modes:2 in
  let report =
    Report.power_report t modes power cost (Solution.of_nodes [ 0; 1 ])
  in
  check cb "mode shown" true (contains report "mode W1");
  check cb "watts shown" true (contains report "(50.0 W)");
  check cb "power total" true (contains report "power (Eq. 3): 100.000");
  check cb "cost line" true (contains report "cost (Eq. 4):")

(* --- Svg --- *)

let test_svg_render () =
  let t = sample () in
  let svg = Svg.render t in
  check cb "svg root" true (contains svg "<svg xmlns");
  check cb "closes" true (contains svg "</svg>");
  check cb "node ids" true (contains svg ">3</text>");
  check cb "pre-existing label" true (contains svg "pre@W1");
  check cb "client bubble" true (contains svg ">5</text>");
  (* One rect per internal node, one circle per client. *)
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length svg then acc
      else if String.sub svg i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check ci "rects" 5 (count "<rect");
  check ci "client circles" 4 (count "<circle")

let test_svg_highlight () =
  let t = sample () in
  let highlight =
    {
      Svg.replicas = [ 0; 1 ];
      loads = [ (0, 7); (1, 7) ];
      capacity = 10;
    }
  in
  let svg = Svg.render ~highlight t in
  check cb "bold replica outline" true (contains svg "stroke-width=\"3.0\"");
  check cb "load label" true (contains svg ">7/10</text>")

let test_svg_write_file () =
  let t = sample () in
  let path = Filename.temp_file "replicaml" ".svg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Svg.write_file path t;
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      check cb "non-empty file" true (len > 200))

let () =
  Alcotest.run "metrics_report"
    [
      ( "metrics",
        [
          Alcotest.test_case "compute" `Quick test_compute;
          Alcotest.test_case "single node" `Quick test_compute_single;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "generator profile" `Quick test_metrics_match_generator_profile;
        ] );
      ( "report",
        [
          Alcotest.test_case "cost content" `Quick test_cost_report_content;
          Alcotest.test_case "deletion and violation" `Quick test_cost_report_deletion_and_violation;
          Alcotest.test_case "unserved" `Quick test_cost_report_unserved;
          Alcotest.test_case "power content" `Quick test_power_report_content;
        ] );
      ( "svg",
        [
          Alcotest.test_case "render" `Quick test_svg_render;
          Alcotest.test_case "highlight" `Quick test_svg_highlight;
          Alcotest.test_case "write file" `Quick test_svg_write_file;
        ] );
    ]
