(* Consolidated failure injection: every public entry point must reject
   malformed input with Invalid_argument (never crash or loop), and every
   solver must answer [None] — not raise — on well-formed but unserveable
   instances. *)

open Replica_tree
open Replica_core
open Helpers

let raises name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Invalid_argument, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: expected Invalid_argument, got a value" name

let feasible_tree () = Tree.build (Tree.node ~clients:[ 3 ] [])

(* One client beyond every capacity: unserveable under closest/upwards. *)
let hopeless_tree () = Tree.build (Tree.node ~clients:[ 99 ] [])

let test_bad_capacities () =
  let t = feasible_tree () in
  raises "greedy w=0" (fun () -> Greedy.solve t ~w:0);
  raises "greedy negative" (fun () -> Greedy.solve t ~w:(-3));
  raises "dp_nopre w=0" (fun () -> Dp_nopre.solve t ~w:0);
  raises "dp_withpre w=0" (fun () -> Dp_withpre.solve t ~w:0 ~cost:zero_cost);
  raises "multiple w=0" (fun () -> Multiple.solve t ~w:0);
  raises "upwards heuristic w=0" (fun () -> Upwards.solve_heuristic t ~w:0);
  raises "upwards assignment w=0" (fun () ->
      Upwards.assignment_exists t ~w:0 Solution.empty)

let test_bad_models () =
  raises "modes empty" (fun () -> Modes.make []);
  raises "modes decreasing" (fun () -> Modes.make [ 9; 5 ]);
  raises "power negative static" (fun () -> Power.make ~static:(-1.) ());
  raises "cost negative" (fun () -> Cost.basic ~create:(-1.) ());
  raises "modal mismatch" (fun () ->
      Cost.modal ~create:[| 0. |] ~delete:[||] ~changed:[| [| 0. |] |]);
  raises "tally mismatch" (fun () ->
      Cost.modal_cost (Cost.paper_cheap ~modes:2) (Cost.empty_tally ~modes:3))

let test_bad_trees () =
  raises "negative client" (fun () ->
      Tree.build (Tree.node ~clients:[ -1 ] []));
  raises "zero mode" (fun () -> Tree.build (Tree.node ~pre:0 []));
  raises "with_pre bad node" (fun () ->
      Tree.with_pre_existing (feasible_tree ()) [ (7, 1) ]);
  raises "of_string garbage" (fun () -> Tree.of_string "zzz");
  raises "solution foreign node" (fun () ->
      Solution.evaluate (feasible_tree ()) (Solution.of_nodes [ 5 ]))

let test_guards () =
  let big =
    Tree.of_parents
      ~parents:(Array.init 25 (fun i -> i - 1))
      ~clients:(Array.make 25 [])
      ~pre:(Array.make 25 None)
  in
  raises "brute too large" (fun () ->
      Brute.min_servers big ~w:5);
  raises "upwards exact too large" (fun () -> Upwards.solve_exact big ~w:5);
  raises "npc empty" (fun () -> Npc.build []);
  raises "npc precondition" (fun () -> Npc.build [ 5; 1 ])

let test_infeasible_never_raises () =
  let t = hopeless_tree () in
  check cb "greedy" true (Greedy.solve t ~w:10 = None);
  check cb "dp_nopre" true (Dp_nopre.solve t ~w:10 = None);
  check cb "dp_withpre" true (Dp_withpre.solve t ~w:10 ~cost:zero_cost = None);
  check cb "dp_power" true
    (Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
    = None);
  check cb "greedy_power" true
    (Greedy_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
    = None);
  check cb "heuristics" true
    (Heuristics.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ()
    = None);
  check cb "heuristics_cost" true
    (Heuristics_cost.solve t ~w:10 ~cost:zero_cost () = None);
  check cb "upwards exact" true (Upwards.solve_exact t ~w:10 = None);
  check cb "upwards heuristic" true (Upwards.solve_heuristic t ~w:10 = None);
  (* Multiple splits the bundle and succeeds given enough path servers —
     one node is not enough for 99 requests at W=10 though. *)
  check cb "multiple single node" true (Multiple.solve t ~w:10 = None)

let test_infeasible_bounds () =
  (* A bound below any achievable cost yields None everywhere. *)
  let rng = Rng.create 9 in
  let t = small_tree_with_pre rng ~nodes:8 ~max_requests:4 ~pre:2 in
  let bound = -1. in
  check cb "dp_power bound" true
    (Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap ~bound
       ()
    = None);
  check cb "gr bound" true
    (Greedy_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
       ~bound ()
    = None);
  check cb "heuristic bound" true
    (Heuristics.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap
       ~bound ()
    = None)

let test_empty_demand_everywhere () =
  (* Zero requests: the empty placement is optimal for every solver. *)
  let t = Tree.build (Tree.node [ Tree.node [] ]) in
  check (Alcotest.option ci) "greedy" (Some 0) (Greedy.solve_count t ~w:5);
  (match Dp_withpre.solve t ~w:5 ~cost:zero_cost with
  | Some r -> check ci "dp servers" 0 r.Dp_withpre.servers
  | None -> Alcotest.fail "dp failed on empty demand");
  (match Dp_power.solve t ~modes:modes_2 ~power:power_exp3 ~cost:cost_cheap () with
  | Some r ->
      check ci "power servers" 0 (Solution.cardinal r.Dp_power.solution);
      check cf "zero power" 0. r.Dp_power.power
  | None -> Alcotest.fail "power dp failed on empty demand");
  match Multiple.solve t ~w:5 with
  | Some r -> check ci "multiple servers" 0 r.Multiple.servers
  | None -> Alcotest.fail "multiple failed on empty demand"

let () =
  Alcotest.run "failures"
    [
      ( "invalid arguments",
        [
          Alcotest.test_case "capacities" `Quick test_bad_capacities;
          Alcotest.test_case "models" `Quick test_bad_models;
          Alcotest.test_case "trees" `Quick test_bad_trees;
          Alcotest.test_case "size guards" `Quick test_guards;
        ] );
      ( "graceful infeasibility",
        [
          Alcotest.test_case "hopeless demand" `Quick test_infeasible_never_raises;
          Alcotest.test_case "impossible bounds" `Quick test_infeasible_bounds;
          Alcotest.test_case "empty demand" `Quick test_empty_demand_everywhere;
        ] );
    ]
