(** Request traces over a distribution tree.

    The paper's model is steady-state: each client issues [r_i] requests
    {e per time unit}, and §1/§6 frame the dynamic problem — request
    volumes evolving over time — as a sequence of such steady states
    punctuated by reconfigurations. This substrate supplies the missing
    front end: a {e trace} is a time-stamped stream of individual
    requests attributed to client positions; {!Epochs} aggregates it
    into per-window request-rate trees that feed {!Replica_core}'s
    solvers and {!Replica_core.Update_policy}.

    A client position is identified by the internal node it attaches to
    and its index among that node's clients. Traces are immutable sorted
    arrays of events. *)

type event = {
  time : float;  (** seconds from the trace origin, non-negative *)
  node : Tree.node;  (** attachment point *)
  client : int;  (** index within the node's client list *)
}

type t
(** An immutable trace, events sorted by time. *)

val of_events : event list -> t
(** Sorts and validates (negative times rejected).
    @raise Invalid_argument on a negative timestamp. *)

val events : t -> event list
val length : t -> int

val duration : t -> float
(** Timestamp of the last event; 0 for the empty trace. *)

val merge : t -> t -> t
(** Interleave two traces by time. *)

val merge_all : t list -> t
(** Deterministic n-way interleave: all events of all streams, sorted
    by (time, node, client) exactly as {!of_events} sorts them, so the
    result is independent of the list order of equal streams and
    [merge_all [a; b] = merge a b]. The merged length is the sum of
    the stream lengths (nothing is dropped or deduplicated). *)

val filter : (event -> bool) -> t -> t

val count_by_client : t -> ((Tree.node * int) * int) list
(** Total events per client position, sorted. *)
