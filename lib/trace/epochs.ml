let window_counts trace ~window ~index =
  if window <= 0. then invalid_arg "Epochs: window must be positive";
  if index < 0 then invalid_arg "Epochs: negative index";
  let start = float_of_int index *. window in
  let stop = start +. window in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.Trace.time >= start && e.Trace.time < stop then begin
        let key = (e.Trace.node, e.Trace.client) in
        Hashtbl.replace tbl key
          ((try Hashtbl.find tbl key with Not_found -> 0) + 1)
      end)
    (Trace.events trace);
  tbl

let rates trace tree ~window ~index =
  let counts = window_counts trace ~window ~index in
  Tree.with_clients tree (fun j ->
      List.filteri
        (fun _ r -> r > 0)
        (List.mapi
           (fun i _ ->
             let events =
               try Hashtbl.find counts (j, i) with Not_found -> 0
             in
             int_of_float
               (Float.round (float_of_int events /. window)))
           (Tree.clients tree j)))

let epoch_count trace ~window =
  if window <= 0. then invalid_arg "Epochs: window must be positive";
  let d = Trace.duration trace in
  max 1 (int_of_float (Float.ceil ((d +. epsilon_float) /. window)))

let epochs trace tree ~window =
  List.init (epoch_count trace ~window) (fun index ->
      rates trace tree ~window ~index)

let epochs_multi streams ~window =
  if window <= 0. then invalid_arg "Epochs: window must be positive";
  (* One shared window grid across every stream: the count covers the
     longest stream, and every stream is aggregated on that grid, so
     epoch k of stream A and epoch k of stream B describe the same
     wall-clock interval. A stream that ends early simply goes idle in
     the later windows. *)
  let count =
    List.fold_left
      (fun acc (trace, _) -> max acc (epoch_count trace ~window))
      1 streams
  in
  List.init count (fun index ->
      List.map
        (fun (trace, tree) -> rates trace tree ~window ~index)
        streams)

let changed_nodes prev next =
  if Tree.size prev <> Tree.size next then
    invalid_arg "Epochs: changed_nodes expects views of one network";
  List.filter
    (fun j -> Tree.clients prev j <> Tree.clients next j)
    (List.init (Tree.size next) Fun.id)

let conservation_check trace tree ~window =
  ignore tree;
  let total = Trace.length trace in
  let summed = ref 0 in
  for index = 0 to epoch_count trace ~window - 1 do
    let counts = window_counts trace ~window ~index in
    Hashtbl.iter (fun _ c -> summed := !summed + c) counts
  done;
  !summed = total
