type event = { time : float; node : Tree.node; client : int }

type t = event array

let of_events l =
  List.iter
    (fun e ->
      if e.time < 0. || Float.is_nan e.time then
        invalid_arg "Trace.of_events: negative timestamp")
    l;
  let a = Array.of_list l in
  Array.sort (fun a b -> compare (a.time, a.node, a.client) (b.time, b.node, b.client)) a;
  a

let events t = Array.to_list t
let length = Array.length

let duration t = if Array.length t = 0 then 0. else t.(Array.length t - 1).time

let merge a b = of_events (Array.to_list a @ Array.to_list b)

let merge_all ts = of_events (List.concat_map Array.to_list ts)

let filter p t = Array.of_list (List.filter p (Array.to_list t))

let count_by_client t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      let key = (e.node, e.client) in
      Hashtbl.replace tbl key
        ((try Hashtbl.find tbl key with Not_found -> 0) + 1))
    t;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
