(** Aggregation of traces into the paper's steady-state epochs.

    The solvers consume request {e rates} (requests per time unit). This
    module slices a trace into fixed-width windows and produces, for
    each, the tree annotated with every client's observed rate in that
    window — the inputs a periodic reconfiguration pipeline
    ({!Replica_core.Update_policy}) expects. *)

val rates : Trace.t -> Tree.t -> window:float -> index:int -> Tree.t
(** [rates trace tree ~window ~index] is [tree] with each client's
    request count replaced by its event count in
    [\[index·window, (index+1)·window)] divided by [window], rounded to
    the nearest integer (clients observed idle disappear for that
    epoch).
    @raise Invalid_argument if [window <= 0] or [index < 0]. *)

val epochs : Trace.t -> Tree.t -> window:float -> Tree.t list
(** All epoch trees covering the trace's duration, in order. The last
    partial window is included. An empty trace yields a single all-idle
    epoch. *)

val epoch_count : Trace.t -> window:float -> int

val epochs_multi :
  (Trace.t * Tree.t) list -> window:float -> Tree.t list list
(** Aligned multi-stream epoch grids: one shared window count covering
    the longest stream, every stream aggregated on that grid. Element
    [k] of the result holds epoch [k]'s demand view of every stream, in
    stream order — so a forest of shards can be stepped epoch-by-epoch
    with all shards observing the same wall-clock interval (streams
    that end early go idle in later windows rather than falling off the
    grid). The per-stream views are exactly {!rates} at the shared
    index; aggregation loses nothing ({!conservation_check} holds per
    stream).
    @raise Invalid_argument if [window <= 0]. *)

val changed_nodes : Tree.t -> Tree.t -> Tree.node list
(** [changed_nodes prev next] lists, in increasing node order, the
    nodes whose client multiset differs between two epoch views of the
    same network — the leaves of the root-to-leaf paths an incremental
    re-solver must treat as dirty. Structure is assumed shared (both
    trees derived from one network by {!Tree.with_clients}).
    @raise Invalid_argument if the trees disagree on size. *)

val conservation_check : Trace.t -> Tree.t -> window:float -> bool
(** Debug helper: total events equal the sum over epochs of each epoch's
    raw (unrounded) counts — aggregation loses nothing. Used by tests. *)
