(** Log2-binned, domain-safe histograms with quantile summaries.

    Observations are non-negative integers (nanoseconds, merge-product
    counts, percentages — the caller picks the unit and encodes it in
    the metric name, e.g. [engine.epoch_solve_ns]). Bin [0] holds
    values [<= 0]; bin [i >= 1] holds [2^(i-1) .. 2^i - 1], so 63 bins
    cover the whole non-negative [int] range with a worst-case 2x
    relative error on quantiles — the right trade for latencies and
    size distributions spanning many decades.

    {b Domain safety.} Every bin and the running sum are [Atomic.t];
    {!observe} is two atomic adds, no lock, no allocation, always on
    (like {!Replica_core.Stats_counters} — gating applies to tracing,
    not metrics). Totals are deterministic for a fixed workload at any
    domain count because addition commutes.

    {b Quantiles.} [quantile h q] returns the {e geometric midpoint}
    ([round (sqrt (lo * hi))]) of the bin containing the
    rank-[ceil(q * count)] observation — within 2x of the true value
    in either direction (the upper bound, reported historically, was a
    bucket boundary that overstated tail quantiles by up to 2x), and
    monotone in [q] by construction ([p50 <= p90 <= p99] always
    holds).

    Like counters, histograms are process-global and interned by name;
    harnesses attributing numbers to one run call {!reset_all} first.
    {!make} builds an unregistered instance for per-run ownership (the
    engine keeps one per instance so concurrent engines in experiment
    sweeps don't mix their timelines' percentiles). *)

type t

val create : string -> t
(** Registered and interned by name (the {!Replica_core.Stats_counters}
    convention: dotted [subsystem.metric] names, registration at module
    initialization). *)

val make : string -> t
(** An unregistered instance: same API, not visible to {!snapshots} /
    {!reset_all}. *)

val name : t -> string

val observe : t -> int -> unit
(** Record one observation. Negative values land in bin 0. *)

val count : t -> int
val sum : t -> int

val quantile : t -> float -> int
(** [quantile h q] for [q] in [[0, 1]]; [0] when the histogram is
    empty. *)

type summary = { s_count : int; s_sum : int; p50 : int; p90 : int; p99 : int }

val summary : t -> summary

val buckets : t -> (int * int) list
(** [(inclusive upper bound, cumulative count)] for every bin up to
    the highest non-empty one — the Prometheus exposition shape
    (cumulative, sorted by bound). Empty list for an empty
    histogram. *)

val snapshots : unit -> (string * t) list
(** Every registered histogram with at least one observation, sorted
    by name. *)

val reset : t -> unit
val reset_all : unit -> unit
