(** Aggregate a span forest into hotspot rows and folded stacks.

    Answers "where did the time go" for a trace read back by
    {!Trace_reader}: per span name, how many times it ran, how long it
    was on stack in total, and how much of that was {e self} time (the
    span's duration minus the durations of the spans nested directly
    inside it). Self times partition wall time — over a well-formed
    forest they sum exactly to the root spans' total duration — which
    makes them the right weight for both the top-K table and the
    folded output.

    {b Folded stacks.} {!folded} emits Brendan Gregg's collapsed-stack
    format: one line per distinct stack, frames joined by [";"] from
    root to leaf, followed by a space and the stack's aggregated self
    time in nanoseconds. The output loads directly into inferno
    ([inferno-flamegraph]), speedscope or [flamegraph.pl] — the
    nanosecond weights simply take the place of sample counts. Lines
    are emitted in lexicographic order so equal traces fold to
    byte-equal output (the golden cram test relies on this).

    {b Allocation axis.} Every aggregate exists twice: in nanoseconds
    and in allocated words (captured per span when {!Span.set_alloc}
    is on). Self-allocation is defined identically to self-time — a
    span's words minus its direct children's words — so self words
    partition the forest's total allocation exactly as self times
    partition wall time. {!alloc_table} and {!folded_alloc} are the
    alloc-weighted twins of {!top_table} and {!folded}; a trace
    recorded without alloc capture aggregates to all-zero columns.

    Recursive spans (a name nested under itself) are counted once per
    occurrence in [calls] and [self_ns], but their [total_ns]
    accumulates each occurrence's full duration, so a recursive
    frame's total can exceed wall time — the usual profiler caveat.
    The same caveat applies verbatim to [total_minor_w]/[total_major_w]
    under recursion: the self columns stay exact, the totals
    double-count the nested occurrences. *)

type row = {
  name : string;
  calls : int;
  total_ns : int;  (** summed durations of every span with this name *)
  self_ns : int;  (** summed durations minus direct children *)
  total_minor_w : int;  (** summed minor words of every span *)
  self_minor_w : int;  (** summed minor words minus direct children *)
  total_major_w : int;  (** summed major words of every span *)
  self_major_w : int;  (** summed major words minus direct children *)
}

val rows : Trace_reader.node list -> row list
(** One row per distinct span name, sorted by self time (descending),
    then name. *)

val top_table : ?k:int -> Trace_reader.node list -> string
(** Aligned hotspot table of the top [k] (default 10) rows by self
    time, with self percentages relative to the forest wall time. *)

val alloc_table : ?k:int -> Trace_reader.node list -> string
(** Alloc-weighted hotspot table: top [k] rows by self minor words,
    with self percentages relative to the forest's total minor
    allocation and a total major-words column. *)

val folded : Trace_reader.node list -> string
(** Collapsed-stack lines ["a;b;c <self_ns>"], lexicographically
    sorted, only stacks with positive self time. Empty string for an
    empty forest. *)

val folded_alloc : Trace_reader.node list -> string
(** Collapsed-stack lines weighted by self minor words instead of self
    nanoseconds; same format and ordering as {!folded}, so the output
    feeds the same flamegraph tooling. *)
