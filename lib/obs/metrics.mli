(** Labeled metric registry: counters, gauges and histograms with
    [(key, value)] label sets, one process-global namespace.

    This is the registration layer the Prometheus exposition
    ({!Prometheus.expose}) and the per-epoch time series
    ({!Timeseries}) both read. Three instrument kinds:

    - {e counters} — monotone int cells ([incr]/[add]);
    - {e gauges} — last-write-wins floats ([set]);
    - {e histograms} — log2-binned {!Histogram} instances ([observe]).

    Instruments are interned by [(name, canonical label set)]: two
    [counter "x" ~labels:[("a","1")]] calls return the same cell, so
    registration can happen wherever is convenient (engine creation,
    module initializers) without coordination. Label order is
    irrelevant; duplicate keys collapse. Re-registering a name under a
    different kind raises [Invalid_argument].

    {b Domain safety.} The registry mutex guards registration and
    {!samples} only; every update path ([incr], [add], [set],
    [observe]) is a single atomic operation on the instrument's cell —
    no lock, no allocation — so instruments are safe to update from
    [Par]-fanned domains and totals are deterministic for a fixed
    workload at any domain count.

    {b Collectors.} Subsystems with their own registries bridge in by
    registering a collector — a closure returning a sample list pulled
    on every {!samples} call. [Replica_core.Stats_counters] registers
    one at module initialization (its counters as counter samples, its
    timers as [name_seconds] gauges); the legacy name-interned
    {!Histogram} registry and the span drop counter
    ([obs.spans_dropped]) are built in. *)

type labels = (string * string) list

type t
(** An instrument handle: one cell (or histogram) for one
    [(name, label set)] pair. *)

val counter : ?labels:labels -> string -> t
val gauge : ?labels:labels -> string -> t
val histogram : ?labels:labels -> string -> t

val incr : t -> unit
val add : t -> int -> unit
(** Counters only; [Invalid_argument] otherwise. *)

val set : t -> float -> unit
(** Gauges only. *)

val observe : t -> int -> unit
(** Histograms only. *)

val value : t -> float
(** Current value of a counter or gauge. *)

(** {2 Sampling} *)

type hist_snapshot = {
  hs_buckets : (int * int) list;
      (** cumulative [(upper bound, count)], the exposition shape *)
  hs_count : int;
  hs_sum : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
}

type value =
  | Sample_counter of float
  | Sample_gauge of float
  | Sample_histogram of hist_snapshot

type sample = { s_name : string; s_labels : labels; s_value : value }

val samples : unit -> sample list
(** One consistent-enough snapshot of every instrument and collector,
    sorted by [(name, labels)] so a family's samples are consecutive.
    Histograms with zero observations are suppressed. *)

val register_collector : name:string -> (unit -> sample list) -> unit
(** Bridge an external registry in. Re-registering a name replaces the
    previous collector (idempotent module initialization). *)

val reset : unit -> unit
(** Zero every directly registered instrument. Collector-backed
    sources reset through their own registries. *)

val labels_to_string : labels -> string
(** [{k="v",...}], empty string for no labels — the exposition and
    time-series key syntax. *)

val sample_key : sample -> string
(** [name{k="v",...}] — the flattened identity used by
    {!Timeseries}. *)
