let arg_to_json : Span.arg -> Json.t = function
  | Span.Str s -> Json.String s
  | Span.Int i -> Json.Int i
  | Span.Float f -> Json.Float f
  | Span.Bool b -> Json.Bool b

let event ~origin_ns (s : Span.span) =
  (* Alloc columns ride in [args] under reserved keys so the format
     stays plain trace-event JSON (Perfetto shows them in the span
     details pane); Trace_reader lifts them back into span fields.
     Omitted when zero, which also keeps alloc-off traces byte-stable. *)
  let alloc_args =
    (if s.Span.minor_w > 0 then [ ("minor_w", Json.Int s.Span.minor_w) ]
     else [])
    @
    if s.Span.major_w > 0 then [ ("major_w", Json.Int s.Span.major_w) ]
    else []
  in
  let args =
    alloc_args @ List.map (fun (k, v) -> (k, arg_to_json v)) s.Span.args
  in
  Json.Obj
    ([
       ("name", Json.String s.Span.name);
       ("cat", Json.String "replicaml");
       ("ph", Json.String "X");
       ("ts", Json.Float (float_of_int (s.Span.start_ns - origin_ns) /. 1e3));
       ("dur", Json.Float (float_of_int s.Span.dur_ns /. 1e3));
       ("pid", Json.Int 1);
       ("tid", Json.Int s.Span.tid);
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

(* Counter ("ph": "C") events: each [c_values] key is one series in
   Perfetto's counter track. Used for per-epoch heap/allocation-rate
   tracks alongside the span timeline. *)
type counter = {
  c_name : string;
  c_ts_ns : int;
  c_values : (string * float) list;
}

let counter_event ~origin_ns c =
  Json.Obj
    [
      ("name", Json.String c.c_name);
      ("cat", Json.String "replicaml");
      ("ph", Json.String "C");
      ("ts", Json.Float (float_of_int (c.c_ts_ns - origin_ns) /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) c.c_values));
    ]

(* Metadata ("ph": "M") event carrying the number of spans lost to a
   saturated per-domain buffer, so a truncated trace is detectable by
   Trace_reader/profile instead of silently incomplete. Always
   emitted; a complete trace carries count 0. *)
let dropped_event count =
  Json.Obj
    [
      ("name", Json.String "spans_dropped");
      ("cat", Json.String "replicaml");
      ("ph", Json.String "M");
      ("ts", Json.Int 0);
      ("pid", Json.Int 1);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("count", Json.Int count) ]);
    ]

let to_json ?(dropped = 0) ?(counters = []) spans =
  let origin_ns =
    List.fold_left
      (fun acc c -> min acc c.c_ts_ns)
      (List.fold_left
         (fun acc (s : Span.span) -> min acc s.Span.start_ns)
         max_int spans)
      counters
  in
  let origin_ns = if origin_ns = max_int then 0 else origin_ns in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map (event ~origin_ns) spans
          @ List.map (counter_event ~origin_ns) counters
          @ [ dropped_event dropped ]) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?pretty ?dropped ?counters spans =
  Json.to_string ?pretty (to_json ?dropped ?counters spans)

let write_file ?dropped ?counters path spans =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string ~pretty:true ?dropped ?counters spans);
      output_char oc '\n')

(* --- validation --- *)

let ( let* ) = Result.bind

let check_event i json =
  let fail fmt =
    Printf.ksprintf
      (fun m -> Error (Printf.sprintf "event %d: %s" i m))
      fmt
  in
  let str key =
    match Json.member key json with
    | Some (Json.String s) -> Ok s
    | _ -> fail "missing or non-string %S" key
  in
  let number key =
    match Json.member key json with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int n) -> Ok (float_of_int n)
    | _ -> fail "missing or non-numeric %S" key
  in
  let int key =
    match Json.member key json with
    | Some (Json.Int _) -> Ok ()
    | _ -> fail "missing or non-integer %S" key
  in
  let* name = str "name" in
  let* () = if name = "" then fail "empty name" else Ok () in
  let* ph = str "ph" in
  let* _ts = number "ts" in
  let* () = int "pid" in
  let* () = int "tid" in
  if ph = "X" then
    let* dur = number "dur" in
    if dur < 0. then fail "negative dur" else Ok ()
  else Ok ()

let validate contents =
  let* json = Json.parse contents in
  match Json.member "traceEvents" json with
  | Some (Json.List events) ->
      let rec loop i = function
        | [] -> Ok i
        | e :: rest ->
            let* () = check_event i e in
            loop (i + 1) rest
      in
      loop 0 events
  | Some _ -> Error "\"traceEvents\" is not a list"
  | None -> Error "missing \"traceEvents\""
