(* Heap telemetry: bridge the runtime's GC counters into the Metrics
   registry as one collector, so every existing sink — Prometheus
   exposition, OpenMetrics, per-epoch Timeseries deltas, the --json
   envelope, the top view — gains a memory axis without learning
   anything new. Counters are cumulative (Timeseries turns them into
   per-epoch deltas by its usual counter semantics); heap sizes are
   gauges. *)

let collector_name = "gc"

(* Same stub Span uses for its alloc columns. The live per-domain
   counters matter here: in OCaml 5, [Gc.quick_stat]'s word counters
   only refresh at collection boundaries, so an epoch that triggers no
   minor collection would publish a zero delta. [Gc.minor_words] and
   this stub include the words allocated since the last collection. *)
external major_words :
  unit -> (float[@unboxed])
  = "obs_gc_major_words" "obs_gc_major_words_unboxed"
[@@noalloc]

let samples () =
  let s = Gc.quick_stat () in
  let counter name v =
    {
      Metrics.s_name = name;
      s_labels = [];
      s_value = Metrics.Sample_counter v;
    }
  in
  let gauge name v =
    { Metrics.s_name = name; s_labels = []; s_value = Metrics.Sample_gauge v }
  in
  [
    counter "gc.minor_words" (Gc.minor_words ());
    counter "gc.promoted_words" s.Gc.promoted_words;
    counter "gc.major_words" (major_words ());
    counter "gc.minor_collections" (float_of_int s.Gc.minor_collections);
    counter "gc.major_collections" (float_of_int s.Gc.major_collections);
    counter "gc.compactions" (float_of_int s.Gc.compactions);
    gauge "gc.heap_words" (float_of_int s.Gc.heap_words);
    gauge "gc.top_heap_words" (float_of_int s.Gc.top_heap_words);
  ]

let register () = Metrics.register_collector ~name:collector_name samples

let allocated_bytes () = Gc.allocated_bytes ()
let peak_major_words () = (Gc.quick_stat ()).Gc.top_heap_words
let live_words () = (Gc.quick_stat ()).Gc.heap_words

let heap_counter ~ts_ns =
  let s = Gc.quick_stat () in
  {
    Chrome_trace.c_name = "gc.heap";
    c_ts_ns = ts_ns;
    c_values =
      [
        ("heap_words", float_of_int s.Gc.heap_words);
        ("minor_words", Gc.minor_words ());
        ("major_words", major_words ());
      ];
  }
