(** Structured span tracing with per-domain lock-free buffers.

    A {e span} is a named interval of work with string-keyed attributes
    ([args]); spans nest, and the nesting is tracked per domain with an
    explicit stack, so sibling subtree merges fanned out by
    [Replica_core.Par] trace safely: every domain appends completed
    spans to its own buffer (registered once, under a mutex, when the
    domain first traces) and the buffers are only merged at
    {!export} time. No lock is ever taken on the recording path.

    {b Cost contract.} Tracing is globally off by default. The
    disabled path of {!enabled} is a single [Atomic.get] — no
    allocation, no branch beyond the caller's [if]. Hot loops are
    expected to guard with [if Span.enabled () then ...] so that
    argument lists are not even constructed when tracing is off;
    {!begin_span} and {!end_span} also self-check so an unguarded call
    site stays correct, just one load more expensive. When tracing is
    {e on}, recording a span costs two clock reads, one small record
    and one buffer slot.

    {b Well-formedness.} Within a domain, begin/end pairs form a
    balanced bracket sequence by construction ({!end_span} pops the
    innermost open frame). A child span's [start_ns, start_ns + dur_ns]
    interval always lies within its parent's, because the clock
    ({!Clock.now_ns}) is monotonic. Frames still open at {!export} are
    not emitted. Each domain's buffer is capped ({!set_capacity});
    spans beyond the cap are counted in {!dropped} rather than
    recorded, so a pathological run degrades gracefully instead of
    exhausting memory.

    {b Allocation attribution.} When {!set_alloc} is on (and tracing is
    on), begin/end additionally read the domain's GC allocation
    counters — minor words through the stdlib's unboxed
    [Gc.minor_words], major words through an equally allocation-free C
    stub over the public [caml/domain_state.h] counters — and each
    completed span carries the delta as [minor_w]/[major_w]. The reads
    are [@@noalloc] and land in unboxed float columns, so the probe
    itself allocates nothing and cannot perturb the quantity it
    measures. A span's words include its children's, exactly as
    [dur_ns] includes child time; {!Profile} derives exclusive
    (self-)allocation by subtracting direct children. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  start_ns : int;  (** monotonic, arbitrary origin *)
  dur_ns : int;  (** non-negative *)
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth within its domain, root = 0 *)
  minor_w : int;  (** minor-heap words allocated during the span
                      (including children); [0] unless alloc capture
                      was on *)
  major_w : int;  (** major-heap words allocated or promoted during
                      the span (including children); [0] unless alloc
                      capture was on *)
  args : (string * arg) list;
}

val enabled : unit -> bool
(** Single atomic load; the guard for every instrumentation site. *)

val set_enabled : bool -> unit
(** Toggle tracing globally. Enable before the work under study and
    disable (or {!export}) after; toggling mid-span loses at most the
    spans open at the transition. *)

val set_capacity : int -> unit
(** Per-domain buffer cap (default [1_000_000] spans). Observations
    past the cap increment {!dropped}.
    @raise Invalid_argument if the cap is not positive. *)

val alloc_enabled : unit -> bool
(** Whether per-span allocation capture is on. *)

val set_alloc : bool -> unit
(** Toggle per-span allocation capture. Only observed while tracing is
    enabled; spans opened before the toggle record zero (stale
    baselines are clamped rather than reported). Off by default so the
    time-only tracing path performs no GC reads. *)

val begin_span : string -> unit
(** Open a span on the calling domain's stack. No-op when disabled. *)

val end_span : ?args:(string * arg) list -> unit -> unit
(** Close the innermost open span, attaching [args], and record it.
    No-op when disabled or when no span is open. *)

val add_arg : string -> arg -> unit
(** Attach one attribute to the innermost open span (e.g. a memo
    hit/miss tag discovered mid-phase). No-op when disabled or no span
    is open. *)

val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a span, closing it on
    exceptions too. Convenience for cold paths; hot paths should guard
    explicit {!begin_span}/{!end_span} with {!enabled} to avoid
    constructing [args] and closures when tracing is off. *)

val export : unit -> span list
(** Completed spans from every domain, merged and sorted by
    [(start_ns, tid, depth)]. Does not clear the buffers. *)

val count : unit -> int
(** Number of completed spans currently buffered across domains. *)

val dropped : unit -> int
(** Spans discarded because a domain's buffer was full. *)

val reset : unit -> unit
(** Clear every domain's buffer, stack and drop count. Call between
    independent runs attributed separately. *)
