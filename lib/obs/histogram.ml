let bins = 63

type t = {
  h_name : string;
  counts : int Atomic.t array;  (* counts.(i): bin i, see index below *)
  h_sum : int Atomic.t;
}

(* Bin 0: v <= 0. Bin i >= 1: 2^(i-1) <= v <= 2^i - 1. *)
let index v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (bins - 1)
  end

let upper_bound i = if i = 0 then 0 else (1 lsl i) - 1

(* Geometric midpoint of bin i's [2^(i-1), 2^i - 1] range: the
   unbiased point estimate for a log-scale bucket. Reporting the upper
   bound instead (as quantiles once did) pins the estimate to a bucket
   boundary and overstates tail quantiles by up to 2x. *)
let midpoint i =
  if i = 0 then 0
  else
    let lo = float_of_int (1 lsl (i - 1))
    and hi = float_of_int ((1 lsl i) - 1) in
    int_of_float (Float.round (sqrt (lo *. hi)))

let fresh name =
  {
    h_name = name;
    counts = Array.init bins (fun _ -> Atomic.make 0);
    h_sum = Atomic.make 0;
  }

let lock = Mutex.create ()
let registered : (string, t) Hashtbl.t = Hashtbl.create 16

let create name =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
      match Hashtbl.find_opt registered name with
      | Some h -> h
      | None ->
          let h = fresh name in
          Hashtbl.replace registered name h;
          h)

let make name = fresh name
let name h = h.h_name

let observe h v =
  ignore (Atomic.fetch_and_add h.counts.(index v) 1);
  ignore (Atomic.fetch_and_add h.h_sum (max 0 v))

let count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts
let sum h = Atomic.get h.h_sum

let quantile h q =
  let total = count h in
  if total = 0 then 0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let rank = min rank total in
    let acc = ref 0 and result = ref 0 in
    (try
       for i = 0 to bins - 1 do
         acc := !acc + Atomic.get h.counts.(i);
         if !acc >= rank then begin
           result := midpoint i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

type summary = { s_count : int; s_sum : int; p50 : int; p90 : int; p99 : int }

(* One pass over the atomic bins; quantiles are then computed from the
   frozen snapshot. `quantile` alone would rescan (and re-count) the
   live cells per call — 4x the atomic traffic, and each scan could see
   a different in-flight total. *)
let summary h =
  let snap = Array.map Atomic.get h.counts in
  let total = Array.fold_left ( + ) 0 snap in
  let q_of q =
    if total = 0 then 0
    else begin
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
      let rank = min rank total in
      let acc = ref 0 and result = ref 0 in
      (try
         for i = 0 to bins - 1 do
           acc := !acc + snap.(i);
           if !acc >= rank then begin
             result := midpoint i;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  in
  {
    s_count = total;
    s_sum = sum h;
    p50 = q_of 0.50;
    p90 = q_of 0.90;
    p99 = q_of 0.99;
  }

let buckets h =
  let highest = ref (-1) in
  for i = 0 to bins - 1 do
    if Atomic.get h.counts.(i) > 0 then highest := i
  done;
  if !highest < 0 then []
  else begin
    let acc = ref 0 in
    List.init (!highest + 1) (fun i ->
        acc := !acc + Atomic.get h.counts.(i);
        (upper_bound i, !acc))
  end

let snapshots () =
  Mutex.lock lock;
  let all =
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
        Hashtbl.fold (fun name h acc -> (name, h) :: acc) registered [])
  in
  List.filter (fun (_, h) -> count h > 0) all
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset h =
  Array.iter (fun c -> Atomic.set c 0) h.counts;
  Atomic.set h.h_sum 0

let reset_all () =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () ->
      Hashtbl.iter (fun _ h -> reset h) registered)
