type labels = (string * string) list

type t =
  | C of int Atomic.t
  | G of float Atomic.t
  | H of Histogram.t

type kind = Counter | Gauge | Histo

type hist_snapshot = {
  hs_buckets : (int * int) list;
  hs_count : int;
  hs_sum : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
}

type value =
  | Sample_counter of float
  | Sample_gauge of float
  | Sample_histogram of hist_snapshot

type sample = { s_name : string; s_labels : labels; s_value : value }

(* Families are keyed by metric name; each holds one instrument per
   distinct label set. Registration (rare: engine/forest creation,
   module initializers) is mutex-protected; the hot path only ever
   touches the Atomic cells inside the instrument, never the
   registry. *)
type family = {
  fam_kind : kind;
  mutable instruments : (labels * t) list;
}

let lock = Mutex.create ()
let families : (string, family) Hashtbl.t = Hashtbl.create 32
let collectors : (string * (unit -> sample list)) list ref = ref []

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let canonical labels =
  List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels

(* Allocation-free comparison (no tuple boxing, no polymorphic
   dispatch): sampling runs once per epoch, so its constant factor is
   the telemetry overhead budget. *)
let rec compare_labels la lb =
  match (la, lb) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (ka, va) :: ra, (kb, vb) :: rb -> (
      match String.compare ka kb with
      | 0 -> ( match String.compare va vb with 0 -> compare_labels ra rb | c -> c)
      | c -> c)

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histo -> "histogram"

let fresh kind name =
  match kind with
  | Counter -> C (Atomic.make 0)
  | Gauge -> G (Atomic.make 0.)
  | Histo -> H (Histogram.make name)

let intern kind ?(labels = []) name =
  let labels = canonical labels in
  with_lock (fun () ->
      let fam =
        match Hashtbl.find_opt families name with
        | Some f ->
            if f.fam_kind <> kind then
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered as a %s" name
                   (kind_name f.fam_kind));
            f
        | None ->
            let f = { fam_kind = kind; instruments = [] } in
            Hashtbl.replace families name f;
            f
      in
      match List.assoc_opt labels fam.instruments with
      | Some i -> i
      | None ->
          let i = fresh kind name in
          (* Sorted insertion keeps the scrape path sort-free: a
             family's instruments always enumerate in label order. *)
          let rec insert = function
            | [] -> [ (labels, i) ]
            | ((l, _) as hd) :: tl when compare_labels l labels < 0 ->
                hd :: insert tl
            | rest -> (labels, i) :: rest
          in
          fam.instruments <- insert fam.instruments;
          i)

let counter ?labels name = intern Counter ?labels name
let gauge ?labels name = intern Gauge ?labels name
let histogram ?labels name = intern Histo ?labels name

let add m n =
  match m with
  | C c -> ignore (Atomic.fetch_and_add c n)
  | G _ | H _ -> invalid_arg "Metrics.add: not a counter"

let incr m = add m 1

let set m v =
  match m with
  | G g -> Atomic.set g v
  | C _ | H _ -> invalid_arg "Metrics.set: not a gauge"

let observe m v =
  match m with
  | H h -> Histogram.observe h v
  | C _ | G _ -> invalid_arg "Metrics.observe: not a histogram"

let value = function
  | C c -> float_of_int (Atomic.get c)
  | G g -> Atomic.get g
  | H _ -> invalid_arg "Metrics.value: histogram (use samples)"

let hist_snapshot h =
  let s = Histogram.summary h in
  {
    hs_buckets = Histogram.buckets h;
    hs_count = s.Histogram.s_count;
    hs_sum = s.Histogram.s_sum;
    hs_p50 = s.Histogram.p50;
    hs_p90 = s.Histogram.p90;
    hs_p99 = s.Histogram.p99;
  }

let register_collector ~name f =
  with_lock (fun () ->
      collectors := List.filter (fun (n, _) -> n <> name) !collectors;
      collectors := !collectors @ [ (name, f) ])

(* Built-in bridges: the legacy name-interned histogram registry
   (dp_withpre.merge_products_per_node and friends observe through it
   directly) and the span buffers' drop counter, so a scrape can tell a
   truncated trace from a quiet one. *)
let builtin_samples () =
  List.map
    (fun (name, h) ->
      { s_name = name; s_labels = []; s_value = Sample_histogram (hist_snapshot h) })
    (Histogram.snapshots ())
  @ [
      {
        s_name = "obs.spans_dropped";
        s_labels = [];
        s_value = Sample_counter (float_of_int (Span.dropped ()));
      };
    ]

(* Emitted fully sorted: family names are few (sorting them is cheap)
   and each family's instruments were inserted in label order, so the
   scrape path never sorts the full sample list. *)
let direct_samples () =
  with_lock (fun () ->
      let names = Hashtbl.fold (fun name _ acc -> name :: acc) families [] in
      let names = List.sort String.compare names in
      List.concat_map
        (fun name ->
          let fam = Hashtbl.find families name in
          List.map
            (fun (labels, inst) ->
              let v =
                match inst with
                | C c -> Sample_counter (float_of_int (Atomic.get c))
                | G g -> Sample_gauge (Atomic.get g)
                | H h -> Sample_histogram (hist_snapshot h)
              in
              { s_name = name; s_labels = labels; s_value = v })
            fam.instruments)
        names)

let collector_samples () =
  let fs = with_lock (fun () -> !collectors) in
  List.concat_map
    (fun (_, f) ->
      List.map (fun s -> { s with s_labels = canonical s.s_labels }) (f ()))
    fs

let compare_sample a b =
  match String.compare a.s_name b.s_name with
  | 0 -> compare_labels a.s_labels b.s_labels
  | c -> c

let samples () =
  (* Histograms that never saw an observation are suppressed (their
     exposition would be bucketless); zero counters and gauges are
     real states and stay. *)
  let live s =
    match s.s_value with
    | Sample_histogram h -> h.hs_count > 0
    | Sample_counter _ | Sample_gauge _ -> true
  in
  let direct = List.filter live (direct_samples ()) in
  let extra =
    List.sort compare_sample
      (List.filter live (collector_samples () @ builtin_samples ()))
  in
  (* Direct samples arrive sorted; only the handful of collector and
     builtin rows need sorting, then a linear merge. *)
  List.merge compare_sample direct extra

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ fam ->
          List.iter
            (fun (_, inst) ->
              match inst with
              | C c -> Atomic.set c 0
              | G g -> Atomic.set g 0.
              | H h -> Histogram.reset h)
            fam.instruments)
        families)

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
      let buf = Buffer.create 32 in
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_char buf '=';
          Buffer.add_char buf '"';
          String.iter
            (fun c ->
              match c with
              | '"' | '\\' ->
                  Buffer.add_char buf '\\';
                  Buffer.add_char buf c
              | '\n' -> Buffer.add_string buf "\\n"
              | c -> Buffer.add_char buf c)
            v;
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}';
      Buffer.contents buf

let sample_key s = s.s_name ^ labels_to_string s.s_labels
