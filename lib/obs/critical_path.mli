(** Longest-chain extraction through a span tree.

    For a trace of an engine epoch (demand_diff → policy → solve →
    apply, with the solve recursing into per-node child merges) the
    interesting question is not "which name is hottest" but "which
    chain of nested phases did the wall time actually pass through".
    The critical path of a root span is built by descending, at every
    level, into the direct child with the largest duration (ties break
    towards the earlier start), until a span with no children is
    reached.

    Each step on the path is attributed a {e contribution}: the span's
    duration minus the duration of the child the path descends into
    (the full duration at the leaf). Contributions telescope — their
    sum is exactly the root span's duration — so the rendering reads
    as "of the epoch's 1.2 ms, 0.9 ms were inside solve, of which
    0.7 ms inside the merge of node 17, ...". Two invariants hold for
    any well-formed tree and are property-tested: the path's total
    duration equals the root duration (hence is bounded by it), and it
    is at least every single phase duration along the path.

    The same telescoping applies to the allocation axis: each step
    carries its span's minor words and the words not covered by the
    next step, so alloc contributions also sum exactly to the root's
    words. The path itself is always chosen by duration — the alloc
    column is an attribution along the time path, not a separate
    alloc-widest path — so a heavy allocator off the time path shows
    up in its enclosing step's contribution. *)

type step = {
  name : string;
  dur_ns : int;  (** the span's own duration *)
  contribution_ns : int;  (** duration not covered by the next step *)
  minor_w : int;  (** the span's own minor words *)
  contribution_minor_w : int;
      (** minor words not covered by the next step *)
  depth : int;  (** 0 at the path's root *)
}

val of_node : Trace_reader.node -> step list
(** The critical path of one tree, root first. Never empty. *)

val longest : Trace_reader.node list -> step list
(** The critical path of the longest-duration root of a forest; [[]]
    for an empty forest. *)

val total_ns : step list -> int
(** Sum of contributions = duration of the path's root span. *)

val total_minor_w : step list -> int
(** Sum of alloc contributions = minor words of the path's root
    span. *)

val render : ?alloc:bool -> step list -> string
(** Indented table: one line per step with duration, contribution and
    percentage of the path total. With [~alloc:true], each line gains
    minor-word columns (span words, contribution, percentage of the
    root's words). *)
