(** Monotonic time source for every measurement in the tree.

    All spans, timers and latency histograms are measured against
    [CLOCK_MONOTONIC]: unlike [Unix.gettimeofday] it is immune to NTP
    steps and never goes backwards, so durations and accumulated
    seconds are guaranteed non-negative. The origin is arbitrary
    (boot time on Linux) — only differences are meaningful. *)

external now_ns : unit -> int = "obs_monotonic_ns" [@@noalloc]
(** Monotonic nanoseconds since an arbitrary origin. Allocation-free. *)

val now_us : unit -> float
(** {!now_ns} in (fractional) microseconds — the unit Chrome trace
    events use. *)
