/* Allocation-free GC counter reads for per-span alloc attribution.

   The stdlib exposes an unboxed, noalloc accessor for minor words
   (Gc.minor_words) but major-heap words are only reachable through
   Gc.quick_stat / Gc.counters, both of which allocate a record —
   useless inside a probe that must measure other code's allocation.
   caml/domain_state.h is a public header (no CAML_INTERNALS gate) and
   exposes the same per-domain counters caml_gc_quick_stat reads, so we
   mirror its major-words computation: words moved to the major heap by
   completed cycles (stat_major_words) plus words allocated in the
   major heap since the last slice (allocated_words). Promotions from
   the minor heap are included, exactly as in Gc.quick_stat.

   The unboxed variant returns a raw double ([@unboxed] + [@@noalloc]),
   so a native-code read allocates nothing; the boxed variant exists
   for bytecode only. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/domain_state.h>

CAMLprim double obs_gc_major_words_unboxed(value unit)
{
  (void)unit;
  return (double)Caml_state->stat_major_words
       + (double)Caml_state->allocated_words;
}

CAMLprim value obs_gc_major_words(value unit)
{
  return caml_copy_double(obs_gc_major_words_unboxed(unit));
}
