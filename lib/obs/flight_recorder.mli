(** Always-on flight recorder: a bounded ring of recent spans, dumped
    as a Chrome trace when an epoch's latency is anomalous.

    Full tracing ([--trace]) records everything and writes one file at
    exit — fine for a bounded run, unusable for a long-running service.
    The flight recorder inverts the deal: tracing stays enabled, each
    epoch's spans are drained out of the per-domain buffers by
    {!record} (so buffers never grow across epochs), a {e head-sampled}
    subset of epochs is retained in a span ring bounded by
    [ring_capacity], and only when an epoch's latency exceeds
    [k x trailing median] does the recorder write the ring — the
    lead-up — plus the anomalous epoch itself to [path] as a standard
    Chrome trace, readable by [replica_cli profile] and
    {!Trace_reader}.

    Head sampling keeps every [~ 1/sample_every] epochs, chosen by a
    deterministic hash of the epoch index: reproducible run-to-run,
    no RNG, no wall clock. The latency baseline is the median of the
    last [window] epoch latencies; no anomaly fires before
    [5] latencies are banked ({e except} [k = 0], which dumps on every
    epoch — the deterministic mode the cram suite and CI smoke use).
    Dumps overwrite [path]: the file always holds the most recent
    anomaly. *)

type t

val create :
  ?ring_capacity:int ->
  ?sample_every:int ->
  ?window:int ->
  k:float ->
  path:string ->
  unit ->
  t
(** Defaults: [ring_capacity] [100_000] spans, [sample_every] [4],
    [window] [32]. [k] is the anomaly threshold multiplier ([0.0] =
    dump every epoch); [path] the dump target. [Invalid_argument] on
    non-positive sizes or negative [k]. *)

val record : t -> epoch:int -> latency_ns:int -> bool
(** Call once per epoch, after the epoch's work: drains and resets the
    span buffers, dumps first if [latency_ns] is anomalous against the
    trailing median, then retains the epoch's spans when head-sampled
    and banks the latency. Returns whether a dump was written. *)

val dumps : t -> int
(** Dumps written so far. *)

val last_dump_epoch : t -> int option
val path : t -> string

val retained : t -> int
(** Spans currently in the ring. *)
