let metric_name raw =
  let buf = Buffer.create (String.length raw + 10) in
  Buffer.add_string buf "replicaml_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    raw;
  Buffer.contents buf

let render ?(counters = []) ?(timers_seconds = []) ?(histograms = []) () =
  let buf = Buffer.create 1024 in
  let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (sort counters);
  List.iter
    (fun (name, s) ->
      let n = metric_name (name ^ "_seconds") in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %.9f\n" n n s))
    (sort timers_seconds);
  List.iter
    (fun (name, h) ->
      let n = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      List.iter
        (fun (le, cumulative) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le cumulative))
        (Histogram.buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Histogram.sum h));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" n (Histogram.count h)))
    (sort histograms);
  Buffer.contents buf

(* --- validation --- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let scan_name line pos =
  let n = String.length line in
  if pos >= n || not (is_name_start line.[pos]) then None
  else begin
    let i = ref pos in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    Some (String.sub line pos (!i - pos), !i)
  end

(* labels: '{' name '="' chars-with-\-escapes '"' (',' ...)* '}' *)
let scan_labels line pos =
  let n = String.length line in
  if pos >= n || line.[pos] <> '{' then Some pos
  else begin
    let i = ref (pos + 1) in
    let ok = ref true in
    let scan_one () =
      match scan_name line !i with
      | None -> ok := false
      | Some (_, p) ->
          i := p;
          if !i + 1 < n && line.[!i] = '=' && line.[!i + 1] = '"' then begin
            i := !i + 2;
            let closed = ref false in
            while (not !closed) && !i < n do
              if line.[!i] = '\\' then i := !i + 2
              else if line.[!i] = '"' then begin
                closed := true;
                incr i
              end
              else incr i
            done;
            if not !closed then ok := false
          end
          else ok := false
    in
    if !i < n && line.[!i] = '}' then incr i
    else begin
      scan_one ();
      while !ok && !i < n && line.[!i] = ',' do
        incr i;
        scan_one ()
      done;
      if !ok && !i < n && line.[!i] = '}' then incr i else ok := false
    end;
    if !ok then Some !i else None
  end

let is_value s =
  match s with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> float_of_string_opt s <> None

let validate contents =
  let lines = String.split_on_char '\n' contents in
  let samples = ref 0 in
  let family = ref None in
  let family_seen = ref true in
  let err lineno msg line =
    Error (Printf.sprintf "line %d: %s: %S" lineno msg line)
  in
  let rec check lineno = function
    | [] ->
        if not !family_seen then
          Error
            (Printf.sprintf "# TYPE %s declared but no samples follow"
               (Option.value ~default:"?" !family))
        else Ok !samples
    | line :: rest ->
        let result =
          if line = "" then Ok ()
          else if String.length line > 0 && line.[0] = '#' then begin
            (* comment: "# HELP name ..." | "# TYPE name type" | free text *)
            if String.starts_with ~prefix:"# TYPE " line then begin
              match scan_name line 7 with
              | None -> err lineno "malformed # TYPE" line
              | Some (name, p) -> (
                  let rest_str =
                    String.trim (String.sub line p (String.length line - p))
                  in
                  match rest_str with
                  | "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ->
                      if not !family_seen then
                        err lineno
                          (Printf.sprintf
                             "# TYPE %s declared but no samples follow"
                             (Option.value ~default:"?" !family))
                          line
                      else begin
                        family := Some name;
                        family_seen := false;
                        Ok ()
                      end
                  | _ -> err lineno "unknown metric type" line)
            end
            else if String.starts_with ~prefix:"# HELP " line then Ok ()
            else err lineno "malformed comment (expected # HELP or # TYPE)" line
          end
          else begin
            match scan_name line 0 with
            | None -> err lineno "malformed metric name" line
            | Some (name, p) -> (
                match scan_labels line p with
                | None -> err lineno "malformed label set" line
                | Some p ->
                    let tail =
                      String.sub line p (String.length line - p)
                      |> String.trim
                    in
                    let fields =
                      String.split_on_char ' ' tail
                      |> List.filter (fun f -> f <> "")
                    in
                    let value_ok =
                      match fields with
                      | [ v ] -> is_value v
                      | [ v; ts ] -> is_value v && int_of_string_opt ts <> None
                      | _ -> false
                    in
                    if not value_ok then err lineno "malformed sample value" line
                    else begin
                      (match !family with
                      | Some f when String.starts_with ~prefix:f name ->
                          family_seen := true
                      | _ -> ());
                      incr samples;
                      Ok ()
                    end)
          end
        in
        (match result with Ok () -> check (lineno + 1) rest | Error e -> Error e)
  in
  check 1 lines
