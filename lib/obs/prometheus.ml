let metric_name raw =
  let buf = Buffer.create (String.length raw + 10) in
  Buffer.add_string buf "replicaml_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    raw;
  Buffer.contents buf

let render ?(counters = []) ?(timers_seconds = []) ?(histograms = []) () =
  let buf = Buffer.create 1024 in
  let sort l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  List.iter
    (fun (name, v) ->
      let n = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    (sort counters);
  List.iter
    (fun (name, s) ->
      let n = metric_name (name ^ "_seconds") in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %.9f\n" n n s))
    (sort timers_seconds);
  List.iter
    (fun (name, h) ->
      let n = metric_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
      List.iter
        (fun (le, cumulative) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le cumulative))
        (Histogram.buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Histogram.sum h));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" n (Histogram.count h)))
    (sort histograms);
  Buffer.contents buf

(* --- registry-driven exposition --- *)

(* Label keys get the same character sanitation as metric names but no
   namespace prefix. *)
let label_name raw =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    raw

let escape_label_value v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_set buf labels =
  match labels with
  | [] -> ()
  | _ ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "%s=\"%s\"" (label_name k) (escape_label_value v)))
        labels;
      Buffer.add_char buf '}'

let add_value buf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (string_of_int (int_of_float v))
  else Buffer.add_string buf (Printf.sprintf "%.9g" v)

let scalar buf name labels v =
  Buffer.add_string buf name;
  label_set buf labels;
  Buffer.add_char buf ' ';
  add_value buf v;
  Buffer.add_char buf '\n'

let scalar_line ?timestamp name labels v =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (metric_name name);
  label_set buf labels;
  Buffer.add_char buf ' ';
  add_value buf v;
  (match timestamp with
  | None -> ()
  | Some ts ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int ts));
  Buffer.contents buf

(* Renders the full {!Metrics} registry — direct instruments,
   collectors (Stats_counters), the legacy histogram registry — as one
   text exposition. Samples arrive sorted by (name, labels), so each
   family is consecutive and gets exactly one TYPE line. *)
let expose () =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun (s : Metrics.sample) ->
      let n = metric_name s.Metrics.s_name in
      let kind =
        match s.Metrics.s_value with
        | Metrics.Sample_counter _ -> "counter"
        | Metrics.Sample_gauge _ -> "gauge"
        | Metrics.Sample_histogram _ -> "histogram"
      in
      if n <> !last_family then begin
        last_family := n;
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n kind)
      end;
      match s.Metrics.s_value with
      | Metrics.Sample_counter v | Metrics.Sample_gauge v ->
          scalar buf n s.Metrics.s_labels v
      | Metrics.Sample_histogram h ->
          List.iter
            (fun (le, cum) ->
              scalar buf (n ^ "_bucket")
                (s.Metrics.s_labels @ [ ("le", string_of_int le) ])
                (float_of_int cum))
            h.Metrics.hs_buckets;
          scalar buf (n ^ "_bucket")
            (s.Metrics.s_labels @ [ ("le", "+Inf") ])
            (float_of_int h.Metrics.hs_count);
          scalar buf (n ^ "_sum") s.Metrics.s_labels
            (float_of_int h.Metrics.hs_sum);
          scalar buf (n ^ "_count") s.Metrics.s_labels
            (float_of_int h.Metrics.hs_count))
    (Metrics.samples ());
  Buffer.contents buf

(* --- validation --- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let scan_name line pos =
  let n = String.length line in
  if pos >= n || not (is_name_start line.[pos]) then None
  else begin
    let i = ref pos in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    Some (String.sub line pos (!i - pos), !i)
  end

(* labels: '{' name '="' chars-with-\-escapes '"' (',' ...)* '}';
   returns the parsed (name, raw value) pairs plus the position after
   the closing brace. *)
let scan_labels line pos =
  let n = String.length line in
  if pos >= n || line.[pos] <> '{' then Some ([], pos)
  else begin
    let i = ref (pos + 1) in
    let ok = ref true in
    let labels = ref [] in
    let scan_one () =
      match scan_name line !i with
      | None -> ok := false
      | Some (lname, p) ->
          i := p;
          if !i + 1 < n && line.[!i] = '=' && line.[!i + 1] = '"' then begin
            i := !i + 2;
            let vstart = !i in
            let closed = ref false in
            while (not !closed) && !i < n do
              if line.[!i] = '\\' then i := !i + 2
              else if line.[!i] = '"' then begin
                labels :=
                  (lname, String.sub line vstart (!i - vstart)) :: !labels;
                closed := true;
                incr i
              end
              else incr i
            done;
            if not !closed then ok := false
          end
          else ok := false
    in
    if !i < n && line.[!i] = '}' then incr i
    else begin
      scan_one ();
      while !ok && !i < n && line.[!i] = ',' do
        incr i;
        scan_one ()
      done;
      if !ok && !i < n && line.[!i] = '}' then incr i else ok := false
    end;
    if !ok then Some (List.rev !labels, !i) else None
  end

let parse_value s =
  match s with
  | "+Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt s

(* Histogram families get semantic checks on top of the line grammar:
   only _bucket/_sum/_count samples, le labels parseable, cumulative
   counts and le bounds non-decreasing, a final le="+Inf" bucket whose
   value equals _count, and _sum present. A family may carry several
   label sets (e.g. one series per shard); every check applies within
   one label set (le excluded), never across them. *)
type hist_group = {
  mutable buckets_rev : (float * float) list;
  mutable sum_seen : bool;
  mutable count_value : float option;
}

type hist_acc = (string, hist_group) Hashtbl.t

let group_key labels =
  List.filter (fun (k, _) -> k <> "le") labels
  |> List.sort compare
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ","

let hist_group (acc : hist_acc) labels =
  let key = group_key labels in
  match Hashtbl.find_opt acc key with
  | Some g -> g
  | None ->
      let g = { buckets_rev = []; sum_seen = false; count_value = None } in
      Hashtbl.replace acc key g;
      g

let validate contents =
  let lines = String.split_on_char '\n' contents in
  let samples = ref 0 in
  let family = ref None in
  let family_seen = ref true in
  let hist : hist_acc option ref = ref None in
  let err lineno msg line =
    Error (Printf.sprintf "line %d: %s: %S" lineno msg line)
  in
  let finalize_family lineno line =
    let fname = Option.value ~default:"?" !family in
    if not !family_seen then
      err lineno
        (Printf.sprintf "# TYPE %s declared but no samples follow" fname)
        line
    else
      match !hist with
      | None -> Ok ()
      | Some acc ->
          hist := None;
          let check_group (h : hist_group) =
            let buckets = List.rev h.buckets_rev in
            let rec monotone = function
              | (le1, c1) :: ((le2, c2) :: _ as rest) ->
                  if le2 < le1 then
                    err lineno
                      (Printf.sprintf "histogram %s: le bounds not increasing"
                         fname)
                      line
                  else if c2 < c1 then
                    err lineno
                      (Printf.sprintf
                         "histogram %s: cumulative bucket counts decrease" fname)
                      line
                  else monotone rest
              | _ -> Ok ()
            in
            match List.rev buckets with
            | [] ->
                err lineno
                  (Printf.sprintf "histogram %s has no _bucket samples" fname)
                  line
            | (last_le, last_cum) :: _ -> (
                let ( let* ) = Result.bind in
                let* () = monotone buckets in
                if last_le <> infinity then
                  err lineno
                    (Printf.sprintf "histogram %s: missing le=\"+Inf\" bucket"
                       fname)
                    line
                else if not h.sum_seen then
                  err lineno
                    (Printf.sprintf "histogram %s: missing _sum sample" fname)
                    line
                else
                  match h.count_value with
                  | None ->
                      err lineno
                        (Printf.sprintf "histogram %s: missing _count sample"
                           fname)
                        line
                  | Some c when c <> last_cum ->
                      err lineno
                        (Printf.sprintf
                           "histogram %s: _count %g disagrees with le=\"+Inf\" \
                            bucket %g"
                           fname c last_cum)
                        line
                  | Some _ -> Ok ())
          in
          if Hashtbl.length acc = 0 then
            err lineno
              (Printf.sprintf "histogram %s has no _bucket samples" fname)
              line
          else
            Hashtbl.fold
              (fun _ g r -> match r with Ok () -> check_group g | e -> e)
              acc (Ok ())
  in
  let record_sample lineno line name labels value =
    match (!family, !hist) with
    | Some f, Some acc when String.starts_with ~prefix:f name -> (
        family_seen := true;
        let suffix = String.sub name (String.length f)
            (String.length name - String.length f)
        in
        match suffix with
        | "_bucket" -> (
            match List.assoc_opt "le" labels with
            | None ->
                err lineno
                  (Printf.sprintf "histogram %s: _bucket without le label" f)
                  line
            | Some le_str -> (
                match parse_value le_str with
                | None ->
                    err lineno
                      (Printf.sprintf "histogram %s: unparseable le=%S" f
                         le_str)
                      line
                | Some le ->
                    let h = hist_group acc labels in
                    h.buckets_rev <- (le, value) :: h.buckets_rev;
                    Ok ()))
        | "_sum" ->
            (hist_group acc labels).sum_seen <- true;
            Ok ()
        | "_count" ->
            (hist_group acc labels).count_value <- Some value;
            Ok ()
        | _ ->
            err lineno
              (Printf.sprintf
                 "histogram %s: unexpected sample %s (want _bucket/_sum/_count)"
                 f name)
              line)
    | Some f, None when String.starts_with ~prefix:f name ->
        family_seen := true;
        Ok ()
    | _ -> Ok ()
  in
  let rec check lineno = function
    | [] -> (
        match finalize_family lineno "<end of input>" with
        | Ok () -> Ok !samples
        | Error e -> Error e)
    | line :: rest ->
        let result =
          if line = "" then Ok ()
          else if String.length line > 0 && line.[0] = '#' then begin
            (* comment: "# HELP name ..." | "# TYPE name type" | free text *)
            if String.starts_with ~prefix:"# TYPE " line then begin
              match scan_name line 7 with
              | None -> err lineno "malformed # TYPE" line
              | Some (name, p) -> (
                  let rest_str =
                    String.trim (String.sub line p (String.length line - p))
                  in
                  match rest_str with
                  | "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    -> (
                      match finalize_family lineno line with
                      | Error e -> Error e
                      | Ok () ->
                          family := Some name;
                          family_seen := false;
                          hist :=
                            (if rest_str = "histogram" then
                               Some (Hashtbl.create 4 : hist_acc)
                             else None);
                          Ok ())
                  | _ -> err lineno "unknown metric type" line)
            end
            else if String.starts_with ~prefix:"# HELP " line then Ok ()
            else if String.trim line = "# EOF" then
              (* OpenMetrics terminator (the Timeseries export ends with
                 one); nothing may follow but trailing blank lines. *)
              Ok ()
            else err lineno "malformed comment (expected # HELP or # TYPE)" line
          end
          else begin
            match scan_name line 0 with
            | None -> err lineno "malformed metric name" line
            | Some (name, p) -> (
                match scan_labels line p with
                | None -> err lineno "malformed label set" line
                | Some (labels, p) -> (
                    let tail =
                      String.sub line p (String.length line - p)
                      |> String.trim
                    in
                    let fields =
                      String.split_on_char ' ' tail
                      |> List.filter (fun f -> f <> "")
                    in
                    let value =
                      match fields with
                      | [ v ] -> parse_value v
                      | [ v; ts ] ->
                          if int_of_string_opt ts <> None then parse_value v
                          else None
                      | _ -> None
                    in
                    match value with
                    | None -> err lineno "malformed sample value" line
                    | Some value -> (
                        match record_sample lineno line name labels value with
                        | Error e -> Error e
                        | Ok () ->
                            incr samples;
                            Ok ())))
          end
        in
        (match result with Ok () -> check (lineno + 1) rest | Error e -> Error e)
  in
  check 1 lines
