(** Read a Chrome trace-event JSON file back into a span forest.

    {!Chrome_trace} is the write direction; this module closes the
    loop so the [profile] CLI command, the golden tests and the
    critical-path extractor can analyse a trace without external
    tooling. Input is first checked with {!Chrome_trace.validate} (the
    same structural validator behind [obs-validate]), then the "X"
    complete events are turned back into {!Span.span} values
    (microsecond [ts]/[dur] rescaled to nanoseconds) and stacked into
    a forest per recording domain by interval containment: event [b]
    is a child of event [a] when they share a [tid] and [b]'s interval
    lies inside [a]'s. Span depths are recomputed from the
    reconstructed nesting, so they are meaningful even for traces
    produced by other tools.

    The [spans_dropped] metadata event written by {!Chrome_trace}
    (counting spans lost to a saturated per-domain buffer or a
    mid-solve export) is surfaced as {!field:dropped} so consumers can
    tell a truncated profile from a complete one. *)

type node = { span : Span.span; children : node list }
(** One reconstructed span with the spans nested inside it, in start
    order. *)

type t = {
  roots : node list;  (** forest roots sorted by (start, tid) *)
  span_count : int;  (** number of "X" events read *)
  dropped : int;  (** [spans_dropped] metadata count, [0] if absent *)
}

val forest_of_spans : Span.span list -> node list
(** Pure reconstruction from in-memory spans (no JSON involved);
    exposed for tests and for profiling a live {!Span.export} without
    a file roundtrip. Spans that overlap a sibling without nesting —
    impossible for spans recorded by {!Span} on a monotonic clock —
    are adopted by the enclosing open span on a best-effort basis. *)

val of_string : string -> (t, string) result
(** Parse and validate one Chrome trace-event JSON document. Errors
    come from {!Chrome_trace.validate} (malformed JSON or event
    shape). *)

val of_file : string -> (t, string) result

val fold : ('a -> node -> 'a) -> 'a -> node list -> 'a
(** Pre-order fold over every node of a forest. *)

val wall_ns : node list -> int
(** Sum of the root span durations — the forest's total wall time. *)

val total_minor_w : node list -> int
(** Sum of the root spans' minor words — the forest's total minor
    allocation, the denominator for alloc percentages. Roots already
    include their children, as with {!wall_ns}. *)

val total_major_w : node list -> int
(** Sum of the root spans' major words. *)
