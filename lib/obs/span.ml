type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  tid : int;
  depth : int;
  args : (string * arg) list;
}

type frame = {
  f_name : string;
  f_start : int;
  f_depth : int;
  mutable f_args : (string * arg) list;
}

(* One recording buffer per domain. Only its owning domain ever writes
   [stack], [spans] or [len]; the registry mutex protects the list of
   states, and export/reset read the buffers (documented as quiescent
   operations). *)
type dstate = {
  tid : int;
  mutable stack : frame list;
  mutable spans : span array;
  mutable len : int;
  mutable drop : int;
}

let enabled_flag = Atomic.make false
let capacity = Atomic.make 1_000_000

let[@inline] enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let set_capacity c = Atomic.set capacity (max 1 c)

let registry_lock = Mutex.create ()
let registry : dstate list ref = ref []

let dummy_span =
  { name = ""; start_ns = 0; dur_ns = 0; tid = 0; depth = 0; args = [] }

let key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          tid = (Domain.self () :> int);
          stack = [];
          spans = Array.make 256 dummy_span;
          len = 0;
          drop = 0;
        }
      in
      Mutex.lock registry_lock;
      registry := st :: !registry;
      Mutex.unlock registry_lock;
      st)

let push st sp =
  let cap = Atomic.get capacity in
  if st.len >= cap then st.drop <- st.drop + 1
  else begin
    if st.len = Array.length st.spans then begin
      let bigger =
        Array.make (min cap (2 * Array.length st.spans)) dummy_span
      in
      Array.blit st.spans 0 bigger 0 st.len;
      st.spans <- bigger
    end;
    st.spans.(st.len) <- sp;
    st.len <- st.len + 1
  end

let begin_span name =
  if enabled () then begin
    let st = Domain.DLS.get key in
    let depth = match st.stack with [] -> 0 | f :: _ -> f.f_depth + 1 in
    st.stack <-
      { f_name = name; f_start = Clock.now_ns (); f_depth = depth; f_args = [] }
      :: st.stack
  end

let end_span ?(args = []) () =
  if enabled () then begin
    let st = Domain.DLS.get key in
    match st.stack with
    | [] -> ()
    | f :: rest ->
        st.stack <- rest;
        push st
          {
            name = f.f_name;
            start_ns = f.f_start;
            dur_ns = Clock.now_ns () - f.f_start;
            tid = st.tid;
            depth = f.f_depth;
            args = (match f.f_args with [] -> args | fa -> List.rev fa @ args);
          }
  end

let add_arg k v =
  if enabled () then
    let st = Domain.DLS.get key in
    match st.stack with
    | [] -> ()
    | f :: _ -> f.f_args <- (k, v) :: f.f_args

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    begin_span name;
    Fun.protect ~finally:(fun () -> end_span ?args ()) f
  end

let with_states f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) (fun () ->
      f !registry)

let export () =
  with_states (fun states ->
      List.concat_map
        (fun st -> Array.to_list (Array.sub st.spans 0 st.len))
        states)
  |> List.sort (fun a b ->
         compare (a.start_ns, a.tid, a.depth) (b.start_ns, b.tid, b.depth))

let count () =
  with_states (fun states ->
      List.fold_left (fun acc st -> acc + st.len) 0 states)

let dropped () =
  with_states (fun states ->
      List.fold_left (fun acc st -> acc + st.drop) 0 states)

let reset () =
  with_states (fun states ->
      List.iter
        (fun st ->
          st.stack <- [];
          st.len <- 0;
          st.drop <- 0)
        states)
