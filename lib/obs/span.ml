type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  start_ns : int;
  dur_ns : int;
  tid : int;
  depth : int;
  minor_w : int;
  major_w : int;
  args : (string * arg) list;
}

(* Allocation-free major-heap counter (see obs_gc_stubs.c); minor words
   come from the stdlib's own unboxed accessor. Both are raw doubles in
   native code, so reading them inside a span probe does not perturb
   the allocation it is measuring. *)
external gc_major_words : unit -> (float[@unboxed])
  = "obs_gc_major_words" "obs_gc_major_words_unboxed"
[@@noalloc]

(* One recording buffer per domain, columnar: the open-frame stack and
   the completed-span log are parallel arrays preallocated once and
   grown geometrically, so the steady-state record path allocates
   nothing — begin_span writes three cells (five with alloc capture),
   end_span five (seven). Only its owning domain ever writes a state;
   the registry mutex protects the list of states, and export/reset
   read the buffers (documented as quiescent operations). *)
type dstate = {
  tid : int;
  (* open frames, indexed by nesting depth *)
  mutable f_names : string array;
  mutable f_starts : int array;
  mutable f_minor : float array;
  mutable f_major : float array;
  mutable f_args : (string * arg) list array;
  mutable depth : int;
  (* completed spans *)
  mutable s_names : string array;
  mutable s_starts : int array;
  mutable s_durs : int array;
  mutable s_depths : int array;
  mutable s_minor : int array;
  mutable s_major : int array;
  mutable s_args : (string * arg) list array;
  mutable len : int;
  mutable drop : int;
}

let enabled_flag = Atomic.make false
let alloc_flag = Atomic.make false
let capacity = Atomic.make 1_000_000

let[@inline] enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let[@inline] alloc_enabled () = Atomic.get alloc_flag
let set_alloc b = Atomic.set alloc_flag b

let set_capacity c =
  if c <= 0 then
    invalid_arg
      (Printf.sprintf "Span.set_capacity: capacity must be positive (got %d)" c);
  Atomic.set capacity c

let registry_lock = Mutex.create ()
let registry : dstate list ref = ref []
let initial_spans = 256
let initial_frames = 64

let key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          tid = (Domain.self () :> int);
          f_names = Array.make initial_frames "";
          f_starts = Array.make initial_frames 0;
          f_minor = Array.make initial_frames 0.;
          f_major = Array.make initial_frames 0.;
          f_args = Array.make initial_frames [];
          depth = 0;
          s_names = Array.make initial_spans "";
          s_starts = Array.make initial_spans 0;
          s_durs = Array.make initial_spans 0;
          s_depths = Array.make initial_spans 0;
          s_minor = Array.make initial_spans 0;
          s_major = Array.make initial_spans 0;
          s_args = Array.make initial_spans [];
          len = 0;
          drop = 0;
        }
      in
      Mutex.lock registry_lock;
      registry := st :: !registry;
      Mutex.unlock registry_lock;
      st)

let grow_frames st =
  let n = Array.length st.f_names in
  let bigger_n = 2 * n in
  let grow a fill =
    let b = Array.make bigger_n fill in
    Array.blit a 0 b 0 n;
    b
  in
  st.f_names <- grow st.f_names "";
  st.f_starts <- grow st.f_starts 0;
  st.f_minor <- grow st.f_minor 0.;
  st.f_major <- grow st.f_major 0.;
  st.f_args <- grow st.f_args []

let grow_spans st cap =
  let n = Array.length st.s_names in
  let bigger_n = min cap (2 * n) in
  let grow a fill =
    let b = Array.make bigger_n fill in
    Array.blit a 0 b 0 st.len;
    b
  in
  st.s_names <- grow st.s_names "";
  st.s_starts <- grow st.s_starts 0;
  st.s_durs <- grow st.s_durs 0;
  st.s_depths <- grow st.s_depths 0;
  st.s_minor <- grow st.s_minor 0;
  st.s_major <- grow st.s_major 0;
  st.s_args <- grow st.s_args []

let begin_span name =
  if enabled () then begin
    let st = Domain.DLS.get key in
    if st.depth = Array.length st.f_names then grow_frames st;
    let d = st.depth in
    st.f_names.(d) <- name;
    st.f_starts.(d) <- Clock.now_ns ();
    st.f_args.(d) <- [];
    if alloc_enabled () then begin
      (* Read the GC counters after the clock so the clock read's own
         (zero) allocation cannot leak into the window; both reads are
         noalloc/unboxed, and float-array stores do not box. *)
      st.f_minor.(d) <- Gc.minor_words ();
      st.f_major.(d) <- gc_major_words ()
    end;
    st.depth <- d + 1
  end

let end_span ?(args = []) () =
  if enabled () then begin
    let st = Domain.DLS.get key in
    if st.depth > 0 then begin
      let d = st.depth - 1 in
      st.depth <- d;
      let cap = Atomic.get capacity in
      if st.len >= cap then st.drop <- st.drop + 1
      else begin
        if st.len = Array.length st.s_names then grow_spans st cap;
        let i = st.len in
        st.s_names.(i) <- st.f_names.(d);
        st.s_starts.(i) <- st.f_starts.(d);
        st.s_durs.(i) <- Clock.now_ns () - st.f_starts.(d);
        st.s_depths.(i) <- d;
        (if alloc_enabled () then begin
           (* Clamp at zero: if alloc capture was switched on after this
              frame opened, its baseline is a stale (smaller or zero)
              read and the delta is meaningless. *)
           st.s_minor.(i) <-
             max 0 (int_of_float (Gc.minor_words () -. st.f_minor.(d)));
           st.s_major.(i) <-
             max 0 (int_of_float (gc_major_words () -. st.f_major.(d)))
         end
         else begin
           st.s_minor.(i) <- 0;
           st.s_major.(i) <- 0
         end);
        (st.s_args.(i) <-
           (match st.f_args.(d) with [] -> args | fa -> List.rev fa @ args));
        st.len <- i + 1
      end;
      st.f_args.(d) <- []
    end
  end

let add_arg k v =
  if enabled () then begin
    let st = Domain.DLS.get key in
    if st.depth > 0 then begin
      let d = st.depth - 1 in
      st.f_args.(d) <- (k, v) :: st.f_args.(d)
    end
  end

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    begin_span name;
    match f () with
    | v ->
        end_span ?args ();
        v
    | exception e ->
        end_span ?args ();
        raise e
  end

let with_states f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) (fun () ->
      f !registry)

let spans_of st =
  List.init st.len (fun i ->
      {
        name = st.s_names.(i);
        start_ns = st.s_starts.(i);
        dur_ns = st.s_durs.(i);
        tid = st.tid;
        depth = st.s_depths.(i);
        minor_w = st.s_minor.(i);
        major_w = st.s_major.(i);
        args = st.s_args.(i);
      })

let export () =
  with_states (fun states -> List.concat_map spans_of states)
  |> List.sort (fun a b ->
         compare (a.start_ns, a.tid, a.depth) (b.start_ns, b.tid, b.depth))

let count () =
  with_states (fun states ->
      List.fold_left (fun acc st -> acc + st.len) 0 states)

let dropped () =
  with_states (fun states ->
      List.fold_left (fun acc st -> acc + st.drop) 0 states)

let reset () =
  with_states (fun states ->
      List.iter
        (fun st ->
          (* Release retained strings/arg lists so a reset buffer holds
             no references to the previous run's data. *)
          Array.fill st.s_names 0 st.len "";
          Array.fill st.s_args 0 st.len [];
          Array.fill st.f_args 0 st.depth [];
          st.depth <- 0;
          st.len <- 0;
          st.drop <- 0)
        states)
