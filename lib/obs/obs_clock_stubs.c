/* Monotonic nanosecond clock for the observability layer.

   OCaml 5.1's Unix library exposes only gettimeofday (wall clock,
   steppable by NTP, can go backwards), which is unusable for span
   durations and accumulated timers. clock_gettime(CLOCK_MONOTONIC) is
   POSIX and never goes backwards. The result fits OCaml's 63-bit int
   for ~146 years of uptime, so we return an untagged immediate and the
   call stays allocation-free ([@@noalloc]). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}
