(** Schema-versioned, noise-aware comparison of [BENCH_*.json]
    artifacts — the regression gate behind [replica_cli bench-diff].

    Every benchmark artifact in this repository is a
    {!Json.envelope}: a [schema_version], a [bench] kind
    (["dp_power"], ["engine"], ["obs"]) and kind-specific fields. For
    each kind this module knows a fixed list of {!spec}s: which JSON
    path to read, which direction is better, how severe a regression
    is, and how much noise to tolerate.

    {b Severity.} [Hard] metrics are deterministic for a fixed seed —
    merge products, memo hits, cell counts, optima — so {e any}
    worsening (or for {!Exact} metrics, any change at all) is a
    regression and [bench-diff] exits nonzero. [Soft] metrics are
    wall-clock measurements; their regressions are reported as
    warnings only, because CI machines differ from the machine that
    committed the baseline.

    {b Noise model.} A directional metric regresses only when it moves
    the wrong way by {e both} more than [rel_tol] (relative to the
    baseline) {e and} more than [abs_floor] in absolute value. The
    absolute floor keeps nanosecond jitter on near-zero baselines from
    tripping the relative test; the relative tolerance keeps small
    absolute wobble on large baselines from tripping the absolute one.
    Moves the wrong way inside the tolerance region are reported as
    [Unchanged]; moves the right way beyond it as [Improved].

    {!append} maintains a local JSON-lines history file
    ([BENCH_history.jsonl], gitignored) that the bench harness appends
    every artifact to, so a developer can diff any two past runs, not
    only against the committed baseline. *)

type direction =
  | Lower_better
  | Higher_better
  | Exact  (** any difference is a regression (deterministic metrics) *)

type severity = Hard | Soft

type spec = {
  path : string list;  (** JSON member path inside the envelope *)
  direction : direction;
  severity : severity;
  rel_tol : float;  (** relative tolerance, e.g. [0.25] = 25% *)
  abs_floor : float;  (** minimum absolute move to count at all *)
}

val specs_for : string -> spec list
(** Metric specs for a bench kind; [[]] for unknown kinds. *)

type status = Improved | Unchanged | Regressed

type comparison = {
  metric : string;  (** dotted display name of the path *)
  base : float;
  cur : float;
  delta_pct : float;  (** [100 * (cur - base) / base], [0] if [base = 0] *)
  status : status;
  severity : severity;
}

type report = {
  kind : string;
  comparisons : comparison list;
  missing : string list;  (** specs absent from either artifact *)
  hard_regressions : int;
  soft_regressions : int;
}

val diff :
  ?rel_tol:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (report, string) result
(** Compare two parsed artifacts of the same kind and schema version.
    [rel_tol] overrides every directional spec's relative tolerance
    (the CLI's [--threshold]); [Exact] metrics are unaffected. Errors
    on mismatched [schema_version] or [bench] kinds, and on kinds with
    no specs. *)

val render : report -> string
(** Aligned human-readable table plus one [warning:] line per soft
    regression and a final verdict line. *)

val to_json : report -> Json.t

val append : path:string -> Json.t -> unit
(** Append one artifact as a single compact JSON line to [path],
    creating the file if needed. *)

(** {2 Trend over the local history}

    [replica_cli bench-history trend] reads the JSON-lines history and
    fits a least-squares slope per known metric over the last [K]
    matching runs, classifying each as [improving] / [worsening] /
    [flat] against the spec's direction ([Exact] metrics report
    [stable] or [CHANGING]). A total move under 2% of the metric's mean
    counts as flat — run-to-run noise, not a trend. *)

type trend_metric = {
  tm_metric : string;
  tm_values : float list;  (** oldest first *)
  tm_slope : float;  (** least-squares slope per run *)
  tm_direction : direction;
  tm_verdict : string;
      (** ["improving"], ["worsening"], ["flat"], ["stable"] or
          ["CHANGING"] *)
}

type trend_report = {
  t_kind : string;
  t_runs : int;  (** runs actually in the window *)
  t_metrics : trend_metric list;
}

val trend :
  kind:string -> ?last:int -> Json.t list -> (trend_report, string) result
(** [trend ~kind ~last history] over the parsed history lines (oldest
    first, as read from the file). Skips metrics absent from part of
    the window; errors when fewer than 2 matching runs exist or the
    kind has no specs. [last] defaults to 10. *)

val render_trend : trend_report -> string
(** Aligned table: first, last, slope per run, verdict. *)
