type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let schema_version = 1

let envelope ~kind ~config fields =
  Obj
    ([ ("schema_version", Int schema_version); ("bench", String kind) ]
    @ (if config = [] then [] else [ ("config", Obj config) ])
    @ fields)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let to_string ?(pretty = false) json =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf (if pretty then "\": " else "\":");
            emit (depth + 1) v)
          members;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf

(* --- parser --- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
                 advance ();
                 let v = parse_hex4 () in
                 (* Encode the code point as UTF-8; surrogate pairs are
                    passed through individually, which round-trips the
                    printer's output (it only emits \u00XX). *)
                 if v < 0x80 then Buffer.add_char buf (Char.chr v)
                 else if v < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
                   Buffer.add_char buf
                     (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
                 end
             | _ -> fail "invalid escape");
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      match peek () with
      | Some ('0' .. '9') -> true
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "invalid number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let parse_member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let members = ref [ parse_member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            members := parse_member () :: !members;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !members)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None
