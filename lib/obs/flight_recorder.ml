type chunk = { c_epoch : int; c_spans : Span.span list; c_len : int }

type t = {
  path : string;
  k : float;
  sample_every : int;
  window : int;
  ring_capacity : int;
  chunks : chunk Queue.t;  (* oldest first *)
  mutable ring_len : int;
  latencies : int Queue.t;  (* trailing window, oldest first *)
  mutable dumps : int;
  mutable last_dump_epoch : int;
}

let min_history = 5

let create ?(ring_capacity = 100_000) ?(sample_every = 4) ?(window = 32) ~k
    ~path () =
  if ring_capacity < 1 then
    invalid_arg "Flight_recorder.create: ring_capacity < 1";
  if sample_every < 1 then
    invalid_arg "Flight_recorder.create: sample_every < 1";
  if window < 1 then invalid_arg "Flight_recorder.create: window < 1";
  if k < 0.0 then invalid_arg "Flight_recorder.create: k < 0";
  {
    path;
    k;
    sample_every;
    window;
    ring_capacity;
    chunks = Queue.create ();
    ring_len = 0;
    latencies = Queue.create ();
    dumps = 0;
    last_dump_epoch = -1;
  }

(* Deterministic head-sampling decision: a hash of the epoch index, so
   which epochs are retained is reproducible run-to-run and across
   domains — no RNG state, no wall clock. *)
let keep_epoch t epoch =
  t.sample_every = 1
  || Hashtbl.hash (epoch * 2654435761) mod t.sample_every = 0

let trailing_median t =
  let n = Queue.length t.latencies in
  if n = 0 then None
  else begin
    let a = Array.make n 0 in
    let i = ref 0 in
    Queue.iter
      (fun v ->
        a.(!i) <- v;
        incr i)
      t.latencies;
    Array.sort compare a;
    Some a.(n / 2)
  end

let anomalous t latency_ns =
  if t.k = 0.0 then true
  else
    match trailing_median t with
    | Some m when Queue.length t.latencies >= min_history ->
        float_of_int latency_ns > t.k *. float_of_int m
    | _ -> false

let retained_spans t =
  Queue.fold (fun acc c -> acc @ c.c_spans) [] t.chunks

let dump t ~epoch extra =
  let spans = retained_spans t @ extra in
  Chrome_trace.write_file ~dropped:(Span.dropped ()) t.path spans;
  t.dumps <- t.dumps + 1;
  t.last_dump_epoch <- epoch

let record t ~epoch ~latency_ns =
  (* Drain this epoch's spans out of the per-domain buffers whether or
     not we keep them: the recorder owns span lifetime while active, so
     buffers never grow across epochs. *)
  let spans = Span.export () in
  Span.reset ();
  let is_anomaly = anomalous t latency_ns in
  if is_anomaly then dump t ~epoch spans;
  (* Append after the dump: an anomaly dump shows the lead-up plus the
     anomalous epoch itself, and the ring then retains that epoch as
     lead-up for the next one. *)
  if keep_epoch t epoch then begin
    let n = List.length spans in
    Queue.push { c_epoch = epoch; c_spans = spans; c_len = n } t.chunks;
    t.ring_len <- t.ring_len + n;
    while
      t.ring_len > t.ring_capacity && Queue.length t.chunks > 1
    do
      let old = Queue.pop t.chunks in
      t.ring_len <- t.ring_len - old.c_len
    done
  end;
  Queue.push latency_ns t.latencies;
  while Queue.length t.latencies > t.window do
    ignore (Queue.pop t.latencies)
  done;
  is_anomaly

let dumps t = t.dumps
let last_dump_epoch t = if t.last_dump_epoch < 0 then None else Some t.last_dump_epoch
let path t = t.path
let retained t = t.ring_len
