(** Minimal JSON tree, printer and parser shared by every
    machine-readable artifact in the repository.

    Lives at the bottom of the dependency stack (this library depends
    on nothing) so the solvers' observability exporters, the engine's
    timeline and the benchmark harness all emit the same dialect.
    [Replica_engine.Json] re-exports this module for compatibility.

    The printer is deliberately tiny: sorted emission is the caller's
    job, floats go through [%.9g] (NaN/infinities become [null]), and
    [pretty] adds two-space indentation. The parser accepts exactly the
    JSON this printer emits plus standard escapes and number forms — it
    exists so tests and the [obs-validate] CLI can check exported
    artifacts without external tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val schema_version : int
(** Version stamped into every envelope; bump on breaking shape
    changes. *)

val envelope : kind:string -> config:(string * t) list -> (string * t) list -> t
(** [envelope ~kind ~config fields] is the versioned wrapper every
    benchmark artifact shares:
    [{"schema_version": ..., "bench": kind, "config": {...}, ...fields}].
    [config] is omitted when empty. *)

val to_string : ?pretty:bool -> t -> string

val parse : string -> (t, string) result
(** [parse s] reads one JSON value (surrounding whitespace allowed).
    Errors carry a byte offset. Numbers without [.], [e] or [E] parse
    as [Int], everything else as [Float]. *)

val member : string -> t -> t option
(** [member key json] is the value under [key] when [json] is an
    object. *)
