type node = { span : Span.span; children : node list }

type t = { roots : node list; span_count : int; dropped : int }

(* Mutable scaffolding used only while stacking a sorted span list
   into trees; [b_children] is kept reversed and flipped once when the
   builder is popped. *)
type builder = { b_span : Span.span; mutable b_children : node list }

let span_end (s : Span.span) = s.Span.start_ns + s.Span.dur_ns

let forest_of_tid spans =
  (* Sorted by (start asc, dur desc): at equal starts the enclosing
     span precedes the enclosed one, so a plain containment stack
     rebuilds the nesting. *)
  let spans =
    List.sort
      (fun (a : Span.span) (b : Span.span) ->
        compare
          (a.Span.start_ns, -a.Span.dur_ns, a.Span.depth)
          (b.Span.start_ns, -b.Span.dur_ns, b.Span.depth))
      spans
  in
  let roots = ref [] in
  let stack = ref [] in
  let pop () =
    match !stack with
    | [] -> ()
    | b :: rest ->
        stack := rest;
        let n = { span = b.b_span; children = List.rev b.b_children } in
        (match rest with
        | [] -> roots := n :: !roots
        | p :: _ -> p.b_children <- n :: p.b_children)
  in
  List.iter
    (fun (s : Span.span) ->
      while
        match !stack with
        | b :: _ -> s.Span.start_ns >= span_end b.b_span
        | [] -> false
      do
        pop ()
      done;
      let s = { s with Span.depth = List.length !stack } in
      stack := { b_span = s; b_children = [] } :: !stack)
    spans;
  while !stack <> [] do
    pop ()
  done;
  List.rev !roots

let forest_of_spans spans =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.span) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_tid s.Span.tid) in
      Hashtbl.replace by_tid s.Span.tid (s :: prev))
    spans;
  Hashtbl.fold (fun _tid ss acc -> forest_of_tid (List.rev ss) :: acc) by_tid []
  |> List.concat
  |> List.sort (fun a b ->
         compare
           (a.span.Span.start_ns, a.span.Span.tid)
           (b.span.Span.start_ns, b.span.Span.tid))

(* --- JSON direction --- *)

let ( let* ) = Result.bind

let number = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let us_to_ns us = int_of_float (Float.round (us *. 1e3))

let arg_of_json : Json.t -> Span.arg = function
  | Json.String s -> Span.Str s
  | Json.Int i -> Span.Int i
  | Json.Float f -> Span.Float f
  | Json.Bool b -> Span.Bool b
  | j -> Span.Str (Json.to_string j)

let event_span json =
  match (Json.member "ph" json, Json.member "name" json) with
  | Some (Json.String "X"), Some (Json.String name) ->
      let ts = Option.value ~default:0. (number (Json.member "ts" json)) in
      let dur = Option.value ~default:0. (number (Json.member "dur" json)) in
      let tid =
        match Json.member "tid" json with Some (Json.Int t) -> t | _ -> 0
      in
      let args =
        match Json.member "args" json with
        | Some (Json.Obj members) ->
            List.map (fun (k, v) -> (k, arg_of_json v)) members
        | _ -> []
      in
      (* Alloc columns travel as reserved arg keys (see Chrome_trace);
         lift them back into span fields so analyses see them exactly
         as a live Span.export would, and keep user args clean. *)
      let words k =
        match List.assoc_opt k args with
        | Some (Span.Int w) when w >= 0 -> w
        | _ -> 0
      in
      let minor_w = words "minor_w" and major_w = words "major_w" in
      let args =
        List.filter (fun (k, _) -> k <> "minor_w" && k <> "major_w") args
      in
      Some
        {
          Span.name;
          start_ns = us_to_ns ts;
          dur_ns = us_to_ns dur;
          tid;
          depth = 0;
          minor_w;
          major_w;
          args;
        }
  | _ -> None

let event_dropped json =
  match (Json.member "ph" json, Json.member "name" json) with
  | Some (Json.String "M"), Some (Json.String "spans_dropped") -> (
      match Json.member "args" json with
      | Some args -> (
          match Json.member "count" args with
          | Some (Json.Int n) -> Some n
          | _ -> None)
      | None -> None)
  | _ -> None

let of_string contents =
  let* _events = Chrome_trace.validate contents in
  let* json = Json.parse contents in
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List events) -> events
    | _ -> []
  in
  let spans = List.filter_map event_span events in
  let dropped =
    List.fold_left
      (fun acc e -> acc + Option.value ~default:0 (event_dropped e))
      0 events
  in
  Ok
    {
      roots = forest_of_spans spans;
      span_count = List.length spans;
      dropped;
    }

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error e ->
      (* Sys_error messages lead with the path; callers prefix it too. *)
      let prefix = path ^ ": " in
      Error
        (if String.starts_with ~prefix e then
           String.sub e (String.length prefix)
             (String.length e - String.length prefix)
         else e)

let rec fold f acc nodes =
  List.fold_left (fun acc n -> fold f (f acc n) n.children) acc nodes

let wall_ns roots =
  List.fold_left (fun acc n -> acc + n.span.Span.dur_ns) 0 roots

let total_minor_w roots =
  List.fold_left (fun acc n -> acc + n.span.Span.minor_w) 0 roots

let total_major_w roots =
  List.fold_left (fun acc n -> acc + n.span.Span.major_w) 0 roots
