(** Prometheus text exposition (version 0.0.4) of the metrics
    registries.

    Renders counters, accumulated timers and log2 histograms as a
    scrape-able snapshot: dotted registry names ([dp_power.cells])
    become [replicaml_dp_power_cells], counters expose as [counter],
    timers as [gauge] seconds, histograms as cumulative
    [_bucket{le="..."}] / [_sum] / [_count] families. Callers pass the
    data in (this module does not reach into
    [Replica_core.Stats_counters] — the dependency points the other
    way), so any registry can be exposed.

    {!validate} checks the exposition grammar line by line (comment
    lines, metric-name syntax, optional label set, float value,
    optional timestamp) and backs the [obs-validate] CLI command and
    the CI smoke step. *)

val metric_name : string -> string
(** [metric_name "dp_power.cells"] is ["replicaml_dp_power_cells"]:
    prefixed, and every character outside [[a-zA-Z0-9_:]] mapped to
    [_]. *)

val render :
  ?counters:(string * int) list ->
  ?timers_seconds:(string * float) list ->
  ?histograms:(string * Histogram.t) list ->
  unit ->
  string
(** A complete exposition snapshot, families sorted by metric name
    within each section (counters, then timers, then histograms). *)

val validate : string -> (int, string) result
(** [validate contents] checks every line against the exposition
    grammar and that each [# TYPE] is followed by samples of that
    family. Families declared [histogram] additionally get semantic
    checks: only [_bucket]/[_sum]/[_count] samples, a parseable [le]
    label on every bucket, non-decreasing [le] bounds and cumulative
    counts, a final [le="+Inf"] bucket whose value equals [_count],
    and a [_sum] sample. Returns the number of samples. *)
