(** Prometheus text exposition (version 0.0.4) of the metrics
    registries.

    Renders counters, accumulated timers and log2 histograms as a
    scrape-able snapshot: dotted registry names ([dp_power.cells])
    become [replicaml_dp_power_cells], counters expose as [counter],
    timers as [gauge] seconds, histograms as cumulative
    [_bucket{le="..."}] / [_sum] / [_count] families. Callers pass the
    data in (this module does not reach into
    [Replica_core.Stats_counters] — the dependency points the other
    way), so any registry can be exposed.

    {!validate} checks the exposition grammar line by line (comment
    lines, metric-name syntax, optional label set, float value,
    optional timestamp) and backs the [obs-validate] CLI command and
    the CI smoke step. *)

val metric_name : string -> string
(** [metric_name "dp_power.cells"] is ["replicaml_dp_power_cells"]:
    prefixed, and every character outside [[a-zA-Z0-9_:]] mapped to
    [_]. *)

val render :
  ?counters:(string * int) list ->
  ?timers_seconds:(string * float) list ->
  ?histograms:(string * Histogram.t) list ->
  unit ->
  string
(** A complete exposition snapshot, families sorted by metric name
    within each section (counters, then timers, then histograms).
    Label-less legacy shape; callers owning their data. The registry
    path is {!expose}. *)

val expose : unit -> string
(** Render the whole {!Metrics} registry — labeled instruments,
    collectors (so [Replica_core.Stats_counters] counters and timers
    appear), the legacy histogram registry and the span drop counter —
    as one exposition. Label sets ([solver="dp-qos"], [shard="3"])
    render inline; histogram families may carry several label sets,
    each with its own bucket/sum/count series. *)

val label_name : string -> string
(** Character sanitation for label keys: outside [[a-zA-Z0-9_]] maps
    to [_]; no namespace prefix. *)

val scalar_line : ?timestamp:int -> string -> (string * string) list -> float -> string
(** One exposition sample line (no newline): mangled metric name,
    rendered label set, value, optional integer timestamp. Used by
    {!Timeseries.to_openmetrics}, where the timestamp column carries
    the epoch index. *)

val validate : string -> (int, string) result
(** [validate contents] checks every line against the exposition
    grammar and that each [# TYPE] is followed by samples of that
    family. Families declared [histogram] additionally get semantic
    checks: only [_bucket]/[_sum]/[_count] samples, a parseable [le]
    label on every bucket, non-decreasing [le] bounds and cumulative
    counts, a final [le="+Inf"] bucket whose value equals [_count],
    and a [_sum] sample — each applied {e per label set} (excluding
    [le]), so multi-series families (one per shard) validate. An
    OpenMetrics [# EOF] terminator line is accepted. Returns the
    number of samples. *)
