type step = {
  name : string;
  dur_ns : int;
  contribution_ns : int;
  minor_w : int;
  contribution_minor_w : int;
  depth : int;
}

let widest (children : Trace_reader.node list) =
  (* Children arrive sorted by start; [>] keeps the earliest of equal
     durations, making tie-breaks deterministic. *)
  List.fold_left
    (fun best (c : Trace_reader.node) ->
      match best with
      | Some (b : Trace_reader.node)
        when b.Trace_reader.span.Span.dur_ns >= c.Trace_reader.span.Span.dur_ns
        ->
          best
      | _ -> Some c)
    None children

let of_node root =
  let rec descend depth (n : Trace_reader.node) =
    let dur = n.Trace_reader.span.Span.dur_ns in
    let minor = n.Trace_reader.span.Span.minor_w in
    match widest n.Trace_reader.children with
    | None ->
        [
          {
            name = n.Trace_reader.span.Span.name;
            dur_ns = dur;
            contribution_ns = dur;
            minor_w = minor;
            contribution_minor_w = minor;
            depth;
          };
        ]
    | Some child ->
        (* Alloc contributions telescope along the time-widest chain —
           the path stays the one wall time passes through, and the
           alloc column reports what each step allocated outside the
           next step. The alloc sum therefore equals the root's words,
           but individual alloc contributions can be 0 when the heavy
           allocator is off-path. *)
        {
          name = n.Trace_reader.span.Span.name;
          dur_ns = dur;
          contribution_ns = dur - child.Trace_reader.span.Span.dur_ns;
          minor_w = minor;
          contribution_minor_w = minor - child.Trace_reader.span.Span.minor_w;
          depth;
        }
        :: descend (depth + 1) child
  in
  descend 0 root

let longest roots =
  match widest roots with None -> [] | Some root -> of_node root

let total_ns steps =
  List.fold_left (fun acc s -> acc + s.contribution_ns) 0 steps

let total_minor_w steps =
  List.fold_left (fun acc s -> acc + s.contribution_minor_w) 0 steps

let render ?(alloc = false) steps =
  match steps with
  | [] -> "critical path: empty trace\n"
  | _ ->
      let total = total_ns steps in
      let total_minor = total_minor_w steps in
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (if alloc then
           Printf.sprintf "critical path: %.3f us, %d minor words across %d spans\n"
             (float_of_int total /. 1e3)
             total_minor (List.length steps)
         else
           Printf.sprintf "critical path: %.3f us across %d spans\n"
             (float_of_int total /. 1e3)
             (List.length steps));
      let name_w =
        List.fold_left
          (fun w s -> max w ((2 * s.depth) + String.length s.name))
          4 steps
      in
      List.iter
        (fun s ->
          let pct =
            if total = 0 then 0.
            else 100. *. float_of_int s.contribution_ns /. float_of_int total
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s  %12.3f us  self %12.3f us  %5.1f%%" name_w
               (String.make (2 * s.depth) ' ' ^ s.name)
               (float_of_int s.dur_ns /. 1e3)
               (float_of_int s.contribution_ns /. 1e3)
               pct);
          if alloc then begin
            let apct =
              if total_minor = 0 then 0.
              else
                100. *. float_of_int s.contribution_minor_w
                /. float_of_int total_minor
            in
            Buffer.add_string buf
              (Printf.sprintf "  %10dw  self %10dw  %5.1f%%" s.minor_w
                 s.contribution_minor_w apct)
          end;
          Buffer.add_char buf '\n')
        steps;
      Buffer.contents buf
