type row = { r_name : string; r_labels : Metrics.labels; r_value : float }
type point = { pt_epoch : int; pt_rows : row list }

type t = {
  stride : int;
  cap : int;
  buf : point option array;
  mutable start : int;
  mutable len : int;
  (* raw value at the previous recorded sample, per flattened series
     key — counters and histogram count/sum report per-interval deltas,
     so a point reads "work done since the last sample" rather than a
     monotonically growing total. *)
  prev : (string, float) Hashtbl.t;
  mutable samples_taken : int;
}

let create ?(capacity = 1024) ?(stride = 1) () =
  if capacity < 1 then invalid_arg "Timeseries.create: capacity < 1";
  if stride < 1 then invalid_arg "Timeseries.create: stride < 1";
  {
    stride;
    cap = capacity;
    buf = Array.make capacity None;
    start = 0;
    len = 0;
    prev = Hashtbl.create 64;
    samples_taken = 0;
  }

let stride t = t.stride
let length t = t.len

let key name labels = name ^ Metrics.labels_to_string labels

(* Flatten one registry sample into scalar rows. Counters: delta vs
   the previous recorded sample. Gauges: raw. Histograms: count/sum
   deltas plus the current p50/p99 point estimates (quantiles are over
   the whole run — a per-interval quantile would need bucket deltas for
   little extra insight). *)
let rows_of_sample t (s : Metrics.sample) =
  let delta k raw =
    let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.prev k) in
    Hashtbl.replace t.prev k raw;
    raw -. prev
  in
  match s.Metrics.s_value with
  | Metrics.Sample_counter v ->
      [
        {
          r_name = s.s_name;
          r_labels = s.s_labels;
          r_value = delta (key s.s_name s.s_labels) v;
        };
      ]
  | Metrics.Sample_gauge v ->
      [ { r_name = s.s_name; r_labels = s.s_labels; r_value = v } ]
  | Metrics.Sample_histogram hs ->
      let sub suffix v =
        {
          r_name = s.s_name ^ suffix;
          r_labels = s.s_labels;
          r_value = v;
        }
      in
      [
        sub ".count"
          (delta
             (key (s.s_name ^ ".count") s.s_labels)
             (float_of_int hs.Metrics.hs_count));
        sub ".sum"
          (delta
             (key (s.s_name ^ ".sum") s.s_labels)
             (float_of_int hs.Metrics.hs_sum));
        sub ".p50" (float_of_int hs.Metrics.hs_p50);
        sub ".p99" (float_of_int hs.Metrics.hs_p99);
      ]

let push t pt =
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- Some pt;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- Some pt;
    t.start <- (t.start + 1) mod t.cap
  end

let sample t ~epoch =
  let due = t.samples_taken mod t.stride = 0 in
  t.samples_taken <- t.samples_taken + 1;
  if due then begin
    let rows =
      List.concat_map (rows_of_sample t) (Metrics.samples ())
    in
    push t { pt_epoch = epoch; pt_rows = rows }
  end

let points t =
  List.init t.len (fun i ->
      Option.get t.buf.((t.start + i) mod t.cap))

let series t k =
  List.filter_map
    (fun pt ->
      List.find_map
        (fun r ->
          if key r.r_name r.r_labels = k then Some (pt.pt_epoch, r.r_value)
          else None)
        pt.pt_rows)
    (points t)

let to_json t =
  Json.List
    (List.map
       (fun pt ->
         Json.Obj
           [
             ("epoch", Json.Int pt.pt_epoch);
             ( "metrics",
               Json.Obj
                 (List.map
                    (fun r ->
                      (key r.r_name r.r_labels, Json.Float r.r_value))
                    pt.pt_rows) );
           ])
       (points t))

let to_openmetrics t =
  let pts = points t in
  (* Family samples must be consecutive for the exposition grammar, so
     walk family-by-family across all points rather than point-by-point. *)
  let names =
    List.sort_uniq compare
      (List.concat_map (fun pt -> List.map (fun r -> r.r_name) pt.pt_rows) pts)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s gauge\n" (Prometheus.metric_name name));
      List.iter
        (fun pt ->
          List.iter
            (fun r ->
              if r.r_name = name then begin
                Buffer.add_string buf
                  (Prometheus.scalar_line ~timestamp:pt.pt_epoch r.r_name
                     r.r_labels r.r_value);
                Buffer.add_char buf '\n'
              end)
            pt.pt_rows)
        pts)
    names;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
