(** GC/heap telemetry published through the {!Metrics} registry.

    One {!Metrics.register_collector} bridge turns [Gc.quick_stat]
    into named samples, so the whole existing sink fan — Prometheus
    and OpenMetrics exposition, {!Timeseries} (whose counter-delta
    semantics yield per-epoch minor/major/promoted words and
    collection/compaction counts for free), the [--json] envelopes
    and the [top] view — carries a memory axis alongside the time
    axis. Nothing here is on a hot path: sampling happens at scrape
    or epoch granularity, where [quick_stat]'s allocation is
    irrelevant (per-span capture uses the allocation-free reads in
    {!Span} instead).

    Published samples: cumulative counters [gc.minor_words],
    [gc.promoted_words], [gc.major_words], [gc.minor_collections],
    [gc.major_collections], [gc.compactions]; gauges [gc.heap_words]
    (live major heap) and [gc.top_heap_words] (peak major heap). *)

val register : unit -> unit
(** Install (or refresh) the ["gc"] collector in {!Metrics}.
    Idempotent. *)

val samples : unit -> Metrics.sample list
(** The collector body, exposed for tests and one-shot scrapes. *)

val allocated_bytes : unit -> float
(** Total bytes allocated by this domain since program start
    ([Gc.allocated_bytes]); subtract two readings to meter a region
    at bench granularity. *)

val peak_major_words : unit -> int
(** High-water mark of the major heap, in words. *)

val live_words : unit -> int
(** Current major-heap size, in words. *)

val heap_counter : ts_ns:int -> Chrome_trace.counter
(** One Chrome-trace counter sample ([gc.heap] track: live heap words
    plus cumulative minor/major words) stamped with the given
    monotonic time, for per-epoch emission into traces. *)
