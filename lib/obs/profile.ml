type row = { name : string; calls : int; total_ns : int; self_ns : int }

let children_ns (n : Trace_reader.node) =
  List.fold_left
    (fun acc (c : Trace_reader.node) -> acc + c.Trace_reader.span.Span.dur_ns)
    0 n.Trace_reader.children

let self_ns (n : Trace_reader.node) =
  n.Trace_reader.span.Span.dur_ns - children_ns n

let rows roots =
  let tbl : (string, int * int * int) Hashtbl.t = Hashtbl.create 32 in
  Trace_reader.fold
    (fun () (n : Trace_reader.node) ->
      let name = n.Trace_reader.span.Span.name in
      let calls, total, self =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl name)
      in
      Hashtbl.replace tbl name
        (calls + 1, total + n.Trace_reader.span.Span.dur_ns, self + self_ns n))
    () roots;
  Hashtbl.fold
    (fun name (calls, total_ns, self_ns) acc ->
      { name; calls; total_ns; self_ns } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (-a.self_ns, a.name) (-b.self_ns, b.name))

let us ns = float_of_int ns /. 1e3

let top_table ?(k = 10) roots =
  let all = rows roots in
  let wall = Trace_reader.wall_ns roots in
  let shown = List.filteri (fun i _ -> i < k) all in
  let buf = Buffer.create 256 in
  let name_w =
    List.fold_left (fun w r -> max w (String.length r.name)) 4 shown
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %6s  %12s  %12s  %6s\n" name_w "name" "calls"
       "total(us)" "self(us)" "self%");
  List.iter
    (fun r ->
      let pct =
        if wall = 0 then 0.
        else 100. *. float_of_int r.self_ns /. float_of_int wall
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %6d  %12.3f  %12.3f  %5.1f%%\n" name_w r.name
           r.calls (us r.total_ns) (us r.self_ns) pct))
    shown;
  if List.length all > k then
    Buffer.add_string buf
      (Printf.sprintf "(%d more span names below the top %d)\n"
         (List.length all - k) k);
  Buffer.contents buf

let folded roots =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk prefix (n : Trace_reader.node) =
    let path =
      if prefix = "" then n.Trace_reader.span.Span.name
      else prefix ^ ";" ^ n.Trace_reader.span.Span.name
    in
    let self = self_ns n in
    if self > 0 then
      Hashtbl.replace tbl path
        (self + Option.value ~default:0 (Hashtbl.find_opt tbl path));
    List.iter (walk path) n.Trace_reader.children
  in
  List.iter (walk "") roots;
  Hashtbl.fold (fun path ns acc -> (path, ns) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (path, ns) -> Printf.sprintf "%s %d\n" path ns)
  |> String.concat ""
