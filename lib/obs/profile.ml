type row = {
  name : string;
  calls : int;
  total_ns : int;
  self_ns : int;
  total_minor_w : int;
  self_minor_w : int;
  total_major_w : int;
  self_major_w : int;
}

let children_ns (n : Trace_reader.node) =
  List.fold_left
    (fun acc (c : Trace_reader.node) -> acc + c.Trace_reader.span.Span.dur_ns)
    0 n.Trace_reader.children

let self_ns (n : Trace_reader.node) =
  n.Trace_reader.span.Span.dur_ns - children_ns n

(* Self-allocation mirrors self-time exactly: a span's words minus its
   direct children's words. Over a well-formed forest the self values
   partition the total allocation just as self times partition wall
   time. *)
let children_minor_w (n : Trace_reader.node) =
  List.fold_left
    (fun acc (c : Trace_reader.node) -> acc + c.Trace_reader.span.Span.minor_w)
    0 n.Trace_reader.children

let self_minor_w (n : Trace_reader.node) =
  n.Trace_reader.span.Span.minor_w - children_minor_w n

let children_major_w (n : Trace_reader.node) =
  List.fold_left
    (fun acc (c : Trace_reader.node) -> acc + c.Trace_reader.span.Span.major_w)
    0 n.Trace_reader.children

let self_major_w (n : Trace_reader.node) =
  n.Trace_reader.span.Span.major_w - children_major_w n

type acc = {
  mutable a_calls : int;
  mutable a_total_ns : int;
  mutable a_self_ns : int;
  mutable a_total_minor : int;
  mutable a_self_minor : int;
  mutable a_total_major : int;
  mutable a_self_major : int;
}

let rows roots =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  Trace_reader.fold
    (fun () (n : Trace_reader.node) ->
      let s = n.Trace_reader.span in
      let a =
        match Hashtbl.find_opt tbl s.Span.name with
        | Some a -> a
        | None ->
            let a =
              {
                a_calls = 0;
                a_total_ns = 0;
                a_self_ns = 0;
                a_total_minor = 0;
                a_self_minor = 0;
                a_total_major = 0;
                a_self_major = 0;
              }
            in
            Hashtbl.add tbl s.Span.name a;
            a
      in
      a.a_calls <- a.a_calls + 1;
      a.a_total_ns <- a.a_total_ns + s.Span.dur_ns;
      a.a_self_ns <- a.a_self_ns + self_ns n;
      a.a_total_minor <- a.a_total_minor + s.Span.minor_w;
      a.a_self_minor <- a.a_self_minor + self_minor_w n;
      a.a_total_major <- a.a_total_major + s.Span.major_w;
      a.a_self_major <- a.a_self_major + self_major_w n)
    () roots;
  Hashtbl.fold
    (fun name a acc ->
      {
        name;
        calls = a.a_calls;
        total_ns = a.a_total_ns;
        self_ns = a.a_self_ns;
        total_minor_w = a.a_total_minor;
        self_minor_w = a.a_self_minor;
        total_major_w = a.a_total_major;
        self_major_w = a.a_self_major;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare (-a.self_ns, a.name) (-b.self_ns, b.name))

let us ns = float_of_int ns /. 1e3

let top_table ?(k = 10) roots =
  let all = rows roots in
  let wall = Trace_reader.wall_ns roots in
  let shown = List.filteri (fun i _ -> i < k) all in
  let buf = Buffer.create 256 in
  let name_w =
    List.fold_left (fun w r -> max w (String.length r.name)) 4 shown
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %6s  %12s  %12s  %6s\n" name_w "name" "calls"
       "total(us)" "self(us)" "self%");
  List.iter
    (fun r ->
      let pct =
        if wall = 0 then 0.
        else 100. *. float_of_int r.self_ns /. float_of_int wall
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %6d  %12.3f  %12.3f  %5.1f%%\n" name_w r.name
           r.calls (us r.total_ns) (us r.self_ns) pct))
    shown;
  if List.length all > k then
    Buffer.add_string buf
      (Printf.sprintf "(%d more span names below the top %d)\n"
         (List.length all - k) k);
  Buffer.contents buf

let alloc_table ?(k = 10) roots =
  let all =
    rows roots
    |> List.sort (fun a b ->
           compare (-a.self_minor_w, a.name) (-b.self_minor_w, b.name))
  in
  let total = Trace_reader.total_minor_w roots in
  let shown = List.filteri (fun i _ -> i < k) all in
  let buf = Buffer.create 256 in
  let name_w =
    List.fold_left (fun w r -> max w (String.length r.name)) 4 shown
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %6s  %12s  %12s  %6s  %12s\n" name_w "name" "calls"
       "minor(w)" "self(w)" "self%" "major(w)");
  List.iter
    (fun r ->
      let pct =
        if total = 0 then 0.
        else 100. *. float_of_int r.self_minor_w /. float_of_int total
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %6d  %12d  %12d  %5.1f%%  %12d\n" name_w r.name
           r.calls r.total_minor_w r.self_minor_w pct r.total_major_w))
    shown;
  if List.length all > k then
    Buffer.add_string buf
      (Printf.sprintf "(%d more span names below the top %d)\n"
         (List.length all - k) k);
  Buffer.contents buf

(* Shared folded-stack walk, parameterized by the self weight: time in
   nanoseconds or allocation in minor words. Both load into inferno —
   integer weights replace sample counts. *)
let folded_by weight roots =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let rec walk prefix (n : Trace_reader.node) =
    let path =
      if prefix = "" then n.Trace_reader.span.Span.name
      else prefix ^ ";" ^ n.Trace_reader.span.Span.name
    in
    let self = weight n in
    if self > 0 then
      Hashtbl.replace tbl path
        (self + Option.value ~default:0 (Hashtbl.find_opt tbl path));
    List.iter (walk path) n.Trace_reader.children
  in
  List.iter (walk "") roots;
  Hashtbl.fold (fun path w acc -> (path, w) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (path, w) -> Printf.sprintf "%s %d\n" path w)
  |> String.concat ""

let folded roots = folded_by self_ns roots
let folded_alloc roots = folded_by self_minor_w roots
