type direction = Lower_better | Higher_better | Exact
type severity = Hard | Soft

type spec = {
  path : string list;
  direction : direction;
  severity : severity;
  rel_tol : float;
  abs_floor : float;
}

let hard path direction = { path; direction; severity = Hard; rel_tol = 0.; abs_floor = 0. }

let soft path direction ~rel_tol ~abs_floor =
  { path; direction; severity = Soft; rel_tol; abs_floor }

(* One spec list per artifact kind. Hard metrics are deterministic for
   a fixed seed (counters, optima, placements); soft ones are
   wall-clock and only warn. *)
let specs_for = function
  | "dp_power" ->
      [
        hard [ "unpruned"; "power" ] Exact;
        hard [ "unpruned"; "cost" ] Exact;
        hard [ "pruned"; "power" ] Exact;
        hard [ "pruned"; "cost" ] Exact;
        hard [ "pruned"; "servers" ] Exact;
        (* The DP's work counters are bit-deterministic for a fixed
           seed and identical between the packed and wide
           representations, so they pin exactly — any drift means the
           set semantics of the merge changed. *)
        hard [ "unpruned"; "dp_power.merge_products" ] Exact;
        hard [ "pruned"; "dp_power.merge_products" ] Exact;
        hard [ "unpruned"; "dp_power.cells_created" ] Exact;
        hard [ "pruned"; "dp_power.cells_created" ] Exact;
        hard [ "pruned"; "dp_power.peak_table_size" ] Lower_better;
        (* Zero-allocation gate for the packed merge kernels. *)
        hard [ "merge_minor_words" ] Exact;
        soft [ "merge_products_ratio" ] Higher_better ~rel_tol:0.10
          ~abs_floor:0.25;
        soft
          [ "unpruned"; "dp_power.tables.seconds" ]
          Lower_better ~rel_tol:0.25 ~abs_floor:0.002;
        soft
          [ "pruned"; "dp_power.tables.seconds" ]
          Lower_better ~rel_tol:0.25 ~abs_floor:0.002;
        (* Memory axis: bytes are near-deterministic for a fixed seed
           but shift with compiler/runtime versions, so they gate
           directionally rather than exactly. *)
        soft
          [ "unpruned"; "allocated_bytes_per_solve" ]
          Lower_better ~rel_tol:0.10 ~abs_floor:100_000.;
        soft
          [ "pruned"; "allocated_bytes_per_solve" ]
          Lower_better ~rel_tol:0.10 ~abs_floor:100_000.;
        soft [ "peak_major_words" ] Lower_better ~rel_tol:0.5
          ~abs_floor:500_000.;
      ]
  | "engine" ->
      [
        hard [ "placements_identical" ] Exact;
        hard [ "full"; "reconfigurations" ] Exact;
        hard [ "incremental"; "reconfigurations" ] Exact;
        hard [ "full"; "total_cost" ] Exact;
        hard [ "incremental"; "total_cost" ] Exact;
        hard [ "full"; "warm_merge_products" ] Lower_better;
        hard [ "incremental"; "warm_merge_products" ] Lower_better;
        soft [ "warm_merge_products_ratio" ] Higher_better ~rel_tol:0.10
          ~abs_floor:0.5;
        soft [ "warm_epoch_speedup" ] Higher_better ~rel_tol:0.25 ~abs_floor:1.;
        soft [ "full"; "warm_avg_solve_seconds" ] Lower_better ~rel_tol:0.25
          ~abs_floor:0.002;
        soft
          [ "incremental"; "warm_avg_solve_seconds" ]
          Lower_better ~rel_tol:0.25 ~abs_floor:0.0005;
        soft [ "full"; "total_solve_seconds" ] Lower_better ~rel_tol:0.25
          ~abs_floor:0.01;
        soft
          [ "incremental"; "total_solve_seconds" ]
          Lower_better ~rel_tol:0.25 ~abs_floor:0.01;
        soft
          [ "full"; "allocated_bytes_per_epoch" ]
          Lower_better ~rel_tol:0.10 ~abs_floor:100_000.;
        soft
          [ "incremental"; "allocated_bytes_per_epoch" ]
          Lower_better ~rel_tol:0.10 ~abs_floor:50_000.;
        soft [ "peak_major_words" ] Lower_better ~rel_tol:0.5
          ~abs_floor:500_000.;
      ]
  | "qos" ->
      [
        hard [ "greedy_feasibility_agrees" ] Exact;
        hard [ "unconstrained_identical_to_dp_withpre" ] Exact;
        hard [ "tight"; "feasible" ] Exact;
        hard [ "tight"; "servers_total" ] Exact;
        hard [ "tight"; "dp_qos.merge_products" ] Lower_better;
        hard [ "tight"; "dp_qos.cells_created" ] Lower_better;
        hard [ "tight"; "dp_qos.peak_frontier" ] Lower_better;
        hard [ "loose"; "feasible" ] Exact;
        hard [ "loose"; "servers_total" ] Exact;
        hard [ "loose"; "dp_qos.merge_products" ] Lower_better;
        soft [ "tight"; "dp_qos.tables.seconds" ] Lower_better ~rel_tol:0.25
          ~abs_floor:0.002;
        soft [ "loose"; "dp_qos.tables.seconds" ] Lower_better ~rel_tol:0.25
          ~abs_floor:0.002;
      ]
  | "forest" ->
      [
        hard [ "merged_events" ] Exact;
        hard [ "merge_conserved" ] Exact;
        hard [ "placements_identical" ] Exact;
        hard [ "decoupled_identical" ] Exact;
        hard [ "reconfigurations" ] Exact;
        hard [ "total_cost" ] Exact;
        hard [ "final_servers" ] Exact;
        hard [ "merge_products" ] Lower_better;
        hard [ "coupled"; "unrepaired" ] Exact;
        hard [ "coupled"; "repair_added" ] Exact;
        soft [ "seq"; "epochs_per_second" ] Higher_better ~rel_tol:0.25
          ~abs_floor:0.5;
        soft [ "par"; "epochs_per_second" ] Higher_better ~rel_tol:0.25
          ~abs_floor:0.5;
        soft [ "parallel_speedup" ] Higher_better ~rel_tol:0.25 ~abs_floor:1.;
        soft [ "allocated_bytes_per_epoch" ] Lower_better ~rel_tol:0.10
          ~abs_floor:100_000.;
        soft [ "peak_major_words" ] Lower_better ~rel_tol:0.5
          ~abs_floor:500_000.;
      ]
  | "scaling" ->
      [
        (* Large-N rows: the sweep's point is that these sizes complete
           at all, so the row identity (N, solution size) gates hard
           while the resource axes ratchet directionally — alloc is
           near-deterministic for a fixed seed but shifts with
           compiler/runtime versions. *)
        hard [ "minpower_dp"; "nodes" ] Exact;
        hard [ "minpower_dp"; "servers" ] Exact;
        hard [ "mincost_greedy"; "nodes" ] Exact;
        hard [ "mincost_greedy"; "servers" ] Exact;
        hard [ "mincost_greedy_qos"; "servers" ] Exact;
        soft [ "minpower_dp"; "alloc_mb" ] Lower_better ~rel_tol:0.10
          ~abs_floor:1.;
        soft [ "minpower_gr"; "alloc_mb" ] Lower_better ~rel_tol:0.10
          ~abs_floor:10.;
        soft [ "mincost_greedy"; "alloc_mb" ] Lower_better ~rel_tol:0.10
          ~abs_floor:10.;
        soft [ "minpower_dp"; "seconds" ] Lower_better ~rel_tol:0.25
          ~abs_floor:0.5;
        soft [ "mincost_greedy"; "seconds" ] Lower_better ~rel_tol:0.25
          ~abs_floor:0.1;
        soft [ "minpower_dp"; "peak_heap_w" ] Lower_better ~rel_tol:0.5
          ~abs_floor:500_000.;
      ]
  | "obs" ->
      [
        hard [ "spans_per_solve" ] Exact;
        hard
          [ "histograms"; "dp_withpre.merge_products_per_node"; "count" ]
          Exact;
        hard [ "histograms"; "dp_withpre.merge_products_per_node"; "sum" ] Exact;
        soft [ "tracing_on_overhead_percent" ] Lower_better ~rel_tol:0.5
          ~abs_floor:2.;
        soft [ "disabled_overhead_percent_estimate" ] Lower_better ~rel_tol:0.5
          ~abs_floor:0.5;
        soft [ "guard_ns_per_check" ] Lower_better ~rel_tol:0.5 ~abs_floor:2.;
        soft [ "tracing_off_median_ns" ] Lower_better ~rel_tol:0.25
          ~abs_floor:500_000.;
        soft [ "timeseries_sample_overhead_percent" ] Lower_better
          ~rel_tol:0.5 ~abs_floor:0.25;
        soft [ "timeseries_sample_ns" ] Lower_better ~rel_tol:0.5
          ~abs_floor:20_000.;
        (* The disabled span path must allocate exactly nothing: any
           nonzero minor-word delta is an instrumentation leak, gated
           hard (the bench itself also asserts it). *)
        hard [ "alloc_disabled_minor_words" ] Exact;
        soft [ "alloc_on_overhead_percent" ] Lower_better ~rel_tol:0.5
          ~abs_floor:2.;
        soft [ "allocated_bytes_per_solve" ] Lower_better ~rel_tol:0.10
          ~abs_floor:100_000.;
      ]
  | _ -> []

type status = Improved | Unchanged | Regressed

type comparison = {
  metric : string;
  base : float;
  cur : float;
  delta_pct : float;
  status : status;
  severity : severity;
}

type report = {
  kind : string;
  comparisons : comparison list;
  missing : string list;
  hard_regressions : int;
  soft_regressions : int;
}

let lookup path json =
  let rec go json = function
    | [] -> (
        match json with
        | Json.Int i -> Some (float_of_int i)
        | Json.Float f -> Some f
        | Json.Bool b -> Some (if b then 1. else 0.)
        | _ -> None)
    | key :: rest -> (
        match Json.member key json with Some v -> go v rest | None -> None)
  in
  go json path

let compare_one ?rel_tol spec ~base ~cur =
  let metric = String.concat "." spec.path in
  let delta = cur -. base in
  let delta_pct = if base = 0. then 0. else 100. *. delta /. base in
  let status =
    match spec.direction with
    | Exact -> if base = cur then Unchanged else Regressed
    | Lower_better | Higher_better ->
        let worse =
          match spec.direction with
          | Lower_better -> delta > 0.
          | _ -> delta < 0.
        in
        let rel_tol = Option.value ~default:spec.rel_tol rel_tol in
        let rel =
          if base = 0. then if delta = 0. then 0. else infinity
          else Float.abs delta /. Float.abs base
        in
        let beyond = rel > rel_tol && Float.abs delta > spec.abs_floor in
        if not beyond then Unchanged
        else if worse then Regressed
        else Improved
  in
  { metric; base; cur; delta_pct; status; severity = spec.severity }

let ( let* ) = Result.bind

let envelope_meta json =
  match (Json.member "schema_version" json, Json.member "bench" json) with
  | Some (Json.Int v), Some (Json.String kind) -> Ok (v, kind)
  | _ -> Error "not a bench envelope (missing schema_version or bench kind)"

let diff ?rel_tol ~baseline ~current () =
  let* bv, bkind = envelope_meta baseline in
  let* cv, ckind = envelope_meta current in
  let* () =
    if bv <> cv || bv <> Json.schema_version then
      Error
        (Printf.sprintf
           "schema_version mismatch: baseline v%d, current v%d (this tool \
            speaks v%d)"
           bv cv Json.schema_version)
    else Ok ()
  in
  let* () =
    if bkind <> ckind then
      Error (Printf.sprintf "bench kind mismatch: %S vs %S" bkind ckind)
    else Ok ()
  in
  let* specs =
    match specs_for bkind with
    | [] -> Error (Printf.sprintf "no metric specs for bench kind %S" bkind)
    | specs -> Ok specs
  in
  let comparisons, missing =
    List.fold_left
      (fun (cs, ms) spec ->
        match (lookup spec.path baseline, lookup spec.path current) with
        | Some base, Some cur ->
            (compare_one ?rel_tol spec ~base ~cur :: cs, ms)
        | _ -> (cs, String.concat "." spec.path :: ms))
      ([], []) specs
  in
  let comparisons = List.rev comparisons and missing = List.rev missing in
  let count sev =
    List.length
      (List.filter
         (fun c -> c.status = Regressed && c.severity = sev)
         comparisons)
  in
  Ok
    {
      kind = bkind;
      comparisons;
      missing;
      hard_regressions = count Hard;
      soft_regressions = count Soft;
    }

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else Printf.sprintf "%.6g" v

let status_str c =
  match (c.status, c.severity) with
  | Regressed, Hard -> "REGRESSED"
  | Regressed, Soft -> "regressed (warn)"
  | Improved, _ -> "improved"
  | Unchanged, _ -> "ok"

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "bench %s: %d metric(s) compared\n" r.kind
       (List.length r.comparisons));
  let metric_w =
    List.fold_left (fun w c -> max w (String.length c.metric)) 6 r.comparisons
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  %12s  %12s  %8s  %s\n" metric_w "metric"
       "baseline" "current" "delta" "status");
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %12s  %12s  %+7.1f%%  %s\n" metric_w c.metric
           (value_str c.base) (value_str c.cur) c.delta_pct (status_str c)))
    r.comparisons;
  List.iter
    (fun c ->
      if c.status = Regressed && c.severity = Soft then
        Buffer.add_string buf
          (Printf.sprintf
             "warning: %s regressed (%s -> %s); timing metric, not gating\n"
             c.metric (value_str c.base) (value_str c.cur)))
    r.comparisons;
  if r.missing <> [] then
    Buffer.add_string buf
      (Printf.sprintf "missing from one side: %s\n"
         (String.concat ", " r.missing));
  Buffer.add_string buf
    (Printf.sprintf "verdict: %d hard regression(s), %d warning(s)\n"
       r.hard_regressions r.soft_regressions);
  Buffer.contents buf

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int Json.schema_version);
      ("bench", Json.String r.kind);
      ( "comparisons",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("metric", Json.String c.metric);
                   ("baseline", Json.Float c.base);
                   ("current", Json.Float c.cur);
                   ("delta_percent", Json.Float c.delta_pct);
                   ( "status",
                     Json.String
                       (match c.status with
                       | Improved -> "improved"
                       | Unchanged -> "unchanged"
                       | Regressed -> "regressed") );
                   ( "severity",
                     Json.String
                       (match c.severity with Hard -> "hard" | Soft -> "soft")
                   );
                 ])
             r.comparisons) );
      ("missing", Json.List (List.map (fun m -> Json.String m) r.missing));
      ("hard_regressions", Json.Int r.hard_regressions);
      ("soft_regressions", Json.Int r.soft_regressions);
    ]

(* --- trend over the local history file --- *)

type trend_metric = {
  tm_metric : string;
  tm_values : float list;  (* oldest first *)
  tm_slope : float;
  tm_direction : direction;
  tm_verdict : string;
}

type trend_report = {
  t_kind : string;
  t_runs : int;
  t_metrics : trend_metric list;
}

(* Least-squares slope of v against run index 0..n-1. *)
let slope_of values =
  let n = List.length values in
  if n < 2 then 0.
  else begin
    let nf = float_of_int n in
    let xs = List.mapi (fun i _ -> float_of_int i) values in
    let mean l = List.fold_left ( +. ) 0. l /. nf in
    let mx = mean xs and my = mean values in
    let num, den =
      List.fold_left2
        (fun (num, den) x y ->
          (num +. ((x -. mx) *. (y -. my)), den +. ((x -. mx) *. (x -. mx))))
        (0., 0.) xs values
    in
    if den = 0. then 0. else num /. den
  end

let verdict_of direction values slope =
  let n = List.length values in
  match direction with
  | Exact ->
      let all_equal =
        match values with
        | [] -> true
        | v :: rest -> List.for_all (fun x -> x = v) rest
      in
      if all_equal then "stable" else "CHANGING"
  | Lower_better | Higher_better ->
      let mean =
        List.fold_left ( +. ) 0. values /. float_of_int (max 1 n)
      in
      let total_move = slope *. float_of_int (max 1 (n - 1)) in
      let flat =
        slope = 0.
        || (mean <> 0. && Float.abs (total_move /. mean) < 0.02)
      in
      if flat then "flat"
      else begin
        let better =
          match direction with
          | Lower_better -> slope < 0.
          | _ -> slope > 0.
        in
        if better then "improving" else "worsening"
      end

let trend ~kind ?(last = 10) history =
  if last < 2 then Error "trend needs at least the last 2 runs"
  else begin
    let matching =
      List.filter
        (fun j ->
          match envelope_meta j with
          | Ok (v, k) -> v = Json.schema_version && k = kind
          | Error _ -> false)
        history
    in
    let runs =
      let n = List.length matching in
      if n <= last then matching
      else List.filteri (fun i _ -> i >= n - last) matching
    in
    if List.length runs < 2 then
      Error
        (Printf.sprintf
           "not enough %S runs in the history (%d found, need >= 2)" kind
           (List.length runs))
    else begin
      match specs_for kind with
      | [] -> Error (Printf.sprintf "no metric specs for bench kind %S" kind)
      | specs ->
          let metrics =
            List.filter_map
              (fun spec ->
                let values = List.filter_map (lookup spec.path) runs in
                (* Skip metrics absent from part of the window rather
                   than misaligning the series. *)
                if List.length values <> List.length runs then None
                else begin
                  let slope = slope_of values in
                  Some
                    {
                      tm_metric = String.concat "." spec.path;
                      tm_values = values;
                      tm_slope = slope;
                      tm_direction = spec.direction;
                      tm_verdict = verdict_of spec.direction values slope;
                    }
                end)
              specs
          in
          Ok { t_kind = kind; t_runs = List.length runs; t_metrics = metrics }
    end
  end

let render_trend r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "bench %s: trend over last %d run(s)\n" r.t_kind r.t_runs);
  let metric_w =
    List.fold_left
      (fun w m -> max w (String.length m.tm_metric))
      6 r.t_metrics
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  %12s  %12s  %12s  %s\n" metric_w "metric" "first"
       "last" "slope/run" "trend");
  List.iter
    (fun m ->
      let first = List.hd m.tm_values
      and last = List.hd (List.rev m.tm_values) in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %12s  %12s  %12s  %s\n" metric_w m.tm_metric
           (value_str first) (value_str last)
           (Printf.sprintf "%+.4g" m.tm_slope)
           m.tm_verdict))
    r.t_metrics;
  Buffer.contents buf

let append ~path json =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n')
