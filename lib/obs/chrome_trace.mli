(** Chrome trace-event JSON export of recorded spans.

    Produces the ["traceEvents"] object format understood by Perfetto
    ({:https://ui.perfetto.dev}) and [chrome://tracing]: each completed
    span becomes one complete ("ph": "X") event with microsecond [ts]
    and [dur], [pid] 1, and the recording domain's id as [tid] — so a
    [Par]-parallel solve shows sibling subtree merges on separate
    tracks. Timestamps are rebased to the earliest span so traces
    start near zero regardless of the monotonic clock's origin.

    Every trace also carries one metadata ("ph": "M") event named
    [spans_dropped] whose [args.count] records how many spans the
    recorder discarded (saturated per-domain buffer, or an export
    taken mid-solve) — [0] for a complete trace. {!Trace_reader}
    surfaces it and [profile] warns when it is nonzero, so a truncated
    profile is detectable rather than silently wrong.

    The {!validate} direction (parse + structural checks) backs the
    [obs-validate] CLI command, the cram suite and the CI smoke step:
    exporter regressions fail fast without external tooling. *)

type counter = {
  c_name : string;  (** counter track name, e.g. ["gc.heap_words"] *)
  c_ts_ns : int;  (** same monotonic timebase as span [start_ns] *)
  c_values : (string * float) list;  (** one series per key *)
}
(** A counter ("ph": "C") sample; Perfetto renders each [c_values] key
    as a series on the named counter track. The telemetry loop emits
    one heap sample per epoch so allocation rate is visible alongside
    the span timeline. *)

val to_json : ?dropped:int -> ?counters:counter list -> Span.span list -> Json.t
(** [dropped] defaults to [0]; pass {!Span.dropped} at export time.
    Spans carrying nonzero [minor_w]/[major_w] (alloc capture on) emit
    them as reserved [args] keys, which {!Trace_reader} lifts back into
    span fields. *)

val to_string :
  ?pretty:bool -> ?dropped:int -> ?counters:counter list -> Span.span list ->
  string

val write_file :
  ?dropped:int -> ?counters:counter list -> string -> Span.span list -> unit
(** Pretty-printed, trailing newline. *)

val validate : string -> (int, string) result
(** [validate contents] checks that [contents] parses as JSON and has
    the trace-event shape: a top-level object with a ["traceEvents"]
    list whose members each carry a string ["name"], string ["ph"],
    numeric ["ts"] and integer ["pid"]/["tid"]; "X" events must also
    carry a non-negative numeric ["dur"]. Returns the event count. *)
