(** Bounded per-epoch time series over the {!Metrics} registry.

    A harness driving an epoch loop calls {!sample} once per epoch;
    every [stride]-th call snapshots the whole registry (instruments
    and collectors alike) into one {e point} — a flat list of scalar
    rows — and appends it to a ring of at most [capacity] points, so a
    long-running service keeps a recent window rather than an
    unbounded log.

    {b Row semantics.} Counters and histogram [count]/[sum] report the
    {e delta since the previous recorded sample} (work done in the
    interval); gauges report their current value; histograms
    additionally contribute their current [p50]/[p99] point estimates
    as [name.p50] / [name.p99] rows. Labels pass through, so one
    family yields one row per label set ([shard="3"], ...).

    Sampling never perturbs the instruments — the engine's placements
    are bit-identical with sampling on or off — and costs one registry
    read per recorded epoch (the [obs] benchmark pins this under 1% of
    epoch time at 100 series).

    Two exports: {!to_json} (the [timeseries] field of the engine and
    forest [--json] envelopes, and the [--timeseries] artifact) and
    {!to_openmetrics} (gauge families with the epoch index in the
    timestamp column, [# EOF]-terminated; {!Prometheus.validate}
    accepts it). {!series} backs the [top] view's sparklines. *)

type row = { r_name : string; r_labels : Metrics.labels; r_value : float }
type point = { pt_epoch : int; pt_rows : row list }
type t

val create : ?capacity:int -> ?stride:int -> unit -> t
(** [capacity] (default [1024]) bounds retained points — the oldest is
    overwritten past it. [stride] (default [1]) records every
    [stride]-th {!sample} call. [Invalid_argument] if either is
    [< 1]. *)

val sample : t -> epoch:int -> unit
(** Call once per epoch with the epoch index; records a point on every
    [stride]-th call (counting from the first). *)

val stride : t -> int

val length : t -> int
(** Points currently retained. *)

val points : t -> point list
(** Oldest first. *)

val key : string -> Metrics.labels -> string
(** [name{k="v",...}] — the flattened series identity used by
    {!series} and the JSON export's metric keys. *)

val series : t -> string -> (int * float) list
(** [(epoch, value)] pairs, oldest first, for one flattened key. *)

val to_json : t -> Json.t
(** A list of [{"epoch": e, "metrics": {key: value, ...}}] objects,
    oldest first. *)

val to_openmetrics : t -> string
(** Every series as a gauge family, one sample per recorded point with
    the epoch index as the timestamp, terminated by [# EOF]. *)
