(* The JSON tree/printer/parser moved down to replicaml.obs so the
   observability exporters can share it; this forwarding module keeps
   [Replica_engine.Json] working for existing consumers (bench, CLI). *)
include Replica_obs.Json
