type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let schema_version = 1

let envelope ~kind ~config fields =
  Obj
    ([ ("schema_version", Int schema_version); ("bench", String kind) ]
    @ (if config = [] then [] else [ ("config", Obj config) ])
    @ fields)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_float buf f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.9g" f)

let to_string ?(pretty = false) json =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            pad (depth + 1);
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf (if pretty then "\": " else "\":");
            emit (depth + 1) v)
          members;
        newline ();
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 json;
  Buffer.contents buf
