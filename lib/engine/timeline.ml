module Json = Replica_obs.Json

type latency = { p50 : float; p90 : float; p99 : float }

type entry = {
  epoch : int;
  demand : int;
  changed : int;
  dirty : int;
  reconfigured : bool;
  staleness : int;
  servers : Solution.t;
  step_cost : float;
  valid : bool;
  unserved : int;
  overloaded : int;
  power : float option;
  solve_seconds : float;
  solve_latency : latency option;
  counters : (string * int) list;
}

type t = {
  entries : entry list;
  total_cost : float;
  reconfigurations : int;
  invalid_epochs : int;
  solve_seconds : float;
  solve_latency : latency option;
}

let of_entries (entries : entry list) =
  {
    entries;
    total_cost = List.fold_left (fun a (e : entry) -> a +. e.step_cost) 0. entries;
    reconfigurations =
      List.length (List.filter (fun (e : entry) -> e.reconfigured) entries);
    invalid_epochs =
      List.length (List.filter (fun (e : entry) -> not e.valid) entries);
    solve_seconds =
      List.fold_left (fun a (e : entry) -> a +. e.solve_seconds) 0. entries;
    solve_latency =
      (* The last entry carrying quantiles has seen every solve. *)
      List.fold_left
        (fun acc (e : entry) ->
          match e.solve_latency with Some _ as l -> l | None -> acc)
        None entries;
  }

let print ?(times = false) oc t =
  List.iter
    (fun e ->
      Printf.fprintf oc "epoch %2d: demand %4d  changed %3d  dirty %3d  %2d servers"
        e.epoch e.demand e.changed e.dirty
        (Solution.cardinal e.servers);
      if e.reconfigured then begin
        Printf.fprintf oc "  reconfigured cost %.2f" e.step_cost;
        if times then Printf.fprintf oc " (%.2f ms)" (1000. *. e.solve_seconds)
      end
      else Printf.fprintf oc "  stale %d" e.staleness;
      (match e.power with
      | Some p -> Printf.fprintf oc "  power %.1f" p
      | None -> ());
      if not e.valid then
        Printf.fprintf oc "  INVALID unserved %d overloaded %d" e.unserved
          e.overloaded;
      Printf.fprintf oc "\n")
    t.entries;
  Printf.fprintf oc "total: %d reconfigurations, bill %.2f, %d invalid epochs"
    t.reconfigurations t.total_cost t.invalid_epochs;
  if times then begin
    Printf.fprintf oc ", solve %.2f ms" (1000. *. t.solve_seconds);
    match t.solve_latency with
    | Some l ->
        Printf.fprintf oc " (p50/p90/p99 %.2f/%.2f/%.2f ms)" (1000. *. l.p50)
          (1000. *. l.p90) (1000. *. l.p99)
    | None -> ()
  end;
  Printf.fprintf oc "\n"

let latency_to_json = function
  | None -> Json.Null
  | Some l ->
      Json.Obj
        [
          ("p50_s", Json.Float l.p50);
          ("p90_s", Json.Float l.p90);
          ("p99_s", Json.Float l.p99);
        ]

let entry_to_json e =
  Json.Obj
    [
      ("epoch", Json.Int e.epoch);
      ("demand", Json.Int e.demand);
      ("changed_nodes", Json.Int e.changed);
      ("dirty_nodes", Json.Int e.dirty);
      ("reconfigured", Json.Bool e.reconfigured);
      ("staleness", Json.Int e.staleness);
      ( "servers",
        Json.List (List.map (fun n -> Json.Int n) (Solution.nodes e.servers)) );
      ("server_count", Json.Int (Solution.cardinal e.servers));
      ("step_cost", Json.Float e.step_cost);
      ("valid", Json.Bool e.valid);
      ("unserved", Json.Int e.unserved);
      ("overloaded", Json.Int e.overloaded);
      ( "power",
        match e.power with Some p -> Json.Float p | None -> Json.Null );
      ("solve_seconds", Json.Float e.solve_seconds);
      ("solve_latency", latency_to_json e.solve_latency);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters) );
    ]

let to_json ?(config = []) ?timeseries t =
  Json.envelope ~kind:"engine_timeline" ~config
    ([
       ( "summary",
         Json.Obj
           [
             ("epochs", Json.Int (List.length t.entries));
             ("total_cost", Json.Float t.total_cost);
             ("reconfigurations", Json.Int t.reconfigurations);
             ("invalid_epochs", Json.Int t.invalid_epochs);
             ("solve_seconds", Json.Float t.solve_seconds);
             ("solve_latency", latency_to_json t.solve_latency);
           ] );
       ("epochs", Json.List (List.map entry_to_json t.entries));
     ]
    @
    match timeseries with
    | None -> []
    | Some ts -> [ ("timeseries", Replica_obs.Timeseries.to_json ts) ])

let to_json_string ?config ?timeseries t =
  Json.to_string ~pretty:true (to_json ?config ?timeseries t)
