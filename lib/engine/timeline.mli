(** Machine-readable record of an online reconfiguration run.

    One {!entry} per served epoch: what the demand did (total, how many
    nodes' client sets moved, how much of the tree an incremental
    re-solver must consider dirty), what the engine decided
    (reconfigured or kept the placement, and at what Eq. 2/Eq. 4
    reconfiguration cost), how healthy the result is (validity,
    unserved requests, overloaded servers, placement staleness,
    per-epoch power), and what the solve cost the machine (wall-clock
    seconds plus the {!Replica_core.Stats_counters} deltas attributable
    to this epoch's solve).

    The same timeline backs three surfaces: the human-oriented
    {!print} used by [replica_cli trace] and [replica_cli engine], the
    {!to_json} artifact (standard {!Replica_obs.Json.envelope}, so
    [BENCH_engine.json] shares the envelope of every other bench
    artifact), and the test suite's differential assertions. *)

type latency = { p50 : float; p90 : float; p99 : float }
(** Solve-latency quantiles in seconds, estimated from the engine's
    log2 histogram (geometric bin midpoints, within 2x of the true
    value either way; always [p50 <= p90 <= p99]). *)

type entry = {
  epoch : int;  (** 1-based *)
  demand : int;  (** total requests this epoch *)
  changed : int;
      (** nodes whose client multiset differs from the previous epoch
          (first epoch: every node) *)
  dirty : int;
      (** changed nodes plus every ancestor up to the root — the tables
          an incremental re-solve may have to rebuild *)
  reconfigured : bool;
  staleness : int;
      (** epochs since the placement last changed; 0 when (re)placed
          this epoch *)
  servers : Solution.t;  (** placement in force after this epoch *)
  step_cost : float;  (** reconfiguration cost paid this epoch *)
  valid : bool;
  unserved : int;
      (** shortfall when invalid: requests escaping past the root plus
          per-server load beyond capacity *)
  overloaded : int;  (** number of servers beyond capacity *)
  power : float option;
      (** Eq. 3 power of the placement under this epoch's load, when a
          power model is configured and the placement is valid *)
  solve_seconds : float;  (** 0 when no solve ran *)
  solve_latency : latency option;
      (** running quantiles over every solve up to and including this
          epoch; [None] until the first solve *)
  counters : (string * int) list;
      (** {!Stats_counters} deltas during this epoch's solve (nonzero
          entries only, sorted by name, computed with
          {!Stats_counters.diff}) *)
}

type t = {
  entries : entry list;
  total_cost : float;
  reconfigurations : int;
  invalid_epochs : int;
  solve_seconds : float;  (** total across epochs *)
  solve_latency : latency option;  (** quantiles over the whole run *)
}

val of_entries : entry list -> t
(** Aggregate the summary fields. *)

val print : ?times:bool -> out_channel -> t -> unit
(** One line per epoch plus a summary line. With [times = false] (the
    default) the output contains no wall-clock figures and is fully
    deterministic for a fixed run — what the cram tests and examples
    pin. *)

val to_json :
  ?config:(string * Replica_obs.Json.t) list ->
  ?timeseries:Replica_obs.Timeseries.t ->
  t ->
  Replica_obs.Json.t
(** The timeline as a {!Replica_obs.Json.envelope} of kind ["engine_timeline"];
    [config] records the run configuration. [timeseries] (a recorder
    the driver sampled once per epoch) adds a ["timeseries"] field of
    per-epoch metric points. *)

val to_json_string :
  ?config:(string * Replica_obs.Json.t) list ->
  ?timeseries:Replica_obs.Timeseries.t ->
  t ->
  string
(** Pretty-printed {!to_json}. *)
