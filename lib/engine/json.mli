(** Re-export of {!Replica_obs.Json}, where the shared JSON tree,
    printer and parser now live (the observability exporters in
    [replicaml.obs] need them below this library in the dependency
    stack). See that module for documentation. *)

include module type of struct
  include Replica_obs.Json
end
