(** Minimal JSON emission for machine-readable run artifacts.

    The engine's timelines and the benchmark harness's [BENCH_*.json]
    files are consumed by plotting scripts and cross-PR trajectory
    comparisons, so they need a stable, self-describing envelope — but
    nothing here warrants a parser dependency. This module is an
    emitter only: a value type, deterministic serialization (object
    keys are emitted in the order given; floats via ["%.9g"]; NaN and
    infinities become [null]), and the shared envelope every artifact
    opens with. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val schema_version : int
(** Version of the shared artifact envelope. Bump when a field of an
    emitted [BENCH_*.json] or timeline changes meaning — consumers
    comparing trajectories across PRs key on this. *)

val envelope : kind:string -> config:(string * t) list -> (string * t) list -> t
(** [envelope ~kind ~config fields] is the standard artifact object:
    [{"schema_version": …, "bench": kind, "config": {…}, …fields}].
    The [config] block records the run configuration (tree size, seed,
    prune/domains, …) so trajectories stay comparable across PRs. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default [false]) indents objects and lists by
    two spaces per level, one member per line. *)
