(** Online reconfiguration engine: epoch-driven serving of a demand
    stream against a live replica placement.

    The paper's §6 frames dynamic replica management as a sequence of
    steady-state epochs punctuated by reconfigurations, and
    {!Replica_core.Update_policy} runs that trade-off as a batch
    experiment. This module is the runtime the reproduction was
    missing: a stateful engine that consumes epoch demand trees (or a
    raw {!Replica_trace.Trace} aggregated through
    {!Replica_trace.Epochs}), maintains the live placement and its
    per-server loads, fires the configured {!Update_policy.policy}
    trigger each epoch, and re-solves through the solver registry —
    by default {!Registry.default_for} the objective ([dp-withpre] for
    the Eq. 2 cost objectives, [dp-power] under a cost bound for the
    Eq. 3/Eq. 4 power objective), or any registered algorithm named in
    [config.algo] whose capability matches. The placement chosen at
    epoch [k] becomes the pre-existing set of epoch [k+1] (with its
    operating modes as initial modes in the power objective), exactly
    the paper's update model.

    {2 Incremental re-solving}

    With [solver = Incremental] and a registry entry that
    [supports_incremental], the engine keeps the solver's opaque
    {!Solver.memo} alive across epochs: subtree tables are cached under
    demand fingerprints, so an epoch that shifted demand in one subtree
    re-solves only the root-to-changed-leaf paths — the rest of the
    tree is served from cache. Placements are {e bit-identical} to
    [solver = Full] (the full re-solve is the oracle the differential
    test suite and the [bench engine] harness compare against); only
    the work changes, visible in each timeline entry's counter deltas
    ([dp_withpre.memo_hits], …) and solve times. For entries without
    incremental support, [Incremental] silently degrades to [Full].

    Every epoch appends a {!Timeline.entry} (demand movement, decision,
    health, solver work), giving one machine-readable record of the
    whole run. *)

type objective = Problem.objective =
  | Min_servers  (** reconfigure to the fewest servers *)
  | Min_cost of Cost.basic  (** reconfigure to the Eq. 2 optimum *)
  | Min_power of {
      modes : Modes.t;
      power : Power.t;
      cost : Cost.modal;
      bound : float;
    }
      (** reconfigure to the minimal-power placement of Eq. 4 cost at
          most [bound]; [Modes.max_capacity modes] must equal the
          engine's [w] *)

type solver =
  | Full  (** re-solve from scratch every reconfiguration *)
  | Incremental  (** keep the solver's memo alive across epochs *)

type config = {
  w : int;  (** server capacity (maximal mode) *)
  objective : objective;
  policy : Update_policy.policy;
  solver : solver;
  algo : string option;
      (** registry name of the solver to reconfigure with; [None]
          selects {!Registry.default_for} the objective *)
  report_power : (Modes.t * Power.t) option;
      (** with a cost objective, also report each epoch's Eq. 3 power
          under this model in the timeline (a [Min_power] objective
          always reports its own) *)
}

val config :
  ?policy:Update_policy.policy ->
  ?solver:solver ->
  ?algo:string ->
  ?report_power:Modes.t * Power.t ->
  w:int ->
  objective ->
  config
(** Convenience constructor; [policy] defaults to {!Update_policy.Lazy},
    [solver] to [Incremental], [algo] to the registry default. *)

type t
(** A running engine (mutable: placement, memo, epoch counter). *)

val create : config -> t
(** Fresh engine with an empty placement.
    @raise Invalid_argument if [w <= 0], a [Min_power] ladder's maximal
    capacity differs from [w], [algo] names no registered solver, or
    the named solver's capability rejects the objective (wrong
    objective family, or a finite bound it cannot honour). *)

val step : t -> Tree.t -> Timeline.entry
(** Serve one epoch: diff the demand against the previous epoch, fire
    the update policy, re-solve if triggered (the current placement
    becoming the pre-existing set), and record the outcome. An epoch
    whose demand is unserveable even by a fresh optimal placement keeps
    the current placement and is recorded invalid with its shortfall.
    Epoch validity includes QoS and bandwidth when the demand tree
    carries them.
    @raise Invalid_argument if the demand tree carries QoS/bandwidth
    constraints the engine's solver cannot enforce — constraints can
    appear mid-run (CLI tightening), so this is checked per epoch. *)

val placement : t -> Solution.t
(** Placement currently in force. *)

val override_placement : t -> Tree.t -> Solution.t -> unit
(** [override_placement t tree sol] replaces the placement in force with
    [sol], evaluated against [tree] (this epoch's demand view) to fix
    the operating modes that become the next epoch's initial modes.
    Used by coordinators that post-process an epoch's placement — the
    forest engine's cross-object coupling repair — so the adjusted set
    is what the next epoch treats as pre-existing. *)

val epochs_served : t -> int

val solver_name : t -> string
(** Registry name of the solver this engine reconfigures with. *)

val memo_tables : t -> int
(** Tables currently held by the incremental memo (0 for [Full] or a
    solver without incremental support). *)

val run : config -> Tree.t list -> Timeline.t
(** [run config demands] steps a fresh engine through every epoch. *)

val run_trace : config -> Tree.t -> Replica_trace.Trace.t -> window:float -> Timeline.t
(** Aggregate the trace into window epochs over the tree
    ({!Replica_trace.Epochs.epochs}) and {!run} them. *)
