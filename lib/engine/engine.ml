type objective = Problem.objective =
  | Min_servers
  | Min_cost of Cost.basic
  | Min_power of {
      modes : Modes.t;
      power : Power.t;
      cost : Cost.modal;
      bound : float;
    }

type solver = Full | Incremental

type config = {
  w : int;
  objective : objective;
  policy : Update_policy.policy;
  solver : solver;
  algo : string option;
  report_power : (Modes.t * Power.t) option;
}

let config ?(policy = Update_policy.Lazy) ?(solver = Incremental) ?algo
    ?report_power ~w objective =
  { w; objective; policy; solver; algo; report_power }

module Span = Replica_obs.Span
module Histogram = Replica_obs.Histogram
module Metrics = Replica_obs.Metrics
module Clock = Replica_obs.Clock

type t = {
  cfg : config;
  entry_solver : Solver.t;  (* registry entry reconfigurations go through *)
  lat_h : Histogram.t;
      (* per-instance (unregistered) so concurrent engines in an
         experiment sweep don't mix their timelines' percentiles *)
  m_epochs : Metrics.t;
  m_reconfigs : Metrics.t;
  m_staleness : Metrics.t;
  m_solve : Metrics.t;
  m_memo : Metrics.t;
  memo : Solver.memo option;
      (* solver-private incremental state, threaded back each epoch *)
  mutable placement : Solution.t;
  mutable placement_modes : (Tree.node * int) list;
      (* pre-existing set (with initial modes) the next solve starts from *)
  mutable last_demand : int;  (* total demand at the last reconfiguration *)
  mutable epoch : int;
  mutable staleness : int;
  mutable prev : Tree.t option;  (* previous epoch's demand tree *)
}

(* Capability validation at engine creation, without a demand tree in
   hand yet: the objective/bound checks of {!Solver.mismatch} on the
   configured entry. Failing here beats silently holding position every
   epoch because the solver rejects the problem. *)
let resolve_solver cfg =
  let entry =
    match cfg.algo with
    | None -> Registry.default_for cfg.objective
    | Some name -> (
        match Registry.find name with
        | Some s -> s
        | None ->
            invalid_arg
              (Printf.sprintf "Engine: unknown solver %S (see --list-algos)"
                 name))
  in
  let c = entry.Solver.capability in
  (match cfg.objective with
  | Min_power { bound; _ } ->
      if not c.Solver.handles_power then
        invalid_arg
          (Printf.sprintf "Engine: %s solves cost problems only"
             entry.Solver.name);
      if bound < infinity && not c.Solver.handles_bound then
        invalid_arg
          (Printf.sprintf "Engine: %s does not support a finite cost bound"
             entry.Solver.name)
  | Min_servers | Min_cost _ ->
      if not c.Solver.handles_cost then
        invalid_arg
          (Printf.sprintf "Engine: %s solves power problems only"
             entry.Solver.name));
  entry

let create cfg =
  if cfg.w <= 0 then invalid_arg "Engine: w must be positive";
  (match cfg.objective with
  | Min_power { modes; _ } when Modes.max_capacity modes <> cfg.w ->
      invalid_arg "Engine: w must equal the mode ladder's maximal capacity"
  | _ -> ());
  let entry_solver = resolve_solver cfg in
  (* Labeled registry instruments, interned by (name, labels): two
     engines with the same solver and policy share series, and the
     exposition distinguishes e.g. solver="dp-qos" from
     solver="greedy". Updates are side-effect-only — placements are
     bit-identical with telemetry consumers attached or not. *)
  let labels =
    [
      ("solver", entry_solver.Solver.name);
      ("policy", Update_policy.policy_to_string cfg.policy);
    ]
  in
  {
    cfg;
    entry_solver;
    lat_h = Histogram.make "engine.epoch_solve_ns";
    m_epochs = Metrics.counter ~labels "engine.epochs";
    m_reconfigs = Metrics.counter ~labels "engine.reconfigurations";
    m_staleness = Metrics.gauge ~labels "engine.staleness";
    m_solve = Metrics.histogram ~labels "engine.epoch_solve_ns";
    m_memo = Metrics.histogram ~labels "engine.memo_hit_ratio_pct";
    memo =
      (match (cfg.solver, entry_solver.Solver.make_memo) with
      | Incremental, Some mk
        when entry_solver.Solver.capability.Solver.supports_incremental ->
          Some (mk ())
      | _ -> None);
    placement = Solution.empty;
    placement_modes = [];
    last_demand = 0;
    epoch = 0;
    staleness = 0;
    prev = None;
  }

let placement t = t.placement
let epochs_served t = t.epoch
let solver_name t = t.entry_solver.Solver.name

let memo_tables t =
  match (t.memo, t.entry_solver.Solver.memo_size) with
  | Some m, Some size -> size m
  | _ -> 0

(* Memo hit percentage over this epoch's solve, from the counter
   deltas; None when the solver consulted no memo at all. *)
let memo_hit_pct counters =
  let get k = try List.assoc k counters with Not_found -> 0 in
  let hits = get "dp_withpre.memo_hits" + get "dp_power.memo_hits" in
  let total =
    hits
    + get "dp_withpre.memo_partial"
    + get "dp_withpre.memo_misses"
    + get "dp_power.memo_partial"
    + get "dp_power.memo_misses"
  in
  if total = 0 then None else Some (100 * hits / total)

(* Operating mode of every server under this epoch's demand — the
   initial modes of the next epoch's pre-existing set. *)
let modes_in_force cfg tree solution =
  let ev = Solution.evaluate tree solution in
  match cfg.objective with
  | Min_servers | Min_cost _ ->
      List.map (fun (j, _) -> (j, 1)) ev.Solution.loads
  | Min_power { modes; _ } ->
      List.map
        (fun (j, load) -> (j, Modes.mode_of_load modes load))
        ev.Solution.loads

(* A coordinator (the forest's coupling repair) may adjust this epoch's
   placement after [step] returns; recording it here makes the adjusted
   set — with its operating modes — the pre-existing state the next
   epoch's solve starts from, exactly as if [step] had chosen it. *)
let override_placement t tree solution =
  t.placement <- solution;
  t.placement_modes <- modes_in_force t.cfg tree solution

let shortfall tree ~w servers =
  let ev = Solution.evaluate tree servers in
  List.fold_left
    (fun acc (_, load) -> acc + max 0 (load - w))
    ev.Solution.unserved ev.Solution.loads

let solve_once t tree =
  let with_pre = Tree.with_pre_existing tree t.placement_modes in
  let problem = Problem.make with_pre ~w:t.cfg.w t.cfg.objective in
  let request = Solver.request ?memo:t.memo () in
  (* [step] brackets this call with its own counter snapshots (the
     timeline wants deltas even for failed solves), so invoke the
     entry's solve directly rather than through {!Solver.run}. *)
  match t.entry_solver.Solver.solve problem request with
  | Some o ->
      Some (o.Solver.solution, Option.value o.Solver.cost ~default:0.)
  | None -> None

(* Epoch trees may acquire QoS/bandwidth constraints mid-run (the CLI's
   [--qos Q@E] / [--bw S@E] tightening); an entry solver that cannot
   enforce them would keep emitting placements that violate the epoch's
   constraints, so fail fast instead. Checked per epoch because
   creation never sees a demand tree. *)
let check_constraint_capability t demand_tree =
  let c = t.entry_solver.Solver.capability in
  if Tree.has_qos demand_tree && not c.Solver.handles_qos then
    invalid_arg
      (Printf.sprintf
         "Engine: %s cannot enforce the epoch's QoS bounds (use a \
          qos-capable solver, e.g. dp-qos)"
         t.entry_solver.Solver.name);
  if Tree.has_bandwidth demand_tree && not c.Solver.handles_bw then
    invalid_arg
      (Printf.sprintf
         "Engine: %s cannot enforce the epoch's bandwidth caps (use a \
          bw-capable solver, e.g. dp-qos)"
         t.entry_solver.Solver.name)

let step t demand_tree =
  check_constraint_capability t demand_tree;
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "engine.epoch";
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let demand = Tree.total_requests demand_tree in
  let size = Tree.size demand_tree in
  if tracing then Span.begin_span "engine.demand_diff";
  let changed_list =
    match t.prev with
    | None -> List.init size Fun.id
    | Some p -> Replica_trace.Epochs.changed_nodes p demand_tree
  in
  t.prev <- Some demand_tree;
  let dirty =
    let seen = Array.make size false in
    List.iter
      (fun j ->
        seen.(j) <- true;
        List.iter
          (fun a -> seen.(a) <- true)
          (Tree.ancestors demand_tree j))
      changed_list;
    Array.fold_left (fun n b -> if b then n + 1 else n) 0 seen
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("changed", Span.Int (List.length changed_list));
          ("dirty", Span.Int dirty);
        ]
      ();
  if tracing then Span.begin_span "engine.policy";
  let servers_valid = Solution.is_valid demand_tree ~w:t.cfg.w t.placement in
  let reconfigure =
    Update_policy.should_reconfigure t.cfg.policy ~epoch ~servers_valid
      ~demand ~last_demand:t.last_demand
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("servers_valid", Span.Bool servers_valid);
          ("reconfigure", Span.Bool reconfigure);
        ]
      ();
  let counters_before = if reconfigure then Stats_counters.snapshot () else [] in
  if tracing && reconfigure then Span.begin_span "engine.solve";
  let solve_start = Clock.now_ns () in
  let solved = if reconfigure then solve_once t demand_tree else None in
  let solve_ns = if reconfigure then Clock.now_ns () - solve_start else 0 in
  if tracing && reconfigure then
    Span.end_span ~args:[ ("solved", Span.Bool (solved <> None)) ] ();
  let counters =
    if reconfigure then
      Stats_counters.diff counters_before (Stats_counters.snapshot ())
    else []
  in
  if reconfigure then begin
    Histogram.observe t.lat_h solve_ns;
    Metrics.observe t.m_solve solve_ns;
    Metrics.incr t.m_reconfigs;
    match memo_hit_pct counters with
    | Some pct -> Metrics.observe t.m_memo pct
    | None -> ()
  end;
  Metrics.incr t.m_epochs;
  let solve_seconds = float_of_int solve_ns *. 1e-9 in
  if tracing then Span.begin_span "engine.apply";
  let reconfigured, step_cost =
    match solved with
    | Some (solution, cost) ->
        t.placement <- solution;
        t.placement_modes <- modes_in_force t.cfg demand_tree solution;
        t.last_demand <- demand;
        t.staleness <- 0;
        (true, cost)
    | None ->
        (* Either the policy kept the placement, or the epoch is
           unserveable even by a fresh optimal solve: hold position. *)
        t.staleness <- t.staleness + 1;
        (false, 0.)
  in
  Metrics.set t.m_staleness (float_of_int t.staleness);
  let valid, unserved, overloaded =
    match Solution.validate demand_tree ~w:t.cfg.w t.placement with
    | Ok _ -> (true, 0, 0)
    | Error violations ->
        ( false,
          shortfall demand_tree ~w:t.cfg.w t.placement,
          List.length
            (List.filter
               (function Solution.Overloaded _ -> true | _ -> false)
               violations) )
  in
  let power =
    if not valid then None
    else
      match t.cfg.objective with
      | Min_power { modes; power; _ } ->
          Some (Solution.power demand_tree modes power t.placement)
      | Min_servers | Min_cost _ -> (
          match t.cfg.report_power with
          | Some (modes, power) ->
              Some (Solution.power demand_tree modes power t.placement)
          | None -> None)
  in
  if tracing then
    Span.end_span ~args:[ ("reconfigured", Span.Bool reconfigured) ] ();
  let solve_latency =
    if Histogram.count t.lat_h = 0 then None
    else
      let s = Histogram.summary t.lat_h in
      Some
        {
          Timeline.p50 = float_of_int s.Histogram.p50 *. 1e-9;
          p90 = float_of_int s.Histogram.p90 *. 1e-9;
          p99 = float_of_int s.Histogram.p99 *. 1e-9;
        }
  in
  let entry =
    {
      Timeline.epoch;
      demand;
      changed = List.length changed_list;
      dirty;
      reconfigured;
      staleness = t.staleness;
      servers = t.placement;
      step_cost;
      valid;
      unserved;
      overloaded;
      power;
      solve_seconds;
      solve_latency;
      counters;
    }
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("epoch", Span.Int epoch);
          ("demand", Span.Int demand);
          ("reconfigured", Span.Bool reconfigured);
        ]
      ();
  entry

let run cfg demands =
  let t = create cfg in
  Timeline.of_entries (List.map (step t) demands)

let run_trace cfg tree trace ~window =
  run cfg (Replica_trace.Epochs.epochs trace tree ~window)
