type objective =
  | Min_cost of Cost.basic
  | Min_power of {
      modes : Modes.t;
      power : Power.t;
      cost : Cost.modal;
      bound : float;
    }

type solver = Full | Incremental

type config = {
  w : int;
  objective : objective;
  policy : Update_policy.policy;
  solver : solver;
  report_power : (Modes.t * Power.t) option;
}

let config ?(policy = Update_policy.Lazy) ?(solver = Incremental) ?report_power
    ~w objective =
  { w; objective; policy; solver; report_power }

type t = {
  cfg : config;
  wp_memo : Dp_withpre.memo option;
  pw_memo : Dp_power.memo option;
  mutable placement : Solution.t;
  mutable placement_modes : (Tree.node * int) list;
      (* pre-existing set (with initial modes) the next solve starts from *)
  mutable last_demand : int;  (* total demand at the last reconfiguration *)
  mutable epoch : int;
  mutable staleness : int;
  mutable prev : Tree.t option;  (* previous epoch's demand tree *)
}

let create cfg =
  if cfg.w <= 0 then invalid_arg "Engine: w must be positive";
  (match cfg.objective with
  | Min_power { modes; _ } when Modes.max_capacity modes <> cfg.w ->
      invalid_arg "Engine: w must equal the mode ladder's maximal capacity"
  | _ -> ());
  {
    cfg;
    wp_memo =
      (match (cfg.solver, cfg.objective) with
      | Incremental, Min_cost _ -> Some (Dp_withpre.memo ())
      | _ -> None);
    pw_memo =
      (match (cfg.solver, cfg.objective) with
      | Incremental, Min_power _ -> Some (Dp_power.memo ())
      | _ -> None);
    placement = Solution.empty;
    placement_modes = [];
    last_demand = 0;
    epoch = 0;
    staleness = 0;
    prev = None;
  }

let placement t = t.placement
let epochs_served t = t.epoch

let memo_tables t =
  (match t.wp_memo with Some m -> Dp_withpre.memo_size m | None -> 0)
  + match t.pw_memo with Some m -> Dp_power.memo_size m | None -> 0

(* Nonzero counter movement between two sorted registry snapshots. *)
let counters_delta before after =
  let base = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before;
  List.filter_map
    (fun (k, v) ->
      let d = v - try Hashtbl.find base k with Not_found -> 0 in
      if d <> 0 then Some (k, d) else None)
    after

(* Operating mode of every server under this epoch's demand — the
   initial modes of the next epoch's pre-existing set. *)
let modes_in_force cfg tree solution =
  let ev = Solution.evaluate tree solution in
  match cfg.objective with
  | Min_cost _ -> List.map (fun (j, _) -> (j, 1)) ev.Solution.loads
  | Min_power { modes; _ } ->
      List.map
        (fun (j, load) -> (j, Modes.mode_of_load modes load))
        ev.Solution.loads

let shortfall tree ~w servers =
  let ev = Solution.evaluate tree servers in
  List.fold_left
    (fun acc (_, load) -> acc + max 0 (load - w))
    ev.Solution.unserved ev.Solution.loads

let solve_once t tree =
  let with_pre = Tree.with_pre_existing tree t.placement_modes in
  match t.cfg.objective with
  | Min_cost cost -> (
      match Dp_withpre.solve ?memo:t.wp_memo with_pre ~w:t.cfg.w ~cost with
      | Some r -> Some (r.Dp_withpre.solution, r.Dp_withpre.cost)
      | None -> None)
  | Min_power { modes; power; cost; bound } -> (
      match
        Dp_power.solve with_pre ~modes ~power ~cost ~bound ?memo:t.pw_memo ()
      with
      | Some r -> Some (r.Dp_power.solution, r.Dp_power.cost)
      | None -> None)

let step t demand_tree =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let demand = Tree.total_requests demand_tree in
  let size = Tree.size demand_tree in
  let changed_list =
    match t.prev with
    | None -> List.init size Fun.id
    | Some p -> Replica_trace.Epochs.changed_nodes p demand_tree
  in
  t.prev <- Some demand_tree;
  let dirty =
    let seen = Array.make size false in
    List.iter
      (fun j ->
        seen.(j) <- true;
        List.iter
          (fun a -> seen.(a) <- true)
          (Tree.ancestors demand_tree j))
      changed_list;
    Array.fold_left (fun n b -> if b then n + 1 else n) 0 seen
  in
  let servers_valid = Solution.is_valid demand_tree ~w:t.cfg.w t.placement in
  let reconfigure =
    Update_policy.should_reconfigure t.cfg.policy ~epoch ~servers_valid
      ~demand ~last_demand:t.last_demand
  in
  let counters_before = if reconfigure then Stats_counters.counters () else [] in
  let solve_start = Unix.gettimeofday () in
  let solved = if reconfigure then solve_once t demand_tree else None in
  let solve_seconds =
    if reconfigure then Unix.gettimeofday () -. solve_start else 0.
  in
  let counters =
    if reconfigure then counters_delta counters_before (Stats_counters.counters ())
    else []
  in
  let reconfigured, step_cost =
    match solved with
    | Some (solution, cost) ->
        t.placement <- solution;
        t.placement_modes <- modes_in_force t.cfg demand_tree solution;
        t.last_demand <- demand;
        t.staleness <- 0;
        (true, cost)
    | None ->
        (* Either the policy kept the placement, or the epoch is
           unserveable even by a fresh optimal solve: hold position. *)
        t.staleness <- t.staleness + 1;
        (false, 0.)
  in
  let valid, unserved, overloaded =
    match Solution.validate demand_tree ~w:t.cfg.w t.placement with
    | Ok _ -> (true, 0, 0)
    | Error violations ->
        ( false,
          shortfall demand_tree ~w:t.cfg.w t.placement,
          List.length
            (List.filter
               (function Solution.Overloaded _ -> true | _ -> false)
               violations) )
  in
  let power =
    if not valid then None
    else
      match t.cfg.objective with
      | Min_power { modes; power; _ } ->
          Some (Solution.power demand_tree modes power t.placement)
      | Min_cost _ -> (
          match t.cfg.report_power with
          | Some (modes, power) ->
              Some (Solution.power demand_tree modes power t.placement)
          | None -> None)
  in
  {
    Timeline.epoch;
    demand;
    changed = List.length changed_list;
    dirty;
    reconfigured;
    staleness = t.staleness;
    servers = t.placement;
    step_cost;
    valid;
    unserved;
    overloaded;
    power;
    solve_seconds;
    counters;
  }

let run cfg demands =
  let t = create cfg in
  Timeline.of_entries (List.map (step t) demands)

let run_trace cfg tree trace ~window =
  run cfg (Replica_trace.Epochs.epochs trace tree ~window)
