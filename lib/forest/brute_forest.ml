let max_total_nodes = 24

let total_servers placements =
  Array.fold_left (fun acc s -> acc + Solution.cardinal s) 0 placements

(* Every per-shard-feasible placement of [tree] with its replica loads,
   sorted by cardinality (enumeration order on ties) so the DFS meets
   cheap assignments first and the suffix bound is the head's size. *)
let feasible_sets tree ~w =
  let n = Tree.size tree in
  let sets = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let nodes =
      List.filter (fun j -> mask land (1 lsl j) <> 0) (List.init n Fun.id)
    in
    let sol = Solution.of_nodes nodes in
    match Solution.validate tree ~w sol with
    | Ok ev -> sets := (sol, ev.Solution.loads, List.length nodes) :: !sets
    | Error _ -> ()
  done;
  List.stable_sort
    (fun (_, _, a) (_, _, b) -> compare a b)
    (List.rev !sets)

let solve forest ~trees ~w =
  let total = Array.fold_left (fun acc t -> acc + Tree.size t) 0 trees in
  if total > max_total_nodes then
    invalid_arg
      (Printf.sprintf "Brute_forest: %d nodes exceed the %d-node guard" total
         max_total_nodes);
  let shard_count = Array.length trees in
  let per_shard = Array.map (feasible_sets ~w) trees in
  if Array.exists (fun sets -> sets = []) per_shard then None
  else begin
    let min_card =
      Array.map
        (fun sets -> match sets with (_, _, c) :: _ -> c | [] -> 0)
        per_shard
    in
    (* suffix.(o) = least possible total cardinality of shards o.. *)
    let suffix = Array.make (shard_count + 1) 0 in
    for o = shard_count - 1 downto 0 do
      suffix.(o) <- suffix.(o + 1) + min_card.(o)
    done;
    let phys = Array.make (Forest.num_servers forest) 0 in
    let choice = Array.make shard_count Solution.empty in
    let best = ref None and best_total = ref max_int in
    let rec dfs o count =
      if count + suffix.(o) < !best_total then
        if o = shard_count then begin
          best := Some (Array.copy choice);
          best_total := count
        end
        else
          List.iter
            (fun (sol, loads, card) ->
              let ok =
                List.for_all
                  (fun (j, l) ->
                    phys.(Forest.server_of forest o j) + l <= w)
                  loads
              in
              if ok then begin
                List.iter
                  (fun (j, l) ->
                    let s = Forest.server_of forest o j in
                    phys.(s) <- phys.(s) + l)
                  loads;
                choice.(o) <- sol;
                dfs (o + 1) (count + card);
                List.iter
                  (fun (j, l) ->
                    let s = Forest.server_of forest o j in
                    phys.(s) <- phys.(s) - l)
                  loads
              end)
            per_shard.(o)
    in
    dfs 0 0;
    !best
  end
