(** Merged request streams for a forest of shards.

    Each shard's clients generate an independent {!Replica_trace.Trace}
    (Poisson, diurnal, or flash-crowd arrivals — the same generators the
    single-tree engine consumes), all derived from one root seed through
    indexed {!Rng.derive} substreams. The per-shard traces are also
    interleaved into one {e merged} stream
    ({!Replica_trace.Trace.merge_all}): a deterministic, order-
    independent picture of the aggregate request arrival process the
    whole fleet serves, whose event count is exactly the sum of the
    shard streams (nothing dropped — {!conservation}).

    Epoch slicing is {e aligned}: {!epochs} puts every shard on one
    shared window grid ({!Replica_trace.Epochs.epochs_multi}), so epoch
    [k] of every shard covers the same wall-clock interval and a
    {!Forest_engine} can step all shards in lock-step. *)

type workload =
  | Poisson  (** homogeneous, rate = each client's request count *)
  | Diurnal of { period : float; floor : float }
      (** day/night modulation ({!Replica_trace.Arrivals.diurnal}) *)
  | Flash of { multiplier : float }
      (** Poisson plus a flash crowd on each shard's first root subtree
          during the middle third of the horizon *)

type t = {
  per_shard : Replica_trace.Trace.t array;  (** one stream per shard *)
  merged : Replica_trace.Trace.t;
      (** all shards interleaved by time — deterministic in shard order *)
}

val generate : Forest.t -> horizon:float -> seed:int -> workload -> t
(** Shard [o] draws from [Rng.derive (create seed) o]; streams are
    independent of each other and of the forest's structural seed, and
    adding shards never perturbs existing streams.
    @raise Invalid_argument if [horizon <= 0]. *)

val epochs : t -> Forest.t -> window:float -> Tree.t list list
(** Element [k] holds epoch [k]'s demand view of every shard, in shard
    order, on the shared window grid — the input sequence for
    {!Forest_engine.run}. *)

val total_events : t -> int
(** Length of the merged stream. *)

val conservation : t -> bool
(** The merge lost nothing: merged length equals the sum of per-shard
    lengths. *)
