module Json = Replica_obs.Json
module Timeline = Replica_engine.Timeline

type entry = {
  epoch : int;
  demand : int;
  reconfigured_shards : int;
  servers : int;
  step_cost : float;
  invalid_shards : int;
  coupling_overloads : int;
  repair_pushdowns : int;
  repair_added : int;
  unrepaired : int;
  max_server_load : int;
  epoch_seconds : float;
  solve_latency : Timeline.latency option;
  counters : (string * int) list;
}

type t = {
  entries : entry list;
  total_cost : float;
  reconfigurations : int;
  invalid_epochs : int;
  repair_added : int;
  epoch_seconds : float;
  solve_latency : Timeline.latency option;
}

let of_entries entries =
  {
    entries;
    total_cost = List.fold_left (fun a (e : entry) -> a +. e.step_cost) 0. entries;
    reconfigurations =
      List.fold_left (fun a (e : entry) -> a + e.reconfigured_shards) 0 entries;
    invalid_epochs =
      List.length
        (List.filter
           (fun (e : entry) -> e.invalid_shards > 0 || e.unrepaired > 0)
           entries);
    repair_added = List.fold_left (fun a (e : entry) -> a + e.repair_added) 0 entries;
    epoch_seconds =
      List.fold_left (fun a (e : entry) -> a +. e.epoch_seconds) 0. entries;
    solve_latency =
      List.fold_left
        (fun acc (e : entry) ->
          match e.solve_latency with Some _ as l -> l | None -> acc)
        None entries;
  }

let print ?(times = false) oc t =
  List.iter
    (fun (e : entry) ->
      Printf.fprintf oc
        "epoch %2d: demand %5d  reconf %3d  servers %4d  peak %3d" e.epoch
        e.demand e.reconfigured_shards e.servers e.max_server_load;
      if e.coupling_overloads > 0 then
        Printf.fprintf oc "  overloads %d repaired +%d/%d" e.coupling_overloads
          e.repair_added e.repair_pushdowns;
      if e.unrepaired > 0 then
        Printf.fprintf oc "  UNREPAIRED %d" e.unrepaired;
      if e.invalid_shards > 0 then
        Printf.fprintf oc "  INVALID shards %d" e.invalid_shards;
      if times then Printf.fprintf oc " (%.1f ms)" (1000. *. e.epoch_seconds);
      Printf.fprintf oc "\n")
    t.entries;
  Printf.fprintf oc
    "total: %d shard reconfigurations, bill %.2f, repair added %d, %d \
     invalid epochs"
    t.reconfigurations t.total_cost t.repair_added t.invalid_epochs;
  if times then begin
    Printf.fprintf oc ", wall %.2f ms" (1000. *. t.epoch_seconds);
    match t.solve_latency with
    | Some l ->
        Printf.fprintf oc " (shard solve p50/p90/p99 %.2f/%.2f/%.2f ms)"
          (1000. *. l.Timeline.p50) (1000. *. l.Timeline.p90)
          (1000. *. l.Timeline.p99)
    | None -> ()
  end;
  Printf.fprintf oc "\n"

let latency_to_json = function
  | None -> Json.Null
  | Some l ->
      Json.Obj
        [
          ("p50_s", Json.Float l.Timeline.p50);
          ("p90_s", Json.Float l.Timeline.p90);
          ("p99_s", Json.Float l.Timeline.p99);
        ]

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("epoch", Json.Int e.epoch);
      ("demand", Json.Int e.demand);
      ("reconfigured_shards", Json.Int e.reconfigured_shards);
      ("servers", Json.Int e.servers);
      ("step_cost", Json.Float e.step_cost);
      ("invalid_shards", Json.Int e.invalid_shards);
      ("coupling_overloads", Json.Int e.coupling_overloads);
      ("repair_pushdowns", Json.Int e.repair_pushdowns);
      ("repair_added", Json.Int e.repair_added);
      ("unrepaired", Json.Int e.unrepaired);
      ("max_server_load", Json.Int e.max_server_load);
      ("epoch_seconds", Json.Float e.epoch_seconds);
      ("solve_latency", latency_to_json e.solve_latency);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.counters) );
    ]

let to_json ?(config = []) ?timeseries t =
  Json.envelope ~kind:"forest_timeline" ~config
    ([
       ( "summary",
         Json.Obj
           [
             ("epochs", Json.Int (List.length t.entries));
             ("total_cost", Json.Float t.total_cost);
             ("reconfigurations", Json.Int t.reconfigurations);
             ("invalid_epochs", Json.Int t.invalid_epochs);
             ("repair_added", Json.Int t.repair_added);
             ("epoch_seconds", Json.Float t.epoch_seconds);
             ("solve_latency", latency_to_json t.solve_latency);
           ] );
       ("epochs", Json.List (List.map entry_to_json t.entries));
     ]
    @
    match timeseries with
    | None -> []
    | Some ts -> [ ("timeseries", Replica_obs.Timeseries.to_json ts) ])

let to_json_string ?config ?timeseries t =
  Json.to_string ~pretty:true (to_json ?config ?timeseries t)
