(** Greedy feasibility repair for cross-object capacity coupling.

    Per-shard solves are blind to each other: each places optimally for
    its own tree, and a physical server replicating several objects may
    end up absorbing more aggregate load than its capacity [w]. This
    pass restores coupled feasibility by {e push-down}: pick the most
    overloaded physical server, pick the replica on it whose load is
    most reducible, and add replicas at its tree children carrying
    flow — the child flow is absorbed below, and the chosen replica's
    load drops to its own attached clients.

    Push-down only {e adds} replicas, which makes it sound under the
    closest policy: upward flows only shrink (no link-bandwidth cap can
    newly bind), every client's server only moves closer (no QoS bound
    can newly bind, nobody becomes unserved), and each new child
    replica absorbs at most the flow that previously crossed it, which
    is at most the parent replica's load — itself within [w] for any
    per-shard-valid input. So per-shard validity is preserved exactly,
    and only the coupled constraint improves. This is why coupled
    forest runs are restricted to [handles_coupling] solvers: the
    argument needs closest-policy load semantics.

    The pass is deterministic (largest excess first, smallest shard and
    node on ties) and terminates: every step adds at least one replica
    and the replica count is bounded by the forest's node count. It can
    fail — a server overloaded by clients attached {e directly} to its
    replicas cannot shed load by push-down — in which case the
    remaining violations are reported. *)

type stats = {
  pushdowns : int;  (** push-down steps performed *)
  added : int;  (** replicas added across all shards *)
}

type outcome = {
  placements : Solution.t array;
      (** repaired per-shard placements (supersets of the inputs) *)
  stats : stats;
  violations : Solution.forest_violation list;
      (** violations surviving repair; empty on success *)
}

val repair :
  Forest.t -> trees:Tree.t array -> w:int -> Solution.t array -> outcome
(** [repair forest ~trees ~w placements] with [trees.(o)] the demand
    view shard [o]'s placement was solved against. Runs even if some
    shard input is per-shard invalid (any such violation simply
    persists into [violations]). *)
