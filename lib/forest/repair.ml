type stats = { pushdowns : int; added : int }

type outcome = {
  placements : Solution.t array;
  stats : stats;
  violations : Solution.forest_violation list;
}

(* Load absorbed at each node (0 off the placement) and upward flow
   leaving each node, as arrays so the repair loop can read child flows
   directly. One postorder pass, recomputed only for the shard a
   push-down modified. *)
let eval_arrays tree sol =
  let n = Tree.size tree in
  let flow = Array.make n 0 and loads = Array.make n 0 in
  Array.iter
    (fun j ->
      let arriving =
        List.fold_left
          (fun acc c -> acc + flow.(c))
          (Tree.client_load tree j)
          (Tree.children tree j)
      in
      if Solution.mem sol j then loads.(j) <- arriving
      else flow.(j) <- arriving)
    (Tree.postorder tree);
  (loads, flow)

let repair forest ~trees ~w placements =
  let shard_count = Array.length placements in
  if Array.length trees <> shard_count then
    invalid_arg "Repair: shard count mismatch";
  let sols = Array.copy placements in
  let evals = Array.init shard_count (fun o -> eval_arrays trees.(o) sols.(o)) in
  let phys = Array.make (Forest.num_servers forest) 0 in
  let account sign o =
    let loads, _ = evals.(o) in
    Array.iteri
      (fun j l ->
        if l > 0 then begin
          let s = Forest.server_of forest o j in
          phys.(s) <- phys.(s) + (sign * l)
        end)
      loads
  in
  for o = 0 to shard_count - 1 do
    account 1 o
  done;
  let pushdowns = ref 0 and added = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* Most overloaded server, smallest id on ties. *)
    let worst = ref (-1) in
    Array.iteri
      (fun s load ->
        if load > w && (!worst < 0 || load > phys.(!worst)) then worst := s)
      phys;
    if !worst >= 0 then begin
      let s = !worst in
      (* The replica on [s] shedding the most load per push-down:
         maximal (load - attached clients), smallest (shard, node) on
         ties. Replicas loaded purely by direct clients cannot shed. *)
      let best = ref None in
      for o = 0 to shard_count - 1 do
        let loads, _ = evals.(o) in
        Array.iteri
          (fun j l ->
            if l > 0 && Forest.server_of forest o j = s then begin
              let reducible = l - Tree.client_load trees.(o) j in
              match !best with
              | _ when reducible <= 0 -> ()
              | None -> best := Some (reducible, o, j)
              | Some (r, _, _) when reducible > r ->
                  best := Some (reducible, o, j)
              | Some _ -> ()
            end)
          loads
      done;
      match !best with
      | None -> () (* stuck: remaining overloads reported below *)
      | Some (_, o, j) ->
          incr pushdowns;
          let _, flow = evals.(o) in
          let extra =
            List.filter (fun c -> flow.(c) > 0) (Tree.children trees.(o) j)
          in
          added := !added + List.length extra;
          sols.(o) <- Solution.of_nodes (extra @ Solution.nodes sols.(o));
          account (-1) o;
          evals.(o) <- eval_arrays trees.(o) sols.(o);
          account 1 o;
          progress := true
    end
  done;
  let violations =
    match Forest.validate forest ~trees ~w sols with
    | Ok _ -> []
    | Error vs -> vs
  in
  {
    placements = sols;
    stats = { pushdowns = !pushdowns; added = !added };
    violations;
  }
