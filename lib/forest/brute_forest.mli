(** Exhaustive coupled-placement oracle for tiny forests.

    Enumerates, per shard, every per-shard-feasible replica set
    ({!Solution.validate} at capacity [w]), then searches the cross
    product for the assignment minimizing the {e total} replica count
    subject to the cross-object coupling constraint — aggregate load at
    most [w] on every physical server. Branch-and-bound over shards:
    per-shard sets are visited in increasing cardinality, partial
    aggregate loads prune (load only grows as shards are added), and a
    suffix lower bound (sum of each remaining shard's smallest feasible
    cardinality) cuts hopeless prefixes.

    This is the differential oracle for {!Repair}: repair must find a
    violation-free placement whenever one exists (on push-down-reachable
    instances) and can never beat the optimum's server count. Guarded to
    {!max_total_nodes} summed nodes — beyond that the per-shard power
    sets explode. *)

val max_total_nodes : int
(** 24: at most [2^24] raw combinations before pruning. *)

val solve :
  Forest.t -> trees:Tree.t array -> w:int -> Solution.t array option
(** [solve forest ~trees ~w] is a coupled-feasible assignment of
    minimal total replica count, or [None] when none exists (some shard
    has no feasible set, or every combination overloads a shared
    server). Deterministic: ties break toward the lexicographically
    earliest per-shard choice in the enumeration order.
    @raise Invalid_argument if the forest exceeds {!max_total_nodes}. *)

val total_servers : Solution.t array -> int
(** Sum of per-shard cardinalities — the oracle's objective. *)
