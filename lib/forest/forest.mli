(** A forest of distribution trees over one shared physical-server pool.

    The paper places replicas of a single object in a single tree. Real
    content-distribution deployments replicate {e many} objects, each
    with its own distribution tree, over {e one} fleet of machines — the
    multitrees setting of Benoit, Rehn-Sonigo, Robert and Vivien's
    follow-up work (arXiv 1709.05709). This module models that overlay:

    - [K] {e topologies}: independently generated tree networks whose
      internal nodes are physical machines drawn from a pool of [S]
      servers (each topology is an injective map [node -> server id];
      distinct topologies may — and at [K·N > S] must — share
      machines);
    - [O] {e shards}: replicated objects, assigned round-robin to the
      topologies. Shards on one topology share its structure and server
      map but carry their own client demand, redrawn per shard from one
      root seed through {!Rng.derive} (adding shards never shifts the
      randomness of existing ones).

    Each shard's placement problem is exactly the paper's single-tree
    problem; the forest adds one cross-object constraint, {e capacity
    coupling}: the aggregate load a physical server absorbs across
    every object replicated on it must respect the machine's capacity
    [w] ({!Replica_core.Solution.validate_forest}). *)

type shard = {
  index : int;  (** shard (object) identifier, dense from 0 *)
  topology : int;  (** index of the topology this shard distributes over *)
  tree : Tree.t;  (** the shard's demand tree (structure = the topology) *)
}

type t
(** An immutable forest. *)

type spec = {
  trees : int;  (** number of topologies, [K >= 1] *)
  objects : int;  (** number of shards, [O >= 1] *)
  servers : int;  (** physical pool size, [S >= profile.nodes] *)
  profile : Generator.profile;  (** shape and demand of every tree *)
  seed : int;  (** root seed; everything derives from it *)
}

val generate : spec -> t
(** Deterministic construction: topology [k] is
    [Generator.random (derive k)], its server map a uniform injection
    into [\[0, servers)], and shard [o]'s demand a
    {!Generator.redraw_requests} on topology [o mod trees] — all from
    disjoint {!Rng.derive} substreams of [seed], so any one component
    is reproducible in isolation.
    @raise Invalid_argument on a non-positive count or a pool smaller
    than a tree. *)

(** {1 Accessors} *)

val num_shards : t -> int
val num_trees : t -> int

val num_servers : t -> int
(** Physical pool size [S]. *)

val shards : t -> shard array
val shard_tree : t -> int -> Tree.t
val topology : t -> int -> Tree.t

val server_of : t -> int -> Tree.node -> int
(** [server_of t o j] is the physical server hosting node [j] of shard
    [o]'s tree. Injective per topology; shards of one topology agree. *)

val total_nodes : t -> int
(** Sum of shard tree sizes (the work-size hint for parallel solves). *)

val shard_sizes : t -> int list
(** Per-shard tree sizes, in shard order. *)

(** {1 Coupled evaluation} *)

val server_loads : t -> trees:Tree.t array -> Solution.t array -> int array
(** Aggregate closest-policy load per physical server, summed across
    shards. [trees] are the per-shard demand views (an epoch of
    {!Forest_trace}); [trees.(o)] evaluates [placements.(o)]. *)

val validate :
  t ->
  trees:Tree.t array ->
  w:int ->
  Solution.t array ->
  (Solution.forest_evaluation, Solution.forest_violation list) result
(** {!Solution.validate_forest} specialized to this forest's server
    table. *)
