(** Machine-readable record of a forest run.

    One {!entry} per lock-step epoch across every shard: aggregate
    demand, how many shards reconfigured, the fleet-wide replica count
    and peak physical-server load, what the coupling repair did
    (overloads found, push-downs, replicas added, overloads surviving),
    and the machine cost (wall-clock for the parallel section,
    per-shard solve-latency quantiles from a log2
    {!Replica_obs.Histogram}, global {!Replica_core.Stats_counters}
    deltas).

    Per-shard counter deltas are deliberately {e not} kept: counters
    are process-global atomics, so per-shard diffs taken by concurrent
    {!Replica_engine.Engine.step} calls overlap under parallel
    execution. The forest snapshots once around the whole epoch —
    atomic adds commute, so the totals are deterministic at any domain
    count.

    Same three surfaces as the single-tree {!Replica_engine.Timeline}:
    deterministic {!print} (pinned by the cram test), {!to_json}
    (envelope kind ["forest_timeline"]), and the test suite's
    assertions. *)

type entry = {
  epoch : int;  (** 1-based *)
  demand : int;  (** total requests across shards this epoch *)
  reconfigured_shards : int;
  servers : int;  (** fleet-wide replica count after repair *)
  step_cost : float;  (** summed per-shard reconfiguration cost *)
  invalid_shards : int;  (** shards whose own epoch was invalid *)
  coupling_overloads : int;
      (** physical servers over capacity before repair (0 when
          coupling is off) *)
  repair_pushdowns : int;
  repair_added : int;  (** replicas the repair pass added *)
  unrepaired : int;  (** physical servers still over capacity after *)
  max_server_load : int;  (** peak aggregate physical load after repair *)
  epoch_seconds : float;  (** wall-clock of solves plus repair *)
  solve_latency : Replica_engine.Timeline.latency option;
      (** per-shard solve quantiles over the run so far *)
  counters : (string * int) list;
      (** global counter deltas for the whole epoch (nonzero, sorted) *)
}

type t = {
  entries : entry list;
  total_cost : float;
  reconfigurations : int;  (** total shard reconfigurations *)
  invalid_epochs : int;  (** epochs with an invalid shard or unrepaired
                             overload *)
  repair_added : int;
  epoch_seconds : float;
  solve_latency : Replica_engine.Timeline.latency option;
}

val of_entries : entry list -> t

val print : ?times:bool -> out_channel -> t -> unit
(** One line per epoch plus a summary; [times = false] (default) omits
    every wall-clock figure so output is deterministic for a seed. *)

val to_json :
  ?config:(string * Replica_obs.Json.t) list ->
  ?timeseries:Replica_obs.Timeseries.t ->
  t ->
  Replica_obs.Json.t
(** Envelope kind ["forest_timeline"]. [timeseries] adds the per-epoch
    metric points recorded by the driver. *)

val to_json_string :
  ?config:(string * Replica_obs.Json.t) list ->
  ?timeseries:Replica_obs.Timeseries.t ->
  t ->
  string
