type shard = { index : int; topology : int; tree : Tree.t }

type t = {
  pool : int;
  topologies : Tree.t array;
  server : int array array;
  shard_table : shard array;
}

type spec = {
  trees : int;
  objects : int;
  servers : int;
  profile : Generator.profile;
  seed : int;
}

(* Disjoint substream roots: component [c] of the forest draws from
   [derive (derive root c) i], so topologies, server maps and shard
   demands never share randomness and adding shards (or trees) never
   shifts the streams of existing ones. *)
let topo_stream = 0
let map_stream = 1
let demand_stream = 2

let generate spec =
  if spec.trees <= 0 then invalid_arg "Forest: trees must be positive";
  if spec.objects <= 0 then invalid_arg "Forest: objects must be positive";
  if spec.servers < spec.profile.Generator.nodes then
    invalid_arg "Forest: server pool smaller than a tree";
  let root = Rng.create spec.seed in
  let topo_root = Rng.derive root topo_stream
  and map_root = Rng.derive root map_stream
  and demand_root = Rng.derive root demand_stream in
  let topologies =
    Array.init spec.trees (fun k ->
        Generator.random (Rng.derive topo_root k) spec.profile)
  in
  let server =
    Array.init spec.trees (fun k ->
        let rng = Rng.derive map_root k in
        let n = Tree.size topologies.(k) in
        let ids =
          Array.of_list (Rng.sample_without_replacement rng n spec.servers)
        in
        Rng.shuffle rng ids;
        ids)
  in
  let shard_table =
    Array.init spec.objects (fun o ->
        let k = o mod spec.trees in
        {
          index = o;
          topology = k;
          tree =
            Generator.redraw_requests (Rng.derive demand_root o) spec.profile
              topologies.(k);
        })
  in
  { pool = spec.servers; topologies; server; shard_table }

let num_shards t = Array.length t.shard_table
let num_trees t = Array.length t.topologies
let num_servers t = t.pool
let shards t = t.shard_table
let shard_tree t o = t.shard_table.(o).tree
let topology t k = t.topologies.(k)
let server_of t o j = t.server.(t.shard_table.(o).topology).(j)

let total_nodes t =
  Array.fold_left (fun acc s -> acc + Tree.size s.tree) 0 t.shard_table

let shard_sizes t =
  List.map (fun s -> Tree.size s.tree) (Array.to_list t.shard_table)

let server_loads t ~trees placements =
  if Array.length trees <> Array.length placements then
    invalid_arg "Forest.server_loads: shard count mismatch";
  let loads = Array.make t.pool 0 in
  Array.iteri
    (fun o sol ->
      let ev = Solution.evaluate trees.(o) sol in
      List.iter
        (fun (j, l) ->
          let s = server_of t o j in
          loads.(s) <- loads.(s) + l)
        ev.Solution.loads)
    placements;
  loads

let validate t ~trees ~w placements =
  Solution.validate_forest ~trees
    ~server_of:(fun o j -> server_of t o j)
    ~num_servers:t.pool ~w placements
