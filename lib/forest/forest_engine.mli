(** Lock-step online engine for a forest of shards.

    One {!Replica_engine.Engine.t} per shard — each with its own
    placement, update-policy state and incremental solver memo — stepped
    epoch-by-epoch over the aligned demand views of
    {!Forest_trace.epochs}. Per-shard solves within an epoch are
    independent, so they run on separate domains through
    {!Replica_core.Par.map}, size-hinted by tree size (largest shards
    scheduled first); at [domains = 1], or not, the per-shard placements
    are bit-identical, and with [coupling = false] they are bit-identical
    to stepping each engine alone — the forest adds no cross-talk unless
    asked to.

    With [coupling = true] each epoch ends with a cross-object capacity
    check on the shared physical servers; overloads trigger the
    {!Repair} push-down pass, and the repaired placements are written
    back into the shard engines ({!Replica_engine.Engine.override_placement})
    so the next epoch's solves treat them as pre-existing. Coupled runs
    require a [handles_coupling] solver (see [solve --list-algos]). *)

type config = {
  engine : Replica_engine.Engine.config;  (** per-shard engine config *)
  coupling : bool;
      (** enforce (and repair) cross-object capacity coupling *)
  domains : int;  (** parallel fan-out of the per-shard solves *)
}

type t
(** A running forest engine (mutable shard engines inside). *)

val create : Forest.t -> config -> t
(** @raise Invalid_argument if the per-shard config is rejected by
    {!Replica_engine.Engine.create}, or [coupling] is set and the
    configured solver lacks the [handles_coupling] capability. *)

val step : t -> Tree.t list -> Forest_timeline.entry
(** Serve one epoch: step every shard engine on its demand view (in
    parallel), then, when coupling, validate and repair the shared
    servers and write repaired placements back. The entry's counters
    are one global snapshot/diff around the whole epoch.
    @raise Invalid_argument if the view count differs from the shard
    count. *)

val placements : t -> Solution.t array
(** Per-shard placements currently in force (after any repair). *)

val epochs_served : t -> int

val solver_name : t -> string

val run : Forest.t -> config -> Tree.t list list -> Forest_timeline.t
(** Step a fresh forest engine through every epoch of an aligned grid
    (element [k] = epoch [k]'s per-shard views). *)
