module Trace = Replica_trace.Trace
module Epochs = Replica_trace.Epochs
module Arrivals = Replica_trace.Arrivals

type workload =
  | Poisson
  | Diurnal of { period : float; floor : float }
  | Flash of { multiplier : float }

type t = { per_shard : Trace.t array; merged : Trace.t }

let shard_trace rng tree ~horizon = function
  | Poisson -> Arrivals.poisson rng tree ~horizon
  | Diurnal { period; floor } ->
      Arrivals.diurnal rng tree ~horizon ~period ~floor
  | Flash { multiplier } ->
      let base = Arrivals.poisson rng tree ~horizon in
      let node =
        match Tree.children tree (Tree.root tree) with
        | c :: _ -> c
        | [] -> Tree.root tree
      in
      Arrivals.flash_crowd rng tree ~base ~at:(horizon /. 3.)
        ~duration:(horizon /. 4.) ~node ~multiplier

let generate forest ~horizon ~seed workload =
  let root = Rng.create seed in
  let per_shard =
    Array.map
      (fun (s : Forest.shard) ->
        shard_trace (Rng.derive root s.Forest.index) s.Forest.tree ~horizon
          workload)
      (Forest.shards forest)
  in
  { per_shard; merged = Trace.merge_all (Array.to_list per_shard) }

let epochs t forest ~window =
  let streams =
    List.map2
      (fun trace (s : Forest.shard) -> (trace, s.Forest.tree))
      (Array.to_list t.per_shard)
      (Array.to_list (Forest.shards forest))
  in
  Epochs.epochs_multi streams ~window

let total_events t = Trace.length t.merged

let conservation t =
  Trace.length t.merged
  = Array.fold_left (fun acc tr -> acc + Trace.length tr) 0 t.per_shard
