module Engine = Replica_engine.Engine
module Timeline = Replica_engine.Timeline
module Histogram = Replica_obs.Histogram
module Metrics = Replica_obs.Metrics
module Clock = Replica_obs.Clock

type config = { engine : Engine.config; coupling : bool; domains : int }

type t = {
  forest : Forest.t;
  cfg : config;
  engines : Engine.t array;
  lat_h : Histogram.t;
      (* per-instance (unregistered) so concurrent forests don't mix
         their timelines' percentiles *)
  m_shard_solve : Metrics.t array;  (* histogram per shard="o" *)
  m_shard_demand : Metrics.t array;  (* gauge per shard="o" *)
  m_shard_servers : Metrics.t array;  (* gauge per shard="o" *)
  m_pushdowns : Metrics.t;
  m_repair_added : Metrics.t;
  m_overloads : Metrics.t;
  m_max_load : Metrics.t;
  mutable epoch : int;
}

let create forest cfg =
  if cfg.domains < 1 then invalid_arg "Forest_engine: domains must be >= 1";
  let engines =
    Array.map (fun _ -> Engine.create cfg.engine) (Forest.shards forest)
  in
  if cfg.coupling then begin
    let name = Engine.solver_name engines.(0) in
    match Registry.find name with
    | Some s when s.Solver.capability.Solver.handles_coupling -> ()
    | Some _ ->
        invalid_arg
          (Printf.sprintf
             "Forest_engine: %s cannot participate in cross-object capacity \
              coupling (its placements are not closest-policy cost \
              placements the push-down repair is sound for; see \
              --list-algos)"
             name)
    | None -> assert false
  end;
  (* Per-shard labeled series (shard="0", "1", ...) interned once at
     creation; all updates happen on the coordinating domain after the
     parallel step, so no labeled instrument is touched from inside
     [Par]-fanned workers. *)
  let per_shard name =
    Array.init (Array.length engines) (fun o ->
        Metrics.gauge ~labels:[ ("shard", string_of_int o) ] name)
  in
  {
    forest;
    cfg;
    engines;
    lat_h = Histogram.make "forest.shard_solve_ns";
    m_shard_solve =
      Array.init (Array.length engines) (fun o ->
          Metrics.histogram
            ~labels:[ ("shard", string_of_int o) ]
            "forest.shard_solve_ns");
    m_shard_demand = per_shard "forest.shard_demand";
    m_shard_servers = per_shard "forest.shard_servers";
    m_pushdowns = Metrics.counter "forest.repair_pushdowns";
    m_repair_added = Metrics.counter "forest.repair_added";
    m_overloads = Metrics.counter "forest.coupling_overloads";
    m_max_load = Metrics.gauge "forest.max_server_load";
    epoch = 0;
  }

let placements t = Array.map Engine.placement t.engines
let epochs_served t = t.epoch
let solver_name t = Engine.solver_name t.engines.(0)

let count_overloads = function
  | Ok _ -> 0
  | Error vs ->
      List.length
        (List.filter
           (function
             | Solution.Shared_server_overloaded _ -> true
             | Solution.Shard_violation _ -> false)
           vs)

let step t views =
  let shard_count = Forest.num_shards t.forest in
  if List.length views <> shard_count then
    invalid_arg "Forest_engine: one demand view per shard expected";
  let demands = Array.of_list views in
  t.epoch <- t.epoch + 1;
  (* One global snapshot around the whole epoch: per-shard diffs taken
     inside concurrent Engine.step calls overlap (counters are
     process-global atomics), so the per-entry counters are discarded
     and the epoch reports a single commutative total. *)
  let counters_before = Stats_counters.snapshot () in
  let t0 = Clock.now_ns () in
  let entries =
    Par.map ~domains:t.cfg.domains ~weights:(Forest.shard_sizes t.forest)
      (fun o -> Engine.step t.engines.(o) demands.(o))
      (List.init shard_count Fun.id)
  in
  let entries = Array.of_list entries in
  Array.iteri
    (fun o (e : Timeline.entry) ->
      if e.Timeline.reconfigured || e.Timeline.solve_seconds > 0. then begin
        let ns = int_of_float (e.Timeline.solve_seconds *. 1e9) in
        Histogram.observe t.lat_h ns;
        Metrics.observe t.m_shard_solve.(o) ns
      end;
      Metrics.set t.m_shard_demand.(o) (float_of_int e.Timeline.demand))
    entries;
  let w = t.cfg.engine.Engine.w in
  let pre = placements t in
  let coupling_overloads, repair_stats, final =
    if t.cfg.coupling then begin
      let overloads =
        count_overloads (Forest.validate t.forest ~trees:demands ~w pre)
      in
      if overloads = 0 then (0, { Repair.pushdowns = 0; added = 0 }, pre)
      else begin
        let r = Repair.repair t.forest ~trees:demands ~w pre in
        (* Repaired placements (supersets, still per-shard valid) become
           the state the next epoch's solves start from, even when some
           overload survives — holding a strictly worse placement helps
           nothing. *)
        Array.iteri
          (fun o sol ->
            if not (Solution.equal sol pre.(o)) then
              Engine.override_placement t.engines.(o) demands.(o) sol)
          r.Repair.placements;
        (overloads, r.Repair.stats, r.Repair.placements)
      end
    end
    else (0, { Repair.pushdowns = 0; added = 0 }, pre)
  in
  let unrepaired =
    if t.cfg.coupling && coupling_overloads > 0 then
      count_overloads (Forest.validate t.forest ~trees:demands ~w final)
    else 0
  in
  Array.iteri
    (fun o sol ->
      Metrics.set t.m_shard_servers.(o) (float_of_int (Solution.cardinal sol)))
    final;
  Metrics.add t.m_pushdowns repair_stats.Repair.pushdowns;
  Metrics.add t.m_repair_added repair_stats.Repair.added;
  Metrics.add t.m_overloads coupling_overloads;
  let server_loads = Forest.server_loads t.forest ~trees:demands final in
  Metrics.set t.m_max_load (float_of_int (Array.fold_left max 0 server_loads));
  let epoch_seconds = float_of_int (Clock.now_ns () - t0) *. 1e-9 in
  let counters =
    Stats_counters.diff counters_before (Stats_counters.snapshot ())
  in
  let solve_latency =
    if Histogram.count t.lat_h = 0 then None
    else
      let s = Histogram.summary t.lat_h in
      Some
        {
          Timeline.p50 = float_of_int s.Histogram.p50 *. 1e-9;
          p90 = float_of_int s.Histogram.p90 *. 1e-9;
          p99 = float_of_int s.Histogram.p99 *. 1e-9;
        }
  in
  {
    Forest_timeline.epoch = t.epoch;
    demand =
      Array.fold_left (fun a (e : Timeline.entry) -> a + e.Timeline.demand) 0
        entries;
    reconfigured_shards =
      Array.fold_left
        (fun a (e : Timeline.entry) ->
          if e.Timeline.reconfigured then a + 1 else a)
        0 entries;
    servers = Array.fold_left (fun a s -> a + Solution.cardinal s) 0 final;
    step_cost =
      Array.fold_left
        (fun a (e : Timeline.entry) -> a +. e.Timeline.step_cost)
        0. entries;
    invalid_shards =
      Array.fold_left
        (fun a (e : Timeline.entry) -> if e.Timeline.valid then a else a + 1)
        0 entries;
    coupling_overloads;
    repair_pushdowns = repair_stats.Repair.pushdowns;
    repair_added = repair_stats.Repair.added;
    unrepaired;
    max_server_load = Array.fold_left max 0 server_loads;
    epoch_seconds;
    solve_latency;
    counters;
  }

let run forest cfg grid =
  let t = create forest cfg in
  Forest_timeline.of_entries (List.map (step t) grid)
