(** Deterministic, seedable pseudo-random number generator.

    All randomness in the library flows through this module so that every
    experiment is reproducible from a single integer seed, independently of
    the OCaml stdlib [Random] state and of the host. The generator is
    splitmix64 (Steele, Lea, Flood 2014): a 64-bit state advanced by a
    Weyl sequence and finalized by a variant of the MurmurHash3 mixer. It
    passes BigCrush and is more than adequate for simulation workloads. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream;
    advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, statistically
    independent of [t]'s subsequent output. Useful to give each tree of an
    experiment its own stream so that changing one parameter does not shift
    the randomness of unrelated trees. *)

val derive : t -> int -> t
(** [derive t i] is the [i]-th indexed substream of [t]: the root state
    jumped ahead by [i + 1] splitmix64 increments and pushed through the
    output mixer. Unlike repeated {!split}, it consumes nothing from [t]
    and does not depend on how many other streams were derived before —
    shard [i] of a forest sees the same randomness whether the forest has
    10 shards or 10,000, and adding a shard never shifts the randomness
    of existing ones (no cross-shard seed drift). The per-index states
    are exact positions of the root's own Weyl sequence — the canonical
    splitmix64 substream construction.
    @raise Invalid_argument if [i < 0]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in_range : t -> min:int -> max:int -> int
(** [int_in_range t ~min ~max] is uniform in [\[min, max\]] inclusive.
    @raise Invalid_argument if [max < min]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in increasing order.
    @raise Invalid_argument if [k < 0] or [k > n]. *)
