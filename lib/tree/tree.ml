type node = int

(* Per-client QoS bounds and per-link bandwidth caps (Rehn-Sonigo,
   arXiv 0706.3350) use [max_int] as "unconstrained": comparisons work
   unchanged and unconstrained trees serialize byte-identically to the
   pre-constraint format. *)
let unbounded = max_int

type t = {
  parents : int array;
  children : node array array;
  clients : int array array;
  qos : int array array;  (* per client, aligned with [clients] *)
  bw : int array;  (* bw.(j) caps the edge j -> parent; bw.(0) unused *)
  pre : int option array;
  post : node array; (* postorder *)
  pre_order : node array;
  sub_size : int array; (* internal nodes strictly below *)
  sub_pre : int array; (* pre-existing strictly below *)
  depths : int array;
}

type spec = {
  spec_clients : int list;
  spec_qos : int list;
  spec_bw : int;
  spec_pre : int option;
  spec_children : spec list;
}

let node ?(clients = []) ?qos ?(bw = unbounded) ?pre spec_children =
  let spec_qos =
    match qos with
    | Some q -> q
    | None -> List.map (fun _ -> unbounded) clients
  in
  { spec_clients = clients; spec_qos; spec_bw = bw; spec_pre = pre;
    spec_children }

let compute_orders parents children =
  let n = Array.length parents in
  let pre_order = Array.make n 0 in
  let post = Array.make n 0 in
  let depths = Array.make n 0 in
  let pre_i = ref 0 and post_i = ref 0 in
  (* Explicit preallocated int stack: safe on deep (path-like) trees
     and allocation-free at N = 10^6 (the old (node, `Enter|`Exit)
     list stack allocated a cons + tag block per visit). Each node is
     pushed at most once as "enter" (encoded as j) and once as "exit"
     (encoded as j + n), so 2n slots always suffice. *)
  let stack = Array.make (max 1 (2 * n)) 0 in
  let sp = ref 0 in
  let push v =
    (* Malformed (cyclic/shared) parent structures could overflow 2n
       pushes; bail out and let the count check below report it. *)
    if !sp >= 2 * n then invalid_arg "Tree: disconnected or cyclic parent structure";
    stack.(!sp) <- v;
    incr sp
  in
  push 0;
  while !sp > 0 do
    decr sp;
    let v = stack.(!sp) in
    if v >= n then begin
      (* exit *)
      post.(!post_i) <- v - n;
      incr post_i
    end
    else begin
      let j = v in
      pre_order.(!pre_i) <- j;
      incr pre_i;
      let d = if parents.(j) < 0 then 0 else depths.(parents.(j)) + 1 in
      depths.(j) <- d;
      push (j + n);
      (* Children pushed in reverse so the first child pops first. *)
      let cs = children.(j) in
      for i = Array.length cs - 1 downto 0 do
        push cs.(i)
      done
    end
  done;
  if !pre_i <> n || !post_i <> n then
    invalid_arg "Tree: disconnected or cyclic parent structure";
  (pre_order, post, depths)

let make ?qos ?bw parents clients pre =
  let n = Array.length parents in
  if n = 0 then invalid_arg "Tree: empty tree";
  if parents.(0) <> -1 then invalid_arg "Tree: node 0 must be the root";
  Array.iteri
    (fun i p ->
      if i > 0 && (p < 0 || p >= n) then
        invalid_arg "Tree: parent out of range")
    parents;
  Array.iter
    (fun cl -> Array.iter (fun r -> if r < 0 then invalid_arg "Tree: negative request count") cl)
    clients;
  Array.iter
    (function Some m when m <= 0 -> invalid_arg "Tree: mode must be positive" | _ -> ())
    pre;
  let qos =
    match qos with
    | None -> Array.map (fun cl -> Array.make (Array.length cl) unbounded) clients
    | Some q ->
        if Array.length q <> n then
          invalid_arg "Tree: qos array length mismatch";
        Array.iteri
          (fun j ql ->
            if Array.length ql <> Array.length clients.(j) then
              invalid_arg "Tree: qos must align with clients";
            Array.iter
              (fun v -> if v < 0 then invalid_arg "Tree: negative QoS bound")
              ql)
          q;
        q
  in
  let bw =
    match bw with
    | None -> Array.make n unbounded
    | Some b ->
        if Array.length b <> n then
          invalid_arg "Tree: bandwidth array length mismatch";
        Array.iter
          (fun v -> if v < 0 then invalid_arg "Tree: negative bandwidth")
          b;
        (* The root has no upward link; normalize its slot. *)
        b.(0) <- unbounded;
        b
  in
  let deg = Array.make n 0 in
  for i = 1 to n - 1 do
    deg.(parents.(i)) <- deg.(parents.(i)) + 1
  done;
  let children = Array.map (fun d -> Array.make d 0) (Array.copy deg) in
  let fill = Array.make n 0 in
  for i = 1 to n - 1 do
    let p = parents.(i) in
    children.(p).(fill.(p)) <- i;
    fill.(p) <- fill.(p) + 1
  done;
  let pre_order, post, depths = compute_orders parents children in
  let sub_size = Array.make n 0 and sub_pre = Array.make n 0 in
  Array.iter
    (fun j ->
      Array.iter
        (fun c ->
          sub_size.(j) <- sub_size.(j) + sub_size.(c) + 1;
          sub_pre.(j) <-
            sub_pre.(j) + sub_pre.(c) + (if pre.(c) <> None then 1 else 0))
        children.(j))
    post;
  { parents; children; clients; qos; bw; pre; post; pre_order; sub_size;
    sub_pre; depths }

let of_parents ~parents ~clients ~pre =
  let n = Array.length parents in
  if Array.length clients <> n || Array.length pre <> n then
    invalid_arg "Tree.of_parents: array length mismatch";
  make
    (Array.copy parents)
    (Array.map (fun l -> Array.of_list l) clients)
    (Array.copy pre)

let build spec =
  let parents = ref [] and clients = ref [] and pre = ref [] in
  let qos = ref [] and bw = ref [] in
  let count = ref 0 in
  let rec go parent s =
    let id = !count in
    incr count;
    if List.length s.spec_qos <> List.length s.spec_clients then
      invalid_arg "Tree.build: qos must align with clients";
    parents := (id, parent) :: !parents;
    clients := (id, Array.of_list s.spec_clients) :: !clients;
    qos := (id, Array.of_list s.spec_qos) :: !qos;
    bw := (id, s.spec_bw) :: !bw;
    pre := (id, s.spec_pre) :: !pre;
    List.iter (go id) s.spec_children
  in
  go (-1) spec;
  let n = !count in
  let arr_of default l =
    let a = Array.make n default in
    List.iter (fun (i, v) -> a.(i) <- v) l;
    a
  in
  make
    ~qos:(arr_of [||] !qos)
    ~bw:(arr_of unbounded !bw)
    (arr_of 0 !parents) (arr_of [||] !clients) (arr_of None !pre)

let size t = Array.length t.parents
let root _ = 0
let parent t j = if j = 0 then None else Some t.parents.(j)
let children t j = Array.to_list t.children.(j)
let children_array t j = t.children.(j)
let clients t j = Array.to_list t.clients.(j)
let client_load t j = Array.fold_left ( + ) 0 t.clients.(j)
let initial_mode t j = t.pre.(j)
let is_pre_existing t j = t.pre.(j) <> None

(* --- constraint accessors --- *)

let client_qos t j = Array.to_list t.qos.(j)
let bandwidth t j = t.bw.(j)

(* Under the closest policy every client attached at [j] is served by
   the same (nearest ancestor-or-self) replica, so the binding QoS at a
   node is the minimum over its clients. Zero-request clients generate
   no flow and are vacuously served; they do not constrain. *)
let qos_radius t j =
  let r = ref unbounded in
  Array.iteri
    (fun i req -> if req > 0 && t.qos.(j).(i) < !r then r := t.qos.(j).(i))
    t.clients.(j);
  !r

let has_qos t =
  let found = ref false in
  Array.iteri
    (fun j ql ->
      Array.iteri
        (fun i q -> if q <> unbounded && t.clients.(j).(i) > 0 then found := true)
        ql)
    t.qos;
  !found

let has_bandwidth t = Array.exists (fun b -> b <> unbounded) t.bw
let is_constrained t = has_qos t || has_bandwidth t

let pre_existing t =
  let acc = ref [] in
  for j = size t - 1 downto 0 do
    if is_pre_existing t j then acc := j :: !acc
  done;
  !acc

let num_pre_existing t =
  Array.fold_left (fun n p -> if p <> None then n + 1 else n) 0 t.pre

let num_clients t =
  Array.fold_left (fun n cl -> n + Array.length cl) 0 t.clients

let total_requests t =
  Array.fold_left (fun n cl -> n + Array.fold_left ( + ) 0 cl) 0 t.clients

let postorder t = Array.copy t.post
let preorder t = Array.copy t.pre_order

let fold_postorder t ~init ~f = Array.fold_left f init t.post

let subtree_size t j = t.sub_size.(j)
let subtree_pre_count t j = t.sub_pre.(j)
let depth t j = t.depths.(j)
let height t = Array.fold_left max 0 t.depths

let subtree_demand t j =
  let total = ref 0 in
  let rec go j =
    total := !total + client_load t j;
    Array.iter go t.children.(j)
  in
  go j;
  !total

(* Subtree fingerprints: 64-bit order-sensitive hashes over (clients,
   QoS bounds, link bandwidth, pre-existing marker, children
   fingerprints), computed bottom-up in one postorder pass. The mixer is
   splitmix64's finalizer, whose avalanche makes accidental collisions
   across epoch-derived trees a ~2^-64 event — the soundness assumption
   of the DP memo tables. *)
let fp_mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let combine_fingerprints h x = fp_mix (Int64.logxor (Int64.mul h 0x9E3779B97F4A7C15L) x)

let subtree_fingerprints t =
  let fps = Array.make (size t) 0L in
  Array.iter
    (fun j ->
      let h = ref (fp_mix (Int64.of_int (Array.length t.clients.(j) + 1))) in
      Array.iteri
        (fun i r ->
          h := combine_fingerprints !h (Int64.of_int r);
          h := combine_fingerprints !h (Int64.of_int t.qos.(j).(i)))
        t.clients.(j);
      (match t.pre.(j) with
      | None -> h := combine_fingerprints !h 0L
      | Some m -> h := combine_fingerprints !h (Int64.of_int (m + 1)));
      h := combine_fingerprints !h (Int64.of_int t.bw.(j));
      Array.iter (fun c -> h := combine_fingerprints !h fps.(c)) t.children.(j);
      fps.(j) <- !h)
    t.post;
  fps

let ancestors t j =
  let rec up j acc =
    if j = 0 then List.rev acc else up t.parents.(j) (t.parents.(j) :: acc)
  in
  up j []

let is_ancestor t ~anc ~desc =
  if desc = anc || desc = 0 then false
  else
    let rec up j =
      if j = 0 then false
      else
        let p = t.parents.(j) in
        p = anc || up p
    in
    up desc

let with_pre_existing t l =
  let pre = Array.make (size t) None in
  List.iter
    (fun (j, m) ->
      if j < 0 || j >= size t then invalid_arg "Tree.with_pre_existing: bad node";
      if m <= 0 then invalid_arg "Tree.with_pre_existing: bad mode";
      pre.(j) <- Some m)
    l;
  make
    ~qos:(Array.map Array.copy t.qos)
    ~bw:(Array.copy t.bw)
    (Array.copy t.parents) (Array.map Array.copy t.clients) pre

(* Demand redraws keep the node's binding constraint: when the new client
   multiset has the same arity the per-client bounds are kept verbatim;
   otherwise every new client inherits the node's tightest old bound, so
   epoch views of a constrained network stay constrained. *)
let with_clients t f =
  let clients = Array.init (size t) (fun j -> Array.of_list (f j)) in
  let qos =
    Array.init (size t) (fun j ->
        let n = Array.length clients.(j) in
        if n = Array.length t.qos.(j) then Array.copy t.qos.(j)
        else begin
          let tightest = Array.fold_left min unbounded t.qos.(j) in
          Array.make n tightest
        end)
  in
  make ~qos ~bw:(Array.copy t.bw) (Array.copy t.parents) clients
    (Array.copy t.pre)

let with_qos t f =
  let qos =
    Array.init (size t) (fun j ->
        Array.init (Array.length t.clients.(j)) (fun i ->
            let q = f j i in
            if q < 0 then invalid_arg "Tree.with_qos: negative QoS bound";
            q))
  in
  make ~qos ~bw:(Array.copy t.bw) (Array.copy t.parents)
    (Array.map Array.copy t.clients) (Array.copy t.pre)

let with_bandwidth t f =
  let bw =
    Array.init (size t) (fun j ->
        if j = 0 then unbounded
        else
          let b = f j in
          if b < 0 then invalid_arg "Tree.with_bandwidth: negative bandwidth";
          b)
  in
  make ~qos:(Array.map Array.copy t.qos) ~bw (Array.copy t.parents)
    (Array.map Array.copy t.clients) (Array.copy t.pre)

(* Serialization: one line per node in id order:
   "<parent> p<mode-or-.> c<r1[@q1],r2[@q2],...>[ b<bw>]" separated by
   ';'. QoS suffixes and the bandwidth token are emitted only when
   finite, so unconstrained trees round-trip byte-identically to the
   historical format. *)
let to_string t =
  let buf = Buffer.create 256 in
  for j = 0 to size t - 1 do
    if j > 0 then Buffer.add_char buf ';';
    Buffer.add_string buf (string_of_int t.parents.(j));
    Buffer.add_string buf " p";
    (match t.pre.(j) with
    | None -> Buffer.add_char buf '.'
    | Some m -> Buffer.add_string buf (string_of_int m));
    Buffer.add_string buf " c";
    Array.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int r);
        if t.qos.(j).(i) <> unbounded then begin
          Buffer.add_char buf '@';
          Buffer.add_string buf (string_of_int t.qos.(j).(i))
        end)
      t.clients.(j);
    if t.bw.(j) <> unbounded then begin
      Buffer.add_string buf " b";
      Buffer.add_string buf (string_of_int t.bw.(j))
    end
  done;
  Buffer.contents buf

let of_string s =
  let fail () = invalid_arg "Tree.of_string: malformed input" in
  let fields = String.split_on_char ';' s in
  let parse_node field =
    let p, pre, cl, bw_tok =
      match String.split_on_char ' ' (String.trim field) with
      | [ p; pre; cl ] -> (p, pre, cl, None)
      | [ p; pre; cl; b ] -> (p, pre, cl, Some b)
      | _ -> fail ()
    in
    let parent = try int_of_string p with _ -> fail () in
    if String.length pre < 2 || pre.[0] <> 'p' then fail ();
    let mode =
      let body = String.sub pre 1 (String.length pre - 1) in
      if body = "." then None
      else Some (try int_of_string body with _ -> fail ())
    in
    if String.length cl < 1 || cl.[0] <> 'c' then fail ();
    let body = String.sub cl 1 (String.length cl - 1) in
    let reqs, qs =
      if body = "" then ([||], [||])
      else
        let parts =
          List.map
            (fun tok ->
              match String.split_on_char '@' tok with
              | [ r ] -> ((try int_of_string r with _ -> fail ()), unbounded)
              | [ r; q ] ->
                  ( (try int_of_string r with _ -> fail ()),
                    (try int_of_string q with _ -> fail ()) )
              | _ -> fail ())
            (String.split_on_char ',' body)
        in
        (Array.of_list (List.map fst parts), Array.of_list (List.map snd parts))
    in
    let bw =
      match bw_tok with
      | None -> unbounded
      | Some b ->
          if String.length b < 2 || b.[0] <> 'b' then fail ();
          (try int_of_string (String.sub b 1 (String.length b - 1))
           with _ -> fail ())
    in
    (parent, mode, reqs, qs, bw)
  in
  let nodes = List.map parse_node fields in
  let n = List.length nodes in
  if n = 0 then fail ();
  let parents = Array.make n 0
  and pre = Array.make n None
  and clients = Array.make n [||]
  and qos = Array.make n [||]
  and bw = Array.make n unbounded in
  List.iteri
    (fun i (p, m, cl, q, b) ->
      parents.(i) <- p;
      pre.(i) <- m;
      clients.(i) <- cl;
      qos.(i) <- q;
      bw.(i) <- b)
    nodes;
  make ~qos ~bw parents clients pre

let pp fmt t =
  let rec go indent j =
    Format.fprintf fmt "%s- node %d" indent j;
    (match t.pre.(j) with
    | Some m -> Format.fprintf fmt " [pre-existing, mode %d]" m
    | None -> ());
    if t.bw.(j) <> unbounded then Format.fprintf fmt " [bw %d]" t.bw.(j);
    let cl = t.clients.(j) in
    if Array.length cl > 0 then begin
      Format.fprintf fmt " clients:";
      Array.iteri
        (fun i r ->
          if t.qos.(j).(i) <> unbounded then
            Format.fprintf fmt " %d@%d" r t.qos.(j).(i)
          else Format.fprintf fmt " %d" r)
        cl
    end;
    Format.pp_print_newline fmt ();
    Array.iter (go (indent ^ "  ")) t.children.(j)
  in
  go "" 0

let equal a b =
  a.parents = b.parents && a.clients = b.clients && a.pre = b.pre
  && a.qos = b.qos && a.bw = b.bw
