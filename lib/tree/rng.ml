type t = { mutable state : int64 }

(* splitmix64 constants. *)
let gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let derive t i =
  if i < 0 then invalid_arg "Rng.derive: negative index";
  (* Jump the Weyl sequence ahead by (i+1) increments, then re-seed
     through the finalizer: stream i is a deterministic function of
     (t's current state, i) alone — no draws from [t], so deriving
     stream 7 yields the same generator whether or not streams 0..6
     were ever materialized. *)
  { state = mix (Int64.add t.state (Int64.mul gamma (Int64.of_int (i + 1)))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec loop () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw b in
    if Int64.(sub raw v > add (sub max_int b) 1L) then loop ()
    else Int64.to_int v
  in
  loop ()

let int_in_range t ~min ~max =
  if max < min then invalid_arg "Rng.int_in_range: max < min";
  min + int t (max - min + 1)

let float t bound =
  (* 53 random bits scaled to [0,1). *)
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. bound

let bool t = Int64.(logand (bits64 t) 1L) = 1L

let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, set of size <= k. *)
  let module IS = Set.Make (Int) in
  let set = ref IS.empty in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if IS.mem r !set then set := IS.add j !set else set := IS.add r !set
  done;
  IS.elements !set
