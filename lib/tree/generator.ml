type profile = {
  nodes : int;
  min_children : int;
  max_children : int;
  client_probability : float;
  min_requests : int;
  max_requests : int;
}

let fat ?(nodes = 100) () =
  {
    nodes;
    min_children = 6;
    max_children = 9;
    client_probability = 0.5;
    min_requests = 1;
    max_requests = 6;
  }

let high ?(nodes = 100) () = { (fat ~nodes ()) with min_children = 2; max_children = 4 }

let check_profile p =
  if p.nodes <= 0 then invalid_arg "Generator: nodes must be positive";
  if p.min_children <= 0 || p.max_children < p.min_children then
    invalid_arg "Generator: bad branching bounds";
  if p.min_requests <= 0 || p.max_requests < p.min_requests then
    invalid_arg "Generator: bad request bounds";
  if p.client_probability < 0.0 || p.client_probability > 1.0 then
    invalid_arg "Generator: bad client probability"

let draw_clients rng p =
  if Rng.bernoulli rng p.client_probability then
    [ Rng.int_in_range rng ~min:p.min_requests ~max:p.max_requests ]
  else []

let random rng p =
  check_profile p;
  let parents = Array.make p.nodes (-1) in
  (* Breadth-first filling: each dequeued node receives a random number of
     children, clipped to the remaining node budget. *)
  let queue = Queue.create () in
  Queue.add 0 queue;
  let next = ref 1 in
  while !next < p.nodes && not (Queue.is_empty queue) do
    let j = Queue.take queue in
    let want = Rng.int_in_range rng ~min:p.min_children ~max:p.max_children in
    let take = min want (p.nodes - !next) in
    for _ = 1 to take do
      parents.(!next) <- j;
      Queue.add !next queue;
      incr next
    done
  done;
  let clients = Array.init p.nodes (fun _ -> draw_clients rng p) in
  Tree.of_parents ~parents ~clients:clients
    ~pre:(Array.make p.nodes None)

let add_pre_existing rng ?(mode = 1) t e =
  let n = Tree.size t in
  if e < 0 || e > n then invalid_arg "Generator.add_pre_existing";
  let chosen = Rng.sample_without_replacement rng e n in
  Tree.with_pre_existing t (List.map (fun j -> (j, mode)) chosen)

let add_qos rng t ~min_qos ~max_qos =
  if min_qos < 0 || max_qos < min_qos then invalid_arg "Generator.add_qos";
  Tree.with_qos t (fun _ _ -> Rng.int_in_range rng ~min:min_qos ~max:max_qos)

let add_bandwidth _rng t ~slack =
  if slack <= 0.0 then invalid_arg "Generator.add_bandwidth";
  Tree.with_bandwidth t (fun j ->
      let demand = Tree.subtree_demand t j in
      if demand = 0 then Tree.unbounded
      else max 1 (int_of_float (slack *. float_of_int demand)))

(* Constraint presets from the QoS/bandwidth follow-on paper's two
   regimes: [tight] binds most placements (QoS within a couple of hops,
   links sized below subtree demand), [loose] is feasible for almost
   every tree yet still exercises the constrained code paths. *)
let tight_constraints rng t =
  add_bandwidth rng (add_qos rng t ~min_qos:0 ~max_qos:2) ~slack:0.75

let loose_constraints rng t =
  add_bandwidth rng
    (add_qos rng t ~min_qos:3 ~max_qos:(Tree.height t + 3))
    ~slack:2.0

let redraw_requests rng p t =
  check_profile p;
  Tree.with_clients t (fun _ -> draw_clients rng p)

let path ~n ~client_requests =
  if n <= 0 then invalid_arg "Generator.path";
  let parents = Array.init n (fun i -> i - 1) in
  let clients = Array.make n [] in
  clients.(n - 1) <- [ client_requests ];
  Tree.of_parents ~parents ~clients ~pre:(Array.make n None)

let star ~leaves ~client_requests =
  if leaves < 0 then invalid_arg "Generator.star";
  let n = leaves + 1 in
  let parents = Array.init n (fun i -> if i = 0 then -1 else 0) in
  let clients = Array.init n (fun i -> if i = 0 then [] else [ client_requests ]) in
  Tree.of_parents ~parents ~clients ~pre:(Array.make n None)

let balanced ~arity ~depth ~client_requests =
  if arity <= 0 || depth < 0 then invalid_arg "Generator.balanced";
  let rec build d =
    if d = 0 then Tree.node ~clients:[ client_requests ] []
    else Tree.node (List.init arity (fun _ -> build (d - 1)))
  in
  Tree.build (build depth)

let caterpillar ~spine ~legs ~client_requests =
  if spine <= 0 || legs < 0 then invalid_arg "Generator.caterpillar";
  let rec build i =
    let leg = Tree.node ~clients:[ client_requests ] [] in
    let below = if i = spine - 1 then [] else [ build (i + 1) ] in
    Tree.node (below @ List.init legs (fun _ -> leg))
  in
  Tree.build (build 0)
