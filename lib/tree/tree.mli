(** Distribution-tree network model.

    Following the paper's framework (§2.1), a distribution tree consists of
    internal nodes [N] (candidate replica locations) and client leaves [C].
    Each client issues a fixed number of requests per time unit. A client
    is always a leaf; internal nodes may carry any number of client leaves.
    We represent the tree over its internal nodes only and attach, to each
    internal node, the multiset of request counts of its client children —
    this loses no information because a client interacts with the system
    solely through its request count and its attachment point.

    Some internal nodes may host a {e pre-existing} server (the set [E] of
    the paper), each with the mode it is initially operated at (modes are
    1-based indices into a mode ladder, see {!Replica_core.Modes}; use mode
    [1] when modes are irrelevant).

    Nodes are dense integer identifiers [0 .. size-1]; the root is node
    [0]. Values of type {!t} are immutable once built. *)

type node = int
(** Internal-node identifier, [0 <= node < size]. *)

type t
(** An immutable distribution tree. *)

(** {1 Construction} *)

val unbounded : int
(** Sentinel ([max_int]) meaning "no constraint" for per-client QoS
    bounds and per-link bandwidth caps. Plain integer comparisons work
    unchanged against it, and fully unconstrained trees serialize and
    print exactly as they did before constraints existed. *)

type spec = {
  spec_clients : int list;  (** request counts of client leaves here *)
  spec_qos : int list;
      (** per-client QoS distance bounds, aligned with [spec_clients] *)
  spec_bw : int;  (** bandwidth cap of the link to the parent *)
  spec_pre : int option;  (** [Some m]: pre-existing server at initial mode [m] *)
  spec_children : spec list;  (** internal children *)
}
(** Recursive building block for literal trees (tests, examples). *)

val node :
  ?clients:int list -> ?qos:int list -> ?bw:int -> ?pre:int -> spec list -> spec
(** [node ~clients ~qos ~bw ~pre children] is a convenience {!spec}
    constructor; [pre] is the initial mode of a pre-existing server,
    [qos] gives each client's maximum hop distance to its server
    (defaults to {!unbounded} for every client) and [bw] caps the link
    to the parent (default {!unbounded}). *)

val build : spec -> t
(** Materialize a spec. Node identifiers are assigned in preorder, so the
    spec root becomes node [0].
    @raise Invalid_argument if a client request count or constraint is
    negative, a pre-existing mode is not positive, or a spec's QoS list
    does not align with its client list. *)

val of_parents :
  parents:int array -> clients:int list array -> pre:int option array -> t
(** Low-level constructor. [parents.(0)] must be [-1] (root); every other
    [parents.(i)] must be a valid node id that, followed transitively,
    reaches the root (i.e. the arrays describe a single tree).
    @raise Invalid_argument on malformed input. *)

(** {1 Accessors} *)

val size : t -> int
(** Number of internal nodes, [N] in the paper. *)

val root : t -> node

val parent : t -> node -> node option
(** [None] for the root. *)

val children : t -> node -> node list
(** Internal children of a node. *)

val children_array : t -> node -> node array
(** Internal children as the underlying array — zero-allocation
    accessor for hot solver loops. The caller must not mutate it. *)

val clients : t -> node -> int list
(** Request counts of the client leaves attached to a node. *)

val client_load : t -> node -> int
(** Sum of {!clients} — [client(j)] in Algorithm 2. *)

val initial_mode : t -> node -> int option
(** [Some m] iff the node hosts a pre-existing server initially at mode
    [m]. *)

val is_pre_existing : t -> node -> bool

(** {1 Constraints}

    QoS bounds and link bandwidths follow Rehn-Sonigo (arXiv 0706.3350):
    a client with QoS bound [q] must find its (closest-policy) server at
    most [q] hops above its attachment node — [q = 0] demands a server at
    the attachment node itself — and the flow crossing the link from [j]
    up to its parent may not exceed [bandwidth t j]. *)

val client_qos : t -> node -> int list
(** Per-client QoS distance bounds, aligned with {!clients}.
    {!unbounded} entries are unconstrained. *)

val qos_radius : t -> node -> int
(** The binding QoS bound at a node: minimum bound over its clients with
    positive request counts ({!unbounded} if there are none). Under the
    closest policy all clients of a node share one server, so this is
    the only quantity solvers need; zero-request clients generate no
    flow and never constrain. *)

val bandwidth : t -> node -> int
(** Capacity of the link from [node] to its parent; {!unbounded} if
    uncapped. The root has no upward link and always reports
    {!unbounded}. *)

val has_qos : t -> bool
(** True iff some positive-request client carries a finite QoS bound. *)

val has_bandwidth : t -> bool
(** True iff some link carries a finite bandwidth cap. *)

val is_constrained : t -> bool
(** [has_qos t || has_bandwidth t]. *)

val pre_existing : t -> node list
(** The set [E], in increasing node order. *)

val num_pre_existing : t -> int
(** [E = |E|]. *)

val num_clients : t -> int
(** Total number of client leaves. *)

val total_requests : t -> int
(** Sum of all client request counts. *)

(** {1 Traversal} *)

val postorder : t -> node array
(** All nodes, children before parents. Computed once at build time. *)

val preorder : t -> node array
(** All nodes, parents before children. *)

val fold_postorder : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val subtree_size : t -> node -> int
(** Number of internal nodes strictly below [node] (the paper's
    [subtree_j] excludes [j] itself). *)

val subtree_pre_count : t -> node -> int
(** Pre-existing servers strictly below [node]. *)

val subtree_demand : t -> node -> int
(** Total client requests attached at [node] or below — the flow that
    would cross the link [node -> parent] if no server were placed in
    the subtree. O(subtree size). *)

val depth : t -> node -> int
(** Root has depth 0. *)

val height : t -> int
(** Maximum depth over internal nodes. *)

val subtree_fingerprints : t -> int64 array
(** Per-node 64-bit fingerprints of the subtree rooted at each node:
    the fingerprint covers the node's client multiset (in order), each
    client's QoS bound, the node's link bandwidth, its pre-existing
    marker (with initial mode), and its children's fingerprints (in
    child order) — everything a bottom-up solver's
    per-node table can depend on besides the global parameters. Two
    epoch views of the same network ({!with_clients} /
    {!with_pre_existing} derivatives) agree on a node's fingerprint iff
    the subtrees agree on that data, up to a ~2^-64 collision
    probability; the incremental dynamic programs key their memo tables
    on these. One postorder pass, O(size + clients). *)

val combine_fingerprints : int64 -> int64 -> int64
(** Order-sensitive 64-bit mixing step used by {!subtree_fingerprints},
    exposed so solvers can extend fingerprints into cache-key chains
    (e.g. hashing a prefix of merged child tables). *)

val ancestors : t -> node -> node list
(** Path from [node] (excluded) up to the root (included). *)

val is_ancestor : t -> anc:node -> desc:node -> bool
(** True iff [anc] lies strictly above [desc]. *)

(** {1 Derivation} *)

val with_pre_existing : t -> (node * int) list -> t
(** [with_pre_existing t l] is [t] with its pre-existing set replaced by
    the nodes in [l] (node, initial mode) — all previous pre-existing
    markers are dropped. Used by dynamic-update experiments where the
    servers of step [k] become the pre-existing set of step [k+1]. *)

val with_clients : t -> (node -> int list) -> t
(** [with_clients t f] replaces each node's client multiset by [f node];
    structure, pre-existing markers and link bandwidths are kept. QoS
    bounds are kept verbatim when [f node] has the same arity as the old
    client list; otherwise every new client at the node inherits the
    node's tightest old bound, so epoch-derived views of a constrained
    network stay constrained. *)

val with_qos : t -> (node -> int -> int) -> t
(** [with_qos t f] replaces the QoS bound of the [i]-th client at node
    [j] by [f j i]; everything else is kept. Use {!unbounded} to lift a
    bound.
    @raise Invalid_argument on a negative bound. *)

val with_bandwidth : t -> (node -> int) -> t
(** [with_bandwidth t f] replaces the bandwidth of each link [j ->
    parent] by [f j] (the root's slot is forced to {!unbounded});
    everything else is kept.
    @raise Invalid_argument on a negative cap. *)

(** {1 Serialization and printing} *)

val to_string : t -> string
(** Compact, parseable representation. QoS bounds ([r@q] client tokens)
    and bandwidth caps (a trailing [b<cap>] token) appear only when
    finite, so unconstrained trees round-trip byte-identically to the
    historical format. *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on a malformed string. *)

val pp : Format.formatter -> t -> unit
(** Human-oriented ASCII rendering, one node per line, indented. *)

val equal : t -> t -> bool
(** Structural equality. *)
