(** Random distribution-tree generators.

    {!random} reproduces the synthetic workload of the paper's §5: trees
    with a fixed number of internal nodes whose branching factor is drawn
    uniformly in a range ("fat" trees use 6–9 children, "high" trees 2–4),
    where each internal node independently carries a client with some
    probability, and where a subset of nodes is marked as pre-existing
    servers. The structured generators ({!path}, {!star}, {!balanced},
    {!caterpillar}) are used by tests and ablation benches to probe
    extreme shapes. *)

type profile = {
  nodes : int;  (** number of internal nodes, [N] *)
  min_children : int;  (** inclusive lower branching bound *)
  max_children : int;  (** inclusive upper branching bound *)
  client_probability : float;  (** chance a node carries a client *)
  min_requests : int;  (** inclusive per-client request bound *)
  max_requests : int;
}
(** Shape and workload parameters of {!random}. *)

val fat : ?nodes:int -> unit -> profile
(** The paper's §5.1 default: 6–9 children, client probability 0.5,
    1–6 requests per client. [nodes] defaults to 100. *)

val high : ?nodes:int -> unit -> profile
(** The paper's "high tree" variant: 2–4 children, otherwise as {!fat}. *)

val random : Rng.t -> profile -> Tree.t
(** Draw a tree. Construction is breadth-first: nodes are taken from a
    queue, each receives a uniform number of children in
    [\[min_children, max_children\]] as long as the node budget allows, so
    the result has exactly [profile.nodes] internal nodes. No pre-existing
    servers are marked (see {!add_pre_existing}).
    @raise Invalid_argument on inconsistent profile bounds. *)

val add_pre_existing : Rng.t -> ?mode:int -> Tree.t -> int -> Tree.t
(** [add_pre_existing rng ~mode t e] marks [e] distinct nodes, drawn
    uniformly, as pre-existing servers at initial mode [mode] (default
    [1]). Existing marks are discarded.
    @raise Invalid_argument if [e] exceeds the tree size. *)

(** {1 Constraint annotation (QoS / bandwidth regimes)} *)

val add_qos : Rng.t -> Tree.t -> min_qos:int -> max_qos:int -> Tree.t
(** Draw every client's QoS distance bound uniformly in
    [\[min_qos, max_qos\]], keeping everything else.
    @raise Invalid_argument on inconsistent bounds. *)

val add_bandwidth : Rng.t -> Tree.t -> slack:float -> Tree.t
(** Cap each link [j -> parent] at [max 1 (slack * subtree_demand j)]
    (links above demand-free subtrees stay {!Tree.unbounded}). [slack <
    1] guarantees some links bind; [slack >= 1] caps are satisfied by
    the serve-everything-at-the-root placement but still constrain
    server-free subtrees.
    @raise Invalid_argument if [slack <= 0]. *)

val tight_constraints : Rng.t -> Tree.t -> Tree.t
(** QoS in [0, 2] plus bandwidth slack 0.75 — a regime where constraints
    bind for most trees and infeasible instances are common. *)

val loose_constraints : Rng.t -> Tree.t -> Tree.t
(** QoS in [3, height + 3] plus bandwidth slack 2.0 — almost always
    feasible, but the constrained code paths are exercised. *)

val redraw_requests : Rng.t -> profile -> Tree.t -> Tree.t
(** Redraw every node's client attachment (presence, then request count)
    from [profile], keeping the tree structure and pre-existing servers.
    Models the paper's Experiment 2 where "the number of requests per
    client" is updated between reconfiguration steps. *)

(** {1 Structured shapes (tests and ablations)} *)

val path : n:int -> client_requests:int -> Tree.t
(** A chain of [n] internal nodes; only the deepest carries one client
    with [client_requests] requests. *)

val star : leaves:int -> client_requests:int -> Tree.t
(** A root with [leaves] internal children, each carrying one client. *)

val balanced : arity:int -> depth:int -> client_requests:int -> Tree.t
(** Perfect [arity]-ary tree of the given [depth]; every leaf internal
    node carries one client. [depth = 0] is a single node. *)

val caterpillar : spine:int -> legs:int -> client_requests:int -> Tree.t
(** A spine of [spine] nodes, each with [legs] extra internal children
    that each carry one client. *)
