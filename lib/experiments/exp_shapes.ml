type config = {
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  cost : Cost.basic;
}

let default_config () =
  {
    trees = 20;
    nodes = 60;
    pre = 20;
    seed = 1;
    cost = Cost.basic ~create:0.01 ~delete:0.001 ();
  }

type row = {
  shape : string;
  mean_height : float;
  dp_reused : float;
  gr_reused : float;
  dp_seconds : float;
  power_states : float;
}

let shapes nodes =
  let profile min_children max_children =
    {
      Generator.nodes;
      min_children;
      max_children;
      client_probability = 0.5;
      min_requests = 1;
      max_requests = 5;
    }
  in
  [
    ("chain-like (1)", profile 1 1);
    ("binary (2)", profile 2 2);
    ("high (2-4)", profile 2 4);
    ("fat (6-9)", profile 6 9);
    ("bushy (12-16)", profile 12 16);
  ]

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

let run config =
  let w = Workload.capacity in
  let modes = Modes.make [ 5; 10 ] in
  List.map
    (fun (name, profile) ->
      let master = Rng.create config.seed in
      let heights = ref []
      and dp_reused = ref []
      and gr_reused = ref []
      and dp_secs = ref []
      and states = ref [] in
      for _ = 1 to config.trees do
        let rng = Rng.split master in
        let tree =
          Generator.add_pre_existing rng (Generator.random rng profile)
            config.pre
        in
        heights := float_of_int (Tree.height tree) :: !heights;
        states :=
          float_of_int (Dp_power.root_state_count tree ~modes) :: !states;
        let secs, dp = time (fun () -> Dp_withpre.solve tree ~w ~cost:config.cost) in
        dp_secs := secs :: !dp_secs;
        match (dp, Greedy.solve tree ~w) with
        | Some d, Some g ->
            dp_reused := float_of_int d.Dp_withpre.reused :: !dp_reused;
            gr_reused := float_of_int (Solution.reused tree g) :: !gr_reused
        | None, None -> ()
        | Some _, None | None, Some _ -> assert false
      done;
      {
        shape = name;
        mean_height = Stats.mean !heights;
        dp_reused = Stats.mean !dp_reused;
        gr_reused = Stats.mean !gr_reused;
        dp_seconds = Stats.mean !dp_secs;
        power_states = Stats.mean !states;
      })
    (shapes config.nodes)

let to_table ?(no_time = false) rows =
  let table =
    Table.make
      ~header:
        [
          "shape";
          "mean height";
          "DP reused";
          "GR reused";
          "DP seconds";
          "power DP states";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.shape;
          Table.fmt_float ~decimals:1 r.mean_height;
          Table.fmt_float ~decimals:2 r.dp_reused;
          Table.fmt_float ~decimals:2 r.gr_reused;
          (if no_time then "-" else Table.fmt_float ~decimals:5 r.dp_seconds);
          Table.fmt_float ~decimals:0 r.power_states;
        ])
    rows;
  table
