(** Runtime scaling measurements (§5's wall-clock observations).

    The paper reports GR running in under a second per 100-node tree
    while DP takes ~40 s, DP handling 500-node trees in ~30 min, the
    power DP handling 300 nodes (no pre-existing) in ~1 h and 70 nodes
    with 10 pre-existing in ~1 h — all on 2010 hardware. We reproduce
    the {e ratios and growth trends} on scaled sizes; Bechamel-based
    micro-benchmarks live in [bench/main.ml], this module provides the
    coarse-grained CPU-time sweep used by the CLI and the reports. *)

type measurement = {
  algorithm : string;
  nodes : int;
  pre_existing : int;
  seconds : float;  (** CPU seconds, single run *)
  allocated_mb : float;  (** megabytes allocated by the solve *)
  peak_major_words : int;
      (** major-heap high-water mark after the solve (cumulative
          across the sweep — sizes run in increasing order, so each
          row bounds its own N) *)
  servers : int;  (** solution size, as a sanity output *)
}

val measure_cost_algorithms :
  ?sizes:int list -> ?seed:int -> shape:Workload.shape -> unit -> measurement list
(** Time every closest-policy registry cost solver (greedy, dp-nopre,
    dp-withpre, heuristic-cost; E = N/4 pre-existing) on one random
    tree per size. Default sizes: [20; 40; 80; 160; 100_000;
    1_000_000]; above 4_000 nodes only the near-linear solvers
    (greedy, greedy-qos) run — the DP tables are quadratic in cells. *)

val measure_power_dp :
  ?sizes:int list -> ?pre:int -> ?seed:int -> shape:Workload.shape -> unit ->
  measurement list
(** Time every registry power solver, exact DP first (modes {5, 10}),
    on one random tree per size. Default sizes: [10; 20; 30]; [pre]
    defaults to 3. *)

val measure_power_dp_large :
  ?sizes:int list -> ?pre:int -> ?seed:int -> shape:Workload.shape -> unit ->
  measurement list
(** Large-N power rows (default sizes [1_000; 10_000]): dp-power and
    gr-power only, on a sparse workload whose mode ladder tracks the
    total load so the table stays a few cells per node. Pins the DP
    machinery's per-node constants — wall clock and, via [alloc_mb],
    the packed core's allocation behaviour — rather than state-space
    growth, which {!measure_power_dp}'s classic sizes cover. *)

val to_table : measurement list -> Table.t
