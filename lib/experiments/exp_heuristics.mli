(** Heuristic-quality ablation for [MinPower].

    §6 proposes polynomial heuristics as the practical alternative to
    the exponential-in-M dynamic program. This harness measures exactly
    what that trade buys: for {e every registered power solver} (the
    exact DP, the GR capacity sweep, greedy hill-climb, multi-start
    climb, simulated annealing — enumerated from
    {!Replica_core.Registry}, so a new power algorithm joins the
    ablation by registering) it reports the average power overhead
    relative to the DP optimum and the average CPU time, over a batch
    of random §5.2 instances. Not a paper figure; an ablation this
    library adds. *)

type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  bound_fraction : float;
      (** per-tree cost bound, as a position along that tree's DP
          frontier cost range: 0 = only the cheapest placement fits,
          1 = unconstrained. Mid values are where heuristics diverge
          from the optimum; with no bound the all-slow-servers solution
          is optimal and every solver finds it. *)
  rounds : int;
      (** effort knob passed uniformly through {!Replica_core.Solver.request}:
          annealing iteration budget and local-search round cap *)
}

val default_config : ?shape:Workload.shape -> unit -> config
(** 20 trees of 40 nodes with 4 pre-existing servers,
    [bound_fraction = 0.35], [rounds = 500]. *)

type row = {
  algorithm : string;
  solved : int;  (** instances where the solver found a solution *)
  avg_power_overhead_percent : float;
      (** mean of [100·(power/optimum − 1)] over solved instances *)
  worst_power_overhead_percent : float;
  avg_seconds : float;
}

val run : ?domains:int -> config -> row list
(** One row per registered power solver, in registration order —
    dp-power (the reference, 0 overhead) first, then gr-power,
    heuristic, multi-start, anneal. [domains] parallelizes only the
    untimed setup (frontier sweep and reference optima); the measured
    solver runs stay sequential so the reported CPU times remain
    meaningful. *)

val to_table : ?no_time:bool -> row list -> Table.t
(** [no_time] prints ["-"] in the timing column, making the output
    deterministic for a fixed seed — what the CLI's [--no-time] flag
    and the cram test use. *)
