type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  bound_fraction : float;
  rounds : int;
}

let default_config ?(shape = Workload.Fat) () =
  {
    shape;
    trees = 20;
    nodes = 40;
    pre = 4;
    seed = 1;
    bound_fraction = 0.35;
    rounds = 500;
  }

type row = {
  algorithm : string;
  solved : int;
  avg_power_overhead_percent : float;
  worst_power_overhead_percent : float;
  avg_seconds : float;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

(* Every registered power solver, in registration order: the exact DP
   first (the reference the overheads are relative to), then the
   heuristics. A newly registered power algorithm joins the ablation
   with no change here. *)
let solvers () =
  List.filter
    (fun (s : Solver.t) ->
      let c = s.Solver.capability in
      c.Solver.handles_power && (not c.Solver.handles_cost)
      && c.Solver.max_nodes = None)
    (Registry.all ())

let run ?domains config =
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let cost = Cost.paper_cheap ~modes:2 in
  let master = Rng.create config.seed in
  (* Instance setup (frontier sweep + reference optimum — the untimed
     DP work) fans out over domains; RNGs are split sequentially first
     so results are identical at any domain count. The timed solver
     loop below stays sequential because it measures CPU time. *)
  let rngs = List.init config.trees (fun _ -> Rng.split master) in
  let prepared =
    Par.map ?domains
      (fun rng ->
        let t =
          Generator.random rng
            (Workload.profile config.shape ~nodes:config.nodes ~max_requests:5)
        in
        let tree = Generator.add_pre_existing rng ~mode:2 t config.pre in
        (* Per-tree bound: a point along the frontier's cost range. *)
        match Dp_power.frontier tree ~modes ~power ~cost with
        | [] -> None
        | frontier ->
            let costs = List.map (fun r -> r.Dp_power.cost) frontier in
            let lo = Stats.minimum costs and hi = Stats.maximum costs in
            let bound = lo +. (config.bound_fraction *. (hi -. lo)) in
            let optimum =
              Option.map
                (fun r -> r.Dp_power.power)
                (Dp_power.solve tree ~modes ~power ~cost ~bound ())
            in
            Some ((tree, bound, rng), optimum))
      rngs
    |> List.filter_map Fun.id
  in
  let instances = List.map fst prepared in
  let optima = List.map snd prepared in
  List.map
    (fun (s : Solver.t) ->
      let overheads = ref [] and seconds = ref [] and solved = ref 0 in
      List.iter2
        (fun (tree, bound, rng) optimum ->
          let problem = Problem.min_power tree ~modes ~power ~cost ~bound () in
          let request =
            Solver.request ~rng:(Rng.copy rng) ~rounds:config.rounds ()
          in
          let elapsed, result = time (fun () -> s.Solver.solve problem request) in
          seconds := elapsed :: !seconds;
          match (result, optimum) with
          | Some (o : Solver.outcome), Some opt ->
              incr solved;
              let pw = Option.value o.Solver.power ~default:nan in
              overheads := (100. *. ((pw /. opt) -. 1.)) :: !overheads
          | None, _ -> ()
          | Some _, None -> assert false)
        instances optima;
      {
        algorithm = s.Solver.name;
        solved = !solved;
        avg_power_overhead_percent = Stats.mean !overheads;
        worst_power_overhead_percent = Stats.maximum !overheads;
        avg_seconds = Stats.mean !seconds;
      })
    (solvers ())

let to_table ?(no_time = false) rows =
  let table =
    Table.make
      ~header:
        [ "algorithm"; "solved"; "avg overhead %"; "worst overhead %"; "avg seconds" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.algorithm;
          string_of_int r.solved;
          Table.fmt_float ~decimals:2 r.avg_power_overhead_percent;
          Table.fmt_float ~decimals:2 r.worst_power_overhead_percent;
          (if no_time then "-" else Table.fmt_float ~decimals:5 r.avg_seconds);
        ])
    rows;
  table
