type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  epochs : int;
  seed : int;
  cost : Cost.basic;
  policies : Update_policy.policy list;
}

let default_config ?(shape = Workload.Fat) () =
  {
    shape;
    trees = 20;
    nodes = 50;
    epochs = 20;
    seed = 1;
    cost = Cost.basic ~create:0.5 ~delete:0.25 ();
    policies =
      [
        Update_policy.Systematic;
        Update_policy.Lazy;
        Update_policy.Periodic 4;
        Update_policy.Drift 0.2;
      ];
  }

type row = {
  policy : Update_policy.policy;
  avg_total_cost : float;
  avg_reconfigurations : float;
  avg_invalid_epochs : float;
}

(* Gentle epoch-to-epoch drift: a full redraw (as in Experiment 2) breaks
   every placement every epoch and makes all policies degenerate to
   systematic. Here each client jitters by +/-1 request, occasionally
   leaves, and nodes occasionally gain a client; per-node demand is
   clamped to W so epochs stay serveable. *)
let drift ?(intensity = 1.) rng tree =
  let w = Workload.capacity in
  let leave = min 0.9 (0.05 *. intensity)
  and gain = min 0.9 (0.08 *. intensity)
  and jitter = min 0.95 (0.6 *. intensity) in
  Tree.with_clients tree (fun j ->
      let survived =
        List.filter_map
          (fun r ->
            if Rng.bernoulli rng leave then None
            else
              let r =
                if Rng.bernoulli rng jitter then
                  r + Rng.int_in_range rng ~min:(-1) ~max:1
                else r
              in
              if r <= 0 then None else Some (min r 6))
          (Tree.clients tree j)
      in
      let proposed =
        if Rng.bernoulli rng gain then (1 + Rng.int rng 4) :: survived
        else survived
      in
      let rec clamp total = function
        | [] -> []
        | r :: rest ->
            if total + r > w then clamp total rest
            else r :: clamp (total + r) rest
      in
      clamp 0 proposed)

let demand_sequence ?intensity rng config =
  let profile = Workload.profile config.shape ~nodes:config.nodes ~max_requests:6 in
  let base = Generator.random rng profile in
  let rec go tree k acc =
    if k = 0 then List.rev acc
    else
      let next = drift ?intensity rng tree in
      go next (k - 1) (next :: acc)
  in
  go base config.epochs []

let run ?domains config =
  let master = Rng.create config.seed in
  let sequences =
    List.init config.trees (fun _ ->
        demand_sequence (Rng.split master) config)
  in
  List.map
    (fun policy ->
      (* Each sequence's simulation is independent; fan the per-tree DP
         solves out over domains (results are positional, so identical
         at any domain count). *)
      let summaries =
        Par.map ?domains
          (fun demands ->
            Update_policy.simulate ~w:Workload.capacity ~cost:config.cost
              policy demands)
          sequences
      in
      {
        policy;
        avg_total_cost =
          Stats.mean (List.map (fun s -> s.Update_policy.total_cost) summaries);
        avg_reconfigurations =
          Stats.mean
            (List.map
               (fun s -> float_of_int s.Update_policy.reconfigurations)
               summaries);
        avg_invalid_epochs =
          Stats.mean
            (List.map
               (fun s -> float_of_int s.Update_policy.invalid_epochs)
               summaries);
      })
    config.policies

let to_table rows =
  let table =
    Table.make
      ~header:
        [ "policy"; "avg total cost"; "avg reconfigurations"; "avg invalid epochs" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Update_policy.policy_to_string r.policy;
          Table.fmt_float ~decimals:2 r.avg_total_cost;
          Table.fmt_float ~decimals:2 r.avg_reconfigurations;
          Table.fmt_float ~decimals:2 r.avg_invalid_epochs;
        ])
    rows;
  table


type drift_row = {
  intensity : float;
  lazy_reconfigurations : float;
  lazy_cost : float;
  systematic_cost : float;
  lazy_savings_percent : float;
}

let run_drift_sweep config intensities =
  List.map
    (fun intensity ->
      let master = Rng.create config.seed in
      let sequences =
        List.init config.trees (fun _ ->
            demand_sequence ~intensity (Rng.split master) config)
      in
      let simulate policy =
        List.map
          (fun demands ->
            Update_policy.simulate ~w:Workload.capacity ~cost:config.cost
              policy demands)
          sequences
      in
      let lazy_runs = simulate Update_policy.Lazy in
      let sys_runs = simulate Update_policy.Systematic in
      let lazy_cost =
        Stats.mean (List.map (fun s -> s.Update_policy.total_cost) lazy_runs)
      in
      let systematic_cost =
        Stats.mean (List.map (fun s -> s.Update_policy.total_cost) sys_runs)
      in
      {
        intensity;
        lazy_reconfigurations =
          Stats.mean
            (List.map
               (fun s -> float_of_int s.Update_policy.reconfigurations)
               lazy_runs);
        lazy_cost;
        systematic_cost;
        lazy_savings_percent =
          (if systematic_cost > 0. then
             100. *. (1. -. (lazy_cost /. systematic_cost))
           else 0.);
      })
    intensities

let drift_table rows =
  let table =
    Table.make
      ~header:
        [
          "drift intensity";
          "lazy reconfigurations";
          "lazy cost";
          "systematic cost";
          "lazy savings %";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          Table.fmt_float ~decimals:2 r.intensity;
          Table.fmt_float ~decimals:2 r.lazy_reconfigurations;
          Table.fmt_float ~decimals:2 r.lazy_cost;
          Table.fmt_float ~decimals:2 r.systematic_cost;
          Table.fmt_float ~decimals:1 r.lazy_savings_percent;
        ])
    rows;
  table
