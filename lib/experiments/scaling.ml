type measurement = {
  algorithm : string;
  nodes : int;
  pre_existing : int;
  seconds : float;
  allocated_mb : float;
  peak_major_words : int;
  servers : int;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

(* Registry solvers of the requested family that run at any scale:
   closest-policy only (other access policies answer a different
   question) and unguarded (the exhaustive oracle would not survive
   these sizes). *)
let registry_solvers ~power_family =
  List.filter
    (fun (s : Solver.t) ->
      let c = s.Solver.capability in
      c.Solver.access = Solver.Closest
      && c.Solver.max_nodes = None
      &&
      if power_family then c.Solver.handles_power && not c.Solver.handles_cost
      else c.Solver.handles_cost)
    (Registry.all ())

let measure (s : Solver.t) problem ~nodes ~pre_existing =
  (* Memory axis of the sweep: bytes allocated by the solve and the
     major-heap high-water mark after it — the per-N baseline the
     planned arena DP core will be measured against. top_heap_words is
     cumulative across the process, so sweeps read it in increasing-N
     order (which measure_* guarantee). *)
  let bytes0 = Gc.allocated_bytes () in
  let seconds, outcome =
    time (fun () -> s.Solver.solve problem Solver.default_request)
  in
  let allocated_mb = (Gc.allocated_bytes () -. bytes0) /. 1e6 in
  {
    algorithm = s.Solver.name;
    nodes;
    pre_existing;
    seconds;
    allocated_mb;
    peak_major_words = (Gc.quick_stat ()).Gc.top_heap_words;
    servers =
      (match outcome with
      | Some (o : Solver.outcome) -> o.Solver.servers
      | None -> -1);
  }

(* Above [dp_cap] nodes only the near-linear solvers run: the DP
   tables are Theta(E * N) cells per node, so a 10^5-node row would
   wait out quadratic work instead of pinning the per-node constants
   the large-N rows exist to track. *)
let dp_cap = 4_000
let scales_to_large (s : Solver.t) =
  match s.Solver.name with "greedy" | "greedy-qos" -> true | _ -> false

let measure_cost_algorithms ?(sizes = [ 20; 40; 80; 160; 100_000; 1_000_000 ])
    ?(seed = 7) ~shape () =
  let w = Workload.capacity in
  let cost = Cost.basic ~create:0.01 ~delete:0.0001 () in
  List.concat_map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
      in
      let pre = nodes / 4 in
      let tree = Generator.add_pre_existing rng bare pre in
      let problem = Problem.min_cost tree ~w ~cost in
      List.filter_map
        (fun s ->
          if nodes > dp_cap && not (scales_to_large s) then None
          else Some (measure s problem ~nodes ~pre_existing:pre))
        (registry_solvers ~power_family:false))
    sizes

let measure_power_dp ?(sizes = [ 10; 20; 30 ]) ?(pre = 3) ?(seed = 7) ~shape
    () =
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let cost = Cost.paper_cheap ~modes:2 in
  List.concat_map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:5)
      in
      let tree = Generator.add_pre_existing rng ~mode:2 bare (min pre nodes) in
      let problem = Problem.min_power tree ~modes ~power ~cost () in
      List.map
        (fun s -> measure s problem ~nodes ~pre_existing:(min pre nodes))
        (registry_solvers ~power_family:true))
    sizes

(* Large-N power rows: the mode ladder tracks the instance's total
   load, so the optimum stays a handful of servers, the packed-key
   layout fits its 62-bit budget, and the row measures the DP
   machinery's per-node constants (table walks, arena pushes) rather
   than state-space growth — which the classic sizes above cover.
   Only the DP and its greedy baseline run: the local-search
   heuristics would dominate the wall clock without adding a data
   point about the packed core. *)
let measure_power_dp_large ?(sizes = [ 1_000; 10_000 ]) ?(pre = 3) ?(seed = 7)
    ~shape () =
  List.concat_map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:2)
      in
      let pre = min pre nodes in
      let tree = Generator.add_pre_existing rng ~mode:2 bare pre in
      let load = max 4 (Tree.total_requests tree) in
      let modes = Modes.make [ load / 4; load / 2 ] in
      let power = Power.paper_exp3 ~modes in
      let cost = Cost.paper_cheap ~modes:2 in
      let problem = Problem.min_power tree ~modes ~power ~cost () in
      List.filter_map
        (fun (s : Solver.t) ->
          match s.Solver.name with
          | "dp-power" | "gr-power" ->
              Some (measure s problem ~nodes ~pre_existing:pre)
          | _ -> None)
        (registry_solvers ~power_family:true))
    sizes

let to_table measurements =
  let table =
    Table.make
      ~header:
        [ "algorithm"; "N"; "E"; "seconds"; "alloc_mb"; "peak_heap_w"; "servers" ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          m.algorithm;
          string_of_int m.nodes;
          string_of_int m.pre_existing;
          Table.fmt_float ~decimals:4 m.seconds;
          Table.fmt_float ~decimals:2 m.allocated_mb;
          string_of_int m.peak_major_words;
          string_of_int m.servers;
        ])
    measurements;
  table
