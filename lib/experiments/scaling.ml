type measurement = {
  algorithm : string;
  nodes : int;
  pre_existing : int;
  seconds : float;
  servers : int;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

(* Registry solvers of the requested family that run at any scale:
   closest-policy only (other access policies answer a different
   question) and unguarded (the exhaustive oracle would not survive
   these sizes). *)
let registry_solvers ~power_family =
  List.filter
    (fun (s : Solver.t) ->
      let c = s.Solver.capability in
      c.Solver.access = Solver.Closest
      && c.Solver.max_nodes = None
      &&
      if power_family then c.Solver.handles_power && not c.Solver.handles_cost
      else c.Solver.handles_cost)
    (Registry.all ())

let measure (s : Solver.t) problem ~nodes ~pre_existing =
  let seconds, outcome =
    time (fun () -> s.Solver.solve problem Solver.default_request)
  in
  {
    algorithm = s.Solver.name;
    nodes;
    pre_existing;
    seconds;
    servers =
      (match outcome with
      | Some (o : Solver.outcome) -> o.Solver.servers
      | None -> -1);
  }

let measure_cost_algorithms ?(sizes = [ 20; 40; 80; 160 ]) ?(seed = 7) ~shape
    () =
  let w = Workload.capacity in
  let cost = Cost.basic ~create:0.01 ~delete:0.0001 () in
  List.concat_map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:6)
      in
      let pre = nodes / 4 in
      let tree = Generator.add_pre_existing rng bare pre in
      let problem = Problem.min_cost tree ~w ~cost in
      List.map
        (fun s -> measure s problem ~nodes ~pre_existing:pre)
        (registry_solvers ~power_family:false))
    sizes

let measure_power_dp ?(sizes = [ 10; 20; 30 ]) ?(pre = 3) ?(seed = 7) ~shape
    () =
  let modes = Modes.make [ 5; 10 ] in
  let power = Power.paper_exp3 ~modes in
  let cost = Cost.paper_cheap ~modes:2 in
  List.concat_map
    (fun nodes ->
      let rng = Rng.create (seed + nodes) in
      let bare =
        Generator.random rng (Workload.profile shape ~nodes ~max_requests:5)
      in
      let tree = Generator.add_pre_existing rng ~mode:2 bare (min pre nodes) in
      let problem = Problem.min_power tree ~modes ~power ~cost () in
      List.map
        (fun s -> measure s problem ~nodes ~pre_existing:(min pre nodes))
        (registry_solvers ~power_family:true))
    sizes

let to_table measurements =
  let table =
    Table.make ~header:[ "algorithm"; "N"; "E"; "seconds"; "servers" ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [
          m.algorithm;
          string_of_int m.nodes;
          string_of_int m.pre_existing;
          Table.fmt_float ~decimals:4 m.seconds;
          string_of_int m.servers;
        ])
    measurements;
  table
