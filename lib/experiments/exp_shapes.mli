(** Tree-shape sensitivity ablation.

    §5 only contrasts "fat" (6–9 children) and "high" (2–4) trees and
    remarks that "the shape of the trees does not seem to modify the
    general behaviour". This ablation widens the panel — chain-like,
    binary, high, fat, bushy — and measures, per shape: the DP's reuse
    advantage over GR (solution quality) and the DP runtimes (the shape
    does matter for speed: per-node table sizes follow the subtree
    profile). Not a paper figure; an ablation this library adds. *)

type config = {
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  cost : Cost.basic;
}

val default_config : unit -> config
(** 20 trees of 60 nodes with 20 pre-existing servers. *)

type row = {
  shape : string;
  mean_height : float;
  dp_reused : float;
  gr_reused : float;
  dp_seconds : float;  (** average Dp_withpre time per tree *)
  power_states : float;
      (** average [Dp_power.root_state_count] — the power DP's hardness *)
}

val run : config -> row list

val to_table : ?no_time:bool -> row list -> Table.t
(** [no_time] prints ["-"] in the timing column — nondeterministic
    wall-clock numbers otherwise break output-pinning tests. *)
