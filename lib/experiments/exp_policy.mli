(** Update-policy ablation (the §6 trade-off, quantified).

    The paper's conclusion frames dynamic replica management as choosing
    an update interval between "lazy" (reconfigure only when the current
    placement breaks) and "systematic" (reconfigure every step), driven
    by the demand's variation rate. This harness runs every
    {!Replica_core.Update_policy.policy} over the same randomly-drifting
    demand sequences and reports the average reconfiguration bill, the
    number of reconfigurations, and the epochs spent with an invalid
    placement — the quantities that §6 argues should guide the interval
    choice. Not a paper figure; an ablation this library adds. *)

type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  epochs : int;
  seed : int;
  cost : Cost.basic;
  policies : Update_policy.policy list;
}

val default_config : ?shape:Workload.shape -> unit -> config
(** 20 trees of 50 nodes over 20 epochs; create = 0.5, delete = 0.25;
    policies: systematic, lazy, periodic(4), drift(0.2). *)

type row = {
  policy : Update_policy.policy;
  avg_total_cost : float;
  avg_reconfigurations : float;
  avg_invalid_epochs : float;
}

val run : ?domains:int -> config -> row list
(** One row per policy, averaged over the trees; every policy sees the
    same demand sequences. Per-tree simulations fan out over [domains]
    ({!Replica_core.Par.map}); results are identical at any count. *)

val to_table : row list -> Table.t

(** {1 Drift sensitivity (the §6 "rates and amplitudes" remark)} *)

type drift_row = {
  intensity : float;  (** demand volatility multiplier; 1.0 = default *)
  lazy_reconfigurations : float;  (** avg reconfigurations over the run *)
  lazy_cost : float;
  systematic_cost : float;
  lazy_savings_percent : float;
      (** how much of the systematic bill laziness saves at this
          volatility — the §6 interval-choice signal *)
}

val run_drift_sweep : config -> float list -> drift_row list
(** Run lazy vs systematic at each demand-volatility level; every level
    regenerates the same trees (same seed) with scaled client churn. *)

val drift_table : drift_row list -> Table.t
