type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  cost : Cost.basic;
}

let default_config ?(shape = Workload.Fat) () =
  {
    shape;
    trees = 20;
    nodes = 60;
    pre = 20;
    seed = 1;
    cost = Cost.basic ~create:0.5 ~delete:0.25 ();
  }

type row = {
  algorithm : string;
  solved : int;
  avg_cost_overhead_percent : float;
  worst_cost_overhead_percent : float;
  avg_seconds : float;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

(* Every registered closest-policy cost solver: the exact DPs, the
   local search and the pre-oblivious greedy. Other access policies
   (multiple, upwards) optimize a different feasible set and must not
   be differentially compared; size-guarded exhaustive oracles are
   excluded because the ablation runs well past tiny trees. *)
let solvers () =
  List.filter
    (fun (s : Solver.t) ->
      let c = s.Solver.capability in
      c.Solver.handles_cost
      && c.Solver.access = Solver.Closest
      && c.Solver.max_nodes = None)
    (Registry.all ())

let run config =
  let w = Workload.capacity in
  let cost = config.cost in
  let master = Rng.create config.seed in
  let instances =
    List.init config.trees (fun _ ->
        let rng = Rng.split master in
        let t =
          Generator.random rng
            (Workload.profile config.shape ~nodes:config.nodes ~max_requests:6)
        in
        Generator.add_pre_existing rng t config.pre)
  in
  let optima =
    List.map
      (fun tree ->
        Option.map (fun r -> r.Dp_withpre.cost) (Dp_withpre.solve tree ~w ~cost))
      instances
  in
  List.map
    (fun (s : Solver.t) ->
      let overheads = ref [] and seconds = ref [] and solved = ref 0 in
      List.iter2
        (fun tree optimum ->
          let problem = Problem.min_cost tree ~w ~cost in
          let elapsed, result =
            time (fun () -> s.Solver.solve problem Solver.default_request)
          in
          seconds := elapsed :: !seconds;
          match (result, optimum) with
          | Some (o : Solver.outcome), Some opt ->
              incr solved;
              let c = Option.value o.Solver.cost ~default:nan in
              overheads := (100. *. ((c /. opt) -. 1.)) :: !overheads
          | None, None -> ()
          | None, Some _ | Some _, None ->
              (* All closest-policy cost solvers share one feasibility
                 notion. *)
              assert false)
        instances optima;
      {
        algorithm = s.Solver.name;
        solved = !solved;
        avg_cost_overhead_percent = Stats.mean !overheads;
        worst_cost_overhead_percent = Stats.maximum !overheads;
        avg_seconds = Stats.mean !seconds;
      })
    (solvers ())

let to_table ?(no_time = false) rows =
  let table =
    Table.make
      ~header:
        [ "algorithm"; "solved"; "avg overhead %"; "worst overhead %"; "avg seconds" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.algorithm;
          string_of_int r.solved;
          Table.fmt_float ~decimals:2 r.avg_cost_overhead_percent;
          Table.fmt_float ~decimals:2 r.worst_cost_overhead_percent;
          (if no_time then "-" else Table.fmt_float ~decimals:5 r.avg_seconds);
        ])
    rows;
  table
