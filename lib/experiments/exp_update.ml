type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  cost : Cost.basic;
}

let default_config ?(shape = Workload.Fat) () =
  {
    shape;
    trees = 20;
    nodes = 60;
    pre = 20;
    seed = 1;
    cost = Cost.basic ~create:0.5 ~delete:0.25 ();
  }

type row = {
  algorithm : string;
  solved : int;
  avg_cost_overhead_percent : float;
  worst_cost_overhead_percent : float;
  avg_seconds : float;
}

let time f =
  let start = Sys.time () in
  let result = f () in
  (Sys.time () -. start, result)

let run config =
  let w = Workload.capacity in
  let cost = config.cost in
  let master = Rng.create config.seed in
  let instances =
    List.init config.trees (fun _ ->
        let rng = Rng.split master in
        let t =
          Generator.random rng
            (Workload.profile config.shape ~nodes:config.nodes ~max_requests:6)
        in
        Generator.add_pre_existing rng t config.pre)
  in
  let solvers =
    [
      ( "dp (optimal)",
        fun tree ->
          Option.map
            (fun r -> r.Dp_withpre.cost)
            (Dp_withpre.solve tree ~w ~cost) );
      ( "local search",
        fun tree ->
          Option.map
            (fun r -> r.Heuristics_cost.cost)
            (Heuristics_cost.solve tree ~w ~cost ()) );
      ( "greedy (oblivious)",
        fun tree ->
          Option.map (fun s -> Solution.basic_cost tree cost s) (Greedy.solve tree ~w)
      );
    ]
  in
  let optima =
    List.map
      (fun tree ->
        Option.map (fun r -> r.Dp_withpre.cost) (Dp_withpre.solve tree ~w ~cost))
      instances
  in
  List.map
    (fun (name, solve) ->
      let overheads = ref [] and seconds = ref [] and solved = ref 0 in
      List.iter2
        (fun tree optimum ->
          let elapsed, result = time (fun () -> solve tree) in
          seconds := elapsed :: !seconds;
          match (result, optimum) with
          | Some c, Some opt ->
              incr solved;
              overheads := (100. *. ((c /. opt) -. 1.)) :: !overheads
          | None, None -> ()
          | None, Some _ | Some _, None ->
              (* All three solvers share one feasibility notion. *)
              assert false)
        instances optima;
      {
        algorithm = name;
        solved = !solved;
        avg_cost_overhead_percent = Stats.mean !overheads;
        worst_cost_overhead_percent = Stats.maximum !overheads;
        avg_seconds = Stats.mean !seconds;
      })
    solvers

let to_table ?(no_time = false) rows =
  let table =
    Table.make
      ~header:
        [ "algorithm"; "solved"; "avg overhead %"; "worst overhead %"; "avg seconds" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.algorithm;
          string_of_int r.solved;
          Table.fmt_float ~decimals:2 r.avg_cost_overhead_percent;
          Table.fmt_float ~decimals:2 r.worst_cost_overhead_percent;
          (if no_time then "-" else Table.fmt_float ~decimals:5 r.avg_seconds);
        ])
    rows;
  table
