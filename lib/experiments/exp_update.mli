(** Update-heuristic ablation for [MinCost-WithPre].

    Quantifies the §6 proposal of "faster (but sub-optimal) update
    heuristics" against the exact O(N^5) DP: for random trees with
    pre-existing servers, measure each solver's Eq. 2 cost overhead over
    the DP optimum and its CPU time. The solver set is every
    closest-policy cost solver in {!Replica_core.Registry} (greedy,
    dp-nopre, dp-withpre, heuristic-cost — size-guarded oracles and
    other access policies excluded), so a new cost algorithm joins the
    ablation by registering. Not a paper figure; an ablation this
    library adds. *)

type config = {
  shape : Workload.shape;
  trees : int;
  nodes : int;
  pre : int;
  seed : int;
  cost : Cost.basic;
}

val default_config : ?shape:Workload.shape -> unit -> config
(** 20 trees of 60 nodes with 20 pre-existing servers;
    create = 0.5, delete = 0.25. *)

type row = {
  algorithm : string;
  solved : int;
  avg_cost_overhead_percent : float;
  worst_cost_overhead_percent : float;
  avg_seconds : float;
}

val run : config -> row list
(** One row per registry cost solver, in registration order. *)

val to_table : ?no_time:bool -> row list -> Table.t
(** [no_time] prints ["-"] in the timing column — nondeterministic
    wall-clock numbers otherwise break output-pinning tests. *)
