let max_nodes = 20

let c_masks = Stats_counters.counter "brute.masks_scanned"
let c_valid = Stats_counters.counter "brute.valid_placements"
let c_qos_rejected = Stats_counters.counter "brute.qos_rejected"
let c_bw_rejected = Stats_counters.counter "brute.bw_rejected"
let t_scan = Stats_counters.timer "brute.scan"

let fold_valid tree ~w ~init ~f =
  let n = Tree.size tree in
  if n > max_nodes then
    invalid_arg "Brute.fold_valid: tree too large for exhaustive search";
  Stats_counters.time t_scan (fun () ->
      let acc = ref init in
      let valid = ref 0 and qos_rej = ref 0 and bw_rej = ref 0 in
      for mask = 0 to (1 lsl n) - 1 do
        let nodes = ref [] in
        for j = n - 1 downto 0 do
          if mask land (1 lsl j) <> 0 then nodes := j :: !nodes
        done;
        let sol = Solution.of_nodes !nodes in
        match Solution.validate tree ~w sol with
        | Ok ev ->
            incr valid;
            acc := f !acc sol ev
        | Error vs ->
            if List.exists (function Solution.Qos_violated _ -> true | _ -> false) vs
            then incr qos_rej;
            if
              List.exists
                (function Solution.Link_overloaded _ -> true | _ -> false)
                vs
            then incr bw_rej
      done;
      Stats_counters.add c_masks (1 lsl n);
      Stats_counters.add c_valid !valid;
      Stats_counters.add c_qos_rejected !qos_rej;
      Stats_counters.add c_bw_rejected !bw_rej;
      !acc)

let argmin tree ~w ~value =
  fold_valid tree ~w ~init:None ~f:(fun best sol ev ->
      match value sol ev with
      | None -> best
      | Some v -> (
          match best with
          | Some (bv, _) when bv <= v -> best
          | Some _ | None -> Some (v, sol)))

let min_servers tree ~w =
  Option.map
    (fun (v, s) -> (int_of_float v, s))
    (argmin tree ~w ~value:(fun sol _ ->
         Some (float_of_int (Solution.cardinal sol))))

let min_basic_cost tree ~w ~cost =
  argmin tree ~w ~value:(fun sol _ -> Some (Solution.basic_cost tree cost sol))

let min_power tree ~modes ~power ~cost ?(bound = infinity) () =
  let w = Modes.max_capacity modes in
  argmin tree ~w ~value:(fun sol _ ->
      let c = Solution.modal_cost tree modes cost sol in
      if c > bound then None else Some (Solution.power tree modes power sol))
