let add = Buffer.add_string

let provenance tree j =
  match Tree.initial_mode tree j with
  | Some m -> Printf.sprintf "reused (was mode %d)" m
  | None -> "new"

let violations_section buf tree ~w solution =
  match Solution.validate tree ~w solution with
  | Ok _ -> ()
  | Error violations ->
      add buf "VIOLATIONS:\n";
      List.iter
        (fun v ->
          match v with
          | Solution.Overloaded (j, load) ->
              add buf
                (Printf.sprintf "  node %d overloaded: %d > %d\n" j load w)
          | Solution.Qos_violated (j, dist) ->
              add buf
                (Printf.sprintf "  node %d clients served %d hops away (QoS %d)\n"
                   j dist (Tree.qos_radius tree j))
          | Solution.Link_overloaded (j, f) ->
              add buf
                (Printf.sprintf "  link %d->parent overloaded: %d > %d\n" j f
                   (Tree.bandwidth tree j))
          | Solution.Unserved r ->
              add buf (Printf.sprintf "  %d requests unserved\n" r))
        violations

let deletions_section buf tree solution =
  let dropped =
    List.filter
      (fun j -> not (Solution.mem solution j))
      (Tree.pre_existing tree)
  in
  if dropped <> [] then begin
    add buf "deleted pre-existing servers:";
    List.iter (fun j -> add buf (Printf.sprintf " %d" j)) dropped;
    add buf "\n"
  end

let cost_report tree ~w cost solution =
  let buf = Buffer.create 512 in
  let ev = Solution.evaluate tree solution in
  add buf
    (Printf.sprintf "placement: %d servers for %d requests (W = %d)\n"
       (Solution.cardinal solution)
       (Tree.total_requests tree) w);
  List.iter
    (fun (j, load) ->
      add buf
        (Printf.sprintf "  node %-4d load %3d/%d  %s\n" j load w
           (provenance tree j)))
    ev.Solution.loads;
  deletions_section buf tree solution;
  add buf
    (Printf.sprintf "reused %d of %d pre-existing servers\n"
       (Solution.reused tree solution)
       (Tree.num_pre_existing tree));
  add buf (Printf.sprintf "cost (Eq. 2): %.3f\n" (Solution.basic_cost tree cost solution));
  violations_section buf tree ~w solution;
  Buffer.contents buf

let histograms_report ~timers () =
  let module H = Replica_obs.Histogram in
  (* Wall-clock histograms (the [_ns] convention) are nondeterministic;
     keep the default report pinnable by cram tests. *)
  let wanted (name, _) =
    timers || not (String.length name > 3 && Filename.check_suffix name "_ns")
  in
  match List.filter wanted (H.snapshots ()) with
  | [] -> ""
  | snaps ->
      let buf = Buffer.create 256 in
      let width =
        List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 snaps
      in
      List.iter
        (fun (name, h) ->
          let s = H.summary h in
          Buffer.add_string buf
            (Printf.sprintf "%-*s count %d  p50 %d  p90 %d  p99 %d\n" width
               name s.H.s_count s.H.p50 s.H.p90 s.H.p99))
        snaps;
      Buffer.contents buf

let stats_report ?(timers = false) () =
  let body =
    if timers then Stats_counters.report () else Stats_counters.counters_report ()
  in
  "--- solver statistics ---\n" ^ body ^ histograms_report ~timers ()

let power_report tree modes power cost solution =
  let buf = Buffer.create 512 in
  let w = Modes.max_capacity modes in
  let ev = Solution.evaluate tree solution in
  add buf
    (Printf.sprintf "placement: %d servers for %d requests (modes%s)\n"
       (Solution.cardinal solution)
       (Tree.total_requests tree)
       (String.concat ""
          (List.map (fun c -> Printf.sprintf " %d" c) (Modes.capacities modes))));
  List.iter
    (fun (j, load) ->
      let mode = Modes.mode_of_load modes load in
      add buf
        (Printf.sprintf "  node %-4d load %3d -> mode W%d (%.1f W)  %s\n" j
           load mode
           (Power.of_mode power modes mode)
           (provenance tree j)))
    ev.Solution.loads;
  deletions_section buf tree solution;
  add buf
    (Printf.sprintf "power (Eq. 3): %.3f\n"
       (Solution.power tree modes power solution));
  add buf
    (Printf.sprintf "cost (Eq. 4): %.3f\n"
       (Solution.modal_cost tree modes cost solution));
  violations_section buf tree ~w solution;
  Buffer.contents buf
