(** Open-addressing [int -> int] hash table with insertion-order
    iteration — the packed DP cores' table primitive.

    Keys and values live unboxed in flat arrays (no GC allocation per
    insert once capacity is reached), {!iter} walks entries in
    insertion order (so first-wins tie-breaking is a function of merge
    order alone, independent of hashing or key layout), and
    {!reserve}/{!set_val} split the insert so callers build a value
    (e.g. an arena push) only when the key is actually new. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val clear : t -> unit
(** Empty the table, keeping the backing storage — refilling to the
    previous size allocates nothing. *)

val reserve : t -> int -> int
(** [reserve t key] inserts [key] if absent and returns the dense
    index whose value must then be set with {!set_val}; [-1] when the
    key was already present. *)

val set_val : t -> int -> int -> unit
(** [set_val t i v] fills the value slot returned by {!reserve}. *)

val index : t -> int -> int
(** Dense index of a key ([-1] if absent), usable with {!key_at} /
    {!val_at} / {!set_val}. *)

val mem : t -> int -> bool
val find_default : t -> int -> int -> int

val get : t -> int -> int
(** @raise Not_found when the key is absent. *)

val replace : t -> int -> int -> unit
(** Insert or overwrite. *)

val iter : t -> (int -> int -> unit) -> unit
(** Insertion-order iteration over [(key, value)]. *)

val key_at : t -> int -> int
(** Key at a dense index [0 <= i < length t], in insertion order. *)

val val_at : t -> int -> int

val fold : t -> 'a -> ('a -> int -> int -> 'a) -> 'a
