(** Bit-packed DP state keys for the MinPower dynamic program.

    Packs {!Dp_power}'s state vector
    [| n_1; …; n_M; e_11; …; e_MM; flow |] into one unboxed [int]:
    field 0 in the most significant bits, the flow in the least
    significant bits, each field as wide as the per-instance maximum
    it can hold. Integer comparison of packed keys is then exactly
    lexicographic comparison of the vectors, [key lsr flow_bits] is
    the counts prefix the flow-dominance prune groups by, and adding
    two keys of disjoint subtrees adds field-wise without carries
    (sums are bounded by the maxima the layout was sized from, and the
    flow sum is capacity-checked before the add). *)

type layout

val make : m:int -> count_max:int array -> flow_max:int -> layout option
(** [make ~m ~count_max ~flow_max] sizes a layout for [m] modes, the
    given per-field count maxima ([m + m*m] entries, same order as the
    vector) and maximal flow. [None] when the packed key would exceed
    62 bits — callers then fall back to the wide [int array]
    representation. A field with maximum 0 gets width 0: it always
    reads 0 and must never be bumped.
    @raise Invalid_argument on negative maxima or a wrong-length
    [count_max]. *)

val total_bits : layout -> int
(** Total key width in bits (≤ 62). *)

val mode_count : layout -> int

val flow_bits : layout -> int
(** Width of the flow field. *)

val equal : layout -> layout -> bool
(** Same mode count and identical field widths — packed keys are
    comparable across the two layouts. *)

(** {1 Field access}

    Fields are indexed as in the wide vector: [n_field] for new-server
    counts, [e_field] for reused (initial, operating) pairs; modes are
    1-based. *)

val n_field : layout -> operating:int -> int
val e_field : layout -> initial:int -> operating:int -> int

val flow : layout -> int -> int
(** Flow field of a key. *)

val counts : layout -> int -> int
(** The counts prefix ([key lsr flow_bits]) — equal iff the two keys
    agree on every field but the flow. *)

val get : layout -> int -> int -> int
(** [get l key field] extracts one field. *)

val bump : layout -> int -> int -> int
(** [bump l key field] is [key] with [field] incremented. The caller
    guarantees the field is below its sized maximum. *)

val zero_flow : layout -> int -> int
(** [key] with the flow field cleared. *)

val encode : layout -> int array -> int
(** Pack a wide vector.
    @raise Invalid_argument if a field exceeds its width. *)

val decode : layout -> int -> int array
(** Unpack to the wide vector ([m + m*m + 1] entries). *)

val pp : Format.formatter -> layout -> unit
