(** Dynamic replica-management policies (the §6 discussion, made runnable).

    The paper frames dynamic replica management as a trade-off between
    two extremes: {e lazy} updates (reconfigure only when the current
    placement is no longer valid — minimal update cost, possibly poor
    resource usage) and {e systematic} updates (reconfigure every
    time-step — optimal usage, maximal update cost), and observes that
    "the rates and amplitudes of the variations of the number of
    requests" should drive the update interval. This module runs those
    policies — plus a fixed-period and a demand-drift trigger — over a
    demand sequence, using the §3 optimal single-step reconfiguration
    ({!Dp_withpre}) as the building block the paper provides. *)

type policy =
  | Systematic  (** reconfigure every epoch *)
  | Lazy  (** reconfigure only when a server overflows or requests escape *)
  | Periodic of int
      (** reconfigure every [k] epochs, and whenever the placement breaks *)
  | Drift of float
      (** reconfigure when total demand drifted by more than this fraction
          since the last reconfiguration, and whenever the placement
          breaks *)

type step_record = {
  epoch : int;  (** 1-based *)
  reconfigured : bool;
  servers : Solution.t;  (** placement in force after this epoch *)
  step_cost : float;  (** Eq. 2 reconfiguration cost paid (0 if kept) *)
  valid : bool;  (** placement serves every client within capacity *)
  unserved : int;
      (** this epoch's shortfall when invalid: requests escaping past the
          root plus per-server load beyond capacity *)
}

type summary = {
  records : step_record list;
  total_cost : float;
  reconfigurations : int;
  invalid_epochs : int;
}

val should_reconfigure :
  policy ->
  epoch:int ->
  servers_valid:bool ->
  demand:int ->
  last_demand:int ->
  bool
(** The bare trigger decision behind {!simulate}, exposed so other
    runtimes (notably {!Replica_engine.Engine}) fire exactly the same
    policies: [epoch] is 1-based, [servers_valid] is whether the
    current placement still serves this epoch within capacity, and
    [last_demand] is the total demand at the last reconfiguration.
    @raise Invalid_argument on a non-positive period or negative
    drift. *)

val simulate :
  w:int -> cost:Cost.basic -> policy -> Tree.t list -> summary
(** [simulate ~w ~cost policy demands] runs the policy over the epochs.
    Each element of [demands] is the same network with that epoch's
    client load; on reconfiguration the previous placement becomes the
    pre-existing set of an optimal {!Dp_withpre} solve. An epoch whose
    demand is unserveable even by a fresh optimal placement is recorded
    with [valid = false] and its unserved request count.
    @raise Invalid_argument on a non-positive period or negative drift. *)

val policy_to_string : policy -> string
