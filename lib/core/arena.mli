(** Flat arena for catenable placement lists — the unboxed counterpart
    of {!Clist} used by the packed DP cores.

    A placement is an [int] handle into the arena; [empty] ([= 0]) is
    the shared empty list. {!snoc} and {!append} are O(1) pushes into
    preallocated parallel int arrays, so a DP merge inner loop working
    over a pre-grown arena allocates zero GC words; structure sharing
    works exactly as with boxed [Clist] spines (a handle may appear
    under any number of later cells).

    Arenas are single-writer. The parallel sibling fan-out gives each
    domain a private arena and copies results back with {!graft};
    long-lived arenas (incremental memos) reclaim dead cells with the
    {!compact_begin}/{!compact_root}/{!compact_commit} protocol. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh arena (default initial capacity 1024 cells). *)

val empty : int
(** The empty placement ([0]), valid in every arena. *)

val length : t -> int
(** Number of cells in use (including the reserved empty cell). *)

val clear : t -> unit
(** Forget every cell (previously returned handles become invalid);
    keeps the backing storage, so refilling allocates nothing. *)

val leaf : t -> node:int -> flow:int -> int
(** Single-element placement [(node, flow)]. *)

val snoc : t -> int -> node:int -> flow:int -> int
(** [snoc t l ~node ~flow] appends one element to [l]. O(1). *)

val append : t -> int -> int -> int
(** Concatenate two placements. O(1); shares both arguments. *)

val iter : t -> (int -> int -> unit) -> int -> unit
(** [iter t f l] applies [f node flow] to each element of [l] in
    left-to-right order. Allocation-free (beyond a transient stack). *)

val nodes : t -> int -> int list
(** Element nodes of a placement, in order. *)

val to_list : t -> int -> (int * int) list
(** All [(node, flow)] elements of a placement, in order. *)

val count : t -> int -> int
(** Number of elements in a placement. O(length). *)

val graft : src:t -> dst:t -> map:int array -> int -> int
(** [graft ~src ~dst ~map l] copies the cells of [l] from [src] into
    [dst] and returns the new handle. [map] must have length
    [length src] and start zeroed; it accumulates the old->new index
    mapping so that repeated grafts through the same map preserve
    sharing across placements. *)

(** {1 Compaction} *)

type compaction

val compact_begin : t -> compaction
(** Start compacting: a fresh target arena plus a sharing map. *)

val compact_root : t -> compaction -> int -> int
(** Copy one live placement into the target, returning its new handle.
    Call once per stored handle and store the result. *)

val compact_commit : t -> compaction -> unit
(** Swap the compacted storage into [t]. Handles not passed through
    {!compact_root} are dead after this. *)
