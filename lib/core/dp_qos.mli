(** Exact MinCost/MinServers DP under per-client QoS and per-link
    bandwidth constraints, closest policy (Rehn-Sonigo, arXiv
    0706.3350).

    Same bottom-up shape as {!Dp_withpre} — one table per node indexed
    by (reused pre-existing, new servers) strictly below it — but each
    cell holds a Pareto frontier of (upward flow, QoS slack) pairs:
    the slack is the number of extra hops the eventual server of the
    still-flowing clients may sit above the current node. Passing flow
    up a link consumes one hop of slack and must fit the link's
    bandwidth; placing a server resets both. On unconstrained trees
    every slack is {!Tree.unbounded}, frontiers have one entry, and the
    recurrence degenerates to {!Dp_withpre}'s — identical placements,
    identical table shape.

    Complexity: O(N * E * (N-E) * F^2) merge products where F <=
    min (w+1) (height+2) is the frontier bound. No incremental memo. *)

type result = {
  solution : Solution.t;
  cost : float;  (** Eq. 2 value of [solution] *)
  servers : int;
  reused : int;
}

val solve : Tree.t -> w:int -> cost:Cost.basic -> result option
(** Cost-optimal constrained placement, or [None] when no placement
    satisfies capacity, QoS and bandwidth simultaneously.
    @raise Invalid_argument if [w <= 0]. *)

val min_servers : Tree.t -> w:int -> (int * Solution.t) option
(** {!solve} under the unit cost model: minimal replica count. *)
