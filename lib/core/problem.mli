(** One instance of the paper's problem family, named uniformly.

    The paper defines a family — [MinCost-NoPre], [MinCost-WithPre]
    (Eq. 2), [MinPower] and [MinPower-BoundedCost] (Eq. 3 under
    Eq. 4 <= bound) — and the repo historically grew one ad-hoc entry
    point per algorithm. A {!t} packages what every entry point needs:
    the tree (whose markings carry the pre-existing set and initial
    modes), the capacity [w], and the objective. {!Solver} implementors
    consume this record; consumers (engine, CLI, bench, experiments)
    build it once and dispatch through the {!Registry}. *)

type objective =
  | Min_servers
      (** minimize the replica count ([MinCost-NoPre]; also the Eq. 2
          objective with zero creation/deletion costs) *)
  | Min_cost of Cost.basic  (** minimize Eq. 2 ([MinCost-WithPre]) *)
  | Min_power of {
      modes : Modes.t;
      power : Power.t;
      cost : Cost.modal;
      bound : float;
    }
      (** minimize Eq. 3 subject to Eq. 4 <= [bound];
          [bound = infinity] is the pure [MinPower] problem *)

type t = { tree : Tree.t; w : int; objective : objective }

val make : Tree.t -> w:int -> objective -> t
(** @raise Invalid_argument if [w <= 0], or a [Min_power] ladder's
    maximal capacity differs from [w]. *)

val min_servers : Tree.t -> w:int -> t
val min_cost : Tree.t -> w:int -> cost:Cost.basic -> t

val min_power :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  unit ->
  t
(** [w] is the ladder's maximal capacity; [bound] defaults to
    [infinity]. *)

val bound : t -> float
(** The cost bound ([infinity] for the cost objectives). *)

val is_power : t -> bool

val objective_name : objective -> string
(** ["min-servers" | "min-cost" | "min-power"]. *)
