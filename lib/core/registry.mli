(** The built-in solver registrations.

    Forcing this module registers every algorithm in the library with
    {!Solver}; look solvers up through the re-exports below (never
    through [Solver.find] directly) and registration can never be
    missed. Registration order — the order of [solve --list-algos], the
    DESIGN.md capability matrix and every registry-driven table — is:

    [greedy], [dp-nopre], [dp-withpre], [heuristic-cost] (cost);
    [dp-power], [gr-power], [heuristic], [multi-start], [anneal]
    (power); [multiple], [upwards] (access-policy extensions);
    [brute] (exhaustive oracle, guarded to tiny trees). *)

val find : string -> Solver.t option
val all : unit -> Solver.t list
val names : unit -> string list

val list_algos : unit -> string
(** {!Solver.list_algos} with registration guaranteed forced. *)

val matrix_markdown : unit -> string
(** {!Solver.matrix_markdown} with registration guaranteed forced. *)

val default_for : Problem.objective -> Solver.t
(** The exact reference solver for an objective: [dp-withpre] for the
    cost objectives, [dp-power] for the power objective. *)
