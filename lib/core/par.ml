let default_domains () = min 8 (Domain.recommended_domain_count ())

let map ?domains ?weights f l =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let arr = Array.of_list l in
  let n = Array.length arr in
  (match weights with
  | Some w when List.length w <> n ->
      invalid_arg "Par.map: weights length mismatch"
  | _ -> ());
  if domains <= 1 || n <= 1 then List.map f l
  else begin
    (* Size-hinted scheduling: with ?weights, positions are handed to
       workers heaviest-first, so one late huge item cannot strand the
       other domains idle behind a tail of small ones. Results are
       still stored at their original position, so the output (and
       any per-item effect ordering a caller could observe through
       the results) is bit-identical to the unweighted path. *)
    let order =
      match weights with
      | None -> Array.init n Fun.id
      | Some ws ->
          let w = Array.of_list ws in
          let idx = Array.init n Fun.id in
          Array.sort
            (fun a b ->
              match compare w.(b) w.(a) with 0 -> compare a b | c -> c)
            idx;
          idx
    in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let s = Atomic.fetch_and_add next 1 in
        if s < n then begin
          let i = order.(s) in
          results.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    (* The calling domain participates too; joins re-raise any helper
       exception after it finishes its own share. *)
    let own = try Ok (worker ()) with e -> Error e in
    List.iter Domain.join helpers;
    (match own with Ok () -> () | Error e -> raise e);
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> invalid_arg "Par.map: worker died before finishing")
         results)
  end

let map2 ?domains f a b =
  if List.length a <> List.length b then invalid_arg "Par.map2: length mismatch";
  map ?domains (fun (x, y) -> f x y) (List.combine a b)
