let default_domains () = min 8 (Domain.recommended_domain_count ())

let map ?domains f l =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let arr = Array.of_list l in
  let n = Array.length arr in
  if domains <= 1 || n <= 1 then List.map f l
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let helpers =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    (* The calling domain participates too; joins re-raise any helper
       exception after it finishes its own share. *)
    let own = try Ok (worker ()) with e -> Error e in
    List.iter Domain.join helpers;
    (match own with Ok () -> () | Error e -> raise e);
    Array.to_list
      (Array.map
         (function
           | Some v -> v
           | None -> invalid_arg "Par.map: worker died before finishing")
         results)
  end

let map2 ?domains f a b =
  if List.length a <> List.length b then invalid_arg "Par.map2: length mismatch";
  map ?domains (fun (x, y) -> f x y) (List.combine a b)
