(* Adapters registering every built-in algorithm with the Solver
   registry. Forcing this module (any call below) populates the table;
   consumers look solvers up through THIS module, never through
   Solver.find directly, so registration can never be missed.

   Each adapter is a thin shim over the module's own solve entry point —
   identical arguments, hence bit-identical placements and counter
   totals; the registry adds one lookup per solve, nothing per node. *)

type Solver.memo += Withpre_memo of Dp_withpre.memo
type Solver.memo += Power_memo of Dp_power.memo

let cap = Solver.capability

(* --- shared outcome builders --- *)

(* Cost-side outcome: Eq. 2 value and reuse accounting from the tree. *)
let cost_outcome (p : Problem.t) solution =
  let cost_model =
    match p.Problem.objective with
    | Problem.Min_cost c -> c
    | _ -> Cost.basic ()
  in
  let cost = Solution.basic_cost p.Problem.tree cost_model solution in
  let objective_value =
    match p.Problem.objective with
    | Problem.Min_cost _ -> cost
    | _ -> float_of_int (Solution.cardinal solution)
  in
  Solver.outcome ~cost
    ~reused:(Solution.reused p.Problem.tree solution)
    ~objective_value solution

let power_outcome (r : Dp_power.result) =
  Solver.outcome ~cost:r.Dp_power.cost ~power:r.Dp_power.power
    ~objective_value:r.Dp_power.power r.Dp_power.solution

let power_args (p : Problem.t) =
  match p.Problem.objective with
  | Problem.Min_power { modes; power; cost; bound } -> (modes, power, cost, bound)
  | _ -> invalid_arg "Registry: cost problem handed to a power solver"

let rng_of (r : Solver.request) =
  match r.Solver.rng with Some rng -> rng | None -> Rng.create 1

(* --- cost solvers --- *)

let greedy =
  {
    Solver.name = "greedy";
    summary = "O(N log N) greedy of [19]; optimal without pre-existing servers";
    capability =
      cap ~handles_cost:true ~handles_coupling:true ~exactness:Solver.Exact ();
    solve =
      (fun p _ ->
        Option.map (cost_outcome p) (Greedy.solve p.Problem.tree ~w:p.Problem.w));
    make_memo = None;
    memo_size = None;
  }

let dp_nopre =
  {
    Solver.name = "dp-nopre";
    summary = "O(N^2) tree-knapsack DP of [6] (MinCost-NoPre cross-check)";
    capability =
      cap ~handles_cost:true ~handles_coupling:true ~exactness:Solver.Exact ();
    solve =
      (fun p _ ->
        Option.map
          (fun r -> cost_outcome p r.Dp_nopre.solution)
          (Dp_nopre.solve p.Problem.tree ~w:p.Problem.w));
    make_memo = None;
    memo_size = None;
  }

let dp_withpre =
  {
    Solver.name = "dp-withpre";
    summary = "the paper's update-strategy DP (Theorem 1, Eq. 2 optimal)";
    capability =
      cap ~handles_cost:true ~handles_pre:true ~handles_coupling:true
        ~exactness:Solver.Exact ~supports_incremental:true ();
    solve =
      (fun p r ->
        let cost =
          match p.Problem.objective with
          | Problem.Min_cost c -> c
          | _ -> Cost.basic ()
        in
        let memo =
          match r.Solver.memo with Some (Withpre_memo m) -> Some m | _ -> None
        in
        Option.map
          (fun (res : Dp_withpre.result) ->
            Solver.outcome ~cost:res.Dp_withpre.cost
              ~reused:res.Dp_withpre.reused
              ~objective_value:
                (match p.Problem.objective with
                | Problem.Min_cost _ -> res.Dp_withpre.cost
                | _ -> float_of_int res.Dp_withpre.servers)
              res.Dp_withpre.solution)
          (Dp_withpre.solve ?memo p.Problem.tree ~w:p.Problem.w ~cost));
    make_memo = Some (fun () -> Withpre_memo (Dp_withpre.memo ()));
    memo_size =
      Some (function Withpre_memo m -> Dp_withpre.memo_size m | _ -> 0);
  }

let heuristic_cost =
  {
    Solver.name = "heuristic-cost";
    summary = "§6 cost-update local search (retarget/drop/hoist/lower/add)";
    capability = cap ~handles_cost:true ~handles_pre:true ~handles_coupling:true ();
    solve =
      (fun p r ->
        let cost =
          match p.Problem.objective with
          | Problem.Min_cost c -> c
          | _ -> Cost.basic ()
        in
        Option.map
          (fun (res : Heuristics_cost.result) ->
            Solver.outcome ~cost:res.Heuristics_cost.cost
              ~reused:res.Heuristics_cost.reused
              ~objective_value:
                (match p.Problem.objective with
                | Problem.Min_cost _ -> res.Heuristics_cost.cost
                | _ -> float_of_int res.Heuristics_cost.servers)
              res.Heuristics_cost.solution)
          (Heuristics_cost.solve p.Problem.tree ~w:p.Problem.w ~cost
             ?max_rounds:r.Solver.rounds ()));
    make_memo = None;
    memo_size = None;
  }

(* --- constrained cost solvers (QoS + bandwidth, closest policy) --- *)

let dp_qos =
  {
    Solver.name = "dp-qos";
    summary = "QoS/bandwidth-constrained exact DP (Rehn-Sonigo, closest)";
    capability =
      cap ~handles_cost:true ~handles_pre:true ~handles_qos:true
        ~handles_bw:true ~handles_coupling:true ~exactness:Solver.Exact ();
    solve =
      (fun p _ ->
        let cost =
          match p.Problem.objective with
          | Problem.Min_cost c -> c
          | _ -> Cost.basic ()
        in
        Option.map
          (fun (res : Dp_qos.result) ->
            Solver.outcome ~cost:res.Dp_qos.cost ~reused:res.Dp_qos.reused
              ~objective_value:
                (match p.Problem.objective with
                | Problem.Min_cost _ -> res.Dp_qos.cost
                | _ -> float_of_int res.Dp_qos.servers)
              res.Dp_qos.solution)
          (Dp_qos.solve p.Problem.tree ~w:p.Problem.w ~cost));
    make_memo = None;
    memo_size = None;
  }

let greedy_qos =
  {
    Solver.name = "greedy-qos";
    summary = "constraint-aware greedy; feasibility-complete, not optimal";
    capability =
      cap ~handles_cost:true ~handles_qos:true ~handles_bw:true
        ~handles_coupling:true ();
    solve =
      (fun p _ ->
        Option.map (cost_outcome p)
          (Greedy_qos.solve p.Problem.tree ~w:p.Problem.w));
    make_memo = None;
    memo_size = None;
  }

(* --- power solvers --- *)

let dp_power =
  {
    Solver.name = "dp-power";
    summary = "the paper's sparse-state power DP (Theorem 3, Eq. 3/4 optimal)";
    capability =
      cap ~handles_power:true ~handles_pre:true ~handles_bound:true
        ~exactness:Solver.Exact ~supports_domains:true ~supports_prune:true
        ~supports_incremental:true ();
    solve =
      (fun p r ->
        let modes, power, cost, bound = power_args p in
        let memo =
          match r.Solver.memo with Some (Power_memo m) -> Some m | _ -> None
        in
        Option.map power_outcome
          (Dp_power.solve p.Problem.tree ~modes ~power ~cost ~bound
             ?prune:r.Solver.prune ?domains:r.Solver.domains ?memo ()));
    make_memo = Some (fun () -> Power_memo (Dp_power.memo ()));
    memo_size = Some (function Power_memo m -> Dp_power.memo_size m | _ -> 0);
  }

let gr_power =
  {
    Solver.name = "gr-power";
    summary = "§5.2 greedy capacity sweep, cheapest-power candidate in bound";
    capability = cap ~handles_power:true ~handles_bound:true ();
    solve =
      (fun p _ ->
        let modes, power, cost, bound = power_args p in
        Option.map power_outcome
          (Greedy_power.solve p.Problem.tree ~modes ~power ~cost ~bound ()));
    make_memo = None;
    memo_size = None;
  }

let hill_climb =
  {
    Solver.name = "heuristic";
    summary = "§6 power hill-climb over drop/hoist/lower/add moves";
    capability =
      cap ~handles_power:true ~handles_pre:true ~handles_bound:true ();
    solve =
      (fun p r ->
        let modes, power, cost, bound = power_args p in
        Option.map power_outcome
          (Heuristics.solve p.Problem.tree ~modes ~power ~cost ~bound
             ?max_rounds:r.Solver.rounds ()));
    make_memo = None;
    memo_size = None;
  }

let multi_start =
  {
    Solver.name = "multi-start";
    summary = "hill-climb from every sweep candidate plus random restarts";
    capability =
      cap ~handles_power:true ~handles_pre:true ~handles_bound:true ();
    solve =
      (fun p r ->
        let modes, power, cost, bound = power_args p in
        Option.map power_outcome
          (Heuristics.solve_restarts p.Problem.tree ~modes ~power ~cost ~bound
             ?max_rounds:r.Solver.rounds (rng_of r)));
    make_memo = None;
    memo_size = None;
  }

let anneal =
  {
    Solver.name = "anneal";
    summary = "simulated annealing over the same move set";
    capability =
      cap ~handles_power:true ~handles_pre:true ~handles_bound:true ();
    solve =
      (fun p r ->
        let modes, power, cost, bound = power_args p in
        Option.map power_outcome
          (Heuristics.anneal p.Problem.tree ~modes ~power ~cost ~bound
             ?iterations:r.Solver.rounds (rng_of r)));
    make_memo = None;
    memo_size = None;
  }

(* --- access-policy extensions --- *)

let multiple =
  {
    Solver.name = "multiple";
    summary = "Multiple access policy (requests may split); exact DP";
    capability =
      cap ~handles_cost:true ~exactness:Solver.Exact
        ~access:Solver.Multiple_access ();
    solve =
      (fun p _ ->
        Option.map
          (fun (r : Multiple.result) -> cost_outcome p r.Multiple.solution)
          (Multiple.solve p.Problem.tree ~w:p.Problem.w));
    make_memo = None;
    memo_size = None;
  }

let upwards =
  {
    Solver.name = "upwards";
    summary = "Upwards access policy; bottom-up first-fit-decreasing heuristic";
    capability = cap ~handles_cost:true ~access:Solver.Upwards_access ();
    solve =
      (fun p _ ->
        Option.map
          (fun (r : Upwards.result) -> cost_outcome p r.Upwards.solution)
          (Upwards.solve_heuristic p.Problem.tree ~w:p.Problem.w));
    make_memo = None;
    memo_size = None;
  }

(* --- exhaustive oracle --- *)

let brute =
  {
    Solver.name = "brute";
    summary = "exhaustive subset enumeration (test oracle, tiny trees)";
    capability =
      cap ~handles_cost:true ~handles_power:true ~handles_pre:true
        ~handles_bound:true ~handles_qos:true ~handles_bw:true
        ~handles_coupling:true ~exactness:Solver.Exact
        ~max_nodes:Brute.max_nodes ();
    solve =
      (fun p _ ->
        match p.Problem.objective with
        | Problem.Min_servers ->
            Option.map
              (fun (_, sol) -> cost_outcome p sol)
              (Brute.min_servers p.Problem.tree ~w:p.Problem.w)
        | Problem.Min_cost cost ->
            Option.map
              (fun (_, sol) -> cost_outcome p sol)
              (Brute.min_basic_cost p.Problem.tree ~w:p.Problem.w ~cost)
        | Problem.Min_power { modes; power; cost; bound } ->
            Option.map
              (fun (pw, sol) ->
                Solver.outcome ~power:pw
                  ~cost:(Solution.modal_cost p.Problem.tree modes cost sol)
                  ~objective_value:pw sol)
              (Brute.min_power p.Problem.tree ~modes ~power ~cost ~bound ()));
    make_memo = None;
    memo_size = None;
  }

let () =
  List.iter Solver.register
    [
      greedy;
      dp_nopre;
      dp_withpre;
      heuristic_cost;
      dp_qos;
      greedy_qos;
      dp_power;
      gr_power;
      hill_climb;
      multi_start;
      anneal;
      multiple;
      upwards;
      brute;
    ]

let find = Solver.find
let all = Solver.all
let names = Solver.names
let list_algos = Solver.list_algos
let matrix_markdown = Solver.matrix_markdown

let default_for = function
  | Problem.Min_servers | Problem.Min_cost _ -> dp_withpre
  | Problem.Min_power _ -> dp_power
