(** First-class solver registry: one uniform seam between the problem
    family ({!Problem}) and every algorithm in the library.

    Each algorithm registers a {!t}: a name, a {!capability} descriptor
    (which objectives it handles, whether it is exact, which execution
    options it supports), and a [solve] function from {!Problem.t} and a
    uniform {!request} to a uniform {!outcome}. Downstream layers — the
    online engine, the CLI's [solve --algo], the bench harness and the
    experiment sweeps — dispatch through {!find}/{!all} instead of
    hard-coding per-algorithm match arms, so a new algorithm plugs in
    once, here, and is immediately selectable everywhere.

    This module owns only the mechanism; the built-in algorithms are
    registered by {!Registry} (forcing that module populates the
    table). The per-module [solve] signatures remain as the primary
    implementations; registry entries are thin adapters over them. *)

type exactness = Exact | Heuristic

type access = Closest | Multiple_access | Upwards_access
(** Access policy the solver places for (§2.1 situates the paper's
    closest policy in this family). Solvers of different access
    policies optimize different feasible sets and must not be
    differentially compared. *)

type capability = {
  handles_cost : bool;  (** accepts [Min_servers] / [Min_cost] problems *)
  handles_power : bool;  (** accepts [Min_power] problems *)
  handles_pre : bool;
      (** optimizes reuse of pre-existing servers (a [false] solver
          still runs on marked trees; it just places obliviously) *)
  handles_bound : bool;  (** accepts a finite Eq. 4 cost bound *)
  handles_qos : bool;
      (** enforces per-client QoS distance bounds ({!Tree.client_qos});
          trees carrying them are rejected by {!mismatch} otherwise *)
  handles_bw : bool;
      (** enforces per-link bandwidth caps ({!Tree.bandwidth}); same
          rejection rule *)
  handles_coupling : bool;
      (** placements may participate in cross-object capacity coupling
          on shared physical servers: the forest engine's greedy
          push-down repair pass post-processes this solver's closest
          policy placements (adding replicas below an overloaded shared
          server), which is only sound for closest-policy cost solvers
          — a coupled forest run rejects solvers without this flag *)
  exactness : exactness;
      (** [Exact] = provably optimal on every problem it handles (for
          [handles_pre = false] cost solvers: exact on the no-pre
          objective) *)
  access : access;
  supports_domains : bool;  (** parallel sibling-subtree merges *)
  supports_prune : bool;  (** dominance pruning toggle *)
  supports_incremental : bool;
      (** memoized incremental re-solving across epoch views *)
  max_nodes : int option;  (** guard for exhaustive oracles *)
}

val capability :
  ?handles_cost:bool ->
  ?handles_power:bool ->
  ?handles_pre:bool ->
  ?handles_bound:bool ->
  ?handles_qos:bool ->
  ?handles_bw:bool ->
  ?handles_coupling:bool ->
  ?exactness:exactness ->
  ?access:access ->
  ?supports_domains:bool ->
  ?supports_prune:bool ->
  ?supports_incremental:bool ->
  ?max_nodes:int ->
  unit ->
  capability
(** Everything defaults to [false] / [Heuristic] / [Closest] / [None].
    @raise Invalid_argument if neither objective is handled. *)

type memo = ..
(** Solver-private incremental state (extended per adapter); obtained
    from {!t.make_memo} and threaded back through {!request.memo}. *)

type request = {
  domains : int option;  (** parallel fan-out (where supported) *)
  prune : bool option;  (** force dominance pruning on/off *)
  memo : memo option;  (** incremental re-solve cache *)
  rng : Rng.t option;  (** randomness for stochastic heuristics *)
  rounds : int option;
      (** effort knob: local-search round / annealing iteration cap *)
}

val request :
  ?domains:int ->
  ?prune:bool ->
  ?memo:memo ->
  ?rng:Rng.t ->
  ?rounds:int ->
  unit ->
  request

val default_request : request

type outcome = {
  solution : Solution.t;
  objective_value : float;
      (** the problem's objective: servers, Eq. 2 cost, or Eq. 3 power *)
  cost : float option;  (** Eq. 2 / Eq. 4 value where defined *)
  power : float option;  (** Eq. 3 value where defined *)
  servers : int;
  reused : int option;
  counters : (string * int) list;
      (** {!Stats_counters} movement during the solve (filled by {!run}) *)
  note : string option;  (** free-form diagnostics *)
}

val outcome :
  ?cost:float ->
  ?power:float ->
  ?reused:int ->
  ?note:string ->
  objective_value:float ->
  Solution.t ->
  outcome
(** Adapter helper; [servers] is derived, [counters] starts empty. *)

type t = {
  name : string;  (** CLI-facing identifier, e.g. ["dp-power"] *)
  summary : string;  (** one line for [--list-algos] docs *)
  capability : capability;
  solve : Problem.t -> request -> outcome option;
      (** [None] = no feasible solution (within the bound); capability
          mismatches are the caller's to check ({!run} does). *)
  make_memo : (unit -> memo) option;
      (** present iff [supports_incremental] *)
  memo_size : (memo -> int) option;
      (** cached-table count for observability (iff incremental) *)
}

val register : t -> unit
(** @raise Invalid_argument on an empty or duplicate name. *)

val find : string -> t option
val all : unit -> t list
(** Registration order (stable; the CLI, bench tables and the DESIGN.md
    matrix all present solvers in this order). *)

val names : unit -> string list

val mismatch : t -> Problem.t -> string option
(** [Some reason] when the solver cannot solve this problem (wrong
    objective, finite bound unsupported, the tree carries QoS /
    bandwidth constraints the solver does not enforce, or the tree is
    above [max_nodes]). *)

val compatible : t -> Problem.t -> (unit, string) result

val option_warnings : t -> request -> string list
(** Human-readable warnings for requested options the solver ignores
    ([--prune], [--domains], memo) — the shared capability-mismatch UX
    the CLI surfaces instead of silently dropping flags. *)

val run : t -> Problem.t -> request -> (outcome option, string) result
(** Capability check, then solve with the {!Stats_counters} movement
    recorded into [outcome.counters]. [Error] is a {!mismatch} reason;
    [Ok None] means the instance is infeasible. One registry lookup and
    two counter snapshots per solve — nothing on the per-node path. *)

(** {2 Capability matrix}

    One renderer feeds [solve --list-algos], the DESIGN.md §2.11 matrix
    and the doc-sync test, so the three cannot drift. *)

val matrix_header : string list
val capability_row : t -> string list
val matrix_markdown : unit -> string
(** GitHub-flavoured markdown table over {!all}. *)

val list_algos : unit -> string
(** Aligned plain-text table over {!all} (the [--list-algos] output). *)
