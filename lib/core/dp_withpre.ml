let src =
  Logs.Src.create "replica.dp_withpre" ~doc:"MinCost-WithPre dynamic program"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cells = Stats_counters.counter "dp_withpre.cells_created"
let c_products = Stats_counters.counter "dp_withpre.merge_products"
let c_capacity = Stats_counters.counter "dp_withpre.capacity_rejected"
let c_peak = Stats_counters.counter "dp_withpre.peak_table_size"
let t_tables = Stats_counters.timer "dp_withpre.tables"
let c_memo_hits = Stats_counters.counter "dp_withpre.memo_hits"
let c_memo_partial = Stats_counters.counter "dp_withpre.memo_partial"
let c_memo_misses = Stats_counters.counter "dp_withpre.memo_misses"

(* Structured observability: per-node solve and child-merge spans (with
   memo hit/partial/miss tags) plus a log2 histogram of per-node merge
   products. Span sites are guarded by [Span.enabled] — the disabled
   path is one atomic load, no allocation. *)
module Span = Replica_obs.Span

let h_products =
  Replica_obs.Histogram.create "dp_withpre.merge_products_per_node"

type cell = { flow : int; placed : (int * int) Clist.t }

type table = {
  pre_cap : int;  (* max reused pre-existing representable *)
  new_cap : int;  (* max new servers representable *)
  cells : cell option array array;  (* cells.(e).(n) *)
}

type result = {
  solution : Solution.t;
  cost : float;
  servers : int;
  reused : int;
}

let make_table pre_cap new_cap =
  {
    pre_cap;
    new_cap;
    cells = Array.make_matrix (pre_cap + 1) (new_cap + 1) None;
  }

let set t e n candidate =
  match t.cells.(e).(n) with
  | Some current when current.flow <= candidate.flow -> ()
  | Some _ -> t.cells.(e).(n) <- Some candidate
  | None ->
      t.cells.(e).(n) <- Some candidate;
      Stats_counters.incr c_cells

let iter_cells t f =
  for e = 0 to t.pre_cap do
    for n = 0 to t.new_cap do
      match t.cells.(e).(n) with None -> () | Some c -> f e n c
    done
  done

(* Incremental re-solving: a per-node cache of every prefix of the
   child-merge fold, keyed by a fingerprint chain. The table obtained
   after merging children c_1..c_i into node j's start cell is a pure
   function of (w, client load of j, subtrees of c_1..c_i), so it is
   cached under the chain key
     k_0 = mix(load j),  k_i = combine(k_{i-1}, fp(c_i))
   where fp is {!Tree.subtree_fingerprints}. A later solve on an epoch
   tree that changed demand only under some child c_d resumes node j's
   fold from the longest cached prefix (everything before the first
   dirty child) and recomputes only the remaining merges; nodes whose
   whole subtree is clean hit their full-table entry and do zero work.
   Tables are never mutated after construction, so sharing them across
   solves is safe. Entries unused for two consecutive solves are
   evicted, bounding the cache to roughly two epochs' tables. *)
type memo = {
  mutable gen : int;
  mutable memo_w : int;  (* tables depend on w; reset when it changes *)
  prefixes : (int * int64, memo_entry) Hashtbl.t;
}

and memo_entry = { mutable stamp : int; entry_table : table }

let memo () = { gen = 0; memo_w = -1; prefixes = Hashtbl.create 512 }
let memo_size m = Hashtbl.length m.prefixes

let fp_seed client =
  Tree.combine_fingerprints 0x2545F4914F6CDD1DL (Int64.of_int client)

(* Table of node j over servers strictly below j. [ctx] carries the
   optional memo and the current tree's subtree fingerprints. *)
let rec table_of ctx tree ~w j =
  if not (Span.enabled ()) then node_table ctx tree ~w j
  else begin
    Span.begin_span "dp_withpre.node";
    let tbl =
      try node_table ctx tree ~w j
      with e ->
        Span.end_span ();
        raise e
    in
    Span.end_span
      ~args:
        [
          ("node", Span.Int j);
          ("subtree_size", Span.Int (Tree.subtree_size tree j));
        ]
      ();
    tbl
  end

and node_table ctx tree ~w j =
  let start = make_table 0 0 in
  let client = Tree.client_load tree j in
  if client <= w then
    start.cells.(0).(0) <- Some { flow = client; placed = Clist.empty };
  let children = Tree.children tree j in
  match (ctx, children) with
  | None, _ | _, [] -> List.fold_left (merge ctx tree ~w) start children
  | Some (m, fps), _ ->
      let arr = Array.of_list children in
      let k = Array.length arr in
      let keys = Array.make (k + 1) (fp_seed client) in
      for i = 1 to k do
        keys.(i) <- Tree.combine_fingerprints keys.(i - 1) fps.(arr.(i - 1))
      done;
      let best = ref 0 and acc = ref start in
      (try
         for i = k downto 1 do
           match Hashtbl.find_opt m.prefixes (j, keys.(i)) with
           | Some e ->
               e.stamp <- m.gen;
               best := i;
               acc := e.entry_table;
               raise Exit
           | None -> ()
         done
       with Exit -> ());
      if Span.enabled () then
        Span.add_arg "memo"
          (Span.Str
             (if !best = k then "hit"
              else if !best > 0 then "partial"
              else "miss"));
      if !best = k then Stats_counters.incr c_memo_hits
      else begin
        Stats_counters.incr (if !best > 0 then c_memo_partial else c_memo_misses);
        for i = !best + 1 to k do
          acc := merge ctx tree ~w !acc arr.(i - 1);
          Hashtbl.replace m.prefixes (j, keys.(i))
            { stamp = m.gen; entry_table = !acc }
        done
      end;
      !acc

and merge ctx tree ~w left c =
  let sub = table_of ctx tree ~w c in
  let c_pre = Tree.is_pre_existing tree c in
  (* Extend the child's table with the decision at c itself. *)
  let extended =
    make_table
      (sub.pre_cap + if c_pre then 1 else 0)
      (sub.new_cap + if c_pre then 0 else 1)
  in
  iter_cells sub (fun e n cell ->
      set extended e n cell;
      let absorbed =
        { flow = 0; placed = Clist.snoc cell.placed (c, cell.flow) }
      in
      if c_pre then set extended (e + 1) n absorbed
      else set extended e (n + 1) absorbed);
  Log.debug (fun m ->
      m "merge child %d: left %dx%d, child %dx%d" c (left.pre_cap + 1)
        (left.new_cap + 1) (extended.pre_cap + 1) (extended.new_cap + 1));
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_withpre.merge";
  let merged =
    make_table (left.pre_cap + extended.pre_cap)
      (left.new_cap + extended.new_cap)
  in
  let products = ref 0 and rejected = ref 0 and live = ref 0 in
  iter_cells left (fun e1 n1 l ->
      iter_cells extended (fun e2 n2 r ->
          incr products;
          let flow = l.flow + r.flow in
          if flow <= w then
            set merged (e1 + e2) (n1 + n2)
              { flow; placed = Clist.append l.placed r.placed }
          else incr rejected));
  Stats_counters.add c_products !products;
  Stats_counters.add c_capacity !rejected;
  Replica_obs.Histogram.observe h_products !products;
  iter_cells merged (fun _ _ _ -> incr live);
  Stats_counters.record_max c_peak !live;
  if tracing then
    Span.end_span
      ~args:
        [
          ("child", Span.Int c);
          ("products", Span.Int !products);
          ("live_cells", Span.Int !live);
        ]
      ();
  merged

let solve ?memo:m tree ~w ~cost =
  if w <= 0 then invalid_arg "Dp_withpre: w must be positive";
  let ctx =
    match m with
    | None -> None
    | Some mm ->
        if mm.memo_w <> w then begin
          Hashtbl.reset mm.prefixes;
          mm.memo_w <- w
        end;
        mm.gen <- mm.gen + 1;
        Some (mm, Tree.subtree_fingerprints tree)
  in
  let root = Tree.root tree in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_withpre.solve";
  let table =
    Stats_counters.time t_tables (fun () -> table_of ctx tree ~w root)
  in
  (match m with
  | Some mm ->
      Hashtbl.filter_map_inplace
        (fun _ e -> if mm.gen - e.stamp > 1 then None else Some e)
        mm.prefixes
  | None -> ());
  let pre_total = Tree.num_pre_existing tree in
  let root_pre = Tree.is_pre_existing tree root in
  let best = ref None in
  let consider value servers reused placed root_used =
    match !best with
    | Some (v, _, _, _, _) when v <= value -> ()
    | _ -> best := Some (value, servers, reused, placed, root_used)
  in
  iter_cells table (fun e n cell ->
      if cell.flow = 0 then begin
        (* Solution without a root server … *)
        consider
          (Cost.basic_cost cost ~servers:(e + n) ~reused:e
             ~pre_existing:pre_total)
          (e + n) e cell false;
        (* … and, when the root is pre-existing, reusing it at zero load
           (cheaper than deleting it when delete > 1). *)
        if root_pre then
          consider
            (Cost.basic_cost cost ~servers:(e + n + 1) ~reused:(e + 1)
               ~pre_existing:pre_total)
            (e + n + 1) (e + 1) cell true
      end
      else begin
        (* flow <= w by construction: the root must host a server. *)
        let reused = e + if root_pre then 1 else 0 in
        consider
          (Cost.basic_cost cost ~servers:(e + n + 1) ~reused
             ~pre_existing:pre_total)
          (e + n + 1) reused cell true
      end);
  let result =
    match !best with
    | None -> None
    | Some (value, servers, reused, cell, root_used) ->
        let nodes = List.map fst (Clist.to_list cell.placed) in
        let nodes = if root_used then root :: nodes else nodes in
        Some
          { solution = Solution.of_nodes nodes; cost = value; servers; reused }
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("w", Span.Int w);
          ("memo", Span.Bool (m <> None));
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let root_table tree ~w =
  if w <= 0 then invalid_arg "Dp_withpre: w must be positive";
  let table = table_of None tree ~w (Tree.root tree) in
  Array.map (Array.map (Option.map (fun c -> c.flow))) table.cells
