let src =
  Logs.Src.create "replica.dp_withpre" ~doc:"MinCost-WithPre dynamic program"

module Log = (val Logs.src_log src : Logs.LOG)

let c_cells = Stats_counters.counter "dp_withpre.cells_created"
let c_products = Stats_counters.counter "dp_withpre.merge_products"
let c_capacity = Stats_counters.counter "dp_withpre.capacity_rejected"
let c_peak = Stats_counters.counter "dp_withpre.peak_table_size"
let t_tables = Stats_counters.timer "dp_withpre.tables"
let c_memo_hits = Stats_counters.counter "dp_withpre.memo_hits"
let c_memo_partial = Stats_counters.counter "dp_withpre.memo_partial"
let c_memo_misses = Stats_counters.counter "dp_withpre.memo_misses"

(* Structured observability: per-node solve and child-merge spans (with
   memo hit/partial/miss tags) plus a log2 histogram of per-node merge
   products. Span sites are guarded by [Span.enabled] — the disabled
   path is one atomic load, no allocation. *)
module Span = Replica_obs.Span

let h_products =
  Replica_obs.Histogram.create "dp_withpre.merge_products_per_node"

(* Flat-table representation. A table indexed by (e, n) — reused
   pre-existing and new servers strictly below the node — is two flat
   int arrays over the dense (pre_cap+1) x (new_cap+1) grid: the flow
   of the representative cell ([-1] = absent) and its placement as an
   {!Arena} handle. Compared with the former
   [cell option array array] of boxed records, a cell probe is one
   load, an insert is two stores, and the merge convolution below
   allocates zero GC words: placements are arena pushes, cells are
   int writes.

   The dimensions are logical: [flows]/[placed] may be longer than the
   active grid, which is what lets the per-depth scratch pool reuse
   one backing array across every sibling merge at that depth. *)
type table = {
  mutable pre_cap : int; (* max reused pre-existing representable *)
  mutable new_cap : int; (* max new servers representable *)
  mutable flows : int array; (* stride new_cap + 1; -1 = absent *)
  mutable placed : int array; (* arena handles, valid where flows >= 0 *)
}

type result = {
  solution : Solution.t;
  cost : float;
  servers : int;
  reused : int;
}

let fresh_table pre_cap new_cap =
  let cells = (pre_cap + 1) * (new_cap + 1) in
  {
    pre_cap;
    new_cap;
    flows = Array.make cells (-1);
    placed = Array.make cells 0;
  }

(* Re-dimension a pooled table, keeping (and only touching the active
   prefix of) its backing storage. *)
let reset_table t pre_cap new_cap =
  let cells = (pre_cap + 1) * (new_cap + 1) in
  if Array.length t.flows < cells then begin
    let cap = max cells (2 * Array.length t.flows) in
    t.flows <- Array.make cap (-1);
    t.placed <- Array.make cap 0
  end
  else Array.fill t.flows 0 cells (-1);
  t.pre_cap <- pre_cap;
  t.new_cap <- new_cap

let[@inline] set t e n ~flow ~placed =
  let i = (e * (t.new_cap + 1)) + n in
  let cur = t.flows.(i) in
  if cur < 0 then begin
    t.flows.(i) <- flow;
    t.placed.(i) <- placed;
    Stats_counters.incr c_cells
  end
  else if flow < cur then begin
    t.flows.(i) <- flow;
    t.placed.(i) <- placed
  end

let iter_cells t f =
  for e = 0 to t.pre_cap do
    let base = e * (t.new_cap + 1) in
    for n = 0 to t.new_cap do
      let flow = t.flows.(base + n) in
      if flow >= 0 then f e n flow t.placed.(base + n)
    done
  done

(* Incremental re-solving: a per-node cache of every prefix of the
   child-merge fold, keyed by a fingerprint chain. The table obtained
   after merging children c_1..c_i into node j's start cell is a pure
   function of (w, client load of j, subtrees of c_1..c_i), so it is
   cached under the chain key
     k_0 = mix(load j),  k_i = combine(k_{i-1}, fp(c_i))
   where fp is {!Tree.subtree_fingerprints}. A later solve on an epoch
   tree that changed demand only under some child c_d resumes node j's
   fold from the longest cached prefix (everything before the first
   dirty child) and recomputes only the remaining merges; nodes whose
   whole subtree is clean hit their full-table entry and do zero work.
   Tables are never mutated after construction, so sharing them across
   solves is safe. Entries unused for two consecutive solves are
   evicted, bounding the cache to roughly two epochs' tables.

   Cached placements live in the memo's own arena; after eviction the
   arena is compacted (live handles copied, sharing preserved) once it
   has grown past [compact_at], so a long-running engine cannot leak
   dead placement cells across epochs. *)
type memo = {
  mutable gen : int;
  mutable memo_w : int; (* tables depend on w; reset when it changes *)
  prefixes : (int * int64, memo_entry) Hashtbl.t;
  m_arena : Arena.t;
  mutable compact_at : int;
}

and memo_entry = { mutable stamp : int; entry_table : table }

let memo () =
  {
    gen = 0;
    memo_w = -1;
    prefixes = Hashtbl.create 512;
    m_arena = Arena.create ();
    compact_at = 1 lsl 16;
  }

let memo_size m = Hashtbl.length m.prefixes

let fp_seed client =
  Tree.combine_fingerprints 0x2545F4914F6CDD1DL (Int64.of_int client)

(* Per-depth scratch buffers for the memo-less path. The fold at node
   j (depth d) only ever needs three live tables at depth d — the
   accumulator, the merge target, and the current child's extension —
   while the child's own table lives one depth down; so a slot of
   three pooled tables per depth makes the whole solve reuse O(height)
   buffers instead of allocating O(N) tables. Cached memo tables must
   outlive the solve and are allocated fresh instead. *)
type slot = { mutable s_acc : table; mutable s_alt : table; s_ext : table }

type ctx = {
  arena : Arena.t;
  mutable slots : slot array; (* indexed by depth; grown on demand *)
  memo : (memo * int64 array) option;
}

let fresh_slot () =
  { s_acc = fresh_table 0 0; s_alt = fresh_table 0 0; s_ext = fresh_table 0 0 }

let slot ctx depth =
  let n = Array.length ctx.slots in
  if depth >= n then begin
    let slots = Array.init (max (depth + 1) (2 * n)) (fun i ->
        if i < n then ctx.slots.(i) else fresh_slot ())
    in
    ctx.slots <- slots
  end;
  ctx.slots.(depth)

(* The child's table extended with the decision at c itself, written
   into [into] (already reset to the extended dimensions): every cell
   passes up unchanged, and absorbing the flow at c moves the cell one
   server up with flow 0. *)
let extend ctx tree ~into sub c =
  let c_pre = Tree.is_pre_existing tree c in
  iter_cells sub (fun e n flow placed ->
      set into e n ~flow ~placed;
      let de = if c_pre then 1 else 0 in
      let i = ((e + de) * (into.new_cap + 1)) + (n + 1 - de) in
      let cur = into.flows.(i) in
      if cur <> 0 then begin
        (* absorbed cells have flow 0: only an absent or positive-flow
           occupant can lose to one (ties keep the incumbent) *)
        let absorbed = Arena.snoc ctx.arena placed ~node:c ~flow in
        if cur < 0 then begin
          into.flows.(i) <- 0;
          into.placed.(i) <- absorbed;
          Stats_counters.incr c_cells
        end
        else begin
          into.flows.(i) <- 0;
          into.placed.(i) <- absorbed
        end
      end)

(* The convolution kernel: merge [left] and [ext] into [into] (already
   reset to the combined dimensions). Straight nested loops over the
   flat arrays; the only data written are int cells and arena pushes —
   no GC allocation. *)
let convolve ctx ~w ~into left ext =
  let arena = ctx.arena in
  let products = ref 0 and rejected = ref 0 and live = ref 0 in
  let lw = left.new_cap + 1
  and rw = ext.new_cap + 1
  and ow = into.new_cap + 1 in
  for e1 = 0 to left.pre_cap do
    for n1 = 0 to left.new_cap do
      let li = (e1 * lw) + n1 in
      let lf = left.flows.(li) in
      if lf >= 0 then begin
        let lp = left.placed.(li) in
        let obase = (e1 * ow) + n1 in
        for e2 = 0 to ext.pre_cap do
          for n2 = 0 to ext.new_cap do
            let ri = (e2 * rw) + n2 in
            let rf = ext.flows.(ri) in
            if rf >= 0 then begin
              incr products;
              let flow = lf + rf in
              if flow <= w then begin
                let oi = obase + (e2 * ow) + n2 in
                let cur = into.flows.(oi) in
                if cur < 0 then begin
                  into.flows.(oi) <- flow;
                  into.placed.(oi) <- Arena.append arena lp ext.placed.(ri);
                  incr live
                end
                else if flow < cur then begin
                  into.flows.(oi) <- flow;
                  into.placed.(oi) <- Arena.append arena lp ext.placed.(ri)
                end
              end
              else incr rejected
            end
          done
        done
      end
    done
  done;
  Stats_counters.add c_cells !live;
  Stats_counters.add c_products !products;
  Stats_counters.add c_capacity !rejected;
  Replica_obs.Histogram.observe h_products !products;
  Stats_counters.record_max c_peak !live

(* Per-node spans only for subtrees of at least this many nodes. The
   flat tables made small-subtree merges so cheap that a span per node
   (two clock reads, two GC probes, an args list) dominated them — the
   obs bench's tracing-overhead budget is what pins this down. Large
   subtrees, where profiles carry signal, are still covered. *)
let span_min_subtree = 16

(* Table of node j over servers strictly below j. [ctx.memo] carries
   the optional memo and the current tree's subtree fingerprints. *)
let rec table_of ctx tree ~w ~depth j =
  if not (Span.enabled () && Tree.subtree_size tree j >= span_min_subtree)
  then node_table ctx tree ~w ~depth j
  else begin
    Span.begin_span "dp_withpre.node";
    let tbl =
      try node_table ctx tree ~w ~depth j
      with e ->
        Span.end_span ();
        raise e
    in
    Span.end_span
      ~args:
        [
          ("node", Span.Int j);
          ("subtree_size", Span.Int (Tree.subtree_size tree j));
        ]
      ();
    tbl
  end

and node_table ctx tree ~w ~depth j =
  let client = Tree.client_load tree j in
  match ctx.memo with
  | None ->
      let s = slot ctx depth in
      reset_table s.s_acc 0 0;
      if client <= w then begin
        s.s_acc.flows.(0) <- client;
        s.s_acc.placed.(0) <- Arena.empty
      end;
      let children = Tree.children_array tree j in
      for i = 0 to Array.length children - 1 do
        merge_into ctx tree ~w ~depth s children.(i)
      done;
      s.s_acc
  | Some (m, fps) -> (
      let start = fresh_table 0 0 in
      if client <= w then start.flows.(0) <- client;
      let arr = Tree.children_array tree j in
      match arr with
      | [||] -> start
      | _ ->
          let k = Array.length arr in
          let keys = Array.make (k + 1) (fp_seed client) in
          for i = 1 to k do
            keys.(i) <- Tree.combine_fingerprints keys.(i - 1) fps.(arr.(i - 1))
          done;
          let best = ref 0 and acc = ref start in
          (try
             for i = k downto 1 do
               match Hashtbl.find_opt m.prefixes (j, keys.(i)) with
               | Some e ->
                   e.stamp <- m.gen;
                   best := i;
                   acc := e.entry_table;
                   raise Exit
               | None -> ()
             done
           with Exit -> ());
          if Span.enabled () then
            Span.add_arg "memo"
              (Span.Str
                 (if !best = k then "hit"
                  else if !best > 0 then "partial"
                  else "miss"));
          if !best = k then Stats_counters.incr c_memo_hits
          else begin
            Stats_counters.incr
              (if !best > 0 then c_memo_partial else c_memo_misses);
            for i = !best + 1 to k do
              acc := merge_fresh ctx tree ~w ~depth !acc arr.(i - 1);
              Hashtbl.replace m.prefixes (j, keys.(i))
                { stamp = m.gen; entry_table = !acc }
            done
          end;
          !acc)

(* Memo-less merge: child table and extension live in scratch slots,
   the merged accumulator double-buffers between s_acc and s_alt. *)
and merge_into ctx tree ~w ~depth s c =
  let sub = table_of ctx tree ~w ~depth:(depth + 1) c in
  let c_pre = Tree.is_pre_existing tree c in
  let de = if c_pre then 1 else 0 in
  reset_table s.s_ext (sub.pre_cap + de) (sub.new_cap + 1 - de);
  extend ctx tree ~into:s.s_ext sub c;
  let left = s.s_acc and ext = s.s_ext in
  Log.debug (fun m ->
      m "merge child %d: left %dx%d, child %dx%d" c (left.pre_cap + 1)
        (left.new_cap + 1) (ext.pre_cap + 1) (ext.new_cap + 1));
  let tracing =
    Span.enabled () && Tree.subtree_size tree c >= span_min_subtree
  in
  if tracing then Span.begin_span "dp_withpre.merge";
  reset_table s.s_alt (left.pre_cap + ext.pre_cap) (left.new_cap + ext.new_cap);
  convolve ctx ~w ~into:s.s_alt left ext;
  if tracing then
    Span.end_span
      ~args:
        [
          ("child", Span.Int c);
          ("merged_pre_cap", Span.Int s.s_alt.pre_cap);
          ("merged_new_cap", Span.Int s.s_alt.new_cap);
        ]
      ();
  let acc = s.s_alt in
  s.s_alt <- s.s_acc;
  s.s_acc <- acc

(* Memo merge: the result is cached across solves, so it gets fresh
   storage; the transient extension still uses the depth slot. *)
and merge_fresh ctx tree ~w ~depth left c =
  let sub = table_of ctx tree ~w ~depth:(depth + 1) c in
  let c_pre = Tree.is_pre_existing tree c in
  let de = if c_pre then 1 else 0 in
  let ext = fresh_table (sub.pre_cap + de) (sub.new_cap + 1 - de) in
  extend ctx tree ~into:ext sub c;
  Log.debug (fun m ->
      m "merge child %d: left %dx%d, child %dx%d" c (left.pre_cap + 1)
        (left.new_cap + 1) (ext.pre_cap + 1) (ext.new_cap + 1));
  let tracing =
    Span.enabled () && Tree.subtree_size tree c >= span_min_subtree
  in
  if tracing then Span.begin_span "dp_withpre.merge";
  let merged =
    fresh_table (left.pre_cap + ext.pre_cap) (left.new_cap + ext.new_cap)
  in
  convolve ctx ~w ~into:merged left ext;
  if tracing then
    Span.end_span
      ~args:
        [
          ("child", Span.Int c);
          ("merged_pre_cap", Span.Int merged.pre_cap);
          ("merged_new_cap", Span.Int merged.new_cap);
        ]
      ();
  merged

let compact_memo m =
  if Arena.length m.m_arena > m.compact_at then begin
    let c = Arena.compact_begin m.m_arena in
    Hashtbl.iter
      (fun _ e ->
        let t = e.entry_table in
        let cells = (t.pre_cap + 1) * (t.new_cap + 1) in
        for i = 0 to cells - 1 do
          if t.flows.(i) >= 0 then
            t.placed.(i) <- Arena.compact_root m.m_arena c t.placed.(i)
        done)
      m.prefixes;
    Arena.compact_commit m.m_arena c;
    m.compact_at <- max (1 lsl 16) (4 * Arena.length m.m_arena)
  end

let solve ?memo:m tree ~w ~cost =
  if w <= 0 then invalid_arg "Dp_withpre: w must be positive";
  let ctx =
    match m with
    | None -> { arena = Arena.create (); slots = [||]; memo = None }
    | Some mm ->
        if mm.memo_w <> w then begin
          Hashtbl.reset mm.prefixes;
          Arena.clear mm.m_arena;
          mm.memo_w <- w
        end;
        mm.gen <- mm.gen + 1;
        {
          arena = mm.m_arena;
          slots = [||];
          memo = Some (mm, Tree.subtree_fingerprints tree);
        }
  in
  let root = Tree.root tree in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_withpre.solve";
  let table =
    Stats_counters.time t_tables (fun () -> table_of ctx tree ~w ~depth:0 root)
  in
  let pre_total = Tree.num_pre_existing tree in
  let root_pre = Tree.is_pre_existing tree root in
  let best = ref None in
  let consider value servers reused placed root_used =
    match !best with
    | Some (v, _, _, _, _) when v <= value -> ()
    | _ -> best := Some (value, servers, reused, placed, root_used)
  in
  iter_cells table (fun e n flow placed ->
      if flow = 0 then begin
        (* Solution without a root server … *)
        consider
          (Cost.basic_cost cost ~servers:(e + n) ~reused:e
             ~pre_existing:pre_total)
          (e + n) e placed false;
        (* … and, when the root is pre-existing, reusing it at zero load
           (cheaper than deleting it when delete > 1). *)
        if root_pre then
          consider
            (Cost.basic_cost cost ~servers:(e + n + 1) ~reused:(e + 1)
               ~pre_existing:pre_total)
            (e + n + 1) (e + 1) placed true
      end
      else begin
        (* flow <= w by construction: the root must host a server. *)
        let reused = e + if root_pre then 1 else 0 in
        consider
          (Cost.basic_cost cost ~servers:(e + n + 1) ~reused
             ~pre_existing:pre_total)
          (e + n + 1) reused placed true
      end);
  let result =
    match !best with
    | None -> None
    | Some (value, servers, reused, placed, root_used) ->
        let nodes = Arena.nodes ctx.arena placed in
        let nodes = if root_used then root :: nodes else nodes in
        Some
          { solution = Solution.of_nodes nodes; cost = value; servers; reused }
  in
  (match m with
  | Some mm ->
      Hashtbl.filter_map_inplace
        (fun _ e -> if mm.gen - e.stamp > 1 then None else Some e)
        mm.prefixes;
      compact_memo mm
  | None -> ());
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("w", Span.Int w);
          ("memo", Span.Bool (m <> None));
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let root_table tree ~w =
  if w <= 0 then invalid_arg "Dp_withpre: w must be positive";
  let ctx = { arena = Arena.create (); slots = [||]; memo = None } in
  let table = table_of ctx tree ~w ~depth:0 (Tree.root tree) in
  Array.init (table.pre_cap + 1) (fun e ->
      Array.init (table.new_cap + 1) (fun n ->
          let flow = table.flows.((e * (table.new_cap + 1)) + n) in
          if flow < 0 then None else Some flow))
