(** Human-readable reports for solved instances.

    Renders a placement the way an operator would want to read it: one
    line per server (location, load, operating mode, provenance), then
    the Eq. 2 / Eq. 3 / Eq. 4 totals, then any constraint violations.
    Used by the CLI's [solve] subcommand and handy in the toplevel. *)

val cost_report : Tree.t -> w:int -> Cost.basic -> Solution.t -> string
(** Report for the cost-only problems: loads against the single capacity
    [w], reuse/creation/deletion accounting, Eq. 2 total. *)

val power_report :
  Tree.t -> Modes.t -> Power.t -> Cost.modal -> Solution.t -> string
(** Report for the power problems: per-server operating mode and watts,
    mode-change provenance for reused servers, Eq. 4 cost and Eq. 3
    power totals. The solution must fit within the maximal capacity. *)

val stats_report : ?timers:bool -> unit -> string
(** The {!Stats_counters} registry as a report section — what the CLI's
    [--stats] flag prints after a solve — followed by a
    [count/p50/p90/p99] summary line per non-empty
    {!Replica_obs.Histogram} (e.g. merge products per node). Counters
    and size-distribution histograms are deterministic for a fixed
    workload, safe in cram tests; pass [~timers:true] to additionally
    include wall-clock phase timings and latency ([_ns]-suffixed)
    histograms. *)
