(** Replica placements and their evaluation under the {e closest} policy.

    A solution is a set [R] of internal nodes hosting a replica. Under the
    closest policy every client is served by the first node on its path to
    the root that hosts a replica, so a server necessarily absorbs {e all}
    requests reaching it from below — its load is not a degree of freedom.
    This module computes those loads, checks capacity constraints, and
    evaluates the cost (Eq. 2 / Eq. 4) and power (Eq. 3) of a solution. *)

type t
(** A set of replica locations. *)

val of_nodes : Tree.node list -> t
(** Build from a node list (duplicates are merged). *)

val nodes : t -> Tree.node list
(** Sorted, distinct replica locations. *)

val cardinal : t -> int
val mem : t -> Tree.node -> bool
val empty : t

(** {1 Closest-policy evaluation} *)

type evaluation = {
  loads : (Tree.node * int) list;
      (** load of each replica, in increasing node order *)
  unserved : int;
      (** requests escaping through the root without meeting a server *)
}

val evaluate : Tree.t -> t -> evaluation
(** One bottom-up pass; no capacity is enforced here.
    @raise Invalid_argument if the solution mentions nodes outside the
    tree. *)

val server_of : Tree.t -> t -> Tree.node -> Tree.node option
(** [server_of tree sol j] is the replica serving the clients attached at
    node [j] (first ancestor-or-self in the solution), or [None] if their
    requests escape unserved. *)

type violation =
  | Overloaded of Tree.node * int  (** replica load exceeds the capacity *)
  | Qos_violated of Tree.node * int
      (** a node's clients are served this many hops away, beyond their
          {!Tree.qos_radius} *)
  | Link_overloaded of Tree.node * int
      (** flow on the link [node -> parent] exceeds {!Tree.bandwidth} *)
  | Unserved of int  (** this many requests reach past the root *)

val validate : Tree.t -> w:int -> t -> (evaluation, violation list) result
(** Check the capacity constraint (Eq. 1) for maximal capacity [w], the
    QoS and link-bandwidth constraints where the tree carries them
    (Rehn-Sonigo, arXiv 0706.3350), and that every client is served.
    Nodes whose clients have no server at all contribute to [Unserved]
    only, never to [Qos_violated]. Constraint checks are skipped
    entirely on unconstrained trees. *)

val is_valid : Tree.t -> w:int -> t -> bool

(** {1 Forest validation}

    A forest overlays several logical trees (one per replicated object)
    on one pool of physical servers. Each shard's placement must be
    feasible for its own tree, {e and} the aggregate load landing on
    each physical server — summed across every object replicated
    there — must respect the server's capacity. *)

type forest_evaluation = {
  shard_evals : evaluation array;  (** per-shard closest-policy loads *)
  server_loads : int array;
      (** aggregate load per physical server, across all shards *)
}

type forest_violation =
  | Shard_violation of int * violation
      (** shard index paired with its per-tree violation *)
  | Shared_server_overloaded of int * int
      (** physical server id whose aggregate cross-object load exceeds
          the capacity, with that load *)

val validate_forest :
  trees:Tree.t array ->
  server_of:(int -> Tree.node -> int) ->
  num_servers:int ->
  w:int ->
  t array ->
  (forest_evaluation, forest_violation list) result
(** [validate_forest ~trees ~server_of ~num_servers ~w sols] checks each
    shard with {!validate} and then the cross-object coupling
    constraint: for every physical server [s],
    [sum over shards k and replicas j with server_of k j = s of
    load(k, j) <= w]. [server_of k j] maps shard [k]'s tree node [j] to
    its physical server id in [\[0, num_servers)].
    @raise Invalid_argument if the array lengths disagree or a mapped
    server id falls outside the table. *)

(** {1 Metrics} *)

val reused : Tree.t -> t -> int
(** [e = |R ∩ E|], pre-existing servers kept by the solution. *)

val basic_cost : Tree.t -> Cost.basic -> t -> float
(** Eq. 2 for this solution. *)

val tally : Tree.t -> Modes.t -> t -> Cost.tally
(** Classify the solution's servers by mode for Eq. 4: new servers by
    operating mode, reused servers by (initial, operating) mode pair,
    dropped pre-existing servers by initial mode. The solution must be
    feasible (every load within [W_M]); pre-existing nodes without an
    explicit initial mode default to mode 1.
    @raise Invalid_argument if a load exceeds the maximal capacity. *)

val modal_cost : Tree.t -> Modes.t -> Cost.modal -> t -> float
(** Eq. 4 for this solution. *)

val power : Tree.t -> Modes.t -> Power.t -> t -> float
(** Eq. 3 for this solution.
    @raise Invalid_argument if a load exceeds the maximal capacity. *)

val pp : Format.formatter -> t -> unit

val pp_evaluation : Format.formatter -> evaluation -> unit

val equal : t -> t -> bool

val to_string : t -> string
(** Comma-separated node ids (empty string for the empty solution). *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on malformed input. *)
