type t = int array (* strictly increasing capacities, index 0 = mode 1 *)

let make ws =
  if ws = [] then invalid_arg "Modes.make: empty ladder";
  let a = Array.of_list ws in
  Array.iteri
    (fun i w ->
      if w <= 0 then invalid_arg "Modes.make: non-positive capacity";
      if i > 0 && w <= a.(i - 1) then
        invalid_arg "Modes.make: capacities must be strictly increasing")
    a;
  a

let single w = make [ w ]

let count t = Array.length t

let capacity t i =
  if i < 1 || i > Array.length t then invalid_arg "Modes.capacity";
  t.(i - 1)

let max_capacity t = t.(Array.length t - 1)

let capacities t = Array.to_list t

(* M is tiny (2 or 3 in practice): linear scan. Top-level so the call
   is direct — a local [let rec] would allocate a closure on every
   call, and this sits in the packed DP's zero-alloc merge path. *)
let rec find_mode t req i = if req <= t.(i) then i + 1 else find_mode t req (i + 1)

let mode_of_load t req =
  if req < 0 then invalid_arg "Modes.mode_of_load: negative load";
  if req > max_capacity t then
    invalid_arg "Modes.mode_of_load: load exceeds maximal capacity";
  find_mode t req 0

let fits t req = req >= 0 && req <= max_capacity t

let pp fmt t =
  Format.fprintf fmt "{";
  Array.iteri
    (fun i w ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "W%d=%d" (i + 1) w)
    t;
  Format.fprintf fmt "}"
