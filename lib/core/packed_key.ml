(* Bit-packed DP state keys for the MinPower dynamic program.

   A {!Dp_power} cell key is the vector

     [| n_1; ...; n_M; e_11; ...; e_MM; flow |]

   (new servers per operating mode, reused pre-existing servers per
   (initial, operating) mode pair, requests traversing the node). This
   module packs that vector into one unboxed OCaml [int]: field 0
   (n_1) in the most significant bits down to the flow in the least
   significant bits, each field wide enough for the per-instance
   maximum it can ever hold. Consequences the solver relies on:

   - integer comparison of packed keys = lexicographic comparison of
     the key vectors (fields are compared most-significant first);
   - [key lsr flow_bits] is exactly the counts prefix, so the
     flow-dominance prune groups states with one shift and picks the
     flow-minimal representative as the minimal key of the group;
   - adding two packed keys adds field-wise {e provided} no field
     overflows its width. The DP merges tables of disjoint subtrees,
     whose per-field sums are bounded by the instance-wide maxima the
     layout was sized from, and checks the flow sum against the
     capacity [w <= 2^flow_bits - 1] before adding — so carries cannot
     happen by construction.

   [make] refuses layouts beyond 62 bits (the portable OCaml int
   budget, keeping every key non-negative); the solver then falls back
   to the wide [int array] representation. A field with maximum 0
   gets width 0 — it always reads 0 and is never bumped (a field is
   only ever incremented for a node that exists, and a 0 maximum means
   no such node does). *)

type layout = {
  m : int;
  fields : int; (* m + m*m + 1, flow last *)
  widths : int array;
  shifts : int array; (* field i occupies bits [shift, shift+width) *)
  flow_bits : int;
  flow_mask : int;
  total_bits : int;
}

let bits_for v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let max_bits = 62

let make ~m ~count_max ~flow_max =
  let nf = m + (m * m) in
  if Array.length count_max <> nf then
    invalid_arg "Packed_key.make: count_max length";
  if flow_max < 0 then invalid_arg "Packed_key.make: negative flow_max";
  let fields = nf + 1 in
  let widths = Array.make fields 0 in
  for i = 0 to nf - 1 do
    if count_max.(i) < 0 then invalid_arg "Packed_key.make: negative count_max";
    widths.(i) <- bits_for count_max.(i)
  done;
  widths.(nf) <- bits_for flow_max;
  let total_bits = Array.fold_left ( + ) 0 widths in
  if total_bits > max_bits then None
  else begin
    let shifts = Array.make fields 0 in
    for i = fields - 2 downto 0 do
      shifts.(i) <- shifts.(i + 1) + widths.(i + 1)
    done;
    let flow_bits = widths.(nf) in
    Some
      {
        m;
        fields;
        widths;
        shifts;
        flow_bits;
        flow_mask = (1 lsl flow_bits) - 1;
        total_bits;
      }
  end

let total_bits l = l.total_bits
let mode_count l = l.m
let flow_bits l = l.flow_bits

let equal la lb = la.m = lb.m && la.widths = lb.widths

(* Field indices, mirroring Dp_power's array layout. *)
let n_field _l ~operating = operating - 1
let e_field l ~initial ~operating = l.m + ((initial - 1) * l.m) + (operating - 1)

let[@inline] flow l key = key land l.flow_mask

let[@inline] counts l key = key lsr l.flow_bits

let[@inline] get l key field =
  (key lsr l.shifts.(field)) land ((1 lsl l.widths.(field)) - 1)

let[@inline] bump l key field = key + (1 lsl l.shifts.(field))

let[@inline] zero_flow l key = key land lnot l.flow_mask

let encode l v =
  if Array.length v <> l.fields then invalid_arg "Packed_key.encode: length";
  let key = ref 0 in
  for i = 0 to l.fields - 1 do
    if v.(i) < 0 || v.(i) >= 1 lsl l.widths.(i) then
      invalid_arg "Packed_key.encode: field out of range";
    key := !key lor (v.(i) lsl l.shifts.(i))
  done;
  !key

let decode l key =
  Array.init l.fields (fun i -> get l key i)

let pp fmt l =
  Format.fprintf fmt "packed<%db:" l.total_bits;
  Array.iter (fun w -> Format.fprintf fmt " %d" w) l.widths;
  Format.fprintf fmt ">"
