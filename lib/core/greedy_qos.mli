(** Constraint-aware greedy placement (closest policy, QoS + bandwidth).

    One postorder pass over the tree: child flows that would exhaust
    their QoS slack or exceed their link's bandwidth are forced into a
    server at the child; the plain greedy's capacity rule absorbs the
    largest child flows whenever the arriving total exceeds [w].

    Feasibility-complete — returns [None] exactly when no placement at
    all satisfies capacity, QoS and bandwidth (some node's own client
    load exceeds [w], or the brute oracle agrees it is infeasible) — but
    not count-optimal, so it registers as a [Heuristic]; use {!Dp_qos}
    for the optimum. On unconstrained trees it behaves exactly like
    {!Greedy}. *)

val solve : Tree.t -> w:int -> Solution.t option
(** @raise Invalid_argument if [w <= 0]. *)

val solve_count : Tree.t -> w:int -> int option
(** Replica count of {!solve}'s placement. *)
