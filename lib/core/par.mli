(** Deterministic parallel map over OCaml 5 domains.

    Two kinds of work fan out across cores without changing any result:
    whole instances (every tree of an experiment gets its own pre-split
    PRNG and the solvers touch no shared state — see
    [Replica_experiments.Exp1]/[Exp2]/[Exp3]), and sibling subtrees
    inside {!Dp_power}'s bottom-up table construction (each child's
    table is a pure function of its subtree; the reduction over child
    tables stays sequential and ordered). Outputs are collected
    positionally, randomness is fixed before the fan-out, and
    {!Stats_counters} cells are atomic — so results and counter totals
    are bit-identical at any domain count. The timing-oriented
    harnesses ([Scaling], [Exp_heuristics], [Exp_update]) stay
    sequential because they measure CPU time.

    This module lives in [replicaml.core] (rather than the experiments
    library) so the solvers themselves can use it. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val map : ?domains:int -> ?weights:int list -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map. [domains] defaults to
    {!default_domains}; values [<= 1] (or lists of length [<= 1]) run
    sequentially in the calling domain. Work is distributed by atomic
    work-stealing over the input positions. An exception raised by [f]
    propagates to the caller.

    [weights] is a size hint, one entry per input item: workers claim
    positions heaviest-first (ties broken by position), so a mix of
    large and small items — e.g. heterogeneous shard sizes in a forest
    solve — cannot strand domains idle behind one late big item that
    was scheduled last. Results are collected positionally, so the
    output is bit-identical with or without the hint, at any domain
    count.
    @raise Invalid_argument if [weights] disagrees with the input
    length. *)

val map2 : ?domains:int -> ('a -> 'b -> 'c) -> 'a list -> 'b list -> 'c list
(** Pairwise variant.
    @raise Invalid_argument on length mismatch. *)
