(** Reconfiguration cost models.

    Without modes (Eq. 2), running a server costs 1, creating a new one
    adds [create], and deleting a pre-existing server that is not reused
    costs [delete]:
    [cost = R + (R - e)·create + (E - e)·delete]
    where [R] is the number of servers in the solution, [e] the number of
    reused pre-existing servers and [E] the number of pre-existing ones.

    With modes (Eq. 4), creation and deletion costs depend on the mode and
    changing a reused server's mode from [W_i] to [W_{i'}] costs
    [changed_{i,i'}]:
    [cost = R + Σ create_i·n_i + Σ delete_i·k_i + Σ changed_{i,i'}·e_{i,i'}]. *)

(** {1 Scalar model (Eq. 2)} *)

type basic = { create : float; delete : float }

val basic : ?create:float -> ?delete:float -> unit -> basic
(** Defaults to [create = 0.], [delete = 0.] — in which case the cost is
    simply the number of servers [R], the classical objective.
    @raise Invalid_argument on negative costs. *)

val basic_cost : basic -> servers:int -> reused:int -> pre_existing:int -> float
(** Evaluate Eq. 2. [reused <= servers] and [reused <= pre_existing] are
    required.
    @raise Invalid_argument on inconsistent counts. *)

(** {1 Modal model (Eq. 4)} *)

type modal
(** Per-mode creation/deletion costs and a mode-change matrix. *)

val modal :
  create:float array -> delete:float array -> changed:float array array -> modal
(** [create.(i-1)] is [create_i]; [changed.(i-1).(i'-1)] is
    [changed_{i,i'}]. All arrays must agree on [M]; the diagonal of
    [changed] must be 0 (no cost for an unchanged mode); all entries must
    be non-negative.
    @raise Invalid_argument on malformed input. *)

val modal_uniform :
  modes:int -> create:float -> delete:float -> changed:float -> modal
(** All modes share the same creation/deletion cost; every actual mode
    change costs [changed] (the diagonal stays 0). *)

val paper_cheap : modes:int -> modal
(** §5.2 first cost function: [create_i = 0.1], [delete_i = 0.01],
    [changed_{i,i'} = 0.001] (off-diagonal). *)

val paper_expensive : modes:int -> modal
(** §5.2 Figure 11 cost function: [create_i = delete_i = 1],
    [changed_{i,i'} = 0.1] (off-diagonal). *)

val mode_count : modal -> int

val is_mode_monotone : modal -> bool
(** A modal cost model is {e mode-monotone} when the charge for ending
    up at a given operating mode never decreases as that mode rises:
    [create_i] is non-decreasing in [i], and every row of [changed] is
    non-decreasing ([changed_{i0,i'} <= changed_{i0,i''}] for
    [i' <= i'']). Under a mode-monotone model, lowering a server's
    absorbed load (hence its operating mode) can only lower its power
    {e and} its cost contribution, which is what makes
    {!Dp_power}'s flow-dominance pruning exact for {e every} cost bound
    and for the full Pareto frontier. Uniform models with
    [changed = 0] qualify; the paper's §5.2 models do {e not} (their
    off-diagonal [changed > 0] beats the zero diagonal, so keeping a
    reused server in its original higher mode can be cheaper). *)

type tally = {
  created : int array;  (** [created.(i-1)] = n_i, new servers at mode i *)
  reused : int array array;  (** [reused.(i-1).(i'-1)] = e_{i,i'} *)
  deleted : int array;  (** [deleted.(i-1)] = k_i, dropped pre-existing *)
}
(** Server counts of a solution, classified as in §2.2. *)

val empty_tally : modes:int -> tally

val tally_servers : tally -> int
(** [R], total servers in the solution (created + reused). *)

val modal_cost : modal -> tally -> float
(** Evaluate Eq. 4.
    @raise Invalid_argument if the tally's mode count differs. *)

val basic_of_modal_inputs :
  basic -> servers:int -> reused:int -> pre_existing:int -> float
(** Alias of {!basic_cost} kept for symmetry in callers. *)
