type counter = { c_name : string; cell : int Atomic.t }
type timer = { t_name : string; ns : int Atomic.t }

(* Registration is rare (top-level module initializers) and protected by
   a mutex; the hot path only ever touches the Atomic cells. *)
let lock = Mutex.create ()
let registered_counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let registered_timers : (string, timer) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt registered_counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.replace registered_counters name c;
          c)

let timer name =
  with_lock (fun () ->
      match Hashtbl.find_opt registered_timers name with
      | Some t -> t
      | None ->
          let t = { t_name = name; ns = Atomic.make 0 } in
          Hashtbl.replace registered_timers name t;
          t)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = ignore (Atomic.fetch_and_add c.cell n)

(* Top-level recursion, not a local [let rec]: the retry loop runs in
   the packed DP's zero-alloc merge path, where a per-call closure
   would show up in the allocation gate. *)
let rec record_max c v =
  let cur = Atomic.get c.cell in
  if v > cur && not (Atomic.compare_and_set c.cell cur v) then record_max c v

let value c = Atomic.get c.cell

(* CLOCK_MONOTONIC, not gettimeofday: the wall clock is steppable by
   NTP and can go backwards, which used to let accumulated [seconds]
   go negative under an adjustment landing inside a timed section. *)
let now_ns = Replica_obs.Clock.now_ns

let time t f =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () -> ignore (Atomic.fetch_and_add t.ns (now_ns () - t0)))
    f

let seconds t = float_of_int (Atomic.get t.ns) /. 1e9

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registered_counters;
      Hashtbl.iter (fun _ t -> Atomic.set t.ns 0) registered_timers)

let sorted_values tbl value =
  with_lock (fun () ->
      Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl [])
  |> List.sort compare

let counters () = sorted_values registered_counters value
let timers () = sorted_values registered_timers seconds

type snapshot = (string * int) list

let snapshot () = counters ()

let diff before after =
  let base = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace base k v) before;
  List.filter_map
    (fun (k, v) ->
      let d = v - Option.value ~default:0 (Hashtbl.find_opt base k) in
      if d <> 0 then Some (k, d) else None)
    after

let pad_to entries =
  List.fold_left (fun acc (name, _) -> max acc (String.length name)) 0 entries

let counters_report () =
  (* Hide never-touched counters: which zero-valued cells exist depends
     on which solver modules the binary happens to link, not on the
     workload. *)
  let entries = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  let width = pad_to entries in
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-*s %d\n" width name v))
    entries;
  Buffer.contents buf

let report () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (counters_report ());
  let entries = List.filter (fun (_, s) -> s <> 0.) (timers ()) in
  let width = pad_to entries in
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf (Printf.sprintf "%-*s %.6f s\n" width name s))
    entries;
  Buffer.contents buf

(* Bridge this registry into the labeled metrics registry so
   [Prometheus.expose] and [Timeseries] see solver counters without a
   dependency from obs up to core. Counters surface as counter samples
   under their dotted names; timers as [name_seconds] gauges (the shape
   the exposition always used). Registered once at module load;
   re-registration is idempotent. *)
let () =
  Replica_obs.Metrics.register_collector ~name:"stats_counters" (fun () ->
      let counter_samples =
        List.filter_map
          (fun (name, v) ->
            if v = 0 then None
            else
              Some
                {
                  Replica_obs.Metrics.s_name = name;
                  s_labels = [];
                  s_value =
                    Replica_obs.Metrics.Sample_counter (float_of_int v);
                })
          (counters ())
      in
      let timer_samples =
        List.filter_map
          (fun (name, s) ->
            if s = 0. then None
            else
              Some
                {
                  Replica_obs.Metrics.s_name = name ^ "_seconds";
                  s_labels = [];
                  s_value = Replica_obs.Metrics.Sample_gauge s;
                })
          (timers ())
      in
      counter_samples @ timer_samples)

let to_json () =
  let buf = Buffer.create 512 in
  let obj fields render =
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%S: " name);
        render v)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\": ";
  obj (counters ()) (fun v -> Buffer.add_string buf (string_of_int v));
  Buffer.add_string buf ", \"timers_seconds\": ";
  obj (timers ()) (fun s -> Buffer.add_string buf (Printf.sprintf "%.9f" s));
  Buffer.add_char buf '}';
  Buffer.contents buf
