module IntSet = Set.Make (Int)

type t = IntSet.t

let of_nodes l = IntSet.of_list l
let nodes t = IntSet.elements t
let cardinal = IntSet.cardinal
let mem t j = IntSet.mem j t
let empty = IntSet.empty

type evaluation = { loads : (Tree.node * int) list; unserved : int }

let check_nodes tree t =
  IntSet.iter
    (fun j ->
      if j < 0 || j >= Tree.size tree then
        invalid_arg "Solution: replica outside the tree")
    t

let evaluate tree t =
  check_nodes tree t;
  let n = Tree.size tree in
  (* flow.(j) = requests leaving node j upward after absorption at j. *)
  let flow = Array.make n 0 in
  let loads = Array.make n 0 in
  Array.iter
    (fun j ->
      let arriving =
        List.fold_left
          (fun acc c -> acc + flow.(c))
          (Tree.client_load tree j)
          (Tree.children tree j)
      in
      if IntSet.mem j t then begin
        loads.(j) <- arriving;
        flow.(j) <- 0
      end
      else flow.(j) <- arriving)
    (Tree.postorder tree);
  let load_list =
    List.map (fun j -> (j, loads.(j))) (IntSet.elements t)
  in
  { loads = load_list; unserved = flow.(Tree.root tree) }

let server_of tree t j =
  let rec up j = if IntSet.mem j t then Some j else
      match Tree.parent tree j with None -> None | Some p -> up p
  in
  up j

type violation =
  | Overloaded of Tree.node * int
  | Qos_violated of Tree.node * int
  | Link_overloaded of Tree.node * int
  | Unserved of int

(* QoS and bandwidth checks (gated on the tree actually carrying
   constraints, so unconstrained validation costs nothing extra): one
   postorder pass recovers the per-link flows, one preorder pass the
   depth of the nearest server at-or-above each node. A node's clients
   violate QoS when their server sits more than [qos_radius] hops above
   the attachment node; clients with no server at all are reported as
   [Unserved], not as a QoS violation. *)
let constrained_violations tree t =
  if not (Tree.is_constrained tree) then []
  else begin
    let n = Tree.size tree in
    let flow = Array.make n 0 in
    Array.iter
      (fun j ->
        let arriving =
          List.fold_left
            (fun acc c -> acc + flow.(c))
            (Tree.client_load tree j)
            (Tree.children tree j)
        in
        flow.(j) <- (if IntSet.mem j t then 0 else arriving))
      (Tree.postorder tree);
    (* near.(j) = depth of the closest server at-or-above j, or -1. *)
    let near = Array.make n (-1) in
    Array.iter
      (fun j ->
        if IntSet.mem j t then near.(j) <- Tree.depth tree j
        else
          match Tree.parent tree j with
          | None -> ()
          | Some p -> near.(j) <- near.(p))
      (Tree.preorder tree);
    let qos = ref [] and links = ref [] in
    for j = n - 1 downto 0 do
      let radius = Tree.qos_radius tree j in
      if radius <> Tree.unbounded && Tree.client_load tree j > 0
         && near.(j) >= 0 then begin
        let dist = Tree.depth tree j - near.(j) in
        if dist > radius then qos := Qos_violated (j, dist) :: !qos
      end;
      if j > 0 && flow.(j) > Tree.bandwidth tree j then
        links := Link_overloaded (j, flow.(j)) :: !links
    done;
    !qos @ !links
  end

let validate tree ~w t =
  let ev = evaluate tree t in
  let violations =
    List.filter_map
      (fun (j, load) -> if load > w then Some (Overloaded (j, load)) else None)
      ev.loads
  in
  let violations = violations @ constrained_violations tree t in
  let violations =
    if ev.unserved > 0 then violations @ [ Unserved ev.unserved ]
    else violations
  in
  if violations = [] then Ok ev else Error violations

let is_valid tree ~w t =
  match validate tree ~w t with Ok _ -> true | Error _ -> false

type forest_evaluation = {
  shard_evals : evaluation array;
  server_loads : int array;
}

type forest_violation =
  | Shard_violation of int * violation
  | Shared_server_overloaded of int * int

let validate_forest ~trees ~server_of:server ~num_servers ~w solutions =
  if Array.length trees <> Array.length solutions then
    invalid_arg "Solution.validate_forest: shard count mismatch";
  if num_servers < 0 then
    invalid_arg "Solution.validate_forest: negative server count";
  let server_loads = Array.make num_servers 0 in
  let shard_evals = Array.make (Array.length solutions) { loads = []; unserved = 0 } in
  let violations = ref [] in
  Array.iteri
    (fun k sol ->
      (match validate trees.(k) ~w sol with
      | Ok ev -> shard_evals.(k) <- ev
      | Error vs ->
          shard_evals.(k) <- evaluate trees.(k) sol;
          List.iter (fun v -> violations := Shard_violation (k, v) :: !violations) vs);
      List.iter
        (fun (j, load) ->
          let s = server k j in
          if s < 0 || s >= num_servers then
            invalid_arg "Solution.validate_forest: server id out of range";
          server_loads.(s) <- server_loads.(s) + load)
        shard_evals.(k).loads)
    solutions;
  for s = num_servers - 1 downto 0 do
    if server_loads.(s) > w then
      violations := Shared_server_overloaded (s, server_loads.(s)) :: !violations
  done;
  if !violations = [] then Ok { shard_evals; server_loads }
  else Error !violations

let reused tree t =
  IntSet.fold
    (fun j acc -> if Tree.is_pre_existing tree j then acc + 1 else acc)
    t 0

let basic_cost tree params t =
  Cost.basic_cost params ~servers:(cardinal t) ~reused:(reused tree t)
    ~pre_existing:(Tree.num_pre_existing tree)

let initial_mode_default tree j =
  match Tree.initial_mode tree j with Some m -> m | None -> 1

let tally tree modes t =
  let m = Modes.count modes in
  let acc = Cost.empty_tally ~modes:m in
  let ev = evaluate tree t in
  List.iter
    (fun (j, load) ->
      let op = Modes.mode_of_load modes load in
      if Tree.is_pre_existing tree j then begin
        let init = initial_mode_default tree j in
        acc.Cost.reused.(init - 1).(op - 1) <-
          acc.Cost.reused.(init - 1).(op - 1) + 1
      end
      else acc.Cost.created.(op - 1) <- acc.Cost.created.(op - 1) + 1)
    ev.loads;
  List.iter
    (fun j ->
      if not (IntSet.mem j t) then begin
        let init = initial_mode_default tree j in
        acc.Cost.deleted.(init - 1) <- acc.Cost.deleted.(init - 1) + 1
      end)
    (Tree.pre_existing tree);
  acc

let modal_cost tree modes params t = Cost.modal_cost params (tally tree modes t)

let power tree modes params t =
  let ev = evaluate tree t in
  Power.total params modes (List.map snd ev.loads)

let pp fmt t =
  Format.fprintf fmt "{";
  List.iteri
    (fun i j ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" j)
    (nodes t);
  Format.fprintf fmt "}"

let pp_evaluation fmt ev =
  Format.fprintf fmt "loads:";
  List.iter (fun (j, l) -> Format.fprintf fmt " %d->%d" j l) ev.loads;
  if ev.unserved > 0 then Format.fprintf fmt " (unserved: %d)" ev.unserved

let equal = IntSet.equal

let to_string t = String.concat "," (List.map string_of_int (nodes t))

let of_string s =
  if String.trim s = "" then empty
  else
    of_nodes
      (List.map
         (fun part ->
           match int_of_string_opt (String.trim part) with
           | Some j -> j
           | None -> invalid_arg "Solution.of_string: malformed input")
         (String.split_on_char ',' s))
