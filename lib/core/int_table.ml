(* Open-addressing int -> int hash table with insertion-order
   iteration, for the packed DP cores.

   Three properties the solvers need and [Hashtbl] does not give:

   - zero boxing: keys and values are unboxed ints in flat arrays, so
     the merge inner loop (probe + insert) allocates no GC words once
     the table has reached steady capacity;
   - insertion-order iteration: [iter] walks the dense [keys]/[vals]
     prefix, so which representative placement survives a first-wins
     insert — and hence the solver's tie-broken output — is a
     deterministic function of the merge order alone, independent of
     hashing, capacity, or the packed-key layout;
   - reserve-then-fill inserts: {!reserve} probes once and either
     reports the key as present or hands back the value slot to fill,
     so callers pay for building a value (an arena push) only when the
     insert actually happens.

   [clear] keeps the backing storage, which is what lets the per-depth
   scratch pools reuse tables across sibling merges without
   reallocating. *)

type t = {
  mutable keys : int array; (* dense, insertion order *)
  mutable vals : int array;
  mutable count : int;
  mutable slots : int array; (* 0 = empty, else index into keys + 1 *)
  mutable mask : int; (* Array.length slots - 1, power of two minus 1 *)
}

let[@inline] hash key =
  let h = key lxor (key lsr 29) in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 32)

let rec pow2_above n c = if c >= n then c else pow2_above n (c * 2)

let create ?(capacity = 16) () =
  let capacity = max 8 capacity in
  let slot_len = pow2_above (2 * capacity) 16 in
  {
    keys = Array.make capacity 0;
    vals = Array.make capacity 0;
    count = 0;
    slots = Array.make slot_len 0;
    mask = slot_len - 1;
  }

let length t = t.count

let clear t =
  t.count <- 0;
  Array.fill t.slots 0 (Array.length t.slots) 0

let[@inline never] rehash t =
  let slot_len = 2 * (t.mask + 1) in
  let slots = Array.make slot_len 0 in
  let mask = slot_len - 1 in
  for i = 0 to t.count - 1 do
    let j = ref (hash t.keys.(i) land mask) in
    while slots.(!j) <> 0 do
      j := (!j + 1) land mask
    done;
    slots.(!j) <- i + 1
  done;
  t.slots <- slots;
  t.mask <- mask

let[@inline never] grow_dense t =
  let cap = 2 * Array.length t.keys in
  let keys = Array.make cap 0 and vals = Array.make cap 0 in
  Array.blit t.keys 0 keys 0 t.count;
  Array.blit t.vals 0 vals 0 t.count;
  t.keys <- keys;
  t.vals <- vals

(* Insert [key] if absent. Returns the dense index whose value slot
   the caller must fill via [set_val], or [-1] when the key is already
   present. *)
let reserve t key =
  if 2 * (t.count + 1) > t.mask + 1 then rehash t;
  let mask = t.mask and slots = t.slots and keys = t.keys in
  let j = ref (hash key land mask) in
  let result = ref min_int in
  while !result = min_int do
    let s = slots.(!j) in
    if s = 0 then begin
      if t.count >= Array.length t.keys then grow_dense t;
      let i = t.count in
      t.keys.(i) <- key;
      t.count <- i + 1;
      slots.(!j) <- i + 1;
      result := i
    end
    else if keys.(s - 1) = key then result := -1
    else j := (!j + 1) land mask
  done;
  !result

let[@inline] set_val t i v = t.vals.(i) <- v

(* Dense index of [key], or [-1]. *)
let index t key =
  let mask = t.mask and slots = t.slots and keys = t.keys in
  let j = ref (hash key land mask) in
  let result = ref min_int in
  while !result = min_int do
    let s = slots.(!j) in
    if s = 0 then result := -1
    else if keys.(s - 1) = key then result := s - 1
    else j := (!j + 1) land mask
  done;
  !result

let mem t key = index t key >= 0

let find_default t key default =
  let i = index t key in
  if i < 0 then default else t.vals.(i)

let get t key =
  let i = index t key in
  if i < 0 then raise Not_found;
  t.vals.(i)

(* Insert or overwrite. *)
let replace t key v =
  let i = reserve t key in
  if i >= 0 then t.vals.(i) <- v
  else begin
    let j = index t key in
    t.vals.(j) <- v
  end

let iter t f =
  for i = 0 to t.count - 1 do
    f t.keys.(i) t.vals.(i)
  done

let[@inline] key_at t i = t.keys.(i)
let[@inline] val_at t i = t.vals.(i)

let fold t init f =
  let acc = ref init in
  for i = 0 to t.count - 1 do
    acc := f !acc t.keys.(i) t.vals.(i)
  done;
  !acc
