(* Flat arena for catenable placement lists — the unboxed counterpart
   of {!Clist} used by the packed DP cores. A placement is an [int]
   index into the arena; cell 0 is the shared empty list. Each cell is
   a pair of ints across two parallel arrays:

     leaf (node, flow):  fst = -(node + 1)   snd = flow
     cat  (left, right): fst = left index    snd = right index

   [snoc]/[append] are O(1) pushes into preallocated storage, so the
   merge inner loops of the DP solvers allocate zero GC words (growth
   doubles the backing arrays, amortized and absent once the arena has
   reached steady size — which is what the zero-alloc bench assert
   measures). Structure sharing is free: a cell index can appear as a
   child of any number of later cells, exactly like the boxed [Clist]
   spines it replaces.

   Arenas are single-writer: the parallel sibling fan-out gives each
   domain a private arena and {!graft}s the results back into the
   parent's arena after the join, preserving sharing via an old->new
   index map. Long-lived arenas (the incremental memos) reclaim dead
   cells with the {!compact_begin}/{!compact_root}/{!compact_commit}
   protocol: copy every live root into a fresh arena, rewrite the
   stored indices, swap the storage. *)

type t = {
  mutable fst_ : int array;
  mutable snd_ : int array;
  mutable len : int; (* next free cell; cell 0 is [empty] *)
}

let empty = 0

let create ?(capacity = 1024) () =
  let capacity = max 2 capacity in
  { fst_ = Array.make capacity 0; snd_ = Array.make capacity 0; len = 1 }

let length t = t.len

let clear t = t.len <- 1

let[@inline never] grow t =
  let cap = Array.length t.fst_ * 2 in
  let fst' = Array.make cap 0 and snd' = Array.make cap 0 in
  Array.blit t.fst_ 0 fst' 0 t.len;
  Array.blit t.snd_ 0 snd' 0 t.len;
  t.fst_ <- fst';
  t.snd_ <- snd'

let[@inline] push t a b =
  if t.len >= Array.length t.fst_ then grow t;
  let i = t.len in
  t.fst_.(i) <- a;
  t.snd_.(i) <- b;
  t.len <- i + 1;
  i

let[@inline] leaf t ~node ~flow = push t (-node - 1) flow

let[@inline] append t l r = if l = 0 then r else if r = 0 then l else push t l r

let[@inline] snoc t l ~node ~flow = append t l (leaf t ~node ~flow)

(* In-order traversal (left to right), explicit int stack so deep
   left/right spines cannot overflow the OCaml stack. *)
let iter t f root =
  if root <> 0 then begin
    let stack = ref (Array.make 64 0) in
    let sp = ref 0 in
    let push_s v =
      if !sp >= Array.length !stack then begin
        let s' = Array.make (2 * Array.length !stack) 0 in
        Array.blit !stack 0 s' 0 !sp;
        stack := s'
      end;
      !stack.(!sp) <- v;
      incr sp
    in
    push_s root;
    while !sp > 0 do
      decr sp;
      let i = !stack.(!sp) in
      if i <> 0 then begin
        let a = t.fst_.(i) in
        if a < 0 then f (-a - 1) t.snd_.(i)
        else begin
          (* right pushed first so left pops (and visits) first *)
          push_s t.snd_.(i);
          push_s a
        end
      end
    done
  end

let nodes t root =
  let acc = ref [] in
  iter t (fun node _flow -> acc := node :: !acc) root;
  List.rev !acc

let to_list t root =
  let acc = ref [] in
  iter t (fun node flow -> acc := (node, flow) :: !acc) root;
  List.rev !acc

let count t root =
  let n = ref 0 in
  iter t (fun _ _ -> incr n) root;
  !n

(* Copy the cell graph reachable from [root] in [src] into [dst],
   preserving sharing through [map] (0 = not yet copied; cell 0 maps to
   itself). Iterative two-phase traversal: a cat cell is revisited
   (encoded as [lnot i]) once both children have been copied. *)
let graft ~src ~dst ~map root =
  if root = 0 then 0
  else begin
    let stack = ref (Array.make 64 0) in
    let sp = ref 0 in
    let push_s v =
      if !sp >= Array.length !stack then begin
        let s' = Array.make (2 * Array.length !stack) 0 in
        Array.blit !stack 0 s' 0 !sp;
        stack := s'
      end;
      !stack.(!sp) <- v;
      incr sp
    in
    push_s root;
    while !sp > 0 do
      decr sp;
      let tagged = !stack.(!sp) in
      if tagged < 0 then begin
        (* second visit of a cat cell: children are mapped *)
        let i = lnot tagged in
        if map.(i) = 0 then
          map.(i) <- push dst map.(src.fst_.(i)) map.(src.snd_.(i))
      end
      else begin
        let i = tagged in
        if i <> 0 && map.(i) = 0 then begin
          let a = src.fst_.(i) in
          if a < 0 then map.(i) <- push dst a src.snd_.(i)
          else begin
            push_s (lnot i);
            push_s a;
            push_s src.snd_.(i)
          end
        end
      end
    done;
    map.(root)
  end

type compaction = { target : t; map : int array }

let compact_begin t =
  {
    target = create ~capacity:(max 1024 (t.len / 2)) ();
    map = Array.make t.len 0;
  }

let compact_root t c root = graft ~src:t ~dst:c.target ~map:c.map root

let compact_commit t c =
  t.fst_ <- c.target.fst_;
  t.snd_ <- c.target.snd_;
  t.len <- c.target.len
