type basic = { create : float; delete : float }

let basic ?(create = 0.) ?(delete = 0.) () =
  if create < 0. || delete < 0. then invalid_arg "Cost.basic: negative cost";
  { create; delete }

let basic_cost t ~servers ~reused ~pre_existing =
  if reused > servers || reused > pre_existing || reused < 0 || servers < 0
  then invalid_arg "Cost.basic_cost: inconsistent counts";
  float_of_int servers
  +. (float_of_int (servers - reused) *. t.create)
  +. (float_of_int (pre_existing - reused) *. t.delete)

type modal = {
  create_m : float array;
  delete_m : float array;
  changed : float array array;
}

let modal ~create ~delete ~changed =
  let m = Array.length create in
  if m = 0 then invalid_arg "Cost.modal: no modes";
  if Array.length delete <> m || Array.length changed <> m then
    invalid_arg "Cost.modal: dimension mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> m then invalid_arg "Cost.modal: dimension mismatch";
      if row.(i) <> 0. then invalid_arg "Cost.modal: changed diagonal must be 0";
      Array.iter (fun c -> if c < 0. then invalid_arg "Cost.modal: negative cost") row)
    changed;
  Array.iter (fun c -> if c < 0. then invalid_arg "Cost.modal: negative cost") create;
  Array.iter (fun c -> if c < 0. then invalid_arg "Cost.modal: negative cost") delete;
  { create_m = create; delete_m = delete; changed }

let modal_uniform ~modes ~create ~delete ~changed =
  modal
    ~create:(Array.make modes create)
    ~delete:(Array.make modes delete)
    ~changed:
      (Array.init modes (fun i ->
           Array.init modes (fun i' -> if i = i' then 0. else changed)))

let paper_cheap ~modes = modal_uniform ~modes ~create:0.1 ~delete:0.01 ~changed:0.001
let paper_expensive ~modes = modal_uniform ~modes ~create:1. ~delete:1. ~changed:0.1

let mode_count t = Array.length t.create_m

let is_mode_monotone t =
  let m = mode_count t in
  let nondecreasing get =
    let ok = ref true in
    for i = 0 to m - 2 do
      if get (i + 1) < get i then ok := false
    done;
    !ok
  in
  nondecreasing (fun i -> t.create_m.(i))
  && Array.for_all (fun row -> nondecreasing (fun i -> row.(i))) t.changed

type tally = {
  created : int array;
  reused : int array array;
  deleted : int array;
}

let empty_tally ~modes =
  {
    created = Array.make modes 0;
    reused = Array.init modes (fun _ -> Array.make modes 0);
    deleted = Array.make modes 0;
  }

let tally_servers t =
  Array.fold_left ( + ) 0 t.created
  + Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 t.reused

let modal_cost t tally =
  let m = mode_count t in
  if
    Array.length tally.created <> m
    || Array.length tally.reused <> m
    || Array.length tally.deleted <> m
  then invalid_arg "Cost.modal_cost: mode count mismatch";
  let total = ref (float_of_int (tally_servers tally)) in
  for i = 0 to m - 1 do
    total := !total +. (float_of_int tally.created.(i) *. t.create_m.(i));
    total := !total +. (float_of_int tally.deleted.(i) *. t.delete_m.(i));
    for i' = 0 to m - 1 do
      total := !total +. (float_of_int tally.reused.(i).(i') *. t.changed.(i).(i'))
    done
  done;
  !total

let basic_of_modal_inputs = basic_cost
