let src =
  Logs.Src.create "replica.dp_power" ~doc:"MinPower-BoundedCost dynamic program"

module Log = (val Logs.src_log src : Logs.LOG)

module Key = struct
  type t = int array

  let equal (a : int array) b = a = b

  let hash a =
    Array.fold_left (fun h x -> (h * 31) + x + 1) 17 a land max_int
end

module Tbl = Hashtbl.Make (Key)

type result = {
  solution : Solution.t;
  power : float;
  cost : float;
  tally : Cost.tally;
}

(* Observability: every table cell allocated, every cartesian product
   attempted, every pair rejected by the capacity check and every cell
   dropped by dominance pruning is accounted here, plus a high-water
   mark for table size and per-phase wall time. Counters accumulate
   until [Stats_counters.reset]; totals are identical at any [domains]
   value (atomic adds commute, and the set of tables built does not
   depend on the fan-out) and identical between the packed and wide
   representations (same set semantics, same product enumeration —
   bench-diff pins them Exact). *)
let c_cells = Stats_counters.counter "dp_power.cells_created"
let c_products = Stats_counters.counter "dp_power.merge_products"
let c_capacity = Stats_counters.counter "dp_power.capacity_rejected"
let c_pruned = Stats_counters.counter "dp_power.dominance_pruned"
let c_peak = Stats_counters.counter "dp_power.peak_table_size"
let t_tables = Stats_counters.timer "dp_power.tables"
let t_enumerate = Stats_counters.timer "dp_power.enumerate"
let c_memo_hits = Stats_counters.counter "dp_power.memo_hits"
let c_memo_partial = Stats_counters.counter "dp_power.memo_partial"
let c_memo_misses = Stats_counters.counter "dp_power.memo_misses"

(* Structured observability (replicaml.obs): per-node spans nest the
   child-merge and prune phases under each node's solve, and the
   per-node merge-product count feeds a log2 histogram — so one trace
   shows *where inside a solve* the cartesian blowup happens, not just
   the aggregate totals above. Span sites are guarded by
   [Span.enabled] (a single atomic load) so the disabled path
   allocates nothing; the histogram, like the counters, is always
   on. *)
module Span = Replica_obs.Span

let h_products =
  Replica_obs.Histogram.create "dp_power.merge_products_per_node"

(* Cell key layout: [| n_1; ...; n_M; e_11; ...; e_MM; flow |] — the
   exact per-mode server counts AND the number of requests traversing
   the node. Keeping the flow in the key (rather than minimizing it per
   state, as a literal reading of the paper's §4.3 suggests) is
   necessary under load-determined modes: raising a subtree's residual
   flow can keep an upstream reused server in its original (higher)
   mode and thereby avoid a positive changed_{i,i'} cost, so two
   placements with the same counts but different flows are NOT
   interchangeable once mode-change costs are involved. Two placements
   agreeing on counts AND flow are fully interchangeable (same cost,
   same power, same influence upstream), so one representative
   placement per key suffices.

   Two concrete representations implement that abstract key: the
   {e packed} fast path ({!Packed_key}: the whole vector bit-packed
   into one unboxed int, placements as {!Arena} handles, tables as
   {!Int_table}) and the {e wide} fallback (this historical [int
   array] / [Clist] / polymorphic-[Hashtbl] form) used when the
   instance's field widths cannot fit 62 bits. Both produce the same
   optimum, the same counter totals, and the same set of table keys;
   only the tie-broken representative placements may differ. *)

let state_size m = m + (m * m)

let flow_of key = key.(Array.length key - 1)

let bump key ~m ~initial ~operating =
  let s = Array.copy key in
  let idx =
    match initial with
    | None -> operating - 1
    | Some i0 -> m + ((i0 - 1) * m) + (operating - 1)
  in
  s.(idx) <- s.(idx) + 1;
  s

(* Scratch variant: overwrite [dst] instead of allocating — the wide
   enumeration path extends every root cell transiently, so one
   preallocated key serves all candidates. *)
let bump_into dst key ~m ~initial ~operating =
  Array.blit key 0 dst 0 (Array.length key);
  let idx =
    match initial with
    | None -> operating - 1
    | Some i0 -> m + ((i0 - 1) * m) + (operating - 1)
  in
  dst.(idx) <- dst.(idx) + 1

let set tbl key placed ~created =
  if not (Tbl.mem tbl key) then begin
    Tbl.replace tbl key placed;
    incr created
  end

let initial_mode_default tree j =
  match Tree.initial_mode tree j with Some m -> m | None -> 1

(* Pre-existing servers per initial mode — hoisted out of the
   per-candidate tally computation (it used to rebuild the whole
   [Tree.pre_existing] list for every root cell). *)
let available_of tree ~m =
  let available = Array.make m 0 in
  List.iter
    (fun j ->
      let i0 = initial_mode_default tree j in
      available.(i0 - 1) <- available.(i0 - 1) + 1)
    (Tree.pre_existing tree);
  available

(* Packed layout selection. First try uniform widths (every count
   field sized for the node count N): the layout then depends only on
   (N, M, W), so epoch views of one network share it and the
   incremental memo survives pre-existing-set churn. If that exceeds
   the 62-bit budget, retry with tight per-field maxima — e_{i0,op}
   can never exceed the number of pre-existing servers initially at
   mode i0 (0 bits when there are none). Only if even the tight
   layout overflows does the solver fall back to the wide keys. *)
let layout_for tree ~modes =
  let m = Modes.count modes in
  let n = Tree.size tree in
  let w = Modes.max_capacity modes in
  let nf = m + (m * m) in
  match Packed_key.make ~m ~count_max:(Array.make nf n) ~flow_max:w with
  | Some l -> Some l
  | None ->
      let e_counts = Array.make m 0 in
      List.iter
        (fun j ->
          let i0 = initial_mode_default tree j in
          e_counts.(i0 - 1) <- e_counts.(i0 - 1) + 1)
        (Tree.pre_existing tree);
      let tight =
        Array.init nf (fun i -> if i < m then n else e_counts.((i - m) / m))
      in
      Packed_key.make ~m ~count_max:tight ~flow_max:w

let packed_bits tree ~modes =
  Option.map Packed_key.total_bits (layout_for tree ~modes)

(* Dominance pruning: among cells with identical count entries
   (n_1..n_M, e_11..e_MM), keep only the one with minimal flow.

   Why this is safe — the mirror argument. Let k1 = (counts, f1) and
   k2 = (counts, f2) with f1 < f2 be cells of the same table at node j,
   and let S2 be ANY completion of k2 (decisions at every node merged
   later, each server's operating mode forced by its absorbed load).
   Mirror S2 onto k1: keep every decision identical. Every capacity
   check still passes (each flow sum only shrinks, by f2 - f1, on j's
   root path). The two runs differ at exactly one server — the first
   one above j that absorbs j's residual flow (or the root decision,
   which absorbs any nonzero flow): it carries load L - (f2 - f1)
   instead of L, hence operates at mode op1 <= op2. Since
   [Power.of_mode] is strictly increasing in the mode:

   - if op1 = op2, the final root keys coincide, and (power, cost) are
     functions of the key alone — the mirror is exactly as good;
   - if op1 < op2, the mirror has strictly lower power.

   Consequently, for the pure MinPower problem (bound = infinity, any
   cost model): the optimum power P* and the minimal cost c_min among
   optimum-power placements are both preserved — a completion of k2
   achieving power P* at cost c_min cannot have op1 < op2, since its
   mirror would then beat the optimum; so its mirror realizes the same
   final key and thus the same power and cost.

   Under a finite cost bound or for the Pareto frontier, the op1 < op2
   case must also not *increase* cost, which requires the cost model to
   be mode-monotone ([Cost.is_mode_monotone]): create_i and every
   changed_{i0,·} row non-decreasing in the operating mode. Then the
   mirror's (power, cost) is pointwise <= S2's, so no frontier point
   and no bound-feasible optimum is lost. The paper's §5.2 models are
   NOT mode-monotone (off-diagonal changed > 0 versus the zero
   diagonal), which is exactly the unsoundness of §4.3's literal
   flow-minimal table documented in DESIGN.md — hence pruning defaults
   to on only where the argument above applies, and stays overridable
   for differential testing. *)
let prune_dominated ~m tbl =
  let sm = state_size m in
  if Tbl.length tbl <= 1 then tbl
  else begin
    let tracing = Span.enabled () in
    if tracing then Span.begin_span "dp_power.prune";
    let best = Tbl.create (Tbl.length tbl) in
    Tbl.iter
      (fun key _ ->
        let counts = Array.sub key 0 sm in
        match Tbl.find_opt best counts with
        | Some k0 when flow_of k0 <= flow_of key -> ()
        | Some _ | None -> Tbl.replace best counts key)
      tbl;
    let dropped = Tbl.length tbl - Tbl.length best in
    let result =
      if dropped = 0 then tbl
      else begin
        Stats_counters.add c_pruned dropped;
        let out = Tbl.create (Tbl.length best) in
        Tbl.iter (fun _ key -> Tbl.replace out key (Tbl.find tbl key)) best;
        out
      end
    in
    if tracing then
      Span.end_span
        ~args:
          [ ("cells_in", Span.Int (Tbl.length tbl)); ("pruned", Span.Int dropped) ]
        ();
    result
  end

(* Incremental re-solving (same device as Dp_withpre): a memo caches
   every extended child table keyed by the child's subtree fingerprint,
   and every prefix of every node's child-merge fold keyed by a
   fingerprint chain. An epoch re-solve then recomputes only the tables
   under demand that actually moved; results are bit-identical to a
   memo-less solve. Tables are never mutated after construction, so
   sharing them across solves is safe. The memo forces the sequential
   merge path (no [Par] fan-out — the cache is not domain-safe).

   A memo caches tables in whichever representation the instance
   resolves to; the packed layout's field widths are part of the memo
   key, so a layout change (e.g. the mode ladder or tree size changed)
   resets the cache rather than mixing incomparable keys. Packed
   placements live in the memo's arena, compacted after eviction once
   it outgrows [compact_at]. *)
type tbl_repr = Twide of (int * int) Clist.t Tbl.t | Tpacked of Int_table.t

type memo = {
  mutable gen : int;
  mutable memo_key : (int list * bool) option;
      (* tables depend on the mode ladder and the prune flag *)
  mutable m_layout : Packed_key.layout option;
      (* layout of cached packed tables; [None] = wide representation *)
  prefixes : (int * int64, entry) Hashtbl.t;
  ext_cache : (int * int64, entry) Hashtbl.t;
  m_arena : Arena.t;
  mutable compact_at : int;
}

and entry = { mutable stamp : int; table : tbl_repr }

let memo () =
  {
    gen = 0;
    memo_key = None;
    m_layout = None;
    prefixes = Hashtbl.create 512;
    ext_cache = Hashtbl.create 512;
    m_arena = Arena.create ();
    compact_at = 1 lsl 16;
  }

let memo_size m = Hashtbl.length m.prefixes + Hashtbl.length m.ext_cache

let fp_seed client =
  Tree.combine_fingerprints 0x9E6C63D0876A9A35L (Int64.of_int client)

let wide_entry = function
  | { table = Twide t; _ } -> Some t
  | { table = Tpacked _; _ } -> None

let packed_entry = function
  | { table = Tpacked t; _ } -> Some t
  | { table = Twide _; _ } -> None
(* ------------------------------------------------------------------ *)
(* Wide (int array / Clist / Hashtbl) fallback path.                  *)
(* ------------------------------------------------------------------ *)

(* Table of node j over servers strictly below j: key -> placement.
   [domains > 1] fans sibling subtrees out over OCaml 5 domains at the
   first node with several children; each child's table is a pure
   function of its subtree and is built sequentially inside its domain,
   and the reduction over child tables below keeps the sequential
   child order — so the result is bit-identical to [domains = 1]. *)
(* Per-node spans only for subtrees of at least this many nodes —
   same rationale as [Dp_withpre.span_min_subtree]: the packed kernels
   made small-subtree merges cheaper than the span bookkeeping. *)
let span_min_subtree = 16

let rec table_of ctx tree ~modes ~prune ~domains j =
  if not (Span.enabled () && Tree.subtree_size tree j >= span_min_subtree)
  then node_table ctx tree ~modes ~prune ~domains j
  else begin
    Span.begin_span "dp_power.node";
    let tbl =
      try node_table ctx tree ~modes ~prune ~domains j
      with e ->
        Span.end_span ();
        raise e
    in
    Span.end_span
      ~args:
        [
          ("node", Span.Int j);
          ("subtree_size", Span.Int (Tree.subtree_size tree j));
          ("cells", Span.Int (Tbl.length tbl));
        ]
      ();
    tbl
  end

and node_table ctx tree ~modes ~prune ~domains j =
  let m = Modes.count modes in
  let w = Modes.max_capacity modes in
  let start = Tbl.create 16 in
  let client = Tree.client_load tree j in
  if client <= w then begin
    let key = Array.make (state_size m + 1) 0 in
    key.(state_size m) <- client;
    Tbl.replace start key Clist.empty;
    Stats_counters.incr c_cells
  end;
  let children = Tree.children tree j in
  match ctx with
  | None ->
      let extended_tables =
        match children with
        | [] -> []
        | [ c ] -> [ extended_of ctx tree ~modes ~prune ~domains c ]
        | _ :: _ :: _ when domains > 1 ->
            Par.map ~domains
              (fun c -> extended_of None tree ~modes ~prune ~domains:1 c)
              children
        | _ ->
            List.map
              (fun c -> extended_of ctx tree ~modes ~prune ~domains:1 c)
              children
      in
      List.fold_left (merge ~modes ~prune) start extended_tables
  | Some ((mm, fps) as c) -> (
      match children with
      | [] -> start
      | _ ->
          let arr = Array.of_list children in
          let k = Array.length arr in
          let keys = Array.make (k + 1) (fp_seed client) in
          for i = 1 to k do
            keys.(i) <- Tree.combine_fingerprints keys.(i - 1) fps.(arr.(i - 1))
          done;
          let best = ref 0 and acc = ref start in
          (try
             for i = k downto 1 do
               match Hashtbl.find_opt mm.prefixes (j, keys.(i)) with
               | Some e -> (
                   match wide_entry e with
                   | Some t ->
                       e.stamp <- mm.gen;
                       best := i;
                       acc := t;
                       raise Exit
                   | None -> ())
               | None -> ()
             done
           with Exit -> ());
          if !best > 0 && !best < k then Stats_counters.incr c_memo_partial;
          if Span.enabled () then
            Span.add_arg "memo"
              (Span.Str
                 (if !best = k then "hit"
                  else if !best > 0 then "partial"
                  else "miss"));
          for i = !best + 1 to k do
            acc :=
              merge ~modes ~prune !acc
                (extended_cached c tree ~modes ~prune arr.(i - 1));
            Hashtbl.replace mm.prefixes (j, keys.(i))
              { stamp = mm.gen; table = Twide !acc }
          done;
          !acc)

(* Extended child tables, looked up by the child's subtree fingerprint:
   a clean child costs one hash probe instead of a subtree of work. *)
and extended_cached ((mm, fps) as ctx) tree ~modes ~prune c =
  match Hashtbl.find_opt mm.ext_cache (c, fps.(c)) with
  | Some ({ table = Twide t; _ } as e) ->
      e.stamp <- mm.gen;
      Stats_counters.incr c_memo_hits;
      if Span.enabled () then begin
        (* A hit costs one probe instead of a subtree of work; the
           zero-length span keeps the skipped subtree visible in the
           trace. *)
        Span.begin_span "dp_power.memo_hit";
        Span.end_span ~args:[ ("node", Span.Int c) ] ()
      end;
      (c, t)
  | Some { table = Tpacked _; _ } | None ->
      Stats_counters.incr c_memo_misses;
      let _, tbl =
        extended_of (Some ctx) tree ~modes ~prune ~domains:1 c
      in
      Hashtbl.replace mm.ext_cache (c, fps.(c))
        { stamp = mm.gen; table = Twide tbl };
      (c, tbl)

(* The child's table extended with the decision at c itself: its
   operating mode is forced by the flow it absorbs. *)
and extended_of ctx tree ~modes ~prune ~domains c =
  let m = Modes.count modes in
  let sm = state_size m in
  let sub = table_of ctx tree ~modes ~prune ~domains c in
  let extended = Tbl.create (2 * Tbl.length sub) in
  let c_initial =
    if Tree.is_pre_existing tree c then Some (initial_mode_default tree c)
    else None
  in
  let created = ref 0 in
  Tbl.iter
    (fun key placed ->
      set extended key placed ~created;
      let flow = flow_of key in
      let operating = Modes.mode_of_load modes flow in
      let key' = bump key ~m ~initial:c_initial ~operating in
      key'.(sm) <- 0;
      set extended key' (Clist.snoc placed (c, flow)) ~created)
    sub;
  Stats_counters.add c_cells !created;
  let extended = if prune then prune_dominated ~m extended else extended in
  (c, extended)

and merge ~modes ~prune left (c, extended) =
  let m = Modes.count modes in
  let sm = state_size m in
  let w = Modes.max_capacity modes in
  Log.debug (fun f ->
      f "merge child %d: %d x %d cells" c (Tbl.length left)
        (Tbl.length extended));
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.merge";
  let merged = Tbl.create (Tbl.length left * 2) in
  let products = ref 0 and rejected = ref 0 and created = ref 0 in
  Tbl.iter
    (fun k1 p1 ->
      Tbl.iter
        (fun k2 p2 ->
          incr products;
          let flow = k1.(sm) + k2.(sm) in
          if flow <= w then begin
            let key = Array.init (sm + 1) (fun i -> k1.(i) + k2.(i)) in
            key.(sm) <- flow;
            set merged key (Clist.append p1 p2) ~created
          end
          else incr rejected)
        extended)
    left;
  Stats_counters.add c_products !products;
  Stats_counters.add c_capacity !rejected;
  Stats_counters.add c_cells !created;
  Stats_counters.record_max c_peak (Tbl.length merged);
  Replica_obs.Histogram.observe h_products !products;
  let result = if prune then prune_dominated ~m merged else merged in
  if tracing then
    Span.end_span
      ~args:
        [
          ("child", Span.Int c);
          ("left_cells", Span.Int (Tbl.length left));
          ("child_cells", Span.Int (Tbl.length extended));
          ("products", Span.Int !products);
          ("merged_cells", Span.Int (Tbl.length result));
        ]
      ();
  result

(* ------------------------------------------------------------------ *)
(* Packed fast path: unboxed keys, flat tables, arena placements.     *)
(* ------------------------------------------------------------------ *)

(* Per-depth scratch buffers for the memo-less packed path: the fold
   at depth d needs the accumulator and its double buffer, the current
   child's extension, and two prune scratches (count-group -> minimal
   key, and the compacted output). All five are reused across every
   node at that depth, so a whole solve touches O(height) tables and
   the merge inner loop allocates zero GC words — [clear] keeps
   backing storage. *)
type pslot = {
  mutable p_acc : Int_table.t;
  mutable p_alt : Int_table.t;
  mutable p_ext : Int_table.t;
  p_best : Int_table.t;
  mutable p_tmp : Int_table.t;
}

type pctx = {
  lay : Packed_key.layout;
  arena : Arena.t;
  mutable pslots : pslot array;
  pmemo : (memo * int64 array) option;
  (* per-merge scratch counters: mutable fields, not refs, so the hot
     path allocates nothing even without escape analysis *)
  mutable n_products : int;
  mutable n_rejected : int;
  mutable n_created : int;
}

let fresh_pslot () =
  {
    p_acc = Int_table.create ();
    p_alt = Int_table.create ();
    p_ext = Int_table.create ();
    p_best = Int_table.create ();
    p_tmp = Int_table.create ();
  }

let make_pctx ?pmemo lay =
  let arena =
    match pmemo with Some (m, _) -> m.m_arena | None -> Arena.create ()
  in
  {
    lay;
    arena;
    pslots = [||];
    pmemo;
    n_products = 0;
    n_rejected = 0;
    n_created = 0;
  }

let pslot pc depth =
  let n = Array.length pc.pslots in
  if depth >= n then
    pc.pslots <-
      Array.init
        (max (depth + 1) (2 * n))
        (fun i -> if i < n then pc.pslots.(i) else fresh_pslot ());
  pc.pslots.(depth)

(* Flow-dominance prune over a packed table. Count groups are
   [key lsr flow_bits]; within a group the flow-minimal cell is the
   minimal packed key, so [best] maps group -> minimal key. Writes the
   surviving cells into [out] (cleared here) in first-encounter group
   order and returns it; returns [tbl] untouched when nothing is
   dominated. Counter totals match the wide prune exactly: same
   groups, same survivors. *)
let pprune lay ~best ~out tbl =
  if Int_table.length tbl <= 1 then tbl
  else begin
    let tracing = Span.enabled () && Int_table.length tbl >= 1024 in
    if tracing then Span.begin_span "dp_power.prune";
    Int_table.clear best;
    let fb = Packed_key.flow_bits lay in
    let len = Int_table.length tbl in
    for i = 0 to len - 1 do
      let key = Int_table.key_at tbl i in
      let g = key lsr fb in
      let r = Int_table.reserve best g in
      if r >= 0 then Int_table.set_val best r key
      else begin
        let j = Int_table.index best g in
        if Int_table.val_at best j > key then Int_table.set_val best j key
      end
    done;
    let dropped = len - Int_table.length best in
    let result =
      if dropped = 0 then tbl
      else begin
        Stats_counters.add c_pruned dropped;
        Int_table.clear out;
        for i = 0 to Int_table.length best - 1 do
          let key = Int_table.val_at best i in
          let r = Int_table.reserve out key in
          Int_table.set_val out r (Int_table.get tbl key)
        done;
        out
      end
    in
    if tracing then
      Span.end_span
        ~args:[ ("cells_in", Span.Int len); ("pruned", Span.Int dropped) ]
        ();
    result
  end

(* Extend [sub] (the child's table) with the decision at [c] itself,
   writing into [ext] (cleared here). First-wins inserts, counting
   created cells through [pc.n_created]; the arena push happens only
   when the insert lands, so the loop allocates nothing. *)
let pextend pc tree ~modes ext sub c =
  let lay = pc.lay in
  let arena = pc.arena in
  Int_table.clear ext;
  let c_pre = Tree.is_pre_existing tree c in
  let i0 = if c_pre then initial_mode_default tree c else 0 in
  pc.n_created <- 0;
  let len = Int_table.length sub in
  for i = 0 to len - 1 do
    let key = Int_table.key_at sub i in
    let placed = Int_table.val_at sub i in
    let r = Int_table.reserve ext key in
    if r >= 0 then begin
      Int_table.set_val ext r placed;
      pc.n_created <- pc.n_created + 1
    end;
    let flow = Packed_key.flow lay key in
    let operating = Modes.mode_of_load modes flow in
    let field =
      if c_pre then Packed_key.e_field lay ~initial:i0 ~operating
      else Packed_key.n_field lay ~operating
    in
    let key' = Packed_key.bump lay (Packed_key.zero_flow lay key) field in
    let r' = Int_table.reserve ext key' in
    if r' >= 0 then begin
      Int_table.set_val ext r' (Arena.snoc arena placed ~node:c ~flow);
      pc.n_created <- pc.n_created + 1
    end
  done;
  Stats_counters.add c_cells pc.n_created

(* The convolution kernel: [left] x [ext] into [into] (cleared here).
   Packed keys of disjoint subtrees add field-wise — the flow sum is
   checked against w before the add, every other field is bounded by
   the instance-wide maxima the layout was sized from, so no field can
   carry. The loop body is probes, int adds and arena pushes: zero GC
   words. *)
let pconvolve pc ~modes ~into left ext =
  let lay = pc.lay in
  let arena = pc.arena in
  let w = Modes.max_capacity modes in
  let llen = Int_table.length left and rlen = Int_table.length ext in
  (* Span only the convolutions with enough products to dwarf the span
     bookkeeping itself — small-table merges are a handful of int ops. *)
  let tracing = Span.enabled () && llen * rlen >= 4096 in
  if tracing then Span.begin_span "dp_power.merge";
  Int_table.clear into;
  pc.n_products <- 0;
  pc.n_rejected <- 0;
  pc.n_created <- 0;
  for i = 0 to llen - 1 do
    let k1 = Int_table.key_at left i in
    let p1 = Int_table.val_at left i in
    let f1 = Packed_key.flow lay k1 in
    for j = 0 to rlen - 1 do
      let k2 = Int_table.key_at ext j in
      let flow = f1 + Packed_key.flow lay k2 in
      if flow <= w then begin
        let r = Int_table.reserve into (k1 + k2) in
        if r >= 0 then begin
          Int_table.set_val into r
            (Arena.append arena p1 (Int_table.val_at ext j));
          pc.n_created <- pc.n_created + 1
        end
      end
      else pc.n_rejected <- pc.n_rejected + 1
    done;
    pc.n_products <- pc.n_products + rlen
  done;
  Stats_counters.add c_products pc.n_products;
  Stats_counters.add c_capacity pc.n_rejected;
  Stats_counters.add c_cells pc.n_created;
  Stats_counters.record_max c_peak (Int_table.length into);
  Replica_obs.Histogram.observe h_products pc.n_products;
  if tracing then
    Span.end_span
      ~args:
        [
          ("left_cells", Span.Int llen);
          ("child_cells", Span.Int rlen);
          ("products", Span.Int pc.n_products);
          ("merged_cells", Span.Int (Int_table.length into));
        ]
      ()

(* Start cell of a node's table: no servers below, the client load
   flows through — the packed key is just the flow field, i.e. the
   load itself. *)
let pstart _pc ~modes tbl tree j =
  Int_table.clear tbl;
  let w = Modes.max_capacity modes in
  let client = Tree.client_load tree j in
  if client <= w then begin
    let r = Int_table.reserve tbl client in
    Int_table.set_val tbl r Arena.empty;
    Stats_counters.incr c_cells
  end

(* Packed memo-less recursion. The fold at each node runs over the
   per-depth scratch slot: extend the child into [p_ext] (pruning via
   [p_tmp]), convolve [p_acc] x [p_ext] into [p_alt] (pruning via
   [p_tmp] again), then swap [p_acc]/[p_alt]. All swaps permute the
   five distinct tables of the slot, so no buffer is ever read and
   written in the same kernel. *)
let rec ptable pc tree ~modes ~prune ~domains ~depth j =
  if not (Span.enabled () && Tree.subtree_size tree j >= span_min_subtree)
  then pnode pc tree ~modes ~prune ~domains ~depth j
  else begin
    Span.begin_span "dp_power.node";
    let tbl =
      try pnode pc tree ~modes ~prune ~domains ~depth j
      with e ->
        Span.end_span ();
        raise e
    in
    Span.end_span
      ~args:
        [
          ("node", Span.Int j);
          ("subtree_size", Span.Int (Tree.subtree_size tree j));
          ("cells", Span.Int (Int_table.length tbl));
        ]
      ();
    tbl
  end

and pnode pc tree ~modes ~prune ~domains ~depth j =
  let s = pslot pc depth in
  pstart pc ~modes s.p_acc tree j;
  let children = Tree.children_array tree j in
  let k = Array.length children in
  if k = 0 then s.p_acc
  else if k >= 2 && domains > 1 then begin
    (* Sibling fan-out: each child builds its extension in a private
       pctx + arena; grafting back and folding keeps the sequential
       child order, so the result is bit-identical to [domains = 1]. *)
    let exts =
      Par.map ~domains
        (fun c -> pextended_standalone pc.lay tree ~modes ~prune c)
        (Array.to_list children)
    in
    List.iter
      (fun (ext, child_arena) ->
        let map = Array.make (Arena.length child_arena) 0 in
        let len = Int_table.length ext in
        for i = 0 to len - 1 do
          Int_table.set_val ext i
            (Arena.graft ~src:child_arena ~dst:pc.arena ~map
               (Int_table.val_at ext i))
        done;
        pmerge_step pc ~modes ~prune s ext)
      exts;
    s.p_acc
  end
  else begin
    for i = 0 to k - 1 do
      let c = children.(i) in
      let sub =
        ptable pc tree ~modes ~prune
          ~domains:(if k = 1 then domains else 1)
          ~depth:(depth + 1) c
      in
      pextend pc tree ~modes s.p_ext sub c;
      (if prune then begin
         let r = pprune pc.lay ~best:s.p_best ~out:s.p_tmp s.p_ext in
         if r != s.p_ext then begin
           let t = s.p_ext in
           s.p_ext <- s.p_tmp;
           s.p_tmp <- t
         end
       end);
      pmerge_step pc ~modes ~prune s s.p_ext
    done;
    s.p_acc
  end

and pmerge_step pc ~modes ~prune s ext =
  pconvolve pc ~modes ~into:s.p_alt s.p_acc ext;
  (if prune then begin
     let r = pprune pc.lay ~best:s.p_best ~out:s.p_tmp s.p_alt in
     if r != s.p_alt then begin
       let t = s.p_alt in
       s.p_alt <- s.p_tmp;
       s.p_tmp <- t
     end
   end);
  let t = s.p_acc in
  s.p_acc <- s.p_alt;
  s.p_alt <- t

and pextended_standalone lay tree ~modes ~prune c =
  let pc = make_pctx lay in
  let sub = ptable pc tree ~modes ~prune ~domains:1 ~depth:1 c in
  let s = pslot pc 0 in
  pextend pc tree ~modes s.p_ext sub c;
  let ext =
    if prune then pprune lay ~best:s.p_best ~out:s.p_tmp s.p_ext else s.p_ext
  in
  (ext, pc.arena)

(* Packed memo path — the packed twin of the wide [node_table]'s
   [Some ctx] branch. Tables built here persist in the memo across
   solves, so they are fresh [Int_table]s (not pooled scratch) and
   their placements live in the memo's arena. *)
let rec mtable pc tree ~modes ~prune j =
  if not (Span.enabled ()) then mnode pc tree ~modes ~prune j
  else begin
    Span.begin_span "dp_power.node";
    let tbl =
      try mnode pc tree ~modes ~prune j
      with e ->
        Span.end_span ();
        raise e
    in
    Span.end_span
      ~args:
        [
          ("node", Span.Int j);
          ("subtree_size", Span.Int (Tree.subtree_size tree j));
          ("cells", Span.Int (Int_table.length tbl));
        ]
      ();
    tbl
  end

and mnode pc tree ~modes ~prune j =
  let mm, fps =
    match pc.pmemo with Some c -> c | None -> assert false
  in
  let start = Int_table.create () in
  pstart pc ~modes start tree j;
  match Tree.children tree j with
  | [] -> start
  | children ->
      let arr = Array.of_list children in
      let k = Array.length arr in
      let keys = Array.make (k + 1) (fp_seed (Tree.client_load tree j)) in
      for i = 1 to k do
        keys.(i) <- Tree.combine_fingerprints keys.(i - 1) fps.(arr.(i - 1))
      done;
      let best = ref 0 and acc = ref start in
      (try
         for i = k downto 1 do
           match Hashtbl.find_opt mm.prefixes (j, keys.(i)) with
           | Some e -> (
               match packed_entry e with
               | Some t ->
                   e.stamp <- mm.gen;
                   best := i;
                   acc := t;
                   raise Exit
               | None -> ())
           | None -> ()
         done
       with Exit -> ());
      if !best > 0 && !best < k then Stats_counters.incr c_memo_partial;
      if Span.enabled () then
        Span.add_arg "memo"
          (Span.Str
             (if !best = k then "hit"
              else if !best > 0 then "partial"
              else "miss"));
      for i = !best + 1 to k do
        acc := mmerge pc tree ~modes ~prune !acc arr.(i - 1);
        Hashtbl.replace mm.prefixes (j, keys.(i))
          { stamp = mm.gen; table = Tpacked !acc }
      done;
      !acc

and mmerge pc tree ~modes ~prune left c =
  let ext = mext_cached pc tree ~modes ~prune c in
  let merged = Int_table.create ~capacity:(2 * Int_table.length left) () in
  pconvolve pc ~modes ~into:merged left ext;
  if prune then begin
    let best = Int_table.create () and out = Int_table.create () in
    pprune pc.lay ~best ~out merged
  end
  else merged

and mext_cached pc tree ~modes ~prune c =
  let mm, fps =
    match pc.pmemo with Some x -> x | None -> assert false
  in
  match Hashtbl.find_opt mm.ext_cache (c, fps.(c)) with
  | Some ({ table = Tpacked t; _ } as e) ->
      e.stamp <- mm.gen;
      Stats_counters.incr c_memo_hits;
      if Span.enabled () then begin
        Span.begin_span "dp_power.memo_hit";
        Span.end_span ~args:[ ("node", Span.Int c) ] ()
      end;
      t
  | Some { table = Twide _; _ } | None ->
      Stats_counters.incr c_memo_misses;
      let sub = mtable pc tree ~modes ~prune c in
      let ext = Int_table.create ~capacity:(2 * Int_table.length sub) () in
      pextend pc tree ~modes ext sub c;
      let ext =
        if prune then begin
          let best = Int_table.create () and out = Int_table.create () in
          pprune pc.lay ~best ~out ext
        end
        else ext
      in
      Hashtbl.replace mm.ext_cache (c, fps.(c))
        { stamp = mm.gen; table = Tpacked ext };
      ext

(* ------------------------------------------------------------------ *)
(* Enumeration and the public entry points.                           *)
(* ------------------------------------------------------------------ *)

let tally_of_state ~modes ~available key =
  let m = Modes.count modes in
  let t = Cost.empty_tally ~modes:m in
  for i = 0 to m - 1 do
    t.Cost.created.(i) <- key.(i)
  done;
  for i = 0 to m - 1 do
    let reused_from_i = ref 0 in
    for i' = 0 to m - 1 do
      t.Cost.reused.(i).(i') <- key.(m + (i * m) + i');
      reused_from_i := !reused_from_i + t.Cost.reused.(i).(i')
    done;
    t.Cost.deleted.(i) <- available.(i) - !reused_from_i
  done;
  t

let power_of_state ~modes ~power key =
  let m = Modes.count modes in
  let total = ref 0. in
  for op = 1 to m do
    let count = ref key.(op - 1) in
    for i0 = 1 to m do
      count := !count + key.(m + ((i0 - 1) * m) + (op - 1))
    done;
    if !count > 0 then
      total := !total +. (float_of_int !count *. Power.of_mode power modes op)
  done;
  !total

(* Packed twins of the two key readers, writing into a caller-owned
   tally so the lean solve scan reuses one scratch record. *)
let ptally_into lay ~available tally key =
  let m = Packed_key.mode_count lay in
  for op = 1 to m do
    tally.Cost.created.(op - 1) <-
      Packed_key.get lay key (Packed_key.n_field lay ~operating:op)
  done;
  for i0 = 1 to m do
    let row = tally.Cost.reused.(i0 - 1) in
    let sum = ref 0 in
    for op = 1 to m do
      let v =
        Packed_key.get lay key (Packed_key.e_field lay ~initial:i0 ~operating:op)
      in
      row.(op - 1) <- v;
      sum := !sum + v
    done;
    tally.Cost.deleted.(i0 - 1) <- available.(i0 - 1) - !sum
  done

let ppower_of lay ~modes ~power key =
  let m = Packed_key.mode_count lay in
  let total = ref 0. in
  for op = 1 to m do
    let count = ref (Packed_key.get lay key (Packed_key.n_field lay ~operating:op)) in
    for i0 = 1 to m do
      count :=
        !count
        + Packed_key.get lay key (Packed_key.e_field lay ~initial:i0 ~operating:op)
    done;
    if !count > 0 then
      total := !total +. (float_of_int !count *. Power.of_mode power modes op)
  done;
  !total

(* Root decisions for one packed root-table cell, in the same order as
   the wide enumeration: zero flow admits the no-root completion (plus
   a zero-load reuse when the root is pre-existing); positive flow
   forces a root server at the load-determined mode. The root bump
   leaves the flow field untouched — like the wide [bump] — since the
   readers above only look at count fields. *)
let proot_scan lay ~modes table ~root_pre ~root_i0 consider =
  let len = Int_table.length table in
  for i = 0 to len - 1 do
    let key = Int_table.key_at table i in
    let placed = Int_table.val_at table i in
    let flow = Packed_key.flow lay key in
    if flow = 0 then begin
      consider key placed false;
      if root_pre then
        consider
          (Packed_key.bump lay key
             (Packed_key.e_field lay ~initial:root_i0 ~operating:1))
          placed true
    end
    else begin
      let operating = Modes.mode_of_load modes flow in
      let field =
        if root_pre then Packed_key.e_field lay ~initial:root_i0 ~operating
        else Packed_key.n_field lay ~operating
      in
      consider (Packed_key.bump lay key field) placed true
    end
  done

(* Enumerate every complete solution at the root (wide fallback): for
   each root-table cell, either the residual flow is zero (no root
   server needed — with an optional zero-load reuse when the root is
   pre-existing), or the root must host a server whose mode follows
   from the flow. One scratch key serves every transient root bump. *)
let candidates ?(ctx = None) tree ~modes ~power ~cost ~prune ~domains =
  if Cost.mode_count cost <> Modes.count modes then
    invalid_arg "Dp_power: cost model mode count mismatch";
  let m = Modes.count modes in
  let root = Tree.root tree in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.tables";
  let table =
    Stats_counters.time t_tables (fun () ->
        table_of ctx tree ~modes ~prune ~domains root)
  in
  if tracing then
    Span.end_span ~args:[ ("root_cells", Span.Int (Tbl.length table)) ] ();
  let root_initial =
    if Tree.is_pre_existing tree root then
      Some (initial_mode_default tree root)
    else None
  in
  let available = available_of tree ~m in
  let scratch = Array.make (state_size m + 1) 0 in
  let out = ref [] in
  let emit key placed root_used =
    let tally = tally_of_state ~modes ~available key in
    let cost_v = Cost.modal_cost cost tally in
    let power_v = power_of_state ~modes ~power key in
    let nodes = List.map fst (Clist.to_list placed) in
    let nodes = if root_used then root :: nodes else nodes in
    out :=
      {
        solution = Solution.of_nodes nodes;
        power = power_v;
        cost = cost_v;
        tally;
      }
      :: !out
  in
  if tracing then Span.begin_span "dp_power.enumerate";
  Stats_counters.time t_enumerate (fun () ->
      Tbl.iter
        (fun key placed ->
          let flow = flow_of key in
          if flow = 0 then begin
            emit key placed false;
            (* Zero-load reuse of a pre-existing root (can be cheaper than
               deleting it, at the price of its mode-1 power). *)
            match root_initial with
            | Some _ ->
                bump_into scratch key ~m ~initial:root_initial ~operating:1;
                emit scratch placed true
            | None -> ()
          end
          else begin
            let operating = Modes.mode_of_load modes flow in
            bump_into scratch key ~m ~initial:root_initial ~operating;
            emit scratch placed true
          end)
        table);
  if tracing then
    Span.end_span ~args:[ ("candidates", Span.Int (List.length !out)) ] ();
  !out

(* Packed candidate enumeration (frontier path: every completion is
   materialized as a [result]). *)
let pcandidates lay tree ~modes ~power ~cost ~prune ~domains =
  if Cost.mode_count cost <> Modes.count modes then
    invalid_arg "Dp_power: cost model mode count mismatch";
  let m = Modes.count modes in
  let root = Tree.root tree in
  let pc = make_pctx lay in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.tables";
  let table =
    Stats_counters.time t_tables (fun () ->
        ptable pc tree ~modes ~prune ~domains ~depth:0 root)
  in
  if tracing then
    Span.end_span ~args:[ ("root_cells", Span.Int (Int_table.length table)) ] ();
  let root_pre = Tree.is_pre_existing tree root in
  let root_i0 = if root_pre then initial_mode_default tree root else 0 in
  let available = available_of tree ~m in
  let out = ref [] in
  let emit key placed root_used =
    let tally = Cost.empty_tally ~modes:m in
    ptally_into lay ~available tally key;
    let cost_v = Cost.modal_cost cost tally in
    let power_v = ppower_of lay ~modes ~power key in
    let nodes = Arena.nodes pc.arena placed in
    let nodes = if root_used then root :: nodes else nodes in
    out :=
      {
        solution = Solution.of_nodes nodes;
        power = power_v;
        cost = cost_v;
        tally;
      }
      :: !out
  in
  if tracing then Span.begin_span "dp_power.enumerate";
  Stats_counters.time t_enumerate (fun () ->
      proot_scan lay ~modes table ~root_pre ~root_i0 emit);
  if tracing then
    Span.end_span ~args:[ ("candidates", Span.Int (List.length !out)) ] ();
  !out

(* Memo housekeeping shared by both representations. *)
let memo_prepare mm ~modes ~prune ~layout =
  let key = (Modes.capacities modes, prune) in
  let layout_matches =
    match (mm.m_layout, layout) with
    | None, None -> true
    | Some a, Some b -> Packed_key.equal a b
    | None, Some _ | Some _, None -> false
  in
  if mm.memo_key <> Some key || not layout_matches then begin
    Hashtbl.reset mm.prefixes;
    Hashtbl.reset mm.ext_cache;
    Arena.clear mm.m_arena;
    mm.memo_key <- Some key;
    mm.m_layout <- layout
  end;
  mm.gen <- mm.gen + 1

let memo_finish mm =
  let evict tbl =
    Hashtbl.filter_map_inplace
      (fun _ e -> if mm.gen - e.stamp > 1 then None else Some e)
      tbl
  in
  evict mm.prefixes;
  evict mm.ext_cache;
  (* Reclaim arena cells orphaned by eviction/replacement once the
     arena has outgrown its threshold; every surviving table handle is
     rewritten through one sharing-preserving compaction map. *)
  match mm.m_layout with
  | Some _ when Arena.length mm.m_arena > mm.compact_at ->
      let c = Arena.compact_begin mm.m_arena in
      let rewrite _ e =
        match e.table with
        | Tpacked t ->
            let len = Int_table.length t in
            for i = 0 to len - 1 do
              Int_table.set_val t i
                (Arena.compact_root mm.m_arena c (Int_table.val_at t i))
            done
        | Twide _ -> ()
      in
      Hashtbl.iter rewrite mm.prefixes;
      Hashtbl.iter rewrite mm.ext_cache;
      Arena.compact_commit mm.m_arena c;
      mm.compact_at <- max (1 lsl 16) (4 * Arena.length mm.m_arena)
  | Some _ | None -> ()

(* Packed solve: build the root table with pooled scratch (or through
   the memo), then scan it WITHOUT materializing a candidate list —
   cost and power are evaluated into one scratch tally per cell, and
   only the winning cell is decoded into a [result]. The scan order
   and the non-strict replace reproduce the wide path's tie-breaking
   exactly: the (power, cost) optimum is identical; the representative
   placement may differ (table iteration orders differ). *)
let psolve lay tree ~modes ~power ~cost ~bound ~prune ~domains mopt =
  let pmemo =
    match mopt with
    | None -> None
    | Some mm ->
        memo_prepare mm ~modes ~prune ~layout:(Some lay);
        Some (mm, Tree.subtree_fingerprints tree)
  in
  let pc = make_pctx ?pmemo lay in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.solve";
  let root = Tree.root tree in
  if tracing then Span.begin_span "dp_power.tables";
  let table =
    Stats_counters.time t_tables (fun () ->
        match pc.pmemo with
        | None -> ptable pc tree ~modes ~prune ~domains ~depth:0 root
        | Some _ -> mtable pc tree ~modes ~prune root)
  in
  if tracing then
    Span.end_span ~args:[ ("root_cells", Span.Int (Int_table.length table)) ] ();
  let m = Modes.count modes in
  let root_pre = Tree.is_pre_existing tree root in
  let root_i0 = if root_pre then initial_mode_default tree root else 0 in
  let available = available_of tree ~m in
  let scratch = Cost.empty_tally ~modes:m in
  let n_cand = ref 0 in
  let found = ref false
  and best_p = ref infinity
  and best_c = ref infinity
  and best_key = ref 0
  and best_placed = ref Arena.empty
  and best_root = ref false in
  let consider key placed root_used =
    incr n_cand;
    ptally_into lay ~available scratch key;
    let cost_v = Cost.modal_cost cost scratch in
    if cost_v <= bound then begin
      let power_v = ppower_of lay ~modes ~power key in
      if
        (not !found)
        || power_v < !best_p
        || (power_v = !best_p && cost_v <= !best_c)
      then begin
        found := true;
        best_p := power_v;
        best_c := cost_v;
        best_key := key;
        best_placed := placed;
        best_root := root_used
      end
    end
  in
  if tracing then Span.begin_span "dp_power.enumerate";
  Stats_counters.time t_enumerate (fun () ->
      proot_scan lay ~modes table ~root_pre ~root_i0 consider);
  if tracing then
    Span.end_span ~args:[ ("candidates", Span.Int !n_cand) ] ();
  let result =
    if not !found then None
    else begin
      let tally = Cost.empty_tally ~modes:m in
      ptally_into lay ~available tally !best_key;
      let nodes = Arena.nodes pc.arena !best_placed in
      let nodes = if !best_root then root :: nodes else nodes in
      Some
        {
          solution = Solution.of_nodes nodes;
          power = !best_p;
          cost = !best_c;
          tally;
        }
    end
  in
  (match mopt with Some mm -> memo_finish mm | None -> ());
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("prune", Span.Bool prune);
          ("domains", Span.Int domains);
          ("memo", Span.Bool (mopt <> None));
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let wide_solve tree ~modes ~power ~cost ~bound ~prune ~domains mopt =
  let ctx =
    match mopt with
    | None -> None
    | Some mm ->
        memo_prepare mm ~modes ~prune ~layout:None;
        Some (mm, Tree.subtree_fingerprints tree)
  in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.solve";
  let best = ref None in
  List.iter
    (fun r ->
      if r.cost <= bound then
        match !best with
        | Some b when (b.power, b.cost) <= (r.power, r.cost) -> ()
        | Some _ | None -> best := Some r)
    (candidates ~ctx tree ~modes ~power ~cost ~prune ~domains);
  (match mopt with Some mm -> memo_finish mm | None -> ());
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("prune", Span.Bool prune);
          ("domains", Span.Int domains);
          ("memo", Span.Bool (mopt <> None));
          ("solved", Span.Bool (!best <> None));
        ]
      ();
  !best

let solve tree ~modes ~power ~cost ?(bound = infinity) ?prune ?packed
    ?(domains = 1) ?memo:m () =
  if Cost.mode_count cost <> Modes.count modes then
    invalid_arg "Dp_power: cost model mode count mismatch";
  (* Pruning is exact for the pure MinPower problem regardless of the
     cost model, and for bounded problems under mode-monotone costs —
     see the proof above [prune_dominated]. *)
  let prune =
    match prune with
    | Some p -> p
    | None -> bound = infinity || Cost.is_mode_monotone cost
  in
  let layout =
    match packed with
    | Some false -> None
    | Some true -> (
        match layout_for tree ~modes with
        | Some _ as l -> l
        | None ->
            invalid_arg "Dp_power: instance exceeds the 62-bit packed key budget"
        )
    | None -> layout_for tree ~modes
  in
  match layout with
  | Some lay -> psolve lay tree ~modes ~power ~cost ~bound ~prune ~domains m
  | None -> wide_solve tree ~modes ~power ~cost ~bound ~prune ~domains m

let frontier ?prune ?(domains = 1) tree ~modes ~power ~cost =
  (* The frontier sweeps every cost bound at once, so pruning is only
     exact under mode-monotone costs. *)
  let prune =
    match prune with Some p -> p | None -> Cost.is_mode_monotone cost
  in
  let all =
    match layout_for tree ~modes with
    | Some lay -> pcandidates lay tree ~modes ~power ~cost ~prune ~domains
    | None -> candidates tree ~modes ~power ~cost ~prune ~domains
  in
  let all =
    List.sort (fun a b -> compare (a.cost, a.power) (b.cost, b.power)) all
  in
  (* Keep points that strictly improve power as cost increases. *)
  let rec filter best_power = function
    | [] -> []
    | r :: rest ->
        if r.power < best_power then r :: filter r.power rest
        else filter best_power rest
  in
  filter infinity all

let root_state_count ?(prune = false) ?(domains = 1) tree ~modes =
  match layout_for tree ~modes with
  | Some lay ->
      let pc = make_pctx lay in
      Int_table.length
        (ptable pc tree ~modes ~prune ~domains ~depth:0 (Tree.root tree))
  | None ->
      Tbl.length (table_of None tree ~modes ~prune ~domains (Tree.root tree))

(* Allocation probe: minor words allocated by rebuilding the whole
   packed table pyramid with warm scratch buffers — the quantity the
   bench gate pins to exactly zero. The first build grows every pool
   and the arena to steady-state capacity; the metered rebuild then
   runs entirely in preallocated storage. The no-op measurement
   cancels the constant metering overhead (float boxing in bytecode). *)
let merge_minor_words tree ~modes ~prune =
  match layout_for tree ~modes with
  | None ->
      invalid_arg "Dp_power.merge_minor_words: instance exceeds the packed key budget"
  | Some lay ->
      let root = Tree.root tree in
      let pc = make_pctx lay in
      ignore (ptable pc tree ~modes ~prune ~domains:1 ~depth:0 root);
      let rebuild () =
        Arena.clear pc.arena;
        ignore (ptable pc tree ~modes ~prune ~domains:1 ~depth:0 root)
      in
      let meter f =
        let a0 = Gc.minor_words () in
        f ();
        Gc.minor_words () -. a0
      in
      let baseline = meter (fun () -> ()) in
      (* one extra warm rebuild so every scratch pool has seen the
         final swap pattern before the metered run *)
      rebuild ();
      meter rebuild -. baseline
