let src =
  Logs.Src.create "replica.dp_power" ~doc:"MinPower-BoundedCost dynamic program"

module Log = (val Logs.src_log src : Logs.LOG)

module Key = struct
  type t = int array

  let equal (a : int array) b = a = b

  let hash a =
    Array.fold_left (fun h x -> (h * 31) + x + 1) 17 a land max_int
end

module Tbl = Hashtbl.Make (Key)

type result = {
  solution : Solution.t;
  power : float;
  cost : float;
  tally : Cost.tally;
}

(* Observability: every table cell allocated, every cartesian product
   attempted, every pair rejected by the capacity check and every cell
   dropped by dominance pruning is accounted here, plus a high-water
   mark for table size and per-phase wall time. Counters accumulate
   until [Stats_counters.reset]; totals are identical at any [domains]
   value (atomic adds commute, and the set of tables built does not
   depend on the fan-out). *)
let c_cells = Stats_counters.counter "dp_power.cells_created"
let c_products = Stats_counters.counter "dp_power.merge_products"
let c_capacity = Stats_counters.counter "dp_power.capacity_rejected"
let c_pruned = Stats_counters.counter "dp_power.dominance_pruned"
let c_peak = Stats_counters.counter "dp_power.peak_table_size"
let t_tables = Stats_counters.timer "dp_power.tables"
let t_enumerate = Stats_counters.timer "dp_power.enumerate"
let c_memo_hits = Stats_counters.counter "dp_power.memo_hits"
let c_memo_partial = Stats_counters.counter "dp_power.memo_partial"
let c_memo_misses = Stats_counters.counter "dp_power.memo_misses"

(* Structured observability (replicaml.obs): per-node spans nest the
   child-merge and prune phases under each node's solve, and the
   per-node merge-product count feeds a log2 histogram — so one trace
   shows *where inside a solve* the cartesian blowup happens, not just
   the aggregate totals above. Span sites are guarded by
   [Span.enabled] (a single atomic load) so the disabled path
   allocates nothing; the histogram, like the counters, is always
   on. *)
module Span = Replica_obs.Span

let h_products =
  Replica_obs.Histogram.create "dp_power.merge_products_per_node"

(* Cell key layout: [| n_1; ...; n_M; e_11; ...; e_MM; flow |] — the
   exact per-mode server counts AND the number of requests traversing
   the node. Keeping the flow in the key (rather than minimizing it per
   state, as a literal reading of the paper's §4.3 suggests) is
   necessary under load-determined modes: raising a subtree's residual
   flow can keep an upstream reused server in its original (higher)
   mode and thereby avoid a positive changed_{i,i'} cost, so two
   placements with the same counts but different flows are NOT
   interchangeable once mode-change costs are involved. Two placements
   agreeing on counts AND flow are fully interchangeable (same cost,
   same power, same influence upstream), so one representative
   placement per key suffices. *)

let state_size m = m + (m * m)

let flow_of key = key.(Array.length key - 1)

let bump key ~m ~initial ~operating =
  let s = Array.copy key in
  let idx =
    match initial with
    | None -> operating - 1
    | Some i0 -> m + ((i0 - 1) * m) + (operating - 1)
  in
  s.(idx) <- s.(idx) + 1;
  s

let set tbl key placed ~created =
  if not (Tbl.mem tbl key) then begin
    Tbl.replace tbl key placed;
    incr created
  end

let initial_mode_default tree j =
  match Tree.initial_mode tree j with Some m -> m | None -> 1

(* Dominance pruning: among cells with identical count entries
   (n_1..n_M, e_11..e_MM), keep only the one with minimal flow.

   Why this is safe — the mirror argument. Let k1 = (counts, f1) and
   k2 = (counts, f2) with f1 < f2 be cells of the same table at node j,
   and let S2 be ANY completion of k2 (decisions at every node merged
   later, each server's operating mode forced by its absorbed load).
   Mirror S2 onto k1: keep every decision identical. Every capacity
   check still passes (each flow sum only shrinks, by f2 - f1, on j's
   root path). The two runs differ at exactly one server — the first
   one above j that absorbs j's residual flow (or the root decision,
   which absorbs any nonzero flow): it carries load L - (f2 - f1)
   instead of L, hence operates at mode op1 <= op2. Since
   [Power.of_mode] is strictly increasing in the mode:

   - if op1 = op2, the final root keys coincide, and (power, cost) are
     functions of the key alone — the mirror is exactly as good;
   - if op1 < op2, the mirror has strictly lower power.

   Consequently, for the pure MinPower problem (bound = infinity, any
   cost model): the optimum power P* and the minimal cost c_min among
   optimum-power placements are both preserved — a completion of k2
   achieving power P* at cost c_min cannot have op1 < op2, since its
   mirror would then beat the optimum; so its mirror realizes the same
   final key and thus the same power and cost.

   Under a finite cost bound or for the Pareto frontier, the op1 < op2
   case must also not *increase* cost, which requires the cost model to
   be mode-monotone ([Cost.is_mode_monotone]): create_i and every
   changed_{i0,·} row non-decreasing in the operating mode. Then the
   mirror's (power, cost) is pointwise <= S2's, so no frontier point
   and no bound-feasible optimum is lost. The paper's §5.2 models are
   NOT mode-monotone (off-diagonal changed > 0 versus the zero
   diagonal), which is exactly the unsoundness of §4.3's literal
   flow-minimal table documented in DESIGN.md — hence pruning defaults
   to on only where the argument above applies, and stays overridable
   for differential testing. *)
let prune_dominated ~m tbl =
  let sm = state_size m in
  if Tbl.length tbl <= 1 then tbl
  else begin
    let tracing = Span.enabled () in
    if tracing then Span.begin_span "dp_power.prune";
    let best = Tbl.create (Tbl.length tbl) in
    Tbl.iter
      (fun key _ ->
        let counts = Array.sub key 0 sm in
        match Tbl.find_opt best counts with
        | Some k0 when flow_of k0 <= flow_of key -> ()
        | Some _ | None -> Tbl.replace best counts key)
      tbl;
    let dropped = Tbl.length tbl - Tbl.length best in
    let result =
      if dropped = 0 then tbl
      else begin
        Stats_counters.add c_pruned dropped;
        let out = Tbl.create (Tbl.length best) in
        Tbl.iter (fun _ key -> Tbl.replace out key (Tbl.find tbl key)) best;
        out
      end
    in
    if tracing then
      Span.end_span
        ~args:
          [ ("cells_in", Span.Int (Tbl.length tbl)); ("pruned", Span.Int dropped) ]
        ();
    result
  end

(* Incremental re-solving (same device as Dp_withpre): a memo caches
   every extended child table keyed by the child's subtree fingerprint,
   and every prefix of every node's child-merge fold keyed by a
   fingerprint chain. An epoch re-solve then recomputes only the tables
   under demand that actually moved; results are bit-identical to a
   memo-less solve. Tables are never mutated after construction, so
   sharing them across solves is safe. The memo forces the sequential
   merge path (no [Par] fan-out — the cache is not domain-safe). *)
type memo = {
  mutable gen : int;
  mutable memo_key : (int list * bool) option;
      (* tables depend on the mode ladder and the prune flag *)
  prefixes : (int * int64, entry) Hashtbl.t;
  ext_cache : (int * int64, entry) Hashtbl.t;
}

and entry = { mutable stamp : int; table : (int * int) Clist.t Tbl.t }

let memo () =
  {
    gen = 0;
    memo_key = None;
    prefixes = Hashtbl.create 512;
    ext_cache = Hashtbl.create 512;
  }

let memo_size m = Hashtbl.length m.prefixes + Hashtbl.length m.ext_cache

let fp_seed client =
  Tree.combine_fingerprints 0x9E6C63D0876A9A35L (Int64.of_int client)

(* Table of node j over servers strictly below j: key -> placement.
   [domains > 1] fans sibling subtrees out over OCaml 5 domains at the
   first node with several children; each child's table is a pure
   function of its subtree and is built sequentially inside its domain,
   and the reduction over child tables below keeps the sequential
   child order — so the result is bit-identical to [domains = 1]. *)
let rec table_of ctx tree ~modes ~prune ~domains j =
  if not (Span.enabled ()) then node_table ctx tree ~modes ~prune ~domains j
  else begin
    Span.begin_span "dp_power.node";
    let tbl =
      try node_table ctx tree ~modes ~prune ~domains j
      with e ->
        Span.end_span ();
        raise e
    in
    Span.end_span
      ~args:
        [
          ("node", Span.Int j);
          ("subtree_size", Span.Int (Tree.subtree_size tree j));
          ("cells", Span.Int (Tbl.length tbl));
        ]
      ();
    tbl
  end

and node_table ctx tree ~modes ~prune ~domains j =
  let m = Modes.count modes in
  let w = Modes.max_capacity modes in
  let start = Tbl.create 16 in
  let client = Tree.client_load tree j in
  if client <= w then begin
    let key = Array.make (state_size m + 1) 0 in
    key.(state_size m) <- client;
    Tbl.replace start key Clist.empty;
    Stats_counters.incr c_cells
  end;
  let children = Tree.children tree j in
  match ctx with
  | None ->
      let extended_tables =
        match children with
        | [] -> []
        | [ c ] -> [ extended_of ctx tree ~modes ~prune ~domains c ]
        | _ :: _ :: _ when domains > 1 ->
            Par.map ~domains
              (fun c -> extended_of None tree ~modes ~prune ~domains:1 c)
              children
        | _ ->
            List.map
              (fun c -> extended_of ctx tree ~modes ~prune ~domains:1 c)
              children
      in
      List.fold_left (merge ~modes ~prune) start extended_tables
  | Some ((mm, fps) as c) -> (
      match children with
      | [] -> start
      | _ ->
          let arr = Array.of_list children in
          let k = Array.length arr in
          let keys = Array.make (k + 1) (fp_seed client) in
          for i = 1 to k do
            keys.(i) <- Tree.combine_fingerprints keys.(i - 1) fps.(arr.(i - 1))
          done;
          let best = ref 0 and acc = ref start in
          (try
             for i = k downto 1 do
               match Hashtbl.find_opt mm.prefixes (j, keys.(i)) with
               | Some e ->
                   e.stamp <- mm.gen;
                   best := i;
                   acc := e.table;
                   raise Exit
               | None -> ()
             done
           with Exit -> ());
          if !best > 0 && !best < k then Stats_counters.incr c_memo_partial;
          if Span.enabled () then
            Span.add_arg "memo"
              (Span.Str
                 (if !best = k then "hit"
                  else if !best > 0 then "partial"
                  else "miss"));
          for i = !best + 1 to k do
            acc :=
              merge ~modes ~prune !acc
                (extended_cached c tree ~modes ~prune arr.(i - 1));
            Hashtbl.replace mm.prefixes (j, keys.(i))
              { stamp = mm.gen; table = !acc }
          done;
          !acc)

(* Extended child tables, looked up by the child's subtree fingerprint:
   a clean child costs one hash probe instead of a subtree of work. *)
and extended_cached ((mm, fps) as ctx) tree ~modes ~prune c =
  match Hashtbl.find_opt mm.ext_cache (c, fps.(c)) with
  | Some e ->
      e.stamp <- mm.gen;
      Stats_counters.incr c_memo_hits;
      if Span.enabled () then begin
        (* A hit costs one probe instead of a subtree of work; the
           zero-length span keeps the skipped subtree visible in the
           trace. *)
        Span.begin_span "dp_power.memo_hit";
        Span.end_span ~args:[ ("node", Span.Int c) ] ()
      end;
      (c, e.table)
  | None ->
      Stats_counters.incr c_memo_misses;
      let _, tbl =
        extended_of (Some ctx) tree ~modes ~prune ~domains:1 c
      in
      Hashtbl.replace mm.ext_cache (c, fps.(c)) { stamp = mm.gen; table = tbl };
      (c, tbl)

(* The child's table extended with the decision at c itself: its
   operating mode is forced by the flow it absorbs. *)
and extended_of ctx tree ~modes ~prune ~domains c =
  let m = Modes.count modes in
  let sm = state_size m in
  let sub = table_of ctx tree ~modes ~prune ~domains c in
  let extended = Tbl.create (2 * Tbl.length sub) in
  let c_initial =
    if Tree.is_pre_existing tree c then Some (initial_mode_default tree c)
    else None
  in
  let created = ref 0 in
  Tbl.iter
    (fun key placed ->
      set extended key placed ~created;
      let flow = flow_of key in
      let operating = Modes.mode_of_load modes flow in
      let key' = bump key ~m ~initial:c_initial ~operating in
      key'.(sm) <- 0;
      set extended key' (Clist.snoc placed (c, flow)) ~created)
    sub;
  Stats_counters.add c_cells !created;
  let extended = if prune then prune_dominated ~m extended else extended in
  (c, extended)

and merge ~modes ~prune left (c, extended) =
  let m = Modes.count modes in
  let sm = state_size m in
  let w = Modes.max_capacity modes in
  Log.debug (fun f ->
      f "merge child %d: %d x %d cells" c (Tbl.length left)
        (Tbl.length extended));
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.merge";
  let merged = Tbl.create (Tbl.length left * 2) in
  let products = ref 0 and rejected = ref 0 and created = ref 0 in
  Tbl.iter
    (fun k1 p1 ->
      Tbl.iter
        (fun k2 p2 ->
          incr products;
          let flow = k1.(sm) + k2.(sm) in
          if flow <= w then begin
            let key = Array.init (sm + 1) (fun i -> k1.(i) + k2.(i)) in
            key.(sm) <- flow;
            set merged key (Clist.append p1 p2) ~created
          end
          else incr rejected)
        extended)
    left;
  Stats_counters.add c_products !products;
  Stats_counters.add c_capacity !rejected;
  Stats_counters.add c_cells !created;
  Stats_counters.record_max c_peak (Tbl.length merged);
  Replica_obs.Histogram.observe h_products !products;
  let result = if prune then prune_dominated ~m merged else merged in
  if tracing then
    Span.end_span
      ~args:
        [
          ("child", Span.Int c);
          ("left_cells", Span.Int (Tbl.length left));
          ("child_cells", Span.Int (Tbl.length extended));
          ("products", Span.Int !products);
          ("merged_cells", Span.Int (Tbl.length result));
        ]
      ();
  result

let tally_of_state ~modes tree key =
  let m = Modes.count modes in
  let t = Cost.empty_tally ~modes:m in
  for i = 0 to m - 1 do
    t.Cost.created.(i) <- key.(i)
  done;
  let available = Array.make m 0 in
  List.iter
    (fun j ->
      let i0 = initial_mode_default tree j in
      available.(i0 - 1) <- available.(i0 - 1) + 1)
    (Tree.pre_existing tree);
  for i = 0 to m - 1 do
    let reused_from_i = ref 0 in
    for i' = 0 to m - 1 do
      t.Cost.reused.(i).(i') <- key.(m + (i * m) + i');
      reused_from_i := !reused_from_i + t.Cost.reused.(i).(i')
    done;
    t.Cost.deleted.(i) <- available.(i) - !reused_from_i
  done;
  t

let power_of_state ~modes ~power key =
  let m = Modes.count modes in
  let total = ref 0. in
  for op = 1 to m do
    let count = ref key.(op - 1) in
    for i0 = 1 to m do
      count := !count + key.(m + ((i0 - 1) * m) + (op - 1))
    done;
    if !count > 0 then
      total := !total +. (float_of_int !count *. Power.of_mode power modes op)
  done;
  !total

(* Enumerate every complete solution at the root: for each root-table
   cell, either the residual flow is zero (no root server needed — with
   an optional zero-load reuse when the root is pre-existing), or the
   root must host a server whose mode follows from the flow. *)
let candidates ?(ctx = None) tree ~modes ~power ~cost ~prune ~domains =
  if Cost.mode_count cost <> Modes.count modes then
    invalid_arg "Dp_power: cost model mode count mismatch";
  let m = Modes.count modes in
  let root = Tree.root tree in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.tables";
  let table =
    Stats_counters.time t_tables (fun () ->
        table_of ctx tree ~modes ~prune ~domains root)
  in
  if tracing then
    Span.end_span ~args:[ ("root_cells", Span.Int (Tbl.length table)) ] ();
  let root_initial =
    if Tree.is_pre_existing tree root then
      Some (initial_mode_default tree root)
    else None
  in
  let out = ref [] in
  let emit key placed root_used =
    let tally = tally_of_state ~modes tree key in
    let cost_v = Cost.modal_cost cost tally in
    let power_v = power_of_state ~modes ~power key in
    let nodes = List.map fst (Clist.to_list placed) in
    let nodes = if root_used then root :: nodes else nodes in
    out :=
      {
        solution = Solution.of_nodes nodes;
        power = power_v;
        cost = cost_v;
        tally;
      }
      :: !out
  in
  if tracing then Span.begin_span "dp_power.enumerate";
  Stats_counters.time t_enumerate (fun () ->
      Tbl.iter
        (fun key placed ->
          let flow = flow_of key in
          if flow = 0 then begin
            emit key placed false;
            (* Zero-load reuse of a pre-existing root (can be cheaper than
               deleting it, at the price of its mode-1 power). *)
            match root_initial with
            | Some _ ->
                emit (bump key ~m ~initial:root_initial ~operating:1) placed true
            | None -> ()
          end
          else
            let operating = Modes.mode_of_load modes flow in
            emit (bump key ~m ~initial:root_initial ~operating) placed true)
        table);
  if tracing then
    Span.end_span ~args:[ ("candidates", Span.Int (List.length !out)) ] ();
  !out

let solve tree ~modes ~power ~cost ?(bound = infinity) ?prune ?(domains = 1)
    ?memo:m () =
  (* Pruning is exact for the pure MinPower problem regardless of the
     cost model, and for bounded problems under mode-monotone costs —
     see the proof above [prune_dominated]. *)
  let prune =
    match prune with
    | Some p -> p
    | None -> bound = infinity || Cost.is_mode_monotone cost
  in
  let ctx =
    match m with
    | None -> None
    | Some mm ->
        let key = (Modes.capacities modes, prune) in
        if mm.memo_key <> Some key then begin
          Hashtbl.reset mm.prefixes;
          Hashtbl.reset mm.ext_cache;
          mm.memo_key <- Some key
        end;
        mm.gen <- mm.gen + 1;
        Some (mm, Tree.subtree_fingerprints tree)
  in
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_power.solve";
  let best = ref None in
  List.iter
    (fun r ->
      if r.cost <= bound then
        match !best with
        | Some b when (b.power, b.cost) <= (r.power, r.cost) -> ()
        | Some _ | None -> best := Some r)
    (candidates ~ctx tree ~modes ~power ~cost ~prune ~domains);
  (match m with
  | Some mm ->
      let evict tbl =
        Hashtbl.filter_map_inplace
          (fun _ e -> if mm.gen - e.stamp > 1 then None else Some e)
          tbl
      in
      evict mm.prefixes;
      evict mm.ext_cache
  | None -> ());
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("prune", Span.Bool prune);
          ("domains", Span.Int domains);
          ("memo", Span.Bool (m <> None));
          ("solved", Span.Bool (!best <> None));
        ]
      ();
  !best

let frontier ?prune ?(domains = 1) tree ~modes ~power ~cost =
  (* The frontier sweeps every cost bound at once, so pruning is only
     exact under mode-monotone costs. *)
  let prune =
    match prune with Some p -> p | None -> Cost.is_mode_monotone cost
  in
  let all =
    List.sort
      (fun a b -> compare (a.cost, a.power) (b.cost, b.power))
      (candidates tree ~modes ~power ~cost ~prune ~domains)
  in
  (* Keep points that strictly improve power as cost increases. *)
  let rec filter best_power = function
    | [] -> []
    | r :: rest ->
        if r.power < best_power then r :: filter r.power rest
        else filter best_power rest
  in
  filter infinity all

let root_state_count ?(prune = false) ?(domains = 1) tree ~modes =
  Tbl.length (table_of None tree ~modes ~prune ~domains (Tree.root tree))
