(** Dynamic program for [MinCost-WithPre] (§3, Theorem 1).

    The paper's main update-strategy algorithm: for every node [j], a
    table indexed by the exact number [e] of reused pre-existing servers
    and [n] of newly created servers in the subtree below [j] (excluding
    [j]) stores the minimal number of requests that must traverse [j]
    together with a placement realizing it. Lemma 1 shows an optimal
    global solution can be assembled from these flow-minimal local ones.
    Children are merged one by one (Algorithm 3); the root table is then
    scanned with the cost function Eq. 2 to pick the cheapest feasible
    pair (Algorithm 4).

    Two deliberate deviations from the paper's pseudo-code, both
    documented in DESIGN.md:
    - placements are carried as O(1)-append catenable lists instead of
      per-cell O(N) request vectors, realizing the §3.3 "copy outside the
      loop" optimization functionally and bounding every node's pair of
      dimensions by its own subtree content, which is what makes the
      worst-case O(N^5) bound loose in practice;
    - when the root flow is zero and the root is itself a pre-existing
      server, we additionally consider {e reusing it at zero load}, which
      beats deleting it whenever [delete > 1]; Algorithm 4 omits that
      branch.

    {2 Incremental re-solving}

    The online reconfiguration engine ({!Replica_engine.Engine}) calls
    this solver once per epoch on trees that differ only where demand
    moved. Passing a {!memo} makes those re-solves incremental: every
    prefix of every node's child-merge fold is cached, keyed by a chain
    of subtree fingerprints ({!Tree.subtree_fingerprints}), so a solve
    after a demand shift recomputes only the tables of the changed
    subtrees and the suffixes of the merge folds along their root
    paths — everything else is reused. Results are {e identical} to a
    memo-less solve (cached tables are exact, not approximate; the only
    caveat is the ~2^-64 fingerprint-collision probability). Cache
    effectiveness is observable through the
    [dp_withpre.memo_{hits,partial,misses}] counters; entries unused
    for two consecutive solves are evicted. A memo must only be reused
    across trees sharing one node-id space (epoch views derived by
    {!Tree.with_clients} / {!Tree.with_pre_existing}); it resets itself
    when [w] changes. *)

type result = {
  solution : Solution.t;
  cost : float;  (** Eq. 2 value of [solution] *)
  servers : int;  (** [R] *)
  reused : int;  (** [e = |R ∩ E|] *)
}

type memo
(** A reusable cache of per-node merge-fold prefixes (see above). *)

val memo : unit -> memo
(** A fresh, empty memo. *)

val memo_size : memo -> int
(** Number of cached tables currently held (observability). *)

val solve : ?memo:memo -> Tree.t -> w:int -> cost:Cost.basic -> result option
(** Optimal-cost placement, or [None] when the instance is infeasible.
    With [?memo], an incremental re-solve that reuses every table whose
    subtree is unchanged since the previous solves — bit-identical
    results either way.
    @raise Invalid_argument if [w <= 0]. *)

val root_table : Tree.t -> w:int -> int option array array
(** Diagnostic view: the root's [minr] table, entry [(e, n)] being the
    minimal number of requests traversing the root with exactly [e]
    reused and [n] new servers strictly below it. *)
