(** Lightweight counter/timer registry for solver observability.

    The dynamic programs are the cost center of every experiment, yet
    until now they ran blind: no visibility into how many table cells a
    merge allocates, how many cartesian products it attempts, or where
    the wall time goes. This module is the measurement substrate: a
    process-global registry of named monotonic counters and wall-clock
    timers that the solvers ({!Dp_power}, {!Dp_withpre}, {!Brute}) bump
    on their hot paths and that {!Report}, the CLI's [--stats] flag and
    the benchmark harness read back out.

    Design constraints, in order:
    - {b hot-path cheap}: bumping a counter is one [Atomic] add on a
      pre-registered cell — no allocation, no hashing, no formatting.
      Solvers register their counters once at module initialization and
      batch inner-loop increments into a single [add] per merge.
    - {b domain-safe}: counters are [Atomic.t int], so concurrent bumps
      from {!Par} workers never tear. Totals are deterministic for a
      fixed workload because integer addition commutes and
      {!record_max} only depends on the {e set} of observed values, not
      their order — parallel and sequential runs report identical
      numbers.
    - {b deterministic output}: {!counters}, {!timers}, {!report} and
      {!to_json} list entries sorted by name.

    The registry accumulates across solves until {!reset}; harnesses
    that attribute numbers to a single run must call {!reset} first —
    or bracket the run with {!snapshot} and attribute {!diff}s, as the
    engine does per epoch. Timers measure elapsed (not CPU) seconds on
    {!Replica_obs.Clock}'s monotonic clock, so parallel phases report
    wall time and accumulated {!seconds} can never go negative; they
    remain {e not} reproducible between runs — deterministic surfaces
    (cram tests) print counters only. *)

type counter
(** A named monotonic integer cell. *)

val counter : string -> counter
(** [counter name] registers (or retrieves — names are interned) the
    counter [name]. Dotted names ([solver.metric]) are the convention.
    Intended to be called from top-level module initializers; interning
    is mutex-protected, increments are lock-free. *)

val incr : counter -> unit

val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** [record_max c v] raises [c] to [v] if [v] is larger — a high-water
    mark (e.g. peak table size). *)

val value : counter -> int

type timer
(** A named accumulating wall-clock timer. *)

val timer : string -> timer
(** Same interning contract as {!counter}. *)

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f ()] and adds its wall-clock duration to [t].
    Re-raises whatever [f] raises, still accounting the elapsed time. *)

val seconds : timer -> float
(** Accumulated seconds (nanosecond resolution). *)

val reset : unit -> unit
(** Zero every registered counter and timer (registration survives). *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val timers : unit -> (string * float) list
(** All timers as accumulated seconds, sorted by name. *)

type snapshot = (string * int) list
(** A point-in-time copy of every counter, sorted by name. *)

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> (string * int) list
(** [diff before after] is the per-counter movement between two
    snapshots: [(name, after - before)] for every counter whose value
    changed (counters absent from [before] — registered in between —
    count from 0). Sorted by name, zero deltas omitted. This is how
    the engine attributes registry movement to a single epoch. *)

val counters_report : unit -> string
(** Aligned [name value] lines for counters only — deterministic for a
    fixed workload, safe to pin in cram tests. Never-touched (zero)
    counters are omitted: their existence depends on which solver
    modules the binary links, not on the workload. {!to_json} keeps
    them. *)

val report : unit -> string
(** {!counters_report} plus wall-clock timer lines (nondeterministic). *)

val to_json : unit -> string
(** The whole registry as one JSON object:
    [{"counters": {...}, "timers_seconds": {...}}]. Keys sorted. *)
