(* Constraint-aware adaptation of the bottom-up greedy: one postorder
   pass tracking, per node, the upward flow and the remaining QoS slack
   of its still-unserved clients. A child's flow is forced down into a
   server at the child whenever passing it up would break a constraint —
   slack exhausted or link bandwidth exceeded — and the capacity rule of
   the plain greedy (absorb the largest child flows while the arriving
   total exceeds w) handles the rest.

   Feasibility-complete: every table flow satisfies flow <= w (clients
   of one node can always be absorbed at their attachment node unless
   their combined load alone exceeds w, which no placement can serve
   under the closest policy), so a forced placement always succeeds and
   the greedy fails exactly on the truly infeasible instances. It is NOT
   count-optimal — an early forced server can beat two late ones — hence
   the [Heuristic] capability; {!Dp_qos} carries exactness. *)

module Span = Replica_obs.Span

let solve tree ~w =
  if w <= 0 then invalid_arg "Greedy_qos.solve: w must be positive";
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "greedy_qos.solve";
  let n = Tree.size tree in
  let flow = Array.make n 0 in
  let slack = Array.make n Tree.unbounded in
  let replicas = ref [] in
  let feasible = ref true in
  let place j =
    replicas := j :: !replicas;
    flow.(j) <- 0;
    slack.(j) <- Tree.unbounded
  in
  let dec s = if s = Tree.unbounded then s else s - 1 in
  let process j =
    let kids = Tree.children tree j in
    (* Children whose flow cannot legally cross the link into j get a
       server at the child (flow <= w makes this always feasible). *)
    List.iter
      (fun c ->
        if flow.(c) > 0 && (slack.(c) < 1 || flow.(c) > Tree.bandwidth tree c)
        then place c)
      kids;
    let client = Tree.client_load tree j in
    if client > w then feasible := false
    else begin
      let arriving =
        List.fold_left (fun acc c -> acc + flow.(c)) client kids
      in
      flow.(j) <- arriving;
      if arriving > w then begin
        let sorted = List.sort (fun a b -> compare flow.(b) flow.(a)) kids in
        let rec absorb = function
          | [] -> ()
          | c :: rest ->
              if flow.(j) > w && flow.(c) > 0 then begin
                flow.(j) <- flow.(j) - flow.(c);
                place c;
                absorb rest
              end
        in
        absorb sorted
        (* flow.(j) <= w now: at worst every child was absorbed and only
           [client <= w] remains. *)
      end;
      slack.(j) <-
        List.fold_left
          (fun acc c -> if flow.(c) > 0 then min acc (dec slack.(c)) else acc)
          (if client > 0 then Tree.qos_radius tree j else Tree.unbounded)
          kids
    end
  in
  Array.iter process (Tree.postorder tree);
  let root = Tree.root tree in
  if flow.(root) > 0 then place root;
  let result =
    if !feasible then begin
      let sol = Solution.of_nodes !replicas in
      (* The pass above is argued feasibility-complete; a final oracle
         check keeps any future drift from returning an invalid
         placement. *)
      if Solution.is_valid tree ~w sol then Some sol else None
    end
    else None
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int n);
          ("w", Span.Int w);
          ("servers", Span.Int (List.length !replicas));
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let solve_count tree ~w = Option.map Solution.cardinal (solve tree ~w)
