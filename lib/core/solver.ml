type exactness = Exact | Heuristic
type access = Closest | Multiple_access | Upwards_access

type capability = {
  handles_cost : bool;
  handles_power : bool;
  handles_pre : bool;
  handles_bound : bool;
  handles_qos : bool;
  handles_bw : bool;
  handles_coupling : bool;
  exactness : exactness;
  access : access;
  supports_domains : bool;
  supports_prune : bool;
  supports_incremental : bool;
  max_nodes : int option;
}

let capability ?(handles_cost = false) ?(handles_power = false)
    ?(handles_pre = false) ?(handles_bound = false) ?(handles_qos = false)
    ?(handles_bw = false) ?(handles_coupling = false)
    ?(exactness = Heuristic) ?(access = Closest)
    ?(supports_domains = false) ?(supports_prune = false)
    ?(supports_incremental = false) ?max_nodes () =
  if not (handles_cost || handles_power) then
    invalid_arg "Solver.capability: must handle at least one objective";
  {
    handles_cost;
    handles_power;
    handles_pre;
    handles_bound;
    handles_qos;
    handles_bw;
    handles_coupling;
    exactness;
    access;
    supports_domains;
    supports_prune;
    supports_incremental;
    max_nodes;
  }

type memo = ..

type request = {
  domains : int option;
  prune : bool option;
  memo : memo option;
  rng : Rng.t option;
  rounds : int option;
}

let request ?domains ?prune ?memo ?rng ?rounds () =
  { domains; prune; memo; rng; rounds }

let default_request = request ()

type outcome = {
  solution : Solution.t;
  objective_value : float;
  cost : float option;
  power : float option;
  servers : int;
  reused : int option;
  counters : (string * int) list;
  note : string option;
}

let outcome ?cost ?power ?reused ?note ~objective_value solution =
  {
    solution;
    objective_value;
    cost;
    power;
    servers = Solution.cardinal solution;
    reused;
    counters = [];
    note;
  }

type t = {
  name : string;
  summary : string;
  capability : capability;
  solve : Problem.t -> request -> outcome option;
  make_memo : (unit -> memo) option;
  memo_size : (memo -> int) option;
}

(* --- registration --- *)

let table : (string, t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let register s =
  if String.length s.name = 0 then invalid_arg "Solver.register: empty name";
  if Hashtbl.mem table s.name then
    invalid_arg (Printf.sprintf "Solver.register: duplicate name %S" s.name);
  Hashtbl.replace table s.name s;
  order := s.name :: !order

let find name = Hashtbl.find_opt table name
let names () = List.rev !order
let all () = List.rev_map (fun n -> Hashtbl.find table n) !order

(* --- capability checking --- *)

let mismatch s (p : Problem.t) =
  let c = s.capability in
  let fail fmt = Printf.ksprintf Option.some fmt in
  (* Shared guards: size cap and constraint capability. A solver that
     cannot enforce a constraint the tree carries would silently return
     invalid placements — reject instead. *)
  let tree_guards () =
    let tree = p.Problem.tree in
    if Tree.has_qos tree && not c.handles_qos then
      fail "%s cannot enforce the tree's QoS bounds" s.name
    else if Tree.has_bandwidth tree && not c.handles_bw then
      fail "%s cannot enforce the tree's link bandwidth caps" s.name
    else
      match c.max_nodes with
      | Some n when Tree.size tree > n ->
          fail "%s only accepts trees of at most %d nodes" s.name n
      | _ -> None
  in
  match p.Problem.objective with
  | Problem.Min_power { bound; _ } ->
      if not c.handles_power then
        fail "%s solves cost problems only (no power objective)" s.name
      else if bound < infinity && not c.handles_bound then
        fail "%s does not support a finite cost bound" s.name
      else tree_guards ()
  | Problem.Min_servers | Problem.Min_cost _ ->
      if not c.handles_cost then
        fail "%s solves power problems only (no cost objective)" s.name
      else tree_guards ()

let compatible s p =
  match mismatch s p with None -> Ok () | Some e -> Error e

let option_warnings s (r : request) =
  let c = s.capability in
  let w = ref [] in
  if r.prune <> None && not c.supports_prune then
    w := Printf.sprintf "%s has no dominance pruning; --prune ignored" s.name :: !w;
  if r.domains <> None && not c.supports_domains then
    w :=
      Printf.sprintf "%s has no parallel merge; --domains ignored" s.name :: !w;
  if r.memo <> None && not c.supports_incremental then
    w :=
      Printf.sprintf "%s cannot re-solve incrementally; memo ignored" s.name
      :: !w;
  List.rev !w

let run s p r =
  match mismatch s p with
  | Some e -> Error e
  | None ->
      let before = Stats_counters.snapshot () in
      let result = s.solve p r in
      let counters = Stats_counters.diff before (Stats_counters.snapshot ()) in
      Ok (Option.map (fun o -> { o with counters }) result)

(* --- capability matrix (shared by `solve --list-algos`, DESIGN.md and
   the doc-sync test; one renderer so the three can never drift) --- *)

let yn b = if b then "yes" else "-"

let solves_string c =
  match (c.handles_cost, c.handles_power) with
  | true, true -> "cost+power"
  | true, false -> "cost"
  | false, true -> "power"
  | false, false -> "-"

let exactness_string = function Exact -> "exact" | Heuristic -> "heuristic"

let access_string = function
  | Closest -> "closest"
  | Multiple_access -> "multiple"
  | Upwards_access -> "upwards"

let matrix_header =
  [
    "name"; "solves"; "kind"; "access"; "pre"; "bound"; "qos"; "bw";
    "coupling"; "prune"; "domains"; "memo"; "max N";
  ]

let capability_row s =
  let c = s.capability in
  [
    s.name;
    solves_string c;
    exactness_string c.exactness;
    access_string c.access;
    yn c.handles_pre;
    yn c.handles_bound;
    yn c.handles_qos;
    yn c.handles_bw;
    yn c.handles_coupling;
    yn c.supports_prune;
    yn c.supports_domains;
    yn c.supports_incremental;
    (match c.max_nodes with Some n -> string_of_int n | None -> "-");
  ]

let matrix_markdown () =
  let row cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep = row (List.map (fun _ -> "---") matrix_header) in
  String.concat "\n"
    (row matrix_header :: sep :: List.map (fun s -> row (capability_row s)) (all ()))
  ^ "\n"

let list_algos () =
  let rows = matrix_header :: List.map capability_row (all ()) in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map (fun _ -> 0) matrix_header)
      rows
  in
  let render row =
    String.concat "  " (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row)
    (* right-trim so the table has no trailing spaces (cram-friendly) *)
    |> fun line ->
    let n = ref (String.length line) in
    while !n > 0 && line.[!n - 1] = ' ' do decr n done;
    String.sub line 0 !n
  in
  String.concat "\n" (List.map render rows) ^ "\n"
