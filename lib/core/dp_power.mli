(** Dynamic program for [MinPower] and [MinPower-BoundedCost] (§4.3).

    §4.1 shows that with power modes, minimizing the requests traversing a
    node is no longer sufficient: a single-server subtree may be better
    served by a slow server letting requests through than by a fast one
    absorbing everything. The paper's fix — which this module implements —
    is to refine the per-node table: instead of the pair [(e, n)] of
    [Dp_withpre], a table entry is indexed by the full vector state

    [(n_1, …, n_M, e_{1,1}, …, e_{M,M}, flow)]

    giving the exact number of new servers operated at each mode, of
    reused pre-existing servers per (initial, operating) mode pair, and
    the number of requests traversing the node. For a fixed key the
    cost (Eq. 4) and power (Eq. 3) of the subtree contribution and its
    influence upstream are fully determined, so one representative
    placement per key suffices. A server's operating mode is forced by
    its absorbed load ([Modes.mode_of_load]), so merging a child tries
    exactly two decisions: no replica, or a replica whose mode follows
    from the child's residual flow.

    Note a deviation from a literal reading of the paper, uncovered by
    this library's differential fuzzer and documented in DESIGN.md: §4.3
    keeps, per count-vector, only the flow-minimal placement (the §3
    Lemma 1 device). Under load-determined modes that is {e unsound}
    once mode-change costs are positive — raising a subtree's residual
    flow can keep an upstream reused server in its original (higher)
    mode and avoid a [changed_{i,i'}] charge, so the flow-minimal
    representative can be the only one that busts a tight cost bound.
    Keying cells by (counts, flow) restores exactness at the price of a
    factor bounded by the number of achievable flow values ([<= W]).

    Tables are {e sparse} (hash tables keyed by the full vector): a
    subtree of [s] nodes with [p] pre-existing servers can only realize
    keys within its own [(s, p, W)] budget, which is what makes the
    algorithm practical despite the O(N^{2M^2+2M+1}) worst case. With no
    pre-existing server the counts collapse to [(n_1..n_M)]; [MinPower]
    (Theorem 2, NP-complete for arbitrary M) is the special case
    [bound = ∞].

    {2 Observability, pruning, parallelism}

    Every phase is instrumented through {!Stats_counters} under the
    [dp_power.*] namespace: [cells_created], [merge_products] (cartesian
    pairs attempted), [capacity_rejected], [dominance_pruned],
    [peak_table_size] (high-water mark, recorded before pruning), and
    the [tables] / [enumerate] wall-clock timers. Counter totals are
    deterministic for a fixed workload at any [domains] value.

    {e Dominance pruning} keeps, among coexisting cells with identical
    count entries, only the flow-minimal one. By the mirror argument
    proved in the implementation, this is exact — identical (power,
    cost) results — for the pure [MinPower] problem under {e any} cost
    model, and for bounded problems and the frontier under
    {e mode-monotone} cost models ({!Cost.is_mode_monotone}). The
    [?prune] defaults follow exactly that rule; pass [~prune:false]
    (resp. [true]) to force the unpruned (resp. pruned) merge, e.g. for
    differential testing.

    [?domains > 1] fans sibling subtrees out over OCaml 5 domains (via
    {!Par}) at the first node with several children; the reduction over
    child tables keeps the sequential order, so results — and counter
    totals — are bit-identical to the sequential run.

    {2 Incremental re-solving}

    Passing a {!memo} to {!solve} makes consecutive solves over epoch
    views of the same network incremental, exactly as in
    {!Dp_withpre}: extended child tables are cached by subtree
    fingerprint ({!Tree.subtree_fingerprints}) and every prefix of
    every node's child-merge fold is cached by a fingerprint chain, so
    a re-solve after a localized demand shift recomputes only the
    dirtied tables. Results are bit-identical to a memo-less solve
    (modulo the ~2^-64 fingerprint-collision probability). The memo
    forces the sequential merge path ([domains] is ignored); it resets
    itself when the mode ladder, the resolved prune flag or the packed
    key layout changes, and is observable through
    [dp_power.memo_{hits,partial,misses}].

    {2 Packed representation}

    When the instance's state vector fits a 62-bit budget
    ({!packed_bits}), the solver switches to a packed fast path: keys
    are bit-packed unboxed ints ({!Packed_key}), tables are flat
    open-addressing [int -> int] tables ({!Int_table}), and placements
    are handles into a flat {!Arena} — the child-merge convolution then
    runs over per-depth scratch buffers and allocates {e zero} GC words
    ({!merge_minor_words} measures exactly that; the bench gate pins it
    to 0). Both representations compute the same optimum, the same
    Pareto frontier and the same [dp_power.*] counter totals; only the
    tie-broken representative placement may differ (table iteration
    orders differ). [?packed] overrides the automatic choice — mostly
    for differential tests pitting the two paths against each other. *)

type result = {
  solution : Solution.t;
  power : float;  (** Eq. 3 value *)
  cost : float;  (** Eq. 4 value *)
  tally : Cost.tally;  (** server classification behind [cost] *)
}

type memo
(** A reusable cache of extended child tables and merge-fold prefixes
    (see above). *)

val memo : unit -> memo
(** A fresh, empty memo. *)

val memo_size : memo -> int
(** Number of cached tables currently held (observability). *)

val solve :
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  ?bound:float ->
  ?prune:bool ->
  ?packed:bool ->
  ?domains:int ->
  ?memo:memo ->
  unit ->
  result option
(** Minimal-power placement among those of cost at most [bound] (default
    [infinity], i.e. the pure [MinPower] problem). [None] when no valid
    placement meets the bound. [prune] defaults to the exactness rule
    above ([bound = infinity || Cost.is_mode_monotone cost]); [packed]
    defaults to automatic (packed iff the instance fits, see
    {!packed_bits}); [domains] defaults to [1] (sequential) and is
    ignored when [memo] is given.
    @raise Invalid_argument if the cost model's mode count differs from
    [modes], or if [~packed:true] is forced on an instance that exceeds
    the packed key budget. *)

val frontier :
  ?prune:bool ->
  ?domains:int ->
  Tree.t ->
  modes:Modes.t ->
  power:Power.t ->
  cost:Cost.modal ->
  result list
(** All Pareto-optimal (cost, power) trade-offs, sorted by increasing
    cost (and strictly decreasing power). [solve ~bound] is equivalent to
    picking the last frontier point with [cost <= bound]; computing the
    frontier once answers every bound, which is how the Experiment 3
    harness sweeps cost bounds. [prune] defaults to
    [Cost.is_mode_monotone cost] (the frontier must stay exact at every
    bound at once). *)

val root_state_count : ?prune:bool -> ?domains:int -> Tree.t -> modes:Modes.t -> int
(** Number of distinct (counts, flow) cells in the root table — a direct
    measure of the instance's combinatorial hardness, used by the
    scaling benches. [prune] defaults to [false] so the count measures
    the raw state space; pass [~prune:true] to measure what survives
    dominance pruning. *)

val packed_bits : Tree.t -> modes:Modes.t -> int option
(** Width in bits of the packed key this instance would use, [None]
    when it exceeds the 62-bit budget and the solver falls back to the
    wide representation. *)

val merge_minor_words : Tree.t -> modes:Modes.t -> prune:bool -> float
(** Minor-heap words allocated while rebuilding the full packed table
    pyramid with warm (steady-state) scratch buffers — exactly [0.]
    when the packed merge kernels are allocation-free, which the bench
    suite asserts.
    @raise Invalid_argument when the instance exceeds the packed key
    budget. *)
