(* QoS- and bandwidth-constrained MinCost DP for the closest policy,
   after Rehn-Sonigo (arXiv 0706.3350), structured like {!Dp_withpre}:
   one bottom-up table per node, indexed by (pre-existing reused, new
   servers) strictly below the node.

   Under the closest policy every client whose requests are still
   flowing at node [j] will be served by one common server somewhere on
   the path from [j] to the root. Two quantities therefore summarize a
   partial placement below [j] exactly: the [flow] leaving [j] upward,
   and the [slack] — the number of additional hops above [j] the
   eventual server may sit, i.e. the minimum over unserved clients of
   (QoS bound - hops already travelled). [Tree.unbounded] slack means no
   flowing client is QoS-constrained (in particular whenever flow = 0).

   Neither coordinate dominates the other (absorbing a child early costs
   a server but resets flow AND slack), so each (e, n) cell holds a
   Pareto frontier of (flow, slack) pairs: minimal flow, maximal slack.
   The frontier is at most min (w+1) (height+2) entries — in the
   unconstrained regime every slack is [Tree.unbounded], the frontier
   has one entry, and the program degenerates to exactly {!Dp_withpre}'s
   recurrence.

   Transitions, for a child [c] folded into its parent:
   - pass up: flow crosses the link [c -> parent], so it must fit
     [Tree.bandwidth c], and slack must be >= 1 (it decrements: the
     server moved one hop further from every flowing client);
   - place at [c]: always legal — flow <= w holds for every cell by
     construction and slack >= 0 is an invariant — and yields
     (flow 0, unbounded slack) one server up.
   At the root a positive-flow cell forces a root server, exactly as in
   {!Dp_withpre}. *)

let c_cells = Stats_counters.counter "dp_qos.cells_created"
let c_products = Stats_counters.counter "dp_qos.merge_products"
let c_capacity = Stats_counters.counter "dp_qos.capacity_rejected"
let c_qos = Stats_counters.counter "dp_qos.qos_rejected"
let c_bw = Stats_counters.counter "dp_qos.bw_rejected"
let c_peak = Stats_counters.counter "dp_qos.peak_frontier"
let t_tables = Stats_counters.timer "dp_qos.tables"

module Span = Replica_obs.Span

type entry = { flow : int; slack : int; placed : (int * int) Clist.t }

type table = {
  pre_cap : int;
  new_cap : int;
  (* cells.(e).(n): Pareto frontier, flow strictly increasing and slack
     strictly increasing (no entry dominates another). *)
  cells : entry list array array;
}

type result = {
  solution : Solution.t;
  cost : float;
  servers : int;
  reused : int;
}

let make_table pre_cap new_cap =
  { pre_cap; new_cap; cells = Array.make_matrix (pre_cap + 1) (new_cap + 1) [] }

let dec_slack s = if s = Tree.unbounded then s else s - 1

(* Insert keeping the frontier Pareto-minimal (min flow, max slack). *)
let insert t e n candidate =
  let rec go = function
    | [] -> Some [ candidate ]
    | x :: _ when x.flow <= candidate.flow && x.slack >= candidate.slack ->
        None (* dominated *)
    | x :: rest when candidate.flow <= x.flow && candidate.slack >= x.slack ->
        go rest (* x is dominated; drop it *)
    | x :: rest when x.flow < candidate.flow -> (
        match go rest with None -> None | Some r -> Some (x :: r))
    | frontier -> Some (candidate :: frontier)
  in
  match go t.cells.(e).(n) with
  | None -> ()
  | Some frontier ->
      t.cells.(e).(n) <- frontier;
      Stats_counters.incr c_cells

let iter_entries t f =
  for e = 0 to t.pre_cap do
    for n = 0 to t.new_cap do
      List.iter (fun x -> f e n x) t.cells.(e).(n)
    done
  done

let rec table_of tree ~w j =
  let start = make_table 0 0 in
  let client = Tree.client_load tree j in
  if client <= w then begin
    let slack = if client = 0 then Tree.unbounded else Tree.qos_radius tree j in
    start.cells.(0).(0) <- [ { flow = client; slack; placed = Clist.empty } ];
    Stats_counters.incr c_cells
  end;
  List.fold_left (merge tree ~w) start (Tree.children tree j)

and merge tree ~w left c =
  let sub = table_of tree ~w c in
  let c_pre = Tree.is_pre_existing tree c in
  let bw = Tree.bandwidth tree c in
  let extended =
    make_table
      (sub.pre_cap + if c_pre then 1 else 0)
      (sub.new_cap + if c_pre then 0 else 1)
  in
  iter_entries sub (fun e n x ->
      (* Pass the flow up through the link c -> parent. *)
      if x.flow = 0 then insert extended e n x
      else if x.flow > bw then Stats_counters.incr c_bw
      else if x.slack < 1 then Stats_counters.incr c_qos
      else insert extended e n { x with slack = dec_slack x.slack };
      (* Place a server at c: flow <= w and slack >= 0 by invariant. *)
      let absorbed =
        {
          flow = 0;
          slack = Tree.unbounded;
          placed = Clist.snoc x.placed (c, x.flow);
        }
      in
      if c_pre then insert extended (e + 1) n absorbed
      else insert extended e (n + 1) absorbed);
  let merged =
    make_table (left.pre_cap + extended.pre_cap)
      (left.new_cap + extended.new_cap)
  in
  let products = ref 0 and rejected = ref 0 and live = ref 0 in
  iter_entries left (fun e1 n1 l ->
      iter_entries extended (fun e2 n2 r ->
          incr products;
          let flow = l.flow + r.flow in
          if flow <= w then
            insert merged (e1 + e2) (n1 + n2)
              {
                flow;
                slack = min l.slack r.slack;
                placed = Clist.append l.placed r.placed;
              }
          else incr rejected));
  Stats_counters.add c_products !products;
  Stats_counters.add c_capacity !rejected;
  iter_entries merged (fun _ _ _ -> incr live);
  Stats_counters.record_max c_peak !live;
  merged

let solve tree ~w ~cost =
  if w <= 0 then invalid_arg "Dp_qos: w must be positive";
  let tracing = Span.enabled () in
  if tracing then Span.begin_span "dp_qos.solve";
  let root = Tree.root tree in
  let table = Stats_counters.time t_tables (fun () -> table_of tree ~w root) in
  let pre_total = Tree.num_pre_existing tree in
  let root_pre = Tree.is_pre_existing tree root in
  let best = ref None in
  let consider value servers reused placed root_used =
    match !best with
    | Some (v, _, _, _, _) when v <= value -> ()
    | _ -> best := Some (value, servers, reused, placed, root_used)
  in
  iter_entries table (fun e n x ->
      if x.flow = 0 then begin
        consider
          (Cost.basic_cost cost ~servers:(e + n) ~reused:e
             ~pre_existing:pre_total)
          (e + n) e x.placed false;
        if root_pre then
          consider
            (Cost.basic_cost cost ~servers:(e + n + 1) ~reused:(e + 1)
               ~pre_existing:pre_total)
            (e + n + 1) (e + 1) x.placed true
      end
      else begin
        (* flow <= w and slack >= 0 by invariant: a root server serves
           every remaining client within its QoS budget. *)
        let reused = e + if root_pre then 1 else 0 in
        consider
          (Cost.basic_cost cost ~servers:(e + n + 1) ~reused
             ~pre_existing:pre_total)
          (e + n + 1) reused x.placed true
      end);
  let result =
    match !best with
    | None -> None
    | Some (value, servers, reused, placed, root_used) ->
        let nodes = List.map fst (Clist.to_list placed) in
        let nodes = if root_used then root :: nodes else nodes in
        Some
          { solution = Solution.of_nodes nodes; cost = value; servers; reused }
  in
  if tracing then
    Span.end_span
      ~args:
        [
          ("nodes", Span.Int (Tree.size tree));
          ("w", Span.Int w);
          ("constrained", Span.Bool (Tree.is_constrained tree));
          ("solved", Span.Bool (result <> None));
        ]
      ();
  result

let min_servers tree ~w =
  Option.map
    (fun r -> (r.servers, r.solution))
    (solve tree ~w ~cost:(Cost.basic ()))
